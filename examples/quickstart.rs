//! Quickstart: certify a handful of transactions through the RATC
//! message-passing protocol and print the decisions and their latency in
//! message delays.
//!
//! Run with: `cargo run --example quickstart`

use ratc::core::harness::{Cluster, ClusterConfig};
use ratc::spec::check_history;
use ratc::types::prelude::*;

fn main() {
    // 3 shards, f = 1 (two replicas per shard), serializability.
    let mut cluster = Cluster::new(ClusterConfig::default().with_shards(3).with_seed(7));

    // Submit ten transactions: five disjoint ones and five contending on the
    // same key (so some of them must abort under serializability).
    for i in 0..5u64 {
        let payload = Payload::builder()
            .read(Key::new(format!("private-{i}")), Version::ZERO)
            .write(Key::new(format!("private-{i}")), Value::from("1"))
            .commit_version(Version::new(1))
            .build()
            .expect("well-formed payload");
        cluster.submit(TxId::new(i + 1), payload);
    }
    for i in 5..10u64 {
        let payload = Payload::builder()
            .read(Key::new("hot"), Version::ZERO)
            .write(Key::new("hot"), Value::from(format!("{i}")))
            .commit_version(Version::new(i))
            .build()
            .expect("well-formed payload");
        cluster.submit(TxId::new(i + 1), payload);
    }

    cluster.run_to_quiescence();

    let history = cluster.history();
    let latencies = cluster.latencies();
    println!("tx      decision   message delays   simulated latency");
    for (tx, _) in history.certified() {
        let decision = history
            .decision(tx)
            .map(|d| d.to_string())
            .unwrap_or_else(|| "undecided".to_owned());
        let (hops, micros) = latencies
            .get(&tx)
            .map(|l| (l.hops.to_string(), format!("{} us", l.micros)))
            .unwrap_or_else(|| ("-".to_owned(), "-".to_owned()));
        println!("{tx:<7} {decision:<10} {hops:<16} {micros}");
    }
    println!(
        "\ncommitted: {}, aborted: {}",
        history.committed().count(),
        history.aborted().count()
    );

    // Check the run against the TCS specification.
    let violations = check_history(&history, &Serializability::new());
    println!("specification violations: {}", violations.len());
    assert!(violations.is_empty());
}
