//! Quickstart: certify the same handful of transactions through **all
//! three** TCS stacks using the unified `ClusterSpec`/`TcsCluster` facade,
//! and print the decisions and their latency in message delays.
//!
//! The message-passing protocol decides in 5 delays, the RDMA protocol in
//! fewer, and the 2PC-over-Paxos baseline in 7 — same API, same workload,
//! three implementations.
//!
//! Run with: `cargo run --example quickstart`

use ratc::harness::{ClusterSpec, StackKind};
use ratc::spec::check_history;
use ratc::types::prelude::*;

fn main() {
    for stack in [StackKind::Core, StackKind::Rdma, StackKind::Baseline] {
        // 3 shards, f = 1, serializability — one spec, any stack.
        let mut cluster = ClusterSpec::new(stack).with_shards(3).with_seed(7).build();

        // Submit ten transactions: five disjoint ones and five contending on
        // the same key (so some of them must abort under serializability).
        for i in 0..5u64 {
            let payload = Payload::builder()
                .read(Key::new(format!("private-{i}")), Version::ZERO)
                .write(Key::new(format!("private-{i}")), Value::from("1"))
                .commit_version(Version::new(1))
                .build()
                .expect("well-formed payload");
            cluster.submit(TxId::new(i + 1), payload);
        }
        for i in 5..10u64 {
            let payload = Payload::builder()
                .read(Key::new("hot"), Version::ZERO)
                .write(Key::new("hot"), Value::from(format!("{i}")))
                .commit_version(Version::new(i))
                .build()
                .expect("well-formed payload");
            cluster.submit(TxId::new(i + 1), payload);
        }

        cluster.run_to_quiescence();

        let history = cluster.history();
        let latencies = cluster.latencies();
        println!("=== {stack} ===");
        println!("tx      decision   message delays   simulated latency");
        for (tx, _) in history.certified() {
            let decision = history
                .decision(tx)
                .map(|d| d.to_string())
                .unwrap_or_else(|| "undecided".to_owned());
            let (hops, micros) = latencies
                .get(&tx)
                .map(|l| (l.hops.to_string(), format!("{} us", l.micros)))
                .unwrap_or_else(|| ("-".to_owned(), "-".to_owned()));
            println!("{tx:<7} {decision:<10} {hops:<16} {micros}");
        }
        println!(
            "committed: {}, aborted: {}",
            history.committed().count(),
            history.aborted().count()
        );

        // Check the run against the TCS specification.
        let violations = check_history(&history, &Serializability::new());
        println!("specification violations: {}\n", violations.len());
        assert!(violations.is_empty());
        assert!(cluster.client_violations().is_empty());
    }
}
