//! Reconfiguration walk-through: crash a follower and then the leader of a
//! shard, reconfigure through the configuration service each time, and keep
//! certifying transactions — with only `f + 1 = 2` replicas per shard.
//!
//! The cluster is deployed from the unified `ClusterSpec` and driven through
//! the stack-agnostic `TcsCluster` introspection (`epoch_of` / `leader_of` /
//! `members_of`); only the final white-box invariant check needs the
//! concrete core cluster, which the same spec also builds.
//!
//! Run with: `cargo run --example reconfiguration`

use ratc::core::invariants::check_cluster;
use ratc::harness::{ClusterSpec, StackKind, TcsCluster};
use ratc::types::prelude::*;

fn payload(i: u64) -> Payload {
    Payload::builder()
        .read(Key::new(format!("k{i}")), Version::ZERO)
        .write(Key::new(format!("k{i}")), Value::from("v"))
        .commit_version(Version::new(1))
        .build()
        .expect("well-formed payload")
}

fn main() {
    let mut cluster = ClusterSpec::new(StackKind::Core)
        .with_shards(2)
        .with_seed(3)
        .build_core();
    let shard = ShardId::new(0);

    println!(
        "initial configuration of {shard}: epoch {}, leader {}, members {:?}",
        cluster.epoch_of(shard),
        cluster.leader_of(shard).expect("leader"),
        cluster.members_of(shard)
    );

    for i in 0..10 {
        cluster.submit(TxId::new(i + 1), payload(i));
    }
    cluster.run_to_quiescence();
    println!(
        "committed before any failure: {}",
        cluster.history().committed().count()
    );

    // 1. Crash the follower; the leader initiates reconfiguration and a spare
    //    replica is brought in.
    let leader = cluster.leader_of(shard).expect("leader");
    let follower = cluster
        .members_of(shard)
        .into_iter()
        .find(|p| *p != leader)
        .expect("follower");
    println!("\ncrashing follower {follower} of {shard}");
    cluster.crash(follower);
    cluster.start_reconfiguration(shard, leader, vec![follower]);
    cluster.run_to_quiescence();
    println!(
        "after reconfiguration 1: epoch {}, leader {}, members {:?}",
        cluster.epoch_of(shard),
        cluster.leader_of(shard).expect("leader"),
        cluster.members_of(shard)
    );

    for i in 10..20 {
        cluster.submit(TxId::new(i + 1), payload(i));
    }
    cluster.run_to_quiescence();

    // 2. Crash the leader; the surviving follower probes, becomes the new
    //    leader and brings in another spare.
    let leader = cluster.leader_of(shard).expect("leader");
    let survivor = cluster
        .members_of(shard)
        .into_iter()
        .find(|p| *p != leader)
        .expect("survivor");
    println!("\ncrashing leader {leader} of {shard}");
    cluster.crash(leader);
    cluster.start_reconfiguration(shard, survivor, vec![leader]);
    cluster.run_to_quiescence();
    println!(
        "after reconfiguration 2: epoch {}, leader {}, members {:?}",
        cluster.epoch_of(shard),
        cluster.leader_of(shard).expect("leader"),
        cluster.members_of(shard)
    );

    for i in 20..30 {
        cluster.submit(TxId::new(i + 1), payload(i));
    }
    cluster.run_to_quiescence();

    let history = cluster.history();
    println!("\ntotal committed: {}", history.committed().count());
    println!("total aborted: {}", history.aborted().count());
    println!("client violations: {}", cluster.client_violations().len());
    let violations = check_cluster(&cluster);
    println!("invariant violations: {}", violations.len());
    assert!(violations.is_empty());
    assert!(cluster.client_violations().is_empty());
}
