//! A small banking workload on top of the RATC stacks: optimistic execution
//! in the versioned key-value store (`ratc-kv`), certification through the
//! unified `TcsCluster` facade — so the *same* banking code runs on the
//! message-passing protocol, the RDMA protocol and the 2PC-over-Paxos
//! baseline — and an end-to-end serializability check.
//!
//! Run with: `cargo run --example bank_transfers`

use ratc::harness::{ClusterSpec, StackKind, TcsCluster};
use ratc::kv::KvStore;
use ratc::spec::check_conflict_serializable;
use ratc::types::prelude::*;

const ACCOUNTS: u64 = 8;
const INITIAL_BALANCE: u64 = 100;
const TRANSFERS: u64 = 40;

fn account_key(i: u64) -> Key {
    Key::new(format!("account-{i}"))
}

fn balance_of(value: &Value) -> u64 {
    let mut bytes = [0u8; 8];
    bytes.copy_from_slice(value.as_bytes());
    u64::from_be_bytes(bytes)
}

/// Runs the banking workload against one cluster, whatever its stack.
fn run_bank(cluster: &mut dyn TcsCluster) {
    let mut store = KvStore::new();
    for i in 0..ACCOUNTS {
        store.seed(account_key(i), Value::from(INITIAL_BALANCE));
    }

    // Execute transfers optimistically against the *current* committed state,
    // submit each for certification, apply the writes of committed ones, and
    // re-try nothing: aborted transfers are simply reported.
    let mut submitted = Vec::new();
    for i in 0..TRANSFERS {
        let from = i % ACCOUNTS;
        let to = (i * 7 + 3) % ACCOUNTS;
        if from == to {
            continue;
        }
        let tx = TxId::new(i + 1);
        let mut t = store.begin(tx);
        let from_balance = t
            .read(account_key(from))
            .map(|v| balance_of(&v))
            .unwrap_or(0);
        let to_balance = t.read(account_key(to)).map(|v| balance_of(&v)).unwrap_or(0);
        let amount = 1 + i % 5;
        if from_balance < amount {
            continue;
        }
        t.write(account_key(from), Value::from(from_balance - amount));
        t.write(account_key(to), Value::from(to_balance + amount));
        let payload = t.into_payload().expect("well-formed payload");
        cluster.submit(tx, payload.clone());
        submitted.push((tx, payload.clone()));

        // Certify each transfer before executing the next one, so reads always
        // observe committed state (the §2 system model).
        cluster.run_to_quiescence();
        let history = cluster.history();
        if history.decision(tx) == Some(Decision::Commit) {
            store.apply_commit(tx, &payload);
        }
    }

    let history = cluster.history();
    let committed = history.committed().count();
    let aborted = history.aborted().count();
    println!("transfers submitted: {}", submitted.len());
    println!("committed: {committed}, aborted: {aborted}");

    // Conservation: the sum of all balances is unchanged.
    let total: u64 = (0..ACCOUNTS)
        .map(|i| {
            store
                .read_committed(&account_key(i))
                .map(|(_, v)| balance_of(&v))
                .unwrap_or(0)
        })
        .sum();
    println!(
        "total balance: {total} (expected {})",
        ACCOUNTS * INITIAL_BALANCE
    );
    assert_eq!(total, ACCOUNTS * INITIAL_BALANCE);

    // The committed history is conflict-serializable.
    let order = check_conflict_serializable(&history).expect("serializable");
    println!("serialization order has {} transactions", order.len());
}

fn main() {
    for stack in [StackKind::Core, StackKind::Rdma, StackKind::Baseline] {
        println!("=== {stack} ===");
        let mut cluster = ClusterSpec::new(stack).with_shards(4).with_seed(11).build();
        run_bank(cluster.as_mut());
        println!();
    }
}
