//! The Figure 4a counter-example, run under both reconfiguration modes.
//!
//! The naive per-shard reconfiguration combined with RDMA externalises
//! contradictory decisions on the scripted schedule; the correct
//! whole-system reconfiguration of §5 rejects the stale coordinator's late
//! write and keeps the history safe.
//!
//! Run with: `cargo run --example rdma_counterexample`

use ratc::rdma::ReconfigMode;
use ratc::workload::run_counterexample;

fn main() {
    println!("Figure 4a schedule, naive per-shard reconfiguration:");
    let naive = run_counterexample(ReconfigMode::NaivePerShard, 1);
    println!("  {naive}");
    println!("Figure 4a schedule, correct global reconfiguration:");
    let correct = run_counterexample(ReconfigMode::GlobalCorrect, 1);
    println!("  {correct}");

    assert!(naive.stale_commit_externalized && naive.client_violations > 0);
    assert!(!correct.stale_commit_externalized && correct.client_violations == 0);
    println!("\nThe naive protocol violates safety; the correct protocol does not.");
}
