//! The global configuration sequence used by the RDMA protocol (§5).
//!
//! With RDMA, reconfiguration must involve the whole system: processes
//! maintain a single epoch instead of a per-shard vector, and the
//! configuration service "keeps a single data structure with the system's
//! sequence of configurations parameterized by shard" (Appendix C). The three
//! operations no longer take a shard identifier.

use std::collections::BTreeMap;
use std::fmt;

use ratc_types::{Epoch, ProcessId, ShardId};
use serde::{Deserialize, Serialize};

use crate::shard::CasError;

/// A system-wide configuration: for each shard, its members and leader, all
/// tagged by one global epoch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GlobalConfiguration {
    /// The global epoch identifying this configuration.
    pub epoch: Epoch,
    /// Members of every shard.
    pub members: BTreeMap<ShardId, Vec<ProcessId>>,
    /// Leader of every shard (each must be a member of its shard).
    pub leaders: BTreeMap<ShardId, ProcessId>,
}

impl GlobalConfiguration {
    /// Creates a global configuration, normalising member lists.
    ///
    /// # Panics
    ///
    /// Panics if a shard has no members, a leader is missing or a leader is
    /// not a member of its shard.
    pub fn new(
        epoch: Epoch,
        members: BTreeMap<ShardId, Vec<ProcessId>>,
        leaders: BTreeMap<ShardId, ProcessId>,
    ) -> Self {
        let mut normalised = BTreeMap::new();
        for (shard, mut shard_members) in members {
            shard_members.sort_unstable();
            shard_members.dedup();
            assert!(!shard_members.is_empty(), "shard {shard} must have members");
            let leader = leaders
                .get(&shard)
                .unwrap_or_else(|| panic!("shard {shard} must have a leader"));
            assert!(
                shard_members.contains(leader),
                "leader of {shard} must be a member"
            );
            normalised.insert(shard, shard_members);
        }
        GlobalConfiguration {
            epoch,
            members: normalised,
            leaders,
        }
    }

    /// The members of `shard` in this configuration.
    pub fn members_of(&self, shard: ShardId) -> &[ProcessId] {
        self.members.get(&shard).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The leader of `shard` in this configuration.
    pub fn leader_of(&self, shard: ShardId) -> Option<ProcessId> {
        self.leaders.get(&shard).copied()
    }

    /// The followers of `shard` in this configuration.
    pub fn followers_of(&self, shard: ShardId) -> Vec<ProcessId> {
        let leader = self.leader_of(shard);
        self.members_of(shard)
            .iter()
            .copied()
            .filter(|p| Some(*p) != leader)
            .collect()
    }

    /// Every process appearing in the configuration, across all shards.
    pub fn all_processes(&self) -> Vec<ProcessId> {
        let mut all: Vec<ProcessId> = self
            .members
            .values()
            .flat_map(|m| m.iter().copied())
            .collect();
        all.sort_unstable();
        all.dedup();
        all
    }

    /// All leaders, across all shards.
    pub fn all_leaders(&self) -> Vec<ProcessId> {
        let mut all: Vec<ProcessId> = self.leaders.values().copied().collect();
        all.sort_unstable();
        all.dedup();
        all
    }

    /// The shard `p` belongs to in this configuration, if any.
    pub fn shard_of_process(&self, p: ProcessId) -> Option<ShardId> {
        self.members
            .iter()
            .find(|(_, members)| members.contains(&p))
            .map(|(shard, _)| *shard)
    }
}

impl fmt::Display for GlobalConfiguration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} shards", self.epoch, self.members.len())
    }
}

/// The configuration service state for the RDMA protocol: a single sequence
/// of global configurations.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GlobalConfigRegistry {
    history: Vec<GlobalConfiguration>,
}

impl GlobalConfigRegistry {
    /// Creates a registry holding the initial configuration.
    pub fn new(initial: GlobalConfiguration) -> Self {
        GlobalConfigRegistry {
            history: vec![initial],
        }
    }

    /// `get_last()`: the most recently stored configuration.
    pub fn get_last(&self) -> &GlobalConfiguration {
        self.history.last().expect("history is never empty")
    }

    /// `get(e)`: the configuration with epoch `epoch`, if any.
    pub fn get(&self, epoch: Epoch) -> Option<&GlobalConfiguration> {
        self.history.iter().find(|c| c.epoch == epoch)
    }

    /// The configuration with the highest epoch not exceeding `epoch`.
    pub fn get_at_or_below(&self, epoch: Epoch) -> Option<&GlobalConfiguration> {
        self.history.iter().rev().find(|c| c.epoch <= epoch)
    }

    /// The full configuration history, oldest first.
    pub fn history(&self) -> &[GlobalConfiguration] {
        &self.history
    }

    /// `compare_and_swap(e, c)`: stores `config` provided the stored epoch is
    /// exactly `expected`.
    ///
    /// # Errors
    ///
    /// Same conditions as
    /// [`ShardConfigRegistry::compare_and_swap`](crate::shard::ShardConfigRegistry::compare_and_swap),
    /// minus the unknown-shard case.
    pub fn compare_and_swap(
        &mut self,
        expected: Epoch,
        config: GlobalConfiguration,
    ) -> Result<(), CasError> {
        let current = self.get_last();
        if current.epoch != expected {
            return Err(CasError::EpochMismatch {
                expected,
                actual: current.epoch,
            });
        }
        if config.epoch <= current.epoch {
            return Err(CasError::NonMonotonicEpoch {
                proposed: config.epoch,
                actual: current.epoch,
            });
        }
        self.history.push(config);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(raw: u64) -> ProcessId {
        ProcessId::new(raw)
    }

    fn config(epoch: u64) -> GlobalConfiguration {
        let mut members = BTreeMap::new();
        members.insert(ShardId::new(0), vec![pid(1), pid(2)]);
        members.insert(ShardId::new(1), vec![pid(3), pid(4)]);
        let mut leaders = BTreeMap::new();
        leaders.insert(ShardId::new(0), pid(1));
        leaders.insert(ShardId::new(1), pid(3));
        GlobalConfiguration::new(Epoch::new(epoch), members, leaders)
    }

    #[test]
    fn accessors() {
        let c = config(0);
        assert_eq!(c.members_of(ShardId::new(0)), &[pid(1), pid(2)]);
        assert_eq!(c.leader_of(ShardId::new(1)), Some(pid(3)));
        assert_eq!(c.followers_of(ShardId::new(1)), vec![pid(4)]);
        assert_eq!(c.all_processes(), vec![pid(1), pid(2), pid(3), pid(4)]);
        assert_eq!(c.all_leaders(), vec![pid(1), pid(3)]);
        assert_eq!(c.shard_of_process(pid(4)), Some(ShardId::new(1)));
        assert_eq!(c.shard_of_process(pid(9)), None);
        assert!(c.members_of(ShardId::new(7)).is_empty());
        assert_eq!(c.leader_of(ShardId::new(7)), None);
        assert!(c.to_string().contains("2 shards"));
    }

    #[test]
    #[should_panic(expected = "must have a leader")]
    fn missing_leader_panics() {
        let mut members = BTreeMap::new();
        members.insert(ShardId::new(0), vec![pid(1)]);
        let _ = GlobalConfiguration::new(Epoch::ZERO, members, BTreeMap::new());
    }

    #[test]
    fn cas_sequence() {
        let mut cs = GlobalConfigRegistry::new(config(0));
        assert_eq!(cs.get_last().epoch, Epoch::ZERO);
        cs.compare_and_swap(Epoch::ZERO, config(1)).unwrap();
        assert_eq!(cs.get_last().epoch, Epoch::new(1));
        assert_eq!(cs.history().len(), 2);
        assert_eq!(cs.get(Epoch::ZERO).unwrap().epoch, Epoch::ZERO);
        assert!(cs.get(Epoch::new(9)).is_none());
        assert_eq!(
            cs.get_at_or_below(Epoch::new(9)).unwrap().epoch,
            Epoch::new(1)
        );

        let err = cs.compare_and_swap(Epoch::ZERO, config(2)).unwrap_err();
        assert!(matches!(err, CasError::EpochMismatch { .. }));
        let err = cs.compare_and_swap(Epoch::new(1), config(1)).unwrap_err();
        assert!(matches!(err, CasError::NonMonotonicEpoch { .. }));
    }
}
