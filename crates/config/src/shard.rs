//! Per-shard configuration sequences (the CS of the message-passing protocol).

use std::collections::BTreeMap;
use std::fmt;

use ratc_types::{Epoch, ProcessId, ShardId};
use serde::{Deserialize, Serialize};

/// A configuration of a shard: the tuple `⟨e, M, pl⟩` of §3.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardConfiguration {
    /// The epoch identifying this configuration.
    pub epoch: Epoch,
    /// The set of processes managing the shard in this epoch.
    pub members: Vec<ProcessId>,
    /// The leader of the shard in this epoch (must be a member).
    pub leader: ProcessId,
}

impl ShardConfiguration {
    /// Creates a configuration, normalising the member list (sorted, no
    /// duplicates).
    ///
    /// # Panics
    ///
    /// Panics if `leader` is not contained in `members` or `members` is empty.
    pub fn new(epoch: Epoch, mut members: Vec<ProcessId>, leader: ProcessId) -> Self {
        members.sort_unstable();
        members.dedup();
        assert!(!members.is_empty(), "a configuration must have members");
        assert!(
            members.contains(&leader),
            "the leader must be a member of the configuration"
        );
        ShardConfiguration {
            epoch,
            members,
            leader,
        }
    }

    /// The followers of this configuration: all members except the leader.
    pub fn followers(&self) -> impl Iterator<Item = ProcessId> + '_ {
        let leader = self.leader;
        self.members.iter().copied().filter(move |p| *p != leader)
    }

    /// Returns `true` if `p` is a member of this configuration.
    pub fn contains(&self, p: ProcessId) -> bool {
        self.members.contains(&p)
    }

    /// Number of replicas in this configuration.
    pub fn replica_count(&self) -> usize {
        self.members.len()
    }
}

impl fmt::Display for ShardConfiguration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: leader {}, members {:?}",
            self.epoch,
            self.leader,
            self.members.iter().map(|p| p.as_u64()).collect::<Vec<_>>()
        )
    }
}

/// Errors returned by [`ShardConfigRegistry::compare_and_swap`] (and its
/// global counterpart).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CasError {
    /// The expected epoch did not match the stored epoch: a concurrent
    /// reconfiguration won the race.
    EpochMismatch {
        /// The epoch the caller expected to be current.
        expected: Epoch,
        /// The epoch actually stored.
        actual: Epoch,
    },
    /// The proposed configuration's epoch is not higher than the stored one.
    NonMonotonicEpoch {
        /// The epoch of the proposed configuration.
        proposed: Epoch,
        /// The epoch actually stored.
        actual: Epoch,
    },
    /// The shard is not known to the configuration service.
    UnknownShard(ShardId),
}

impl fmt::Display for CasError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CasError::EpochMismatch { expected, actual } => {
                write!(f, "expected epoch {expected} but found {actual}")
            }
            CasError::NonMonotonicEpoch { proposed, actual } => {
                write!(
                    f,
                    "proposed epoch {proposed} is not above stored epoch {actual}"
                )
            }
            CasError::UnknownShard(s) => write!(f, "unknown shard {s}"),
        }
    }
}

impl std::error::Error for CasError {}

/// The configuration service state for the per-shard protocol (§3): for each
/// shard, the full sequence of configurations ever stored.
///
/// # Example
///
/// ```
/// use ratc_config::{ShardConfigRegistry, ShardConfiguration};
/// use ratc_types::{Epoch, ProcessId, ShardId};
///
/// let s0 = ShardId::new(0);
/// let initial = ShardConfiguration::new(
///     Epoch::ZERO,
///     vec![ProcessId::new(1), ProcessId::new(2)],
///     ProcessId::new(1),
/// );
/// let mut cs = ShardConfigRegistry::new([(s0, initial)]);
/// assert_eq!(cs.get_last(s0).unwrap().epoch, Epoch::ZERO);
///
/// let next = ShardConfiguration::new(
///     Epoch::new(1),
///     vec![ProcessId::new(2), ProcessId::new(3)],
///     ProcessId::new(2),
/// );
/// cs.compare_and_swap(s0, Epoch::ZERO, next).unwrap();
/// assert_eq!(cs.get_last(s0).unwrap().epoch, Epoch::new(1));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ShardConfigRegistry {
    shards: BTreeMap<ShardId, Vec<ShardConfiguration>>,
}

impl ShardConfigRegistry {
    /// Creates a registry from the initial configuration of every shard.
    pub fn new<I>(initial: I) -> Self
    where
        I: IntoIterator<Item = (ShardId, ShardConfiguration)>,
    {
        let mut shards = BTreeMap::new();
        for (shard, config) in initial {
            shards.insert(shard, vec![config]);
        }
        ShardConfigRegistry { shards }
    }

    /// The shards known to the registry.
    pub fn shards(&self) -> impl Iterator<Item = ShardId> + '_ {
        self.shards.keys().copied()
    }

    /// `get_last(s)`: the most recently stored configuration of `shard`.
    pub fn get_last(&self, shard: ShardId) -> Option<&ShardConfiguration> {
        self.shards.get(&shard).and_then(|v| v.last())
    }

    /// `get(s, e)`: the configuration of `shard` with epoch `epoch`, if any.
    pub fn get(&self, shard: ShardId, epoch: Epoch) -> Option<&ShardConfiguration> {
        self.shards.get(&shard)?.iter().find(|c| c.epoch == epoch)
    }

    /// The configuration of `shard` with the highest epoch not exceeding
    /// `epoch` — used when probing skips epochs that were never introduced.
    pub fn get_at_or_below(&self, shard: ShardId, epoch: Epoch) -> Option<&ShardConfiguration> {
        self.shards
            .get(&shard)?
            .iter()
            .rev()
            .find(|c| c.epoch <= epoch)
    }

    /// The full configuration history of `shard`, oldest first.
    pub fn history(&self, shard: ShardId) -> &[ShardConfiguration] {
        self.shards.get(&shard).map(Vec::as_slice).unwrap_or(&[])
    }

    /// `compare_and_swap(s, e, c)`: stores `config` as the new configuration
    /// of `shard` provided the currently stored epoch is exactly `expected`.
    ///
    /// # Errors
    ///
    /// * [`CasError::UnknownShard`] if the shard was never initialised;
    /// * [`CasError::EpochMismatch`] if a concurrent reconfiguration already
    ///   stored a different epoch;
    /// * [`CasError::NonMonotonicEpoch`] if `config.epoch` is not strictly
    ///   higher than the stored epoch.
    pub fn compare_and_swap(
        &mut self,
        shard: ShardId,
        expected: Epoch,
        config: ShardConfiguration,
    ) -> Result<(), CasError> {
        let history = self
            .shards
            .get_mut(&shard)
            .ok_or(CasError::UnknownShard(shard))?;
        let current = history.last().expect("shard history is never empty");
        if current.epoch != expected {
            return Err(CasError::EpochMismatch {
                expected,
                actual: current.epoch,
            });
        }
        if config.epoch <= current.epoch {
            return Err(CasError::NonMonotonicEpoch {
                proposed: config.epoch,
                actual: current.epoch,
            });
        }
        history.push(config);
        Ok(())
    }

    /// All current members of shards other than `shard` — the recipients of a
    /// `CONFIG_CHANGE` notification about `shard`'s new configuration.
    pub fn other_shard_members(&self, shard: ShardId) -> Vec<ProcessId> {
        let mut members: Vec<ProcessId> = self
            .shards
            .iter()
            .filter(|(s, _)| **s != shard)
            .filter_map(|(_, history)| history.last())
            .flat_map(|c| c.members.iter().copied())
            .collect();
        members.sort_unstable();
        members.dedup();
        members
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(raw: u64) -> ProcessId {
        ProcessId::new(raw)
    }

    fn initial() -> ShardConfigRegistry {
        ShardConfigRegistry::new([
            (
                ShardId::new(0),
                ShardConfiguration::new(Epoch::ZERO, vec![pid(1), pid(2)], pid(1)),
            ),
            (
                ShardId::new(1),
                ShardConfiguration::new(Epoch::ZERO, vec![pid(3), pid(4)], pid(3)),
            ),
        ])
    }

    #[test]
    fn configuration_accessors() {
        let c = ShardConfiguration::new(Epoch::new(2), vec![pid(5), pid(3), pid(5)], pid(3));
        assert_eq!(c.members, vec![pid(3), pid(5)]);
        assert_eq!(c.followers().collect::<Vec<_>>(), vec![pid(5)]);
        assert!(c.contains(pid(5)));
        assert!(!c.contains(pid(7)));
        assert_eq!(c.replica_count(), 2);
        assert!(c.to_string().contains("e2"));
    }

    #[test]
    #[should_panic(expected = "leader must be a member")]
    fn leader_must_be_member() {
        let _ = ShardConfiguration::new(Epoch::ZERO, vec![pid(1)], pid(2));
    }

    #[test]
    #[should_panic(expected = "must have members")]
    fn members_must_not_be_empty() {
        let _ = ShardConfiguration::new(Epoch::ZERO, vec![], pid(2));
    }

    #[test]
    fn get_last_and_get() {
        let cs = initial();
        assert_eq!(cs.shards().count(), 2);
        assert_eq!(cs.get_last(ShardId::new(0)).unwrap().leader, pid(1));
        assert_eq!(
            cs.get(ShardId::new(1), Epoch::ZERO).unwrap().members,
            vec![pid(3), pid(4)]
        );
        assert!(cs.get(ShardId::new(1), Epoch::new(5)).is_none());
        assert!(cs.get_last(ShardId::new(9)).is_none());
        assert_eq!(cs.history(ShardId::new(0)).len(), 1);
        assert!(cs.history(ShardId::new(9)).is_empty());
    }

    #[test]
    fn cas_success_and_history() {
        let mut cs = initial();
        let s0 = ShardId::new(0);
        let next = ShardConfiguration::new(Epoch::new(1), vec![pid(2), pid(9)], pid(2));
        cs.compare_and_swap(s0, Epoch::ZERO, next.clone()).unwrap();
        assert_eq!(cs.get_last(s0), Some(&next));
        assert_eq!(cs.history(s0).len(), 2);
        assert_eq!(cs.get_at_or_below(s0, Epoch::new(7)), Some(&next));
        assert_eq!(
            cs.get_at_or_below(s0, Epoch::ZERO).unwrap().epoch,
            Epoch::ZERO
        );
    }

    #[test]
    fn cas_detects_concurrent_reconfiguration() {
        let mut cs = initial();
        let s0 = ShardId::new(0);
        cs.compare_and_swap(
            s0,
            Epoch::ZERO,
            ShardConfiguration::new(Epoch::new(1), vec![pid(2)], pid(2)),
        )
        .unwrap();
        // A second CAS that still expects epoch 0 fails.
        let err = cs
            .compare_and_swap(
                s0,
                Epoch::ZERO,
                ShardConfiguration::new(Epoch::new(2), vec![pid(9)], pid(9)),
            )
            .unwrap_err();
        assert_eq!(
            err,
            CasError::EpochMismatch {
                expected: Epoch::ZERO,
                actual: Epoch::new(1)
            }
        );
    }

    #[test]
    fn cas_rejects_non_monotonic_epochs_and_unknown_shards() {
        let mut cs = initial();
        let s0 = ShardId::new(0);
        let err = cs
            .compare_and_swap(
                s0,
                Epoch::ZERO,
                ShardConfiguration::new(Epoch::ZERO, vec![pid(2)], pid(2)),
            )
            .unwrap_err();
        assert!(matches!(err, CasError::NonMonotonicEpoch { .. }));
        let err = cs
            .compare_and_swap(
                ShardId::new(9),
                Epoch::ZERO,
                ShardConfiguration::new(Epoch::new(1), vec![pid(2)], pid(2)),
            )
            .unwrap_err();
        assert_eq!(err, CasError::UnknownShard(ShardId::new(9)));
        assert!(err.to_string().contains("unknown shard"));
    }

    #[test]
    fn other_shard_members_excludes_the_reconfigured_shard() {
        let cs = initial();
        assert_eq!(
            cs.other_shard_members(ShardId::new(0)),
            vec![pid(3), pid(4)]
        );
        assert_eq!(
            cs.other_shard_members(ShardId::new(1)),
            vec![pid(1), pid(2)]
        );
    }
}
