//! Configuration service for vertical reconfiguration.
//!
//! The paper's protocols rely on an external *configuration service* (CS) that
//! stores shard configurations and supports three operations (§3):
//! `compare_and_swap(s, e, ⟨e', M, pl⟩)`, `get_last(s)` and `get(s, e)`. The CS
//! is assumed reliable — "in practice, this service may be implemented using
//! Paxos-like replication over 2f+1 processes" — and additionally pushes
//! `CONFIG_CHANGE` notifications to the members of other shards.
//!
//! This crate provides the CS *state machines*:
//!
//! * [`ShardConfigRegistry`] — per-shard configuration sequences, used by the
//!   message-passing protocol of §3 (`ratc-core`);
//! * [`GlobalConfigRegistry`] — a single system-wide configuration sequence,
//!   used by the RDMA protocol of §5 (`ratc-rdma`), whose reconfiguration is
//!   global;
//! * [`membership`] — helpers for computing new memberships
//!   (`compute_membership` in the paper), including fresh-replica allocation.
//!
//! The protocol crates wrap these registries in simulation actors speaking
//! their own message types; the registries themselves are pure, synchronous
//! data structures, which also makes them directly usable by the Paxos-backed
//! replicated CS in `ratc-paxos`-based deployments.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod global;
pub mod membership;
pub mod shard;

pub use global::{GlobalConfigRegistry, GlobalConfiguration};
pub use membership::MembershipPlanner;
pub use shard::{CasError, ShardConfigRegistry, ShardConfiguration};
