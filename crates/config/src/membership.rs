//! Computing new memberships during reconfiguration.
//!
//! The paper leaves `compute_membership` unspecified, requiring only that the
//! new membership contains the new leader and otherwise consists of processes
//! that replied to probing or of fresh processes, added "to reach the desired
//! level of fault tolerance" (§3). [`MembershipPlanner`] implements that
//! contract: it keeps a pool of spare (fresh) processes and builds new
//! configurations of a target size around a chosen leader.

use std::collections::{BTreeSet, VecDeque};

use ratc_types::ProcessId;
use serde::{Deserialize, Serialize};

/// Plans new shard memberships from probe responders and a pool of fresh
/// replicas.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MembershipPlanner {
    spares: VecDeque<ProcessId>,
    target_size: usize,
}

impl MembershipPlanner {
    /// Creates a planner targeting configurations of `target_size` replicas
    /// (`f + 1` for tolerating `f` failures between reconfigurations), drawing
    /// replacements from `spares` in order.
    pub fn new<I>(target_size: usize, spares: I) -> Self
    where
        I: IntoIterator<Item = ProcessId>,
    {
        MembershipPlanner {
            spares: spares.into_iter().collect(),
            target_size: target_size.max(1),
        }
    }

    /// The configured target configuration size.
    pub fn target_size(&self) -> usize {
        self.target_size
    }

    /// Number of fresh processes still available.
    pub fn spare_count(&self) -> usize {
        self.spares.len()
    }

    /// Computes a new membership around `new_leader`.
    ///
    /// The membership always contains `new_leader`, then the surviving probe
    /// responders (in the given order), topped up with fresh processes until
    /// the target size is reached or the spare pool runs dry. Processes listed
    /// in `exclude` (e.g. replicas suspected of having crashed) are never
    /// used.
    pub fn plan(
        &mut self,
        new_leader: ProcessId,
        responders: &[ProcessId],
        exclude: &[ProcessId],
    ) -> Vec<ProcessId> {
        let excluded: BTreeSet<ProcessId> = exclude.iter().copied().collect();
        let mut members = vec![new_leader];
        for p in responders {
            if members.len() >= self.target_size {
                break;
            }
            if *p != new_leader && !excluded.contains(p) && !members.contains(p) {
                members.push(*p);
            }
        }
        while members.len() < self.target_size {
            let Some(fresh) = self.spares.pop_front() else {
                break;
            };
            if !excluded.contains(&fresh) && !members.contains(&fresh) {
                members.push(fresh);
            }
        }
        members.sort_unstable();
        members
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(raw: u64) -> ProcessId {
        ProcessId::new(raw)
    }

    #[test]
    fn plan_prefers_responders_then_spares() {
        let mut planner = MembershipPlanner::new(3, [pid(10), pid(11)]);
        assert_eq!(planner.target_size(), 3);
        assert_eq!(planner.spare_count(), 2);
        let members = planner.plan(pid(2), &[pid(3)], &[]);
        assert_eq!(members, vec![pid(2), pid(3), pid(10)]);
        assert_eq!(planner.spare_count(), 1);
    }

    #[test]
    fn plan_excludes_suspected_processes() {
        let mut planner = MembershipPlanner::new(2, [pid(10)]);
        let members = planner.plan(pid(2), &[pid(3), pid(4)], &[pid(3)]);
        assert_eq!(members, vec![pid(2), pid(4)]);
        // The spare pool was not touched because responders sufficed.
        assert_eq!(planner.spare_count(), 1);
    }

    #[test]
    fn plan_handles_exhausted_spares() {
        let mut planner = MembershipPlanner::new(4, []);
        let members = planner.plan(pid(1), &[pid(2)], &[]);
        // Cannot reach the target size, but the leader and responders are kept.
        assert_eq!(members, vec![pid(1), pid(2)]);
    }

    #[test]
    fn plan_never_duplicates_the_leader() {
        let mut planner = MembershipPlanner::new(3, [pid(5)]);
        let members = planner.plan(pid(2), &[pid(2), pid(2), pid(3)], &[]);
        assert_eq!(members, vec![pid(2), pid(3), pid(5)]);
    }

    #[test]
    fn target_size_is_at_least_one() {
        let planner = MembershipPlanner::new(0, []);
        assert_eq!(planner.target_size(), 1);
    }
}
