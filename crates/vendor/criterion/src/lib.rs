//! Minimal in-tree benchmark harness with a criterion-compatible API.
//!
//! The workspace builds offline, so the real `criterion` crate is
//! unavailable. This stub implements the subset of the API the RATC benches
//! use — [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkGroup::bench_function`], [`BenchmarkId`], [`Bencher::iter`],
//! [`black_box`] and the [`criterion_group!`]/[`criterion_main!`] macros —
//! backed by a straightforward wall-clock measurement loop:
//!
//! 1. warm up for ~50 ms,
//! 2. calibrate an iteration batch that takes ≥ ~5 ms,
//! 3. collect `sample_size` batches and report min/mean/max ns per iteration.
//!
//! Output is one line per benchmark, e.g.
//! `e5_certification_function/1000  time: [712.3 ns 724.9 ns 741.0 ns]`,
//! intentionally close to criterion's own format so humans and scripts can
//! eyeball speedups the same way. Statistical analysis (outlier rejection,
//! regression against saved baselines) is out of scope.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting benchmark work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Entry point holding global benchmark settings.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into(), 20, |b| f(b));
        self
    }
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id built from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id built from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// A group of related benchmarks sharing settings and a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a benchmark identified by `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.id);
        run_benchmark(&label, self.sample_size, |b| f(b));
        self
    }

    /// Runs a benchmark that receives a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.id);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (a no-op kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; drives the measurement loop.
pub struct Bencher {
    mode: BencherMode,
    /// Number of iterations the routine should run when timing.
    iters: u64,
    /// Wall-clock time spent inside [`Bencher::iter`] in timing mode.
    elapsed: Duration,
}

enum BencherMode {
    /// Run the routine `iters` times and record the elapsed time.
    Measure,
}

impl Bencher {
    /// Times `routine`, running it in a tight loop.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        match self.mode {
            BencherMode::Measure => {
                let start = Instant::now();
                for _ in 0..self.iters {
                    black_box(routine());
                }
                self.elapsed = start.elapsed();
            }
        }
    }
}

fn time_batch<F>(f: &mut F, iters: u64) -> Duration
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        mode: BencherMode::Measure,
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    bencher.elapsed
}

fn run_benchmark<F>(label: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up and calibration: find an iteration count whose batch takes at
    // least ~5 ms (or give up doubling once a single batch is slow enough).
    let mut iters: u64 = 1;
    let warmup_deadline = Instant::now() + Duration::from_millis(50);
    loop {
        let elapsed = time_batch(&mut f, iters);
        if elapsed >= Duration::from_millis(5) || Instant::now() >= warmup_deadline {
            break;
        }
        iters = iters.saturating_mul(2);
    }

    let mut samples_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let elapsed = time_batch(&mut f, iters);
        samples_ns.push(elapsed.as_nanos() as f64 / iters as f64);
    }
    samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("benchmark times are finite"));
    let min = samples_ns.first().copied().unwrap_or(0.0);
    let max = samples_ns.last().copied().unwrap_or(0.0);
    let mean = samples_ns.iter().sum::<f64>() / samples_ns.len().max(1) as f64;
    println!(
        "{label:<48} time: [{} {} {}]",
        format_ns(min),
        format_ns(mean),
        format_ns(max)
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group.sample_size(2);
        let mut runs = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("vote", 10).id, "vote/10");
        assert_eq!(BenchmarkId::from_parameter(42).id, "42");
    }

    #[test]
    fn format_ns_scales_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(12_000_000_000.0).ends_with('s'));
    }
}
