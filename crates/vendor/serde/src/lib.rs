//! Marker-trait in-tree replacement for `serde`.
//!
//! The workspace builds in a fully offline environment, so the real `serde`
//! crate is unavailable. The RATC stack runs on a deterministic in-process
//! simulator that passes messages by value and never serialises them;
//! `Serialize`/`Deserialize` bounds therefore only need to *exist*, not do
//! anything. This stub keeps the exact import surface the code already uses
//! (`use serde::{Deserialize, Serialize};` plus the derive macros) while
//! implementing the traits as blanket markers.
//!
//! Swapping the `crates/vendor` path dependencies for the crates.io versions
//! restores real serialisation without touching any other code.

pub use serde_derive::{Deserialize, Serialize};

/// Marker replacement for `serde::Serialize`, implemented for every type.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker replacement for `serde::Deserialize`, implemented for every type.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker replacement for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}

impl<T: ?Sized> DeserializeOwned for T {}

/// Mirror of the `serde::de` module path for `DeserializeOwned` imports.
pub mod de {
    pub use super::DeserializeOwned;
}
