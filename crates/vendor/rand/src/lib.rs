//! Minimal in-tree replacement for the parts of `rand` 0.8 that RATC uses.
//!
//! The workspace builds offline, so the real `rand` crate is unavailable.
//! This stub reproduces exactly the API surface the simulator and workload
//! generators call — [`Rng::gen_range`] over integer and float ranges,
//! [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`] and
//! [`distributions::Uniform`]/[`distributions::Distribution`] — with the same
//! determinism guarantee: a generator seeded with the same value produces the
//! same sequence on every run and platform. The statistical quality is that of
//! the underlying generator (see `rand_chacha`'s stub), which is more than
//! adequate for workload generation and latency sampling; cryptographic use is
//! out of scope.

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (the high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed. Equal seeds yield equal
    /// sequences.
    fn seed_from_u64(state: u64) -> Self;
}

/// Convenience extension methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (which must be in `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps 64 random bits to a float uniform in `[0, 1)` using the top 53 bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform distributions over ranges, mirroring `rand::distributions`.
pub mod distributions {
    use super::RngCore;

    /// A distribution that can be sampled with any [`RngCore`].
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over the half-open interval `[low, high)`.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Uniform<X> {
        low: X,
        high: X,
    }

    impl<X: uniform::SampleUniform> Uniform<X> {
        /// Creates a uniform distribution over `[low, high)`.
        ///
        /// # Panics
        /// Panics if the interval is empty.
        pub fn new(low: X, high: X) -> Self {
            assert!(low < high, "Uniform::new called with an empty range");
            Uniform { low, high }
        }
    }

    impl<X: uniform::SampleUniform> Distribution<X> for Uniform<X> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> X {
            X::sample_half_open(self.low, self.high, rng)
        }
    }

    /// Range sampling machinery, mirroring `rand::distributions::uniform`.
    pub mod uniform {
        use super::super::{unit_f64 as unit, RngCore};

        /// Types that can be sampled uniformly between two bounds.
        pub trait SampleUniform: Copy + PartialOrd {
            /// Uniform sample from `[low, high)`.
            fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
            /// Uniform sample from `[low, high]`.
            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
        }

        macro_rules! impl_sample_uniform_int {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                        assert!(low < high, "gen_range called with an empty range");
                        let span = (high as u128).wrapping_sub(low as u128);
                        low.wrapping_add((rng.next_u64() as u128 % span) as $t)
                    }
                    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                        assert!(low <= high, "gen_range called with an empty range");
                        let span = (high as u128).wrapping_sub(low as u128).wrapping_add(1);
                        if span == 0 {
                            // The full u128-representable span: every value is fair game.
                            return rng.next_u64() as $t;
                        }
                        low.wrapping_add((rng.next_u64() as u128 % span) as $t)
                    }
                }
            )*};
        }

        impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        impl SampleUniform for f64 {
            fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "gen_range called with an empty range");
                low + (high - low) * unit(rng.next_u64())
            }
            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                Self::sample_half_open(low, high, rng)
            }
        }

        impl SampleUniform for f32 {
            fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "gen_range called with an empty range");
                low + (high - low) * unit(rng.next_u64()) as f32
            }
            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                Self::sample_half_open(low, high, rng)
            }
        }

        /// Ranges acceptable to [`Rng::gen_range`](crate::Rng::gen_range).
        pub trait SampleRange<T> {
            /// Draws one sample from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                T::sample_half_open(self.start, self.end, rng)
            }
        }

        impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                T::sample_inclusive(*self.start(), *self.end(), rng)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::{Rng, RngCore};

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u64 = rng.gen_range(5..=5);
            assert_eq!(w, 5);
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn uniform_distribution_samples_in_range() {
        let dist = Uniform::new(0.0, 1.0);
        let mut rng = Counter(9);
        for _ in 0..1000 {
            let u: f64 = dist.sample(&mut rng);
            assert!((0.0..1.0).contains(&u));
        }
    }
}
