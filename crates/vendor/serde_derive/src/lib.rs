//! No-op in-tree replacement for `serde_derive`.
//!
//! This workspace builds in a fully offline environment, so the real
//! `serde_derive` crate is not available. The RATC crates only use
//! `#[derive(Serialize, Deserialize)]` as a marker (the deterministic
//! simulator passes messages by value and never serialises them), so the
//! derive macros here expand to nothing: the companion `serde` stub crate
//! provides blanket implementations of the `Serialize`/`Deserialize` marker
//! traits for every type.
//!
//! If real wire serialisation is ever needed, replace the `crates/vendor`
//! stubs with the crates.io dependencies and everything keeps compiling.

use proc_macro::TokenStream;

/// No-op replacement for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op replacement for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
