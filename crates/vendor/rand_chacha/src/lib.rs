//! In-tree deterministic stand-in for `rand_chacha`.
//!
//! The workspace builds offline, so the real `rand_chacha` crate is
//! unavailable. RATC only needs a *deterministic, seedable, decent-quality*
//! generator for its discrete-event simulator and workload generators — the
//! cryptographic strength of real ChaCha is irrelevant here. This stub keeps
//! the type name [`ChaCha12Rng`] (so every `use rand_chacha::ChaCha12Rng`
//! keeps compiling) but implements xoshiro256++ seeded via SplitMix64:
//! equal seeds produce equal sequences on every platform, which is the only
//! property the simulator's determinism guarantee relies on.
//!
//! Note: the *sequences* differ from real ChaCha12, so experiment outputs are
//! reproducible against this stub, not against crates.io `rand_chacha`.

use rand::{RngCore, SeedableRng};

/// Deterministic seedable generator (xoshiro256++ under the hood; see the
/// crate docs for why it is named after ChaCha12).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha12Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SeedableRng for ChaCha12Rng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        ChaCha12Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for ChaCha12Rng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ by Blackman & Vigna (public domain reference algorithm).
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn equal_seeds_give_equal_sequences() {
        let mut a = ChaCha12Rng::seed_from_u64(42);
        let mut b = ChaCha12Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha12Rng::seed_from_u64(1);
        let mut b = ChaCha12Rng::seed_from_u64(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn works_with_rng_extension_methods() {
        let mut rng = ChaCha12Rng::seed_from_u64(7);
        let v: u64 = rng.gen_range(10..=20);
        assert!((10..=20).contains(&v));
        let _ = rng.gen_bool(0.5);
    }

    #[test]
    fn state_is_never_all_zero() {
        // xoshiro256++ requires a non-zero state; SplitMix64 seeding guarantees it.
        for seed in 0..64 {
            let rng = ChaCha12Rng::seed_from_u64(seed);
            assert_ne!(rng.s, [0, 0, 0, 0]);
        }
    }
}
