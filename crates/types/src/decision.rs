//! Commit/abort decisions and votes, together with the `⊓` (meet) operator.
//!
//! The paper's decision domain is `D = {abort, commit}` with the meet operator
//! `⊓` defined by `commit ⊓ commit = commit` and `d ⊓ abort = abort`. The same
//! operator combines shard votes into a final decision in two-phase commit and
//! combines the results of the shard-local certification functions `f_s` and
//! `g_s` when a leader votes on a transaction.

use std::fmt;
use std::ops::BitAnd;

use serde::{Deserialize, Serialize};

/// A decision (or vote) on a transaction: `commit` or `abort`.
///
/// The meet operator `⊓` of the paper is exposed both as [`Decision::meet`] and
/// as the `&` operator, since `⊓` behaves exactly like logical conjunction with
/// `commit` playing the role of `true`.
///
/// # Example
///
/// ```
/// use ratc_types::Decision;
/// assert_eq!(Decision::Commit & Decision::Commit, Decision::Commit);
/// assert_eq!(Decision::Commit & Decision::Abort, Decision::Abort);
/// assert_eq!(Decision::meet_all([Decision::Commit, Decision::Commit]), Decision::Commit);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Decision {
    /// The transaction must abort.
    Abort,
    /// The transaction may commit.
    Commit,
}

impl Decision {
    /// The meet operator `⊓`: the result is `Commit` only if both operands are.
    pub fn meet(self, other: Decision) -> Decision {
        if self == Decision::Commit && other == Decision::Commit {
            Decision::Commit
        } else {
            Decision::Abort
        }
    }

    /// Folds `⊓` over an iterator of decisions.
    ///
    /// The meet of the empty set is `Commit` (the neutral element of `⊓`),
    /// mirroring the convention that a transaction touching no shards commits
    /// vacuously.
    pub fn meet_all<I>(decisions: I) -> Decision
    where
        I: IntoIterator<Item = Decision>,
    {
        decisions.into_iter().fold(Decision::Commit, Decision::meet)
    }

    /// Returns `true` if this decision is `Commit`.
    pub fn is_commit(self) -> bool {
        self == Decision::Commit
    }

    /// Returns `true` if this decision is `Abort`.
    pub fn is_abort(self) -> bool {
        self == Decision::Abort
    }

    /// The `⊑` order used by the TCS-LL specification (Figure 6):
    /// `abort ⊑ commit` and every decision is below itself.
    ///
    /// `x ⊑ y` means the protocol is allowed to output `x` where the
    /// certification functions would allow `y`: spuriously aborting is always
    /// safe, spuriously committing never is.
    pub fn le(self, other: Decision) -> bool {
        self == other || (self == Decision::Abort && other == Decision::Commit)
    }
}

impl BitAnd for Decision {
    type Output = Decision;

    fn bitand(self, rhs: Decision) -> Decision {
        self.meet(rhs)
    }
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Decision::Commit => f.write_str("commit"),
            Decision::Abort => f.write_str("abort"),
        }
    }
}

/// A shard's vote on a transaction, as recorded in the certification order.
///
/// A vote is structurally the same as a [`Decision`]; the separate alias keeps
/// protocol code readable: leaders produce *votes*, coordinators combine votes
/// into *decisions*.
pub type Vote = Decision;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meet_matches_truth_table() {
        use Decision::*;
        assert_eq!(Commit.meet(Commit), Commit);
        assert_eq!(Commit.meet(Abort), Abort);
        assert_eq!(Abort.meet(Commit), Abort);
        assert_eq!(Abort.meet(Abort), Abort);
    }

    #[test]
    fn meet_all_of_empty_is_commit() {
        assert_eq!(Decision::meet_all(std::iter::empty()), Decision::Commit);
    }

    #[test]
    fn meet_all_aborts_if_any_aborts() {
        let votes = [Decision::Commit, Decision::Abort, Decision::Commit];
        assert_eq!(Decision::meet_all(votes), Decision::Abort);
    }

    #[test]
    fn bitand_is_meet() {
        assert_eq!(Decision::Commit & Decision::Abort, Decision::Abort);
        assert_eq!(Decision::Commit & Decision::Commit, Decision::Commit);
    }

    #[test]
    fn le_order() {
        assert!(Decision::Abort.le(Decision::Commit));
        assert!(Decision::Abort.le(Decision::Abort));
        assert!(Decision::Commit.le(Decision::Commit));
        assert!(!Decision::Commit.le(Decision::Abort));
    }

    #[test]
    fn predicates() {
        assert!(Decision::Commit.is_commit());
        assert!(!Decision::Commit.is_abort());
        assert!(Decision::Abort.is_abort());
    }

    #[test]
    fn display() {
        assert_eq!(Decision::Commit.to_string(), "commit");
        assert_eq!(Decision::Abort.to_string(), "abort");
    }
}
