//! Transaction payloads: the result of a transaction's optimistic execution.
//!
//! A payload is the triple `⟨R, W, Vc⟩` of §2 of the paper: the read set `R`
//! (objects with the versions that were read), the write set `W` (objects with
//! the values to be written) and the commit version `Vc` to be assigned to the
//! writes. Payloads are what clients submit to the Transaction Certification
//! Service and what shard leaders certify.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::{Key, ShardId, Value, Version};
use crate::sharding::ShardMap;

/// Errors produced when validating a [`Payload`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PayloadError {
    /// An object appears in the write set but not in the read set.
    ///
    /// The paper requires that any object written has also been read
    /// (`∀(x, _) ∈ W. (x, _) ∈ R`).
    WriteWithoutRead {
        /// The offending key.
        key: Key,
    },
    /// The commit version is not strictly higher than some read version.
    ///
    /// The paper requires `∀(_, v) ∈ R. Vc > v`.
    CommitVersionTooLow {
        /// The key whose read version is not below the commit version.
        key: Key,
        /// The version that was read.
        read: Version,
        /// The declared commit version.
        commit: Version,
    },
    /// A non-empty write set was provided without a commit version.
    MissingCommitVersion,
}

impl fmt::Display for PayloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PayloadError::WriteWithoutRead { key } => {
                write!(f, "object {key} is written but was not read")
            }
            PayloadError::CommitVersionTooLow { key, read, commit } => write!(
                f,
                "commit version {commit} is not above version {read} read for object {key}"
            ),
            PayloadError::MissingCommitVersion => {
                f.write_str("payload has writes but no commit version")
            }
        }
    }
}

impl std::error::Error for PayloadError {}

/// The payload `⟨R, W, Vc⟩` of a transaction.
///
/// The distinguished *empty payload* `ε` (an empty read set and write set) is
/// produced by [`Payload::empty`]; the paper requires that every shard-local
/// certification function maps `ε` to `commit`, and the commit protocol uses
/// `ε` when a recovering coordinator finds a leader that never saw the
/// transaction's real payload.
///
/// Payloads are value types: cloning copies the read and write sets.
///
/// # Example
///
/// ```
/// use ratc_types::prelude::*;
///
/// let p = Payload::builder()
///     .read(Key::new("x"), Version::new(1))
///     .write(Key::new("x"), Value::from("10"))
///     .commit_version(Version::new(2))
///     .build()?;
/// assert!(!p.is_empty());
/// assert_eq!(p.reads().count(), 1);
/// # Ok::<(), PayloadError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct Payload {
    reads: BTreeMap<Key, Version>,
    writes: BTreeMap<Key, Value>,
    commit_version: Version,
}

impl Payload {
    /// Returns the distinguished empty payload `ε`.
    pub fn empty() -> Self {
        Payload::default()
    }

    /// Starts building a payload.
    pub fn builder() -> PayloadBuilder {
        PayloadBuilder::default()
    }

    /// Returns `true` if this payload is the empty payload `ε`
    /// (no reads and no writes).
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty() && self.writes.is_empty()
    }

    /// Returns the version that this transaction's writes will carry.
    pub fn commit_version(&self) -> Version {
        self.commit_version
    }

    /// Iterates over the read set: `(key, version read)` pairs.
    pub fn reads(&self) -> impl Iterator<Item = (&Key, Version)> + '_ {
        self.reads.iter().map(|(k, v)| (k, *v))
    }

    /// Iterates over the write set: `(key, value written)` pairs.
    pub fn writes(&self) -> impl Iterator<Item = (&Key, &Value)> + '_ {
        self.writes.iter()
    }

    /// Returns the version this payload read for `key`, if `key` is in the read set.
    pub fn read_version(&self, key: &Key) -> Option<Version> {
        self.reads.get(key).copied()
    }

    /// Returns `true` if `key` is in the read set.
    pub fn reads_key(&self, key: &Key) -> bool {
        self.reads.contains_key(key)
    }

    /// Returns `true` if `key` is in the write set.
    pub fn writes_key(&self, key: &Key) -> bool {
        self.writes.contains_key(key)
    }

    /// Returns the number of keys in the read set.
    pub fn read_count(&self) -> usize {
        self.reads.len()
    }

    /// Returns the number of keys in the write set.
    pub fn write_count(&self) -> usize {
        self.writes.len()
    }

    /// All keys touched (read or written) by this payload.
    pub fn keys(&self) -> impl Iterator<Item = &Key> + '_ {
        // Reads are a superset of writes in well-formed payloads, but restricted
        // payloads (l | s) may violate that, so take the union explicitly.
        self.reads
            .keys()
            .chain(self.writes.keys().filter(|k| !self.reads.contains_key(*k)))
    }

    /// Validates the payload against the well-formedness conditions of §2:
    /// every written object was read, and the commit version is strictly above
    /// every read version (when there are writes).
    ///
    /// # Errors
    ///
    /// Returns the first violated condition as a [`PayloadError`].
    pub fn validate(&self) -> Result<(), PayloadError> {
        for key in self.writes.keys() {
            if !self.reads.contains_key(key) {
                return Err(PayloadError::WriteWithoutRead { key: key.clone() });
            }
        }
        if !self.writes.is_empty() {
            if self.commit_version == Version::ZERO {
                return Err(PayloadError::MissingCommitVersion);
            }
            for (key, read) in &self.reads {
                if self.commit_version <= *read {
                    return Err(PayloadError::CommitVersionTooLow {
                        key: key.clone(),
                        read: *read,
                        commit: self.commit_version,
                    });
                }
            }
        }
        Ok(())
    }

    /// The restriction `l | s` of this payload to the objects managed by shard
    /// `s` under the given shard map.
    ///
    /// The commit version is preserved; read and write entries whose key is not
    /// managed by `s` are dropped. If the transaction touches no objects of
    /// `s`, the result is the empty payload `ε` (as required by the paper for
    /// shards outside `shards(t)`).
    pub fn restrict<M: ShardMap + ?Sized>(&self, shard: ShardId, sharding: &M) -> Payload {
        let reads: BTreeMap<Key, Version> = self
            .reads
            .iter()
            .filter(|(k, _)| sharding.shard_of(k) == shard)
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        let writes: BTreeMap<Key, Value> = self
            .writes
            .iter()
            .filter(|(k, _)| sharding.shard_of(k) == shard)
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        if reads.is_empty() && writes.is_empty() {
            Payload::empty()
        } else {
            Payload {
                reads,
                writes,
                commit_version: self.commit_version,
            }
        }
    }

    /// The set of shards that must certify this payload under the given shard
    /// map (the function `shards(t)` of the paper).
    pub fn shards<M: ShardMap + ?Sized>(&self, sharding: &M) -> Vec<ShardId> {
        let mut shards: Vec<ShardId> = self.keys().map(|k| sharding.shard_of(k)).collect();
        shards.sort_unstable();
        shards.dedup();
        shards
    }

    /// Approximate size of this payload in bytes, used by benchmarks to account
    /// for replication traffic.
    pub fn size_bytes(&self) -> usize {
        let reads: usize = self
            .reads
            .keys()
            .map(|k| k.as_str().len() + std::mem::size_of::<Version>())
            .sum();
        let writes: usize = self
            .writes
            .iter()
            .map(|(k, v)| k.as_str().len() + v.len())
            .sum();
        reads + writes + std::mem::size_of::<Version>()
    }
}

impl fmt::Display for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("ε");
        }
        write!(
            f,
            "⟨R:{} keys, W:{} keys, Vc:{}⟩",
            self.reads.len(),
            self.writes.len(),
            self.commit_version
        )
    }
}

/// Builder for [`Payload`] values.
///
/// The builder validates the payload on [`PayloadBuilder::build`]; use
/// [`PayloadBuilder::build_unchecked`] to construct deliberately malformed
/// payloads in tests.
#[derive(Debug, Clone, Default)]
pub struct PayloadBuilder {
    reads: BTreeMap<Key, Version>,
    writes: BTreeMap<Key, Value>,
    commit_version: Version,
}

impl PayloadBuilder {
    /// Records that the transaction read `key` at `version`.
    pub fn read(mut self, key: Key, version: Version) -> Self {
        self.reads.insert(key, version);
        self
    }

    /// Records that the transaction writes `value` to `key`.
    pub fn write(mut self, key: Key, value: Value) -> Self {
        self.writes.insert(key, value);
        self
    }

    /// Sets the commit version `Vc` of the transaction's writes.
    pub fn commit_version(mut self, version: Version) -> Self {
        self.commit_version = version;
        self
    }

    /// Builds the payload, validating the well-formedness conditions of §2.
    ///
    /// # Errors
    ///
    /// Returns a [`PayloadError`] if a written object was not read, or the
    /// commit version is not strictly above every read version.
    pub fn build(self) -> Result<Payload, PayloadError> {
        let payload = self.build_unchecked();
        payload.validate()?;
        Ok(payload)
    }

    /// Builds the payload without validation.
    ///
    /// Useful for constructing adversarial payloads in tests of the
    /// certification functions and specification checkers.
    pub fn build_unchecked(self) -> Payload {
        Payload {
            reads: self.reads,
            writes: self.writes,
            commit_version: self.commit_version,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sharding::HashSharding;

    fn k(name: &str) -> Key {
        Key::new(name)
    }

    #[test]
    fn empty_payload_is_epsilon() {
        let e = Payload::empty();
        assert!(e.is_empty());
        assert_eq!(e.to_string(), "ε");
        assert_eq!(e.read_count(), 0);
        assert_eq!(e.write_count(), 0);
        assert!(e.validate().is_ok());
    }

    #[test]
    fn builder_produces_wellformed_payload() {
        let p = Payload::builder()
            .read(k("x"), Version::new(1))
            .read(k("y"), Version::new(5))
            .write(k("y"), Value::from("v"))
            .commit_version(Version::new(6))
            .build()
            .expect("well-formed");
        assert_eq!(p.read_count(), 2);
        assert_eq!(p.write_count(), 1);
        assert_eq!(p.read_version(&k("y")), Some(Version::new(5)));
        assert!(p.writes_key(&k("y")));
        assert!(!p.writes_key(&k("x")));
        assert!(p.reads_key(&k("x")));
        assert_eq!(p.commit_version(), Version::new(6));
    }

    #[test]
    fn write_without_read_is_rejected() {
        let err = Payload::builder()
            .write(k("z"), Value::from("v"))
            .commit_version(Version::new(1))
            .build()
            .unwrap_err();
        assert_eq!(err, PayloadError::WriteWithoutRead { key: k("z") });
    }

    #[test]
    fn low_commit_version_is_rejected() {
        let err = Payload::builder()
            .read(k("x"), Version::new(9))
            .write(k("x"), Value::from("v"))
            .commit_version(Version::new(9))
            .build()
            .unwrap_err();
        assert!(matches!(err, PayloadError::CommitVersionTooLow { .. }));
    }

    #[test]
    fn missing_commit_version_is_rejected() {
        let err = Payload::builder()
            .read(k("x"), Version::new(0))
            .write(k("x"), Value::from("v"))
            .build()
            .unwrap_err();
        assert_eq!(err, PayloadError::MissingCommitVersion);
    }

    #[test]
    fn read_only_payload_needs_no_commit_version() {
        let p = Payload::builder()
            .read(k("x"), Version::new(3))
            .build()
            .expect("read-only payloads are fine without Vc");
        assert_eq!(p.write_count(), 0);
    }

    #[test]
    fn restriction_drops_foreign_keys_and_preserves_version() {
        let sharding = HashSharding::new(2);
        let p = Payload::builder()
            .read(k("a"), Version::new(1))
            .read(k("b"), Version::new(2))
            .write(k("a"), Value::from("1"))
            .write(k("b"), Value::from("2"))
            .commit_version(Version::new(3))
            .build()
            .expect("well-formed");
        let shards = p.shards(&sharding);
        // With two shards and two keys hashing somewhere, every restricted
        // payload must contain only keys of its shard and the union must cover
        // the original key set.
        let mut seen = 0;
        for s in &shards {
            let r = p.restrict(*s, &sharding);
            for (key, _) in r.reads() {
                assert_eq!(sharding.shard_of(key), *s);
                seen += 1;
            }
            assert_eq!(r.commit_version(), Version::new(3));
        }
        assert_eq!(seen, 2);
    }

    #[test]
    fn restriction_to_untouched_shard_is_epsilon() {
        // Single key: at least one of the two shards is untouched.
        let sharding = HashSharding::new(2);
        let p = Payload::builder()
            .read(k("solo"), Version::new(1))
            .build()
            .expect("well-formed");
        let touched = sharding.shard_of(&k("solo"));
        let other = ShardId::new(1 - touched.as_u32());
        assert!(p.restrict(other, &sharding).is_empty());
        assert!(!p.restrict(touched, &sharding).is_empty());
    }

    #[test]
    fn shards_are_sorted_and_deduplicated() {
        let sharding = HashSharding::new(4);
        let p = Payload::builder()
            .read(k("k1"), Version::new(1))
            .read(k("k2"), Version::new(1))
            .read(k("k3"), Version::new(1))
            .read(k("k4"), Version::new(1))
            .build()
            .expect("well-formed");
        let shards = p.shards(&sharding);
        let mut sorted = shards.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(shards, sorted);
    }

    #[test]
    fn size_bytes_is_positive_for_nonempty() {
        let p = Payload::builder()
            .read(k("x"), Version::new(1))
            .write(k("x"), Value::from("abc"))
            .commit_version(Version::new(2))
            .build()
            .expect("well-formed");
        assert!(p.size_bytes() > 0);
    }

    #[test]
    fn keys_union_of_reads_and_writes() {
        // Use build_unchecked to create a payload that writes a key it did not
        // read (as can happen for restrictions in adversarial tests).
        let p = Payload::builder()
            .read(k("r"), Version::new(1))
            .write(k("w"), Value::from("x"))
            .commit_version(Version::new(2))
            .build_unchecked();
        let keys: Vec<&Key> = p.keys().collect();
        assert_eq!(keys.len(), 2);
    }
}
