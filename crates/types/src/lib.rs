//! Core vocabulary types for the Reconfigurable Atomic Transaction Commit (RATC) stack.
//!
//! This crate defines the domain described in §2 of Bravo & Gotsman,
//! *Reconfigurable Atomic Transaction Commit* (PODC 2019):
//!
//! * identifiers for transactions, shards, processes, epochs and log positions
//!   ([`ids`]),
//! * transaction payloads carrying read sets, write sets and commit versions
//!   ([`payload`]),
//! * commit/abort decisions and the `⊓` (meet) operator ([`decision`]),
//! * the mapping from transactions to the shards that must certify them
//!   ([`sharding`]),
//! * certification policies: the global certification function `f` and the
//!   shard-local functions `f_s` and `g_s`, parametric in the isolation level
//!   ([`certify`]).
//!
//! Everything else in the workspace (the commit protocols, the baseline, the
//! specification checkers, the key-value store) is written against these types.
//!
//! # Example
//!
//! ```
//! use ratc_types::prelude::*;
//!
//! // A transaction that read x at version 3 and writes y, committing at version 7.
//! let payload = Payload::builder()
//!     .read(Key::new("x"), Version::new(3))
//!     .read(Key::new("y"), Version::new(2))
//!     .write(Key::new("y"), Value::from("new"))
//!     .commit_version(Version::new(7))
//!     .build()
//!     .expect("well-formed payload");
//!
//! let policy = Serializability::new();
//! // No previously committed transactions: the payload certifies to commit.
//! assert_eq!(policy.certify(&[], &payload), Decision::Commit);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod certify;
pub mod decision;
pub mod history;
pub mod ids;
pub mod payload;
pub mod sharding;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::certify::{
        CertificationPolicy, IndexedCertifier, IndexedSerializability, IndexedWriteConflict,
        MirrorCertifier, Serializability, ShardCertifier, WriteConflict,
    };
    pub use crate::decision::{Decision, Vote};
    pub use crate::history::{HistoryAction, TcsHistory};
    pub use crate::ids::{Epoch, Key, Position, ProcessId, ShardId, TxId, Value, Version};
    pub use crate::payload::{Payload, PayloadBuilder, PayloadError};
    pub use crate::sharding::{ExplicitSharding, HashSharding, ShardMap};
}

pub use certify::{
    CertificationPolicy, IndexedCertifier, IndexedSerializability, IndexedWriteConflict,
    MirrorCertifier, Serializability, ShardCertifier, WriteConflict,
};
pub use decision::{Decision, Vote};
pub use history::{HistoryAction, TcsHistory};
pub use ids::{Epoch, Key, Position, ProcessId, ShardId, TxId, Value, Version};
pub use payload::{Payload, PayloadBuilder, PayloadError};
pub use sharding::{ExplicitSharding, HashSharding, ShardMap};
