//! Strongly-typed identifiers used throughout the RATC stack.
//!
//! Every identifier is a thin newtype ([C-NEWTYPE]) around an integer or string so
//! that, e.g., an [`Epoch`] can never be confused with a [`Position`] in the
//! certification order, and a [`ProcessId`] can never be confused with a
//! [`ShardId`].
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// Unique identifier of a transaction (the set `T` of the paper).
///
/// Transaction identifiers are allocated by clients (or by the workload
/// generator) and must be globally unique: the TCS specification requires that
/// every transaction appears at most once in a `certify` action.
///
/// # Example
///
/// ```
/// use ratc_types::TxId;
/// let t = TxId::new(42);
/// assert_eq!(t.as_u64(), 42);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TxId(u64);

impl TxId {
    /// Creates a transaction identifier from a raw number.
    pub const fn new(raw: u64) -> Self {
        TxId(raw)
    }

    /// Returns the raw numeric value of this identifier.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<u64> for TxId {
    fn from(raw: u64) -> Self {
        TxId(raw)
    }
}

/// Identifier of a shard (the set `S` of the paper).
///
/// Each shard manages a disjoint subset of the database objects and is
/// replicated by a group of processes whose membership changes over time.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ShardId(u32);

impl ShardId {
    /// Creates a shard identifier from a raw number.
    pub const fn new(raw: u32) -> Self {
        ShardId(raw)
    }

    /// Returns the raw numeric value of this identifier.
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// Returns the raw value as a `usize`, convenient for indexing.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl From<u32> for ShardId {
    fn from(raw: u32) -> Self {
        ShardId(raw)
    }
}

/// Identifier of a process (the set `P` of the paper).
///
/// Processes are replicas of shards, clients, coordinators, or the
/// configuration service; the simulation substrate addresses messages by
/// `ProcessId`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ProcessId(u64);

impl ProcessId {
    /// Creates a process identifier from a raw number.
    pub const fn new(raw: u64) -> Self {
        ProcessId(raw)
    }

    /// Returns the raw numeric value of this identifier.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the raw value as a `usize`, convenient for indexing.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u64> for ProcessId {
    fn from(raw: u64) -> Self {
        ProcessId(raw)
    }
}

/// Configuration epoch of a shard (or of the whole system in the RDMA protocol).
///
/// Epochs are totally ordered; reconfiguration always moves to a strictly
/// higher epoch. Epoch `0` denotes the initial configuration.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Epoch(u64);

impl Epoch {
    /// The initial epoch.
    pub const ZERO: Epoch = Epoch(0);

    /// Creates an epoch from a raw number.
    pub const fn new(raw: u64) -> Self {
        Epoch(raw)
    }

    /// Returns the raw numeric value of this epoch.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the epoch immediately following this one.
    pub const fn next(self) -> Epoch {
        Epoch(self.0 + 1)
    }

    /// Returns the epoch immediately preceding this one, or `None` for epoch 0.
    pub fn prev(self) -> Option<Epoch> {
        self.0.checked_sub(1).map(Epoch)
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl From<u64> for Epoch {
    fn from(raw: u64) -> Self {
        Epoch(raw)
    }
}

/// Position (slot index) in a shard's certification order (the array index `k`
/// of the paper's `txn`, `payload`, `vote`, `dec` and `phase` arrays).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Position(u64);

impl Position {
    /// The first position of a certification order.
    pub const ZERO: Position = Position(0);

    /// Creates a position from a raw index.
    pub const fn new(raw: u64) -> Self {
        Position(raw)
    }

    /// Returns the raw index.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the raw index as a `usize`, convenient for array indexing.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }

    /// Returns the position immediately following this one.
    pub const fn next(self) -> Position {
        Position(self.0 + 1)
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

impl From<u64> for Position {
    fn from(raw: u64) -> Self {
        Position(raw)
    }
}

/// A database object identifier (the set `Obj` of the paper).
///
/// Keys are interned behind an `Arc<str>`: a [`Key::clone`] is a reference
/// count bump, never a string copy. This matters on the vote hot path — the
/// certification index and its lock tables store one key per read/write of
/// every prepared payload, so with plain `String` keys every vote paid one
/// heap allocation per payload key. Equality, ordering and hashing compare
/// the string contents, exactly as before.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Key(Arc<str>);

impl Key {
    /// Creates a key from anything convertible to a string.
    pub fn new(raw: impl Into<String>) -> Self {
        Key(Arc::from(raw.into()))
    }

    /// Returns the key as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Number of live clones of this key (1 = unshared). Exposed so tests can
    /// assert that indexes intern rather than copy.
    pub fn ref_count(&self) -> usize {
        Arc::strong_count(&self.0)
    }
}

impl Default for Key {
    fn default() -> Self {
        Key(Arc::from(""))
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Key {
    fn from(raw: &str) -> Self {
        Key(Arc::from(raw))
    }
}

impl From<String> for Key {
    fn from(raw: String) -> Self {
        Key(Arc::from(raw))
    }
}

/// A database object value (the set `Val` of the paper).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct Value(Vec<u8>);

impl Value {
    /// Creates a value from raw bytes.
    pub fn new(raw: impl Into<Vec<u8>>) -> Self {
        Value(raw.into())
    }

    /// Returns the value's bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Returns the number of bytes in the value.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` if the value is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match std::str::from_utf8(&self.0) {
            Ok(s) => write!(f, "{s:?}"),
            Err(_) => write!(f, "{} bytes", self.0.len()),
        }
    }
}

impl From<&str> for Value {
    fn from(raw: &str) -> Self {
        Value(raw.as_bytes().to_vec())
    }
}

impl From<String> for Value {
    fn from(raw: String) -> Self {
        Value(raw.into_bytes())
    }
}

impl From<Vec<u8>> for Value {
    fn from(raw: Vec<u8>) -> Self {
        Value(raw)
    }
}

impl From<u64> for Value {
    fn from(raw: u64) -> Self {
        Value(raw.to_be_bytes().to_vec())
    }
}

/// A totally ordered object version (the set `Ver` of the paper).
///
/// Versions identify which committed transaction wrote the value a reader
/// observed; optimistic execution reads a version and certification verifies
/// that the version has not been overwritten.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Version(u64);

impl Version {
    /// The initial version of every object (before any transaction wrote it).
    pub const ZERO: Version = Version(0);

    /// Creates a version from a raw number.
    pub const fn new(raw: u64) -> Self {
        Version(raw)
    }

    /// Returns the raw numeric value of this version.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the version immediately following this one.
    pub const fn next(self) -> Version {
        Version(self.0 + 1)
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u64> for Version {
    fn from(raw: u64) -> Self {
        Version(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_ordering_and_successor() {
        let e = Epoch::new(3);
        assert!(e < e.next());
        assert_eq!(e.next().as_u64(), 4);
        assert_eq!(e.prev(), Some(Epoch::new(2)));
        assert_eq!(Epoch::ZERO.prev(), None);
    }

    #[test]
    fn position_successor_and_indexing() {
        let k = Position::new(7);
        assert_eq!(k.next().as_u64(), 8);
        assert_eq!(k.as_usize(), 7);
        assert!(Position::ZERO < k);
    }

    #[test]
    fn display_formats_are_compact() {
        assert_eq!(TxId::new(1).to_string(), "t1");
        assert_eq!(ShardId::new(2).to_string(), "s2");
        assert_eq!(ProcessId::new(3).to_string(), "p3");
        assert_eq!(Epoch::new(4).to_string(), "e4");
        assert_eq!(Position::new(5).to_string(), "k5");
        assert_eq!(Version::new(6).to_string(), "v6");
    }

    #[test]
    fn key_and_value_conversions() {
        let k = Key::from("account-1");
        assert_eq!(k.as_str(), "account-1");
        let v = Value::from("100");
        assert_eq!(v.as_bytes(), b"100");
        assert!(!v.is_empty());
        assert_eq!(Value::default().len(), 0);
        let n = Value::from(7u64);
        assert_eq!(n.as_bytes().len(), 8);
    }

    #[test]
    fn ids_are_hashable_and_distinct() {
        use std::collections::HashSet;
        let set: HashSet<TxId> = (0..10).map(TxId::new).collect();
        assert_eq!(set.len(), 10);
    }

    #[test]
    fn key_clones_are_interned_not_copied() {
        let k = Key::new("hot-key");
        assert_eq!(k.ref_count(), 1);
        let clones: Vec<Key> = (0..10).map(|_| k.clone()).collect();
        assert_eq!(k.ref_count(), 11);
        drop(clones);
        assert_eq!(k.ref_count(), 1);
        // Contents, not pointers, drive equality/ordering/hashing.
        assert_eq!(k, Key::new("hot-key"));
        assert!(Key::new("a") < Key::new("b"));
        assert_eq!(Key::default().as_str(), "");
    }

    #[test]
    fn version_ordering_matches_raw_order() {
        assert!(Version::new(2) > Version::new(1));
        assert_eq!(Version::ZERO.next(), Version::new(1));
    }

    #[test]
    fn raw_value_round_trip() {
        let t = TxId::new(99);
        let back = TxId::new(t.as_u64());
        assert_eq!(t, back);
    }

    #[test]
    fn from_impls_work() {
        assert_eq!(TxId::from(5u64), TxId::new(5));
        assert_eq!(ShardId::from(5u32), ShardId::new(5));
        assert_eq!(ProcessId::from(5u64), ProcessId::new(5));
        assert_eq!(Epoch::from(5u64), Epoch::new(5));
        assert_eq!(Position::from(5u64), Position::new(5));
        assert_eq!(Version::from(5u64), Version::new(5));
        assert_eq!(Key::from(String::from("k")), Key::new("k"));
        assert_eq!(Value::from(vec![1u8, 2]), Value::new(vec![1u8, 2]));
    }
}
