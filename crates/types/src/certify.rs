//! Certification functions: the concurrency-control policy of the TCS.
//!
//! A Transaction Certification Service is specified by a *certification
//! function* `f : 2^L × L → D` mapping the set of previously committed payloads
//! and a candidate payload to a commit/abort decision (§2). Sharded
//! implementations additionally use *shard-local* certification functions
//! `f_s` (against committed transactions) and `g_s` (against transactions
//! prepared to commit), which must *match* `f` and satisfy the distributivity
//! and commutation properties (1), (3), (4) and (5) of the paper.
//!
//! This module defines:
//!
//! * [`CertificationPolicy`] — the trait bundling `f`, `f_s` and `g_s`,
//!   parametric in the isolation level (the protocols in `ratc-core`,
//!   `ratc-rdma` and `ratc-baseline` are generic over it);
//! * [`Serializability`] — the paper's example policy (equation (2) and the
//!   shard-local functions of §2), providing classical optimistic
//!   serializability with read/write-lock style `g_s`;
//! * [`WriteConflict`] — a weaker, snapshot-isolation-flavoured policy that
//!   only detects write-write conflicts, used to exercise the parametricity of
//!   the protocols;
//! * [`properties`] — executable versions of the paper's required properties,
//!   used by the property-based test suites.

use std::fmt;
use std::sync::Arc;

use crate::decision::Decision;
use crate::ids::ShardId;
use crate::payload::Payload;
use crate::sharding::ShardMap;

/// A certifier for a single shard: the pair `(f_s, g_s)` of shard-local
/// certification functions.
///
/// All payloads passed to these methods are expected to be already restricted
/// to the shard (`l | s`); the shard leaders in the commit protocols only ever
/// store restricted payloads, so this is the natural calling convention.
pub trait ShardCertifier: fmt::Debug + Send + Sync {
    /// The shard-local function `f_s(L, l)`: certifies `payload` against the
    /// (shard-restricted) payloads of previously *committed* transactions.
    fn certify_committed(&self, committed: &[&Payload], payload: &Payload) -> Decision;

    /// The shard-local function `g_s(L, l)`: certifies `payload` against the
    /// (shard-restricted) payloads of transactions *prepared to commit* but not
    /// yet decided.
    fn certify_prepared(&self, prepared: &[&Payload], payload: &Payload) -> Decision;

    /// The leader's vote of line 12 of Figure 1:
    /// `f_s(L1, l) ⊓ g_s(L2, l)`.
    fn vote(
        &self,
        committed: &[&Payload],
        prepared: &[&Payload],
        payload: &Payload,
    ) -> Decision {
        self.certify_committed(committed, payload)
            .meet(self.certify_prepared(prepared, payload))
    }
}

/// A certification policy: the global function `f` together with a factory of
/// shard-local certifiers, encapsulating the concurrency-control policy for a
/// desired isolation level.
///
/// Implementations must satisfy the paper's properties (checked at runtime by
/// [`properties`] and by the property-based tests):
///
/// * distributivity (1) of `f`, `f_s` and `g_s`,
/// * matching (3) between `f` and the family `f_s`,
/// * `g_s` no weaker than `f_s` (4),
/// * commutation (5) between `g_s` and `f_s`,
/// * `f_s(L, ε) = commit` for the empty payload.
pub trait CertificationPolicy: fmt::Debug + Send + Sync {
    /// The global certification function `f(L, l)`.
    fn certify(&self, committed: &[&Payload], payload: &Payload) -> Decision;

    /// Returns the shard-local certifier `(f_s, g_s)` for `shard`.
    fn shard_certifier(&self, shard: ShardId) -> Arc<dyn ShardCertifier>;

    /// A short human-readable name for reports and benchmark output.
    fn name(&self) -> &'static str;
}

/// Convenience: a `CertificationPolicy` behind an `Arc` is itself usable as a
/// policy, so protocol components can cheaply share one.
impl CertificationPolicy for Arc<dyn CertificationPolicy> {
    fn certify(&self, committed: &[&Payload], payload: &Payload) -> Decision {
        (**self).certify(committed, payload)
    }

    fn shard_certifier(&self, shard: ShardId) -> Arc<dyn ShardCertifier> {
        (**self).shard_certifier(shard)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

// ---------------------------------------------------------------------------
// Serializability (the paper's running example)
// ---------------------------------------------------------------------------

/// The classical optimistic-concurrency-control policy for serializability
/// (equation (2) of the paper and its shard-local counterparts).
///
/// * `f` / `f_s`: a transaction commits iff none of the versions it read has
///   been overwritten by a committed transaction (`V'_c ≤ v` for every
///   committed writer of a read object).
/// * `g_s`: a transaction aborts if it read an object written by a
///   prepared-to-commit transaction, or writes an object read by one —
///   mirroring read/write lock acquisition in typical implementations.
///
/// # Example
///
/// ```
/// use ratc_types::prelude::*;
/// let policy = Serializability::new();
/// let committed = Payload::builder()
///     .read(Key::new("x"), Version::new(0))
///     .write(Key::new("x"), Value::from("1"))
///     .commit_version(Version::new(1))
///     .build()?;
/// // A transaction that read x at version 0 conflicts with the committed writer.
/// let stale = Payload::builder().read(Key::new("x"), Version::new(0)).build()?;
/// assert_eq!(policy.certify(&[&committed], &stale), Decision::Abort);
/// // Reading the new version is fine.
/// let fresh = Payload::builder().read(Key::new("x"), Version::new(1)).build()?;
/// assert_eq!(policy.certify(&[&fresh.clone()], &fresh), Decision::Commit);
/// # Ok::<(), PayloadError>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Serializability;

impl Serializability {
    /// Creates the serializability policy.
    pub fn new() -> Self {
        Serializability
    }

    /// Returns the policy as a shareable trait object.
    pub fn shared() -> Arc<dyn CertificationPolicy> {
        Arc::new(Serializability)
    }

    fn no_read_overwritten(committed: &[&Payload], payload: &Payload) -> Decision {
        for (key, read_version) in payload.reads() {
            for other in committed {
                if other.writes_key(key) && other.commit_version() > read_version {
                    return Decision::Abort;
                }
            }
        }
        Decision::Commit
    }
}

impl CertificationPolicy for Serializability {
    fn certify(&self, committed: &[&Payload], payload: &Payload) -> Decision {
        Self::no_read_overwritten(committed, payload)
    }

    fn shard_certifier(&self, _shard: ShardId) -> Arc<dyn ShardCertifier> {
        Arc::new(SerializabilityShard)
    }

    fn name(&self) -> &'static str {
        "serializability"
    }
}

/// Shard-local certifier of [`Serializability`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SerializabilityShard;

impl ShardCertifier for SerializabilityShard {
    fn certify_committed(&self, committed: &[&Payload], payload: &Payload) -> Decision {
        Serializability::no_read_overwritten(committed, payload)
    }

    fn certify_prepared(&self, prepared: &[&Payload], payload: &Payload) -> Decision {
        // g_s: abort if (i) payload read an object written by a prepared
        // transaction, or (ii) payload writes an object read by a prepared
        // transaction (the lock-based check of §2).
        for other in prepared {
            for (key, _) in payload.reads() {
                if other.writes_key(key) {
                    return Decision::Abort;
                }
            }
            for (key, _) in payload.writes() {
                if other.reads_key(key) {
                    return Decision::Abort;
                }
            }
        }
        Decision::Commit
    }
}

// ---------------------------------------------------------------------------
// Write-conflict (snapshot-isolation flavoured) policy
// ---------------------------------------------------------------------------

/// A weaker policy that only detects write-write conflicts
/// ("first committer wins"), in the style of snapshot isolation.
///
/// * `f` / `f_s`: a transaction commits iff, for every object it *writes*, no
///   committed transaction has written that object after the version the
///   transaction read.
/// * `g_s`: a transaction aborts if a prepared-to-commit transaction writes any
///   object it also writes.
///
/// The policy exists to exercise the protocols' parametricity in the isolation
/// level: everything in `ratc-core`/`ratc-rdma`/`ratc-baseline` works
/// identically with either policy.
#[derive(Debug, Clone, Copy, Default)]
pub struct WriteConflict;

impl WriteConflict {
    /// Creates the write-conflict policy.
    pub fn new() -> Self {
        WriteConflict
    }

    /// Returns the policy as a shareable trait object.
    pub fn shared() -> Arc<dyn CertificationPolicy> {
        Arc::new(WriteConflict)
    }

    fn no_write_write_conflict(committed: &[&Payload], payload: &Payload) -> Decision {
        for (key, _) in payload.writes() {
            let read_version = payload.read_version(key).unwrap_or(crate::ids::Version::ZERO);
            for other in committed {
                if other.writes_key(key) && other.commit_version() > read_version {
                    return Decision::Abort;
                }
            }
        }
        Decision::Commit
    }
}

impl CertificationPolicy for WriteConflict {
    fn certify(&self, committed: &[&Payload], payload: &Payload) -> Decision {
        Self::no_write_write_conflict(committed, payload)
    }

    fn shard_certifier(&self, _shard: ShardId) -> Arc<dyn ShardCertifier> {
        Arc::new(WriteConflictShard)
    }

    fn name(&self) -> &'static str {
        "write-conflict"
    }
}

/// Shard-local certifier of [`WriteConflict`].
#[derive(Debug, Clone, Copy, Default)]
pub struct WriteConflictShard;

impl ShardCertifier for WriteConflictShard {
    fn certify_committed(&self, committed: &[&Payload], payload: &Payload) -> Decision {
        WriteConflict::no_write_write_conflict(committed, payload)
    }

    fn certify_prepared(&self, prepared: &[&Payload], payload: &Payload) -> Decision {
        for other in prepared {
            for (key, _) in payload.writes() {
                if other.writes_key(key) {
                    return Decision::Abort;
                }
            }
        }
        Decision::Commit
    }
}

// ---------------------------------------------------------------------------
// Executable property checks
// ---------------------------------------------------------------------------

/// Executable versions of the paper's required properties of certification
/// functions, used by the property-based test suites and by the specification
/// checkers.
pub mod properties {
    use super::*;

    /// Distributivity (1): `f(L1 ∪ L2, l) = f(L1, l) ⊓ f(L2, l)` for the global
    /// function, checked on a concrete split of the committed set.
    pub fn distributive_global<P: CertificationPolicy + ?Sized>(
        policy: &P,
        left: &[&Payload],
        right: &[&Payload],
        payload: &Payload,
    ) -> bool {
        let mut union: Vec<&Payload> = Vec::with_capacity(left.len() + right.len());
        union.extend_from_slice(left);
        union.extend_from_slice(right);
        policy.certify(&union, payload)
            == policy.certify(left, payload).meet(policy.certify(right, payload))
    }

    /// Distributivity (1) for the shard-local function `f_s`.
    pub fn distributive_shard_committed(
        certifier: &dyn ShardCertifier,
        left: &[&Payload],
        right: &[&Payload],
        payload: &Payload,
    ) -> bool {
        let mut union: Vec<&Payload> = Vec::with_capacity(left.len() + right.len());
        union.extend_from_slice(left);
        union.extend_from_slice(right);
        certifier.certify_committed(&union, payload)
            == certifier
                .certify_committed(left, payload)
                .meet(certifier.certify_committed(right, payload))
    }

    /// Distributivity (1) for the shard-local function `g_s`.
    pub fn distributive_shard_prepared(
        certifier: &dyn ShardCertifier,
        left: &[&Payload],
        right: &[&Payload],
        payload: &Payload,
    ) -> bool {
        let mut union: Vec<&Payload> = Vec::with_capacity(left.len() + right.len());
        union.extend_from_slice(left);
        union.extend_from_slice(right);
        certifier.certify_prepared(&union, payload)
            == certifier
                .certify_prepared(left, payload)
                .meet(certifier.certify_prepared(right, payload))
    }

    /// Matching (3): `f(L, l) = commit ⟺ ∀s. f_s(L|s, l|s) = commit`,
    /// checked on a concrete committed set and shard map.
    pub fn matching<P, M>(
        policy: &P,
        sharding: &M,
        committed: &[&Payload],
        payload: &Payload,
    ) -> bool
    where
        P: CertificationPolicy + ?Sized,
        M: ShardMap + ?Sized,
    {
        let global = policy.certify(committed, payload);
        let mut all_shards_commit = true;
        for shard in sharding.shards() {
            let certifier = policy.shard_certifier(shard);
            let restricted_committed: Vec<Payload> = committed
                .iter()
                .map(|p| p.restrict(shard, sharding))
                .collect();
            let restricted_refs: Vec<&Payload> = restricted_committed.iter().collect();
            let restricted_payload = payload.restrict(shard, sharding);
            if certifier
                .certify_committed(&restricted_refs, &restricted_payload)
                .is_abort()
            {
                all_shards_commit = false;
            }
        }
        global.is_commit() == all_shards_commit
    }

    /// Property (4): `g_s(L, l) = commit ⇒ f_s(L, l) = commit`.
    pub fn prepared_no_weaker(
        certifier: &dyn ShardCertifier,
        prepared: &[&Payload],
        payload: &Payload,
    ) -> bool {
        !certifier.certify_prepared(prepared, payload).is_commit()
            || certifier.certify_committed(prepared, payload).is_commit()
    }

    /// Property (5): `g_s({l}, l') = commit ⇒ f_s({l'}, l) = commit`.
    pub fn commutation(
        certifier: &dyn ShardCertifier,
        pending: &Payload,
        candidate: &Payload,
    ) -> bool {
        !certifier
            .certify_prepared(&[pending], candidate)
            .is_commit()
            || certifier.certify_committed(&[candidate], pending).is_commit()
    }

    /// The empty payload `ε` always certifies to commit against any committed set.
    pub fn empty_payload_commits(
        certifier: &dyn ShardCertifier,
        committed: &[&Payload],
    ) -> bool {
        certifier
            .certify_committed(committed, &Payload::empty())
            .is_commit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Key, Value, Version};
    use crate::sharding::HashSharding;

    fn payload(reads: &[(&str, u64)], writes: &[(&str, &str)], vc: u64) -> Payload {
        let mut b = Payload::builder();
        for (k, v) in reads {
            b = b.read(Key::new(*k), Version::new(*v));
        }
        for (k, v) in writes {
            b = b.write(Key::new(*k), Value::from(*v));
        }
        b.commit_version(Version::new(vc)).build_unchecked()
    }

    #[test]
    fn serializability_aborts_on_overwritten_read() {
        let policy = Serializability::new();
        let committed = payload(&[("x", 0)], &[("x", "1")], 5);
        let stale = payload(&[("x", 3)], &[], 0);
        assert_eq!(policy.certify(&[&committed], &stale), Decision::Abort);
        let fresh = payload(&[("x", 5)], &[], 0);
        assert_eq!(policy.certify(&[&committed], &fresh), Decision::Commit);
    }

    #[test]
    fn serializability_commit_on_disjoint_keys() {
        let policy = Serializability::new();
        let committed = payload(&[("a", 0)], &[("a", "1")], 2);
        let unrelated = payload(&[("b", 0)], &[("b", "2")], 3);
        assert_eq!(policy.certify(&[&committed], &unrelated), Decision::Commit);
    }

    #[test]
    fn serializability_gs_blocks_read_write_and_write_read() {
        let certifier = SerializabilityShard;
        let pending_writer = payload(&[("x", 0)], &[("x", "1")], 2);
        let reader = payload(&[("x", 0)], &[], 0);
        // Reader of an object written by a pending transaction is blocked.
        assert_eq!(
            certifier.certify_prepared(&[&pending_writer], &reader),
            Decision::Abort
        );
        // Writer of an object read by a pending transaction is blocked.
        let pending_reader = payload(&[("y", 0)], &[], 0);
        let writer = payload(&[("y", 0)], &[("y", "9")], 3);
        assert_eq!(
            certifier.certify_prepared(&[&pending_reader], &writer),
            Decision::Abort
        );
        // Disjoint transactions pass.
        let other = payload(&[("z", 0)], &[("z", "1")], 1);
        assert_eq!(
            certifier.certify_prepared(&[&pending_writer], &other),
            Decision::Commit
        );
    }

    #[test]
    fn write_conflict_ignores_read_write_conflicts() {
        let policy = WriteConflict::new();
        let committed = payload(&[("x", 0)], &[("x", "1")], 5);
        // A pure reader of a stale version still commits under write-conflict.
        let stale_reader = payload(&[("x", 3)], &[], 0);
        assert_eq!(policy.certify(&[&committed], &stale_reader), Decision::Commit);
        // A stale writer of the same key aborts.
        let stale_writer = payload(&[("x", 3)], &[("x", "2")], 4);
        assert_eq!(policy.certify(&[&committed], &stale_writer), Decision::Abort);
    }

    #[test]
    fn write_conflict_gs_blocks_only_write_write() {
        let certifier = WriteConflictShard;
        let pending = payload(&[("x", 0)], &[("x", "1")], 2);
        let reader = payload(&[("x", 0)], &[], 0);
        assert_eq!(
            certifier.certify_prepared(&[&pending], &reader),
            Decision::Commit
        );
        let writer = payload(&[("x", 0)], &[("x", "2")], 3);
        assert_eq!(
            certifier.certify_prepared(&[&pending], &writer),
            Decision::Abort
        );
    }

    #[test]
    fn vote_meets_both_functions() {
        let certifier = SerializabilityShard;
        let committed = payload(&[("x", 0)], &[("x", "1")], 5);
        let pending = payload(&[("y", 0)], &[("y", "1")], 6);
        // Transaction conflicting only with the committed set.
        let t1 = payload(&[("x", 2)], &[], 0);
        assert_eq!(certifier.vote(&[&committed], &[], &t1), Decision::Abort);
        // Transaction conflicting only with the prepared set.
        let t2 = payload(&[("y", 0)], &[], 0);
        assert_eq!(certifier.vote(&[], &[&pending], &t2), Decision::Abort);
        // Transaction conflicting with neither.
        let t3 = payload(&[("z", 0)], &[], 0);
        assert_eq!(
            certifier.vote(&[&committed], &[&pending], &t3),
            Decision::Commit
        );
    }

    #[test]
    fn empty_payload_always_commits() {
        let committed = payload(&[("x", 0)], &[("x", "1")], 5);
        assert!(properties::empty_payload_commits(
            &SerializabilityShard,
            &[&committed]
        ));
        assert!(properties::empty_payload_commits(
            &WriteConflictShard,
            &[&committed]
        ));
    }

    #[test]
    fn distributivity_on_examples() {
        let policy = Serializability::new();
        let c1 = payload(&[("x", 0)], &[("x", "1")], 2);
        let c2 = payload(&[("y", 0)], &[("y", "1")], 3);
        let t = payload(&[("x", 0), ("y", 3)], &[], 0);
        assert!(properties::distributive_global(&policy, &[&c1], &[&c2], &t));
        let certifier = policy.shard_certifier(ShardId::new(0));
        assert!(properties::distributive_shard_committed(
            &*certifier,
            &[&c1],
            &[&c2],
            &t
        ));
        assert!(properties::distributive_shard_prepared(
            &*certifier,
            &[&c1],
            &[&c2],
            &t
        ));
    }

    #[test]
    fn matching_on_examples() {
        let policy = Serializability::new();
        let sharding = HashSharding::new(3);
        let c1 = payload(&[("x", 0)], &[("x", "1")], 2);
        let c2 = payload(&[("y", 0)], &[("y", "1")], 3);
        let conflicting = payload(&[("x", 0)], &[], 0);
        let clean = payload(&[("x", 2), ("y", 3)], &[], 0);
        assert!(properties::matching(&policy, &sharding, &[&c1, &c2], &conflicting));
        assert!(properties::matching(&policy, &sharding, &[&c1, &c2], &clean));
    }

    #[test]
    fn gs_no_weaker_and_commutation_on_examples() {
        let certifier = SerializabilityShard;
        let pending = payload(&[("x", 0)], &[("x", "1")], 2);
        let candidate = payload(&[("y", 0)], &[("y", "2")], 3);
        assert!(properties::prepared_no_weaker(&certifier, &[&pending], &candidate));
        assert!(properties::commutation(&certifier, &pending, &candidate));
    }

    #[test]
    fn policy_names() {
        assert_eq!(Serializability::new().name(), "serializability");
        assert_eq!(WriteConflict::new().name(), "write-conflict");
        let shared: Arc<dyn CertificationPolicy> = Serializability::shared();
        assert_eq!(shared.name(), "serializability");
    }
}
