//! Certification functions: the concurrency-control policy of the TCS.
//!
//! A Transaction Certification Service is specified by a *certification
//! function* `f : 2^L × L → D` mapping the set of previously committed payloads
//! and a candidate payload to a commit/abort decision (§2). Sharded
//! implementations additionally use *shard-local* certification functions
//! `f_s` (against committed transactions) and `g_s` (against transactions
//! prepared to commit), which must *match* `f` and satisfy the distributivity
//! and commutation properties (1), (3), (4) and (5) of the paper.
//!
//! This module defines:
//!
//! * [`CertificationPolicy`] — the trait bundling `f`, `f_s` and `g_s`,
//!   parametric in the isolation level (the protocols in `ratc-core`,
//!   `ratc-rdma` and `ratc-baseline` are generic over it);
//! * [`Serializability`] — the paper's example policy (equation (2) and the
//!   shard-local functions of §2), providing classical optimistic
//!   serializability with read/write-lock style `g_s`;
//! * [`WriteConflict`] — a weaker, snapshot-isolation-flavoured policy that
//!   only detects write-write conflicts, used to exercise the parametricity of
//!   the protocols;
//! * [`properties`] — executable versions of the paper's required properties,
//!   used by the property-based test suites;
//! * [`IndexedCertifier`] and its implementations — *incremental* certifiers
//!   answering the per-transaction vote `f_s(L1, l) ⊓ g_s(L2, l)` in
//!   O(|payload|) instead of rescanning the whole certification log.
//!
//! # Incremental certification
//!
//! The pure functions above are *set-based*: they take the full sets `L1`
//! (committed payloads) and `L2` (prepared payloads) on every call, which
//! makes the per-transaction vote O(|log| · |payload|). The paper's
//! distributivity property (1) — `f_s(L ∪ L', l) = f_s(L, l) ⊓ f_s(L', l)` —
//! is exactly what makes an incremental formulation sound: a distributive
//! certification function is determined by its behaviour on singleton sets,
//! so a summary that can answer "does `l` conflict with *some* element of
//! `L`?" is equivalent to folding `⊓` over the whole set. [`IndexedCertifier`]
//! exploits this with per-key summaries:
//!
//! * `f_s` (against committed transactions) is answered by a map from key to
//!   the *newest committed writer version*; taking the maximum over writers is
//!   sound precisely because the singleton checks only compare against each
//!   writer's commit version, so only the newest writer can matter.
//! * `g_s` (against prepared-to-commit transactions) is answered by a
//!   read/write lock table with reference counts, mirroring the lock-based
//!   reading of `g_s` in §2; a reference count reaches zero exactly when no
//!   prepared transaction holds the corresponding lock, so membership in the
//!   table coincides with the existential over `L2`.
//!
//! Commutation (5) and "`g_s` no weaker than `f_s`" (4) are properties of the
//! per-payload checks themselves and are untouched by how the sets are
//! summarised; the differential test-suite in `ratc-spec` checks all of this
//! vote-for-vote against the set-based reference on randomized schedules.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::decision::Decision;
use crate::ids::{Key, Position, ShardId, Version};
use crate::payload::Payload;
use crate::sharding::ShardMap;

/// A certifier for a single shard: the pair `(f_s, g_s)` of shard-local
/// certification functions.
///
/// All payloads passed to these methods are expected to be already restricted
/// to the shard (`l | s`); the shard leaders in the commit protocols only ever
/// store restricted payloads, so this is the natural calling convention.
pub trait ShardCertifier: fmt::Debug + Send + Sync {
    /// The shard-local function `f_s(L, l)`: certifies `payload` against the
    /// (shard-restricted) payloads of previously *committed* transactions.
    fn certify_committed(&self, committed: &[&Payload], payload: &Payload) -> Decision;

    /// The shard-local function `g_s(L, l)`: certifies `payload` against the
    /// (shard-restricted) payloads of transactions *prepared to commit* but not
    /// yet decided.
    fn certify_prepared(&self, prepared: &[&Payload], payload: &Payload) -> Decision;

    /// The leader's vote of line 12 of Figure 1:
    /// `f_s(L1, l) ⊓ g_s(L2, l)`.
    fn vote(&self, committed: &[&Payload], prepared: &[&Payload], payload: &Payload) -> Decision {
        self.certify_committed(committed, payload)
            .meet(self.certify_prepared(prepared, payload))
    }
}

/// A certification policy: the global function `f` together with a factory of
/// shard-local certifiers, encapsulating the concurrency-control policy for a
/// desired isolation level.
///
/// Implementations must satisfy the paper's properties (checked at runtime by
/// [`properties`] and by the property-based tests):
///
/// * distributivity (1) of `f`, `f_s` and `g_s`,
/// * matching (3) between `f` and the family `f_s`,
/// * `g_s` no weaker than `f_s` (4),
/// * commutation (5) between `g_s` and `f_s`,
/// * `f_s(L, ε) = commit` for the empty payload.
pub trait CertificationPolicy: fmt::Debug + Send + Sync {
    /// The global certification function `f(L, l)`.
    fn certify(&self, committed: &[&Payload], payload: &Payload) -> Decision;

    /// Returns the shard-local certifier `(f_s, g_s)` for `shard`.
    fn shard_certifier(&self, shard: ShardId) -> Arc<dyn ShardCertifier>;

    /// Returns an *incremental* certifier for `shard`, answering the leader's
    /// vote in O(|payload|) (see the module docs).
    ///
    /// The default implementation wraps [`CertificationPolicy::shard_certifier`]
    /// in a [`MirrorCertifier`], which is correct for any policy but keeps the
    /// set-based O(|log|) cost; policies whose certification functions admit a
    /// per-key summary (both built-in policies do) override this with a true
    /// index.
    fn indexed_certifier(&self, shard: ShardId) -> Box<dyn IndexedCertifier> {
        Box::new(MirrorCertifier::new(self.shard_certifier(shard)))
    }

    /// A short human-readable name for reports and benchmark output.
    fn name(&self) -> &'static str;
}

/// Convenience: a `CertificationPolicy` behind an `Arc` is itself usable as a
/// policy, so protocol components can cheaply share one.
impl CertificationPolicy for Arc<dyn CertificationPolicy> {
    fn certify(&self, committed: &[&Payload], payload: &Payload) -> Decision {
        (**self).certify(committed, payload)
    }

    fn shard_certifier(&self, shard: ShardId) -> Arc<dyn ShardCertifier> {
        (**self).shard_certifier(shard)
    }

    fn indexed_certifier(&self, shard: ShardId) -> Box<dyn IndexedCertifier> {
        (**self).indexed_certifier(shard)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

// ---------------------------------------------------------------------------
// Serializability (the paper's running example)
// ---------------------------------------------------------------------------

/// The classical optimistic-concurrency-control policy for serializability
/// (equation (2) of the paper and its shard-local counterparts).
///
/// * `f` / `f_s`: a transaction commits iff none of the versions it read has
///   been overwritten by a committed transaction (`V'_c ≤ v` for every
///   committed writer of a read object).
/// * `g_s`: a transaction aborts if it read an object written by a
///   prepared-to-commit transaction, or writes an object read by one —
///   mirroring read/write lock acquisition in typical implementations.
///
/// # Example
///
/// ```
/// use ratc_types::prelude::*;
/// let policy = Serializability::new();
/// let committed = Payload::builder()
///     .read(Key::new("x"), Version::new(0))
///     .write(Key::new("x"), Value::from("1"))
///     .commit_version(Version::new(1))
///     .build()?;
/// // A transaction that read x at version 0 conflicts with the committed writer.
/// let stale = Payload::builder().read(Key::new("x"), Version::new(0)).build()?;
/// assert_eq!(policy.certify(&[&committed], &stale), Decision::Abort);
/// // Reading the new version is fine.
/// let fresh = Payload::builder().read(Key::new("x"), Version::new(1)).build()?;
/// assert_eq!(policy.certify(&[&fresh.clone()], &fresh), Decision::Commit);
/// # Ok::<(), PayloadError>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Serializability;

impl Serializability {
    /// Creates the serializability policy.
    pub fn new() -> Self {
        Serializability
    }

    /// Returns the policy as a shareable trait object.
    pub fn shared() -> Arc<dyn CertificationPolicy> {
        Arc::new(Serializability)
    }

    fn no_read_overwritten(committed: &[&Payload], payload: &Payload) -> Decision {
        for (key, read_version) in payload.reads() {
            for other in committed {
                if other.writes_key(key) && other.commit_version() > read_version {
                    return Decision::Abort;
                }
            }
        }
        Decision::Commit
    }
}

impl CertificationPolicy for Serializability {
    fn certify(&self, committed: &[&Payload], payload: &Payload) -> Decision {
        Self::no_read_overwritten(committed, payload)
    }

    fn shard_certifier(&self, _shard: ShardId) -> Arc<dyn ShardCertifier> {
        Arc::new(SerializabilityShard)
    }

    fn indexed_certifier(&self, _shard: ShardId) -> Box<dyn IndexedCertifier> {
        Box::new(IndexedSerializability::default())
    }

    fn name(&self) -> &'static str {
        "serializability"
    }
}

/// Shard-local certifier of [`Serializability`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SerializabilityShard;

impl ShardCertifier for SerializabilityShard {
    fn certify_committed(&self, committed: &[&Payload], payload: &Payload) -> Decision {
        Serializability::no_read_overwritten(committed, payload)
    }

    fn certify_prepared(&self, prepared: &[&Payload], payload: &Payload) -> Decision {
        // g_s: abort if (i) payload read an object written by a prepared
        // transaction, or (ii) payload writes an object read by a prepared
        // transaction (the lock-based check of §2).
        for other in prepared {
            for (key, _) in payload.reads() {
                if other.writes_key(key) {
                    return Decision::Abort;
                }
            }
            for (key, _) in payload.writes() {
                if other.reads_key(key) {
                    return Decision::Abort;
                }
            }
        }
        Decision::Commit
    }
}

// ---------------------------------------------------------------------------
// Write-conflict (snapshot-isolation flavoured) policy
// ---------------------------------------------------------------------------

/// A weaker policy that only detects write-write conflicts
/// ("first committer wins"), in the style of snapshot isolation.
///
/// * `f` / `f_s`: a transaction commits iff, for every object it *writes*, no
///   committed transaction has written that object after the version the
///   transaction read.
/// * `g_s`: a transaction aborts if a prepared-to-commit transaction writes any
///   object it also writes.
///
/// The policy exists to exercise the protocols' parametricity in the isolation
/// level: everything in `ratc-core`/`ratc-rdma`/`ratc-baseline` works
/// identically with either policy.
#[derive(Debug, Clone, Copy, Default)]
pub struct WriteConflict;

impl WriteConflict {
    /// Creates the write-conflict policy.
    pub fn new() -> Self {
        WriteConflict
    }

    /// Returns the policy as a shareable trait object.
    pub fn shared() -> Arc<dyn CertificationPolicy> {
        Arc::new(WriteConflict)
    }

    fn no_write_write_conflict(committed: &[&Payload], payload: &Payload) -> Decision {
        for (key, _) in payload.writes() {
            let read_version = payload
                .read_version(key)
                .unwrap_or(crate::ids::Version::ZERO);
            for other in committed {
                if other.writes_key(key) && other.commit_version() > read_version {
                    return Decision::Abort;
                }
            }
        }
        Decision::Commit
    }
}

impl CertificationPolicy for WriteConflict {
    fn certify(&self, committed: &[&Payload], payload: &Payload) -> Decision {
        Self::no_write_write_conflict(committed, payload)
    }

    fn shard_certifier(&self, _shard: ShardId) -> Arc<dyn ShardCertifier> {
        Arc::new(WriteConflictShard)
    }

    fn indexed_certifier(&self, _shard: ShardId) -> Box<dyn IndexedCertifier> {
        Box::new(IndexedWriteConflict::default())
    }

    fn name(&self) -> &'static str {
        "write-conflict"
    }
}

/// Shard-local certifier of [`WriteConflict`].
#[derive(Debug, Clone, Copy, Default)]
pub struct WriteConflictShard;

impl ShardCertifier for WriteConflictShard {
    fn certify_committed(&self, committed: &[&Payload], payload: &Payload) -> Decision {
        WriteConflict::no_write_write_conflict(committed, payload)
    }

    fn certify_prepared(&self, prepared: &[&Payload], payload: &Payload) -> Decision {
        for other in prepared {
            for (key, _) in payload.writes() {
                if other.writes_key(key) {
                    return Decision::Abort;
                }
            }
        }
        Decision::Commit
    }
}

// ---------------------------------------------------------------------------
// Incremental indexed certification
// ---------------------------------------------------------------------------

/// A stateful, incremental shard certifier: the `(f_s, g_s)` pair evaluated
/// against *internally maintained* committed/prepared sets instead of slices
/// passed at every call.
///
/// The owner (normally `ratc-core`'s `CertificationLog`) reports state
/// transitions of the certification order:
///
/// * [`IndexedCertifier::prepare`] — a transaction was appended (or stored at
///   a follower) in the *prepared* phase with a commit vote; it enters `L2`.
/// * [`IndexedCertifier::release`] — the transaction at `pos` was decided (or
///   its slot was otherwise retired); it leaves `L2`.
/// * [`IndexedCertifier::apply_committed`] — the transaction at `pos` was
///   decided *commit*; its payload enters `L1`.
///
/// All three transitions are **idempotent per position**: reporting the same
/// transition twice for the same `pos` is a no-op. This matters because
/// decisions can be re-delivered by recovery coordinators and the baseline's
/// Paxos learners observe chosen commands through two code paths. Transitions
/// may also arrive out of order across positions (followers persist votes in
/// coordinator order, not log order); the certification functions are
/// set-based, so only membership — never arrival order — affects votes.
///
/// Implementations must agree vote-for-vote with the set-based
/// [`ShardCertifier`] of the same policy; `ratc-spec`'s differential suite
/// enforces this on randomized schedules with out-of-order decides and holes.
pub trait IndexedCertifier: fmt::Debug + Send + Sync {
    /// Adds the payload of the transaction decided *commit* at `pos` to the
    /// committed set `L1`.
    fn apply_committed(&mut self, pos: Position, payload: &Payload);

    /// Seeds the committed summary `L1` with a checkpoint *residue* entry: the
    /// newest committed writer `version` of `key`, without the original
    /// payload.
    ///
    /// Used when a certification log installs a truncated history
    /// (checkpoint + suffix): the payloads of truncated transactions are
    /// gone, but by distributivity (property (1)) the per-key newest-writer
    /// maxima are all `f_s` ever needs, so an index rebuilt from the residue
    /// plus the retained suffix votes identically to one that saw the whole
    /// history.
    ///
    /// # Soundness precondition
    ///
    /// This compaction is exact only for policies whose `f_s` depends on the
    /// committed set solely through each key's *newest committed writer
    /// version* — true for both built-in policies ([`Serializability`] and
    /// [`WriteConflict`]), whose singleton checks compare a per-key version
    /// with `>`. A policy whose `f_s` inspects anything else about committed
    /// payloads (written values, read sets, writer counts, …) loses
    /// information under this summary and must not be combined with log
    /// truncation unless it overrides the residue handling with a faithful
    /// summary of its own.
    fn apply_committed_residue(&mut self, key: &Key, version: Version);

    /// Adds the payload of the commit-voted transaction prepared at `pos` to
    /// the prepared set `L2`.
    fn prepare(&mut self, pos: Position, payload: &Payload);

    /// Removes the transaction prepared at `pos` from the prepared set `L2`
    /// (called when its final decision arrives, whatever it is).
    fn release(&mut self, pos: Position);

    /// The shard-local function `f_s(L1, l)` against the maintained committed
    /// set.
    fn certify_committed(&self, payload: &Payload) -> Decision;

    /// The shard-local function `g_s(L2, l)` against the maintained prepared
    /// set.
    fn certify_prepared(&self, payload: &Payload) -> Decision;

    /// The leader's vote of line 12 of Figure 1: `f_s(L1, l) ⊓ g_s(L2, l)`,
    /// in O(|payload|) for the built-in indexes.
    fn vote(&self, payload: &Payload) -> Decision {
        self.certify_committed(payload)
            .meet(self.certify_prepared(payload))
    }

    /// Clears all maintained state (used when a log is rebuilt wholesale,
    /// e.g. on `NEW_STATE` installation).
    fn reset(&mut self);

    /// Clones the certifier including its maintained state.
    fn clone_box(&self) -> Box<dyn IndexedCertifier>;
}

impl Clone for Box<dyn IndexedCertifier> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Per-key summary of the committed set `L1`: the newest committed writer
/// version of every key.
///
/// Sound for any certification check that compares a per-key version against
/// committed writers of that key with `>` (both built-in policies do): by
/// distributivity the set-based check is a conjunction of singleton checks,
/// and among writers of one key only the maximal commit version can decide
/// the comparison.
#[derive(Debug, Clone, Default)]
struct CommittedWriterIndex {
    newest_writer: HashMap<Key, Version>,
}

impl CommittedWriterIndex {
    /// Folds a committed payload into the per-key maxima. Idempotent by
    /// construction: re-applying the same payload re-folds the same
    /// `max(_, vc)`, so no per-position bookkeeping is needed.
    fn apply(&mut self, _pos: Position, payload: &Payload) {
        let vc = payload.commit_version();
        for (key, _) in payload.writes() {
            self.newest_writer
                .entry(key.clone())
                .and_modify(|v| *v = (*v).max(vc))
                .or_insert(vc);
        }
    }

    /// Folds a checkpoint residue entry: `version` is already a per-key
    /// maximum, so it merges exactly like a writer of that version.
    fn apply_residue(&mut self, key: &Key, version: Version) {
        self.newest_writer
            .entry(key.clone())
            .and_modify(|v| *v = (*v).max(version))
            .or_insert(version);
    }

    fn newest_writer(&self, key: &Key) -> Option<Version> {
        self.newest_writer.get(key).copied()
    }

    fn clear(&mut self) {
        self.newest_writer.clear();
    }
}

/// Reference-counted read/write lock table summarising the prepared set `L2`.
///
/// A key is *read-locked* (resp. *write-locked*) while at least one prepared
/// transaction reads (resp. writes) it; counts make release exact when
/// several prepared transactions touch the same key. The per-position entry
/// remembers which keys to unlock so `release(pos)` needs no access to the
/// original payload, and doubles as the idempotency guard.
#[derive(Debug, Clone, Default)]
struct PreparedLockTable {
    read_locks: HashMap<Key, u32>,
    write_locks: HashMap<Key, u32>,
    by_pos: HashMap<u64, (Vec<Key>, Vec<Key>)>,
}

impl PreparedLockTable {
    /// Acquires locks for the payload prepared at `pos`. `track_reads`
    /// disables the read-lock half for policies whose `g_s` ignores reads.
    fn lock(&mut self, pos: Position, payload: &Payload, track_reads: bool) {
        if self.by_pos.contains_key(&pos.as_u64()) {
            return;
        }
        let mut read_keys = Vec::new();
        let mut write_keys = Vec::new();
        if track_reads {
            for (key, _) in payload.reads() {
                *self.read_locks.entry(key.clone()).or_insert(0) += 1;
                read_keys.push(key.clone());
            }
        }
        for (key, _) in payload.writes() {
            *self.write_locks.entry(key.clone()).or_insert(0) += 1;
            write_keys.push(key.clone());
        }
        self.by_pos.insert(pos.as_u64(), (read_keys, write_keys));
    }

    fn unlock(&mut self, pos: Position) {
        let Some((read_keys, write_keys)) = self.by_pos.remove(&pos.as_u64()) else {
            return;
        };
        for key in read_keys {
            if let Some(count) = self.read_locks.get_mut(&key) {
                *count -= 1;
                if *count == 0 {
                    self.read_locks.remove(&key);
                }
            }
        }
        for key in write_keys {
            if let Some(count) = self.write_locks.get_mut(&key) {
                *count -= 1;
                if *count == 0 {
                    self.write_locks.remove(&key);
                }
            }
        }
    }

    fn read_locked(&self, key: &Key) -> bool {
        self.read_locks.contains_key(key)
    }

    fn write_locked(&self, key: &Key) -> bool {
        self.write_locks.contains_key(key)
    }

    fn clear(&mut self) {
        self.read_locks.clear();
        self.write_locks.clear();
        self.by_pos.clear();
    }
}

/// Incremental certifier for [`Serializability`]: O(|payload|) per vote.
///
/// * `f_s`: abort iff some read version has been overwritten — i.e. the
///   newest committed writer of a read key is above the version read.
/// * `g_s`: abort iff a read key is write-locked or a written key is
///   read-locked by a prepared-to-commit transaction.
#[derive(Debug, Clone, Default)]
pub struct IndexedSerializability {
    committed: CommittedWriterIndex,
    locks: PreparedLockTable,
}

impl IndexedSerializability {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }
}

impl IndexedCertifier for IndexedSerializability {
    fn apply_committed(&mut self, pos: Position, payload: &Payload) {
        self.committed.apply(pos, payload);
    }

    fn apply_committed_residue(&mut self, key: &Key, version: Version) {
        self.committed.apply_residue(key, version);
    }

    fn prepare(&mut self, pos: Position, payload: &Payload) {
        self.locks.lock(pos, payload, true);
    }

    fn release(&mut self, pos: Position) {
        self.locks.unlock(pos);
    }

    fn certify_committed(&self, payload: &Payload) -> Decision {
        for (key, read_version) in payload.reads() {
            if let Some(newest) = self.committed.newest_writer(key) {
                if newest > read_version {
                    return Decision::Abort;
                }
            }
        }
        Decision::Commit
    }

    fn certify_prepared(&self, payload: &Payload) -> Decision {
        for (key, _) in payload.reads() {
            if self.locks.write_locked(key) {
                return Decision::Abort;
            }
        }
        for (key, _) in payload.writes() {
            if self.locks.read_locked(key) {
                return Decision::Abort;
            }
        }
        Decision::Commit
    }

    fn reset(&mut self) {
        self.committed.clear();
        self.locks.clear();
    }

    fn clone_box(&self) -> Box<dyn IndexedCertifier> {
        Box::new(self.clone())
    }
}

/// Incremental certifier for [`WriteConflict`]: O(|payload|) per vote.
///
/// * `f_s`: abort iff some *written* key has a newer committed writer than
///   the version this transaction read for it (first committer wins).
/// * `g_s`: abort iff a written key is write-locked by a prepared-to-commit
///   transaction.
#[derive(Debug, Clone, Default)]
pub struct IndexedWriteConflict {
    committed: CommittedWriterIndex,
    locks: PreparedLockTable,
}

impl IndexedWriteConflict {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }
}

impl IndexedCertifier for IndexedWriteConflict {
    fn apply_committed(&mut self, pos: Position, payload: &Payload) {
        self.committed.apply(pos, payload);
    }

    fn apply_committed_residue(&mut self, key: &Key, version: Version) {
        self.committed.apply_residue(key, version);
    }

    fn prepare(&mut self, pos: Position, payload: &Payload) {
        self.locks.lock(pos, payload, false);
    }

    fn release(&mut self, pos: Position) {
        self.locks.unlock(pos);
    }

    fn certify_committed(&self, payload: &Payload) -> Decision {
        for (key, _) in payload.writes() {
            let read_version = payload.read_version(key).unwrap_or(Version::ZERO);
            if let Some(newest) = self.committed.newest_writer(key) {
                if newest > read_version {
                    return Decision::Abort;
                }
            }
        }
        Decision::Commit
    }

    fn certify_prepared(&self, payload: &Payload) -> Decision {
        for (key, _) in payload.writes() {
            if self.locks.write_locked(key) {
                return Decision::Abort;
            }
        }
        Decision::Commit
    }

    fn reset(&mut self) {
        self.committed.clear();
        self.locks.clear();
    }

    fn clone_box(&self) -> Box<dyn IndexedCertifier> {
        Box::new(self.clone())
    }
}

/// Set-based [`IndexedCertifier`] that mirrors the maintained sets as plain
/// payload collections and delegates every check to the policy's pure
/// [`ShardCertifier`].
///
/// This is the *reference implementation* of the incremental interface: it is
/// trivially correct (it evaluates the paper's functions verbatim) but keeps
/// the O(|log| · |payload|) cost. It serves as
///
/// * the default [`CertificationPolicy::indexed_certifier`] for third-party
///   policies that do not provide a true index, and
/// * the oracle the differential tests compare the real indexes against.
///
/// The "verbatim" claim holds for payloads fed through
/// [`IndexedCertifier::apply_committed`]/[`IndexedCertifier::prepare`].
/// Checkpoint residue ([`IndexedCertifier::apply_committed_residue`]) is
/// necessarily lossy — it stands in one synthetic newest-writer payload per
/// key — so it inherits that method's soundness precondition: exact for
/// newest-writer-version policies (both built-ins), not for policies whose
/// `f_s` inspects more of each committed payload. Such policies must not be
/// combined with log truncation.
#[derive(Debug)]
pub struct MirrorCertifier {
    certifier: Arc<dyn ShardCertifier>,
    committed: std::collections::BTreeMap<u64, Payload>,
    prepared: std::collections::BTreeMap<u64, Payload>,
    /// Checkpoint residue: per key, a synthetic single-writer payload carrying
    /// the newest truncated commit version. By distributivity these stand in
    /// for every truncated committed payload of that key.
    residue: std::collections::BTreeMap<Key, Payload>,
}

impl MirrorCertifier {
    /// Creates an empty mirror delegating to `certifier`.
    pub fn new(certifier: Arc<dyn ShardCertifier>) -> Self {
        MirrorCertifier {
            certifier,
            committed: std::collections::BTreeMap::new(),
            prepared: std::collections::BTreeMap::new(),
            residue: std::collections::BTreeMap::new(),
        }
    }
}

impl Clone for MirrorCertifier {
    fn clone(&self) -> Self {
        MirrorCertifier {
            certifier: Arc::clone(&self.certifier),
            committed: self.committed.clone(),
            prepared: self.prepared.clone(),
            residue: self.residue.clone(),
        }
    }
}

impl IndexedCertifier for MirrorCertifier {
    fn apply_committed(&mut self, pos: Position, payload: &Payload) {
        self.committed
            .entry(pos.as_u64())
            .or_insert_with(|| payload.clone());
    }

    fn apply_committed_residue(&mut self, key: &Key, version: Version) {
        let stale = self
            .residue
            .get(key)
            .is_some_and(|p| p.commit_version() < version);
        if stale || !self.residue.contains_key(key) {
            let payload = Payload::builder()
                .write(key.clone(), crate::ids::Value::default())
                .commit_version(version)
                .build_unchecked();
            self.residue.insert(key.clone(), payload);
        }
    }

    fn prepare(&mut self, pos: Position, payload: &Payload) {
        self.prepared
            .entry(pos.as_u64())
            .or_insert_with(|| payload.clone());
    }

    fn release(&mut self, pos: Position) {
        self.prepared.remove(&pos.as_u64());
    }

    fn certify_committed(&self, payload: &Payload) -> Decision {
        let refs: Vec<&Payload> = self
            .committed
            .values()
            .chain(self.residue.values())
            .collect();
        self.certifier.certify_committed(&refs, payload)
    }

    fn certify_prepared(&self, payload: &Payload) -> Decision {
        let refs: Vec<&Payload> = self.prepared.values().collect();
        self.certifier.certify_prepared(&refs, payload)
    }

    fn reset(&mut self) {
        self.committed.clear();
        self.prepared.clear();
        self.residue.clear();
    }

    fn clone_box(&self) -> Box<dyn IndexedCertifier> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// Executable property checks
// ---------------------------------------------------------------------------

/// Executable versions of the paper's required properties of certification
/// functions, used by the property-based test suites and by the specification
/// checkers.
pub mod properties {
    use super::*;

    /// Distributivity (1): `f(L1 ∪ L2, l) = f(L1, l) ⊓ f(L2, l)` for the global
    /// function, checked on a concrete split of the committed set.
    pub fn distributive_global<P: CertificationPolicy + ?Sized>(
        policy: &P,
        left: &[&Payload],
        right: &[&Payload],
        payload: &Payload,
    ) -> bool {
        let mut union: Vec<&Payload> = Vec::with_capacity(left.len() + right.len());
        union.extend_from_slice(left);
        union.extend_from_slice(right);
        policy.certify(&union, payload)
            == policy
                .certify(left, payload)
                .meet(policy.certify(right, payload))
    }

    /// Distributivity (1) for the shard-local function `f_s`.
    pub fn distributive_shard_committed(
        certifier: &dyn ShardCertifier,
        left: &[&Payload],
        right: &[&Payload],
        payload: &Payload,
    ) -> bool {
        let mut union: Vec<&Payload> = Vec::with_capacity(left.len() + right.len());
        union.extend_from_slice(left);
        union.extend_from_slice(right);
        certifier.certify_committed(&union, payload)
            == certifier
                .certify_committed(left, payload)
                .meet(certifier.certify_committed(right, payload))
    }

    /// Distributivity (1) for the shard-local function `g_s`.
    pub fn distributive_shard_prepared(
        certifier: &dyn ShardCertifier,
        left: &[&Payload],
        right: &[&Payload],
        payload: &Payload,
    ) -> bool {
        let mut union: Vec<&Payload> = Vec::with_capacity(left.len() + right.len());
        union.extend_from_slice(left);
        union.extend_from_slice(right);
        certifier.certify_prepared(&union, payload)
            == certifier
                .certify_prepared(left, payload)
                .meet(certifier.certify_prepared(right, payload))
    }

    /// Matching (3): `f(L, l) = commit ⟺ ∀s. f_s(L|s, l|s) = commit`,
    /// checked on a concrete committed set and shard map.
    pub fn matching<P, M>(
        policy: &P,
        sharding: &M,
        committed: &[&Payload],
        payload: &Payload,
    ) -> bool
    where
        P: CertificationPolicy + ?Sized,
        M: ShardMap + ?Sized,
    {
        let global = policy.certify(committed, payload);
        let mut all_shards_commit = true;
        for shard in sharding.shards() {
            let certifier = policy.shard_certifier(shard);
            let restricted_committed: Vec<Payload> = committed
                .iter()
                .map(|p| p.restrict(shard, sharding))
                .collect();
            let restricted_refs: Vec<&Payload> = restricted_committed.iter().collect();
            let restricted_payload = payload.restrict(shard, sharding);
            if certifier
                .certify_committed(&restricted_refs, &restricted_payload)
                .is_abort()
            {
                all_shards_commit = false;
            }
        }
        global.is_commit() == all_shards_commit
    }

    /// Property (4): `g_s(L, l) = commit ⇒ f_s(L, l) = commit`.
    pub fn prepared_no_weaker(
        certifier: &dyn ShardCertifier,
        prepared: &[&Payload],
        payload: &Payload,
    ) -> bool {
        !certifier.certify_prepared(prepared, payload).is_commit()
            || certifier.certify_committed(prepared, payload).is_commit()
    }

    /// Property (5): `g_s({l}, l') = commit ⇒ f_s({l'}, l) = commit`.
    pub fn commutation(
        certifier: &dyn ShardCertifier,
        pending: &Payload,
        candidate: &Payload,
    ) -> bool {
        !certifier
            .certify_prepared(&[pending], candidate)
            .is_commit()
            || certifier
                .certify_committed(&[candidate], pending)
                .is_commit()
    }

    /// The empty payload `ε` always certifies to commit against any committed set.
    pub fn empty_payload_commits(certifier: &dyn ShardCertifier, committed: &[&Payload]) -> bool {
        certifier
            .certify_committed(committed, &Payload::empty())
            .is_commit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Key, Value, Version};
    use crate::sharding::HashSharding;

    fn payload(reads: &[(&str, u64)], writes: &[(&str, &str)], vc: u64) -> Payload {
        let mut b = Payload::builder();
        for (k, v) in reads {
            b = b.read(Key::new(*k), Version::new(*v));
        }
        for (k, v) in writes {
            b = b.write(Key::new(*k), Value::from(*v));
        }
        b.commit_version(Version::new(vc)).build_unchecked()
    }

    #[test]
    fn serializability_aborts_on_overwritten_read() {
        let policy = Serializability::new();
        let committed = payload(&[("x", 0)], &[("x", "1")], 5);
        let stale = payload(&[("x", 3)], &[], 0);
        assert_eq!(policy.certify(&[&committed], &stale), Decision::Abort);
        let fresh = payload(&[("x", 5)], &[], 0);
        assert_eq!(policy.certify(&[&committed], &fresh), Decision::Commit);
    }

    #[test]
    fn serializability_commit_on_disjoint_keys() {
        let policy = Serializability::new();
        let committed = payload(&[("a", 0)], &[("a", "1")], 2);
        let unrelated = payload(&[("b", 0)], &[("b", "2")], 3);
        assert_eq!(policy.certify(&[&committed], &unrelated), Decision::Commit);
    }

    #[test]
    fn serializability_gs_blocks_read_write_and_write_read() {
        let certifier = SerializabilityShard;
        let pending_writer = payload(&[("x", 0)], &[("x", "1")], 2);
        let reader = payload(&[("x", 0)], &[], 0);
        // Reader of an object written by a pending transaction is blocked.
        assert_eq!(
            certifier.certify_prepared(&[&pending_writer], &reader),
            Decision::Abort
        );
        // Writer of an object read by a pending transaction is blocked.
        let pending_reader = payload(&[("y", 0)], &[], 0);
        let writer = payload(&[("y", 0)], &[("y", "9")], 3);
        assert_eq!(
            certifier.certify_prepared(&[&pending_reader], &writer),
            Decision::Abort
        );
        // Disjoint transactions pass.
        let other = payload(&[("z", 0)], &[("z", "1")], 1);
        assert_eq!(
            certifier.certify_prepared(&[&pending_writer], &other),
            Decision::Commit
        );
    }

    #[test]
    fn write_conflict_ignores_read_write_conflicts() {
        let policy = WriteConflict::new();
        let committed = payload(&[("x", 0)], &[("x", "1")], 5);
        // A pure reader of a stale version still commits under write-conflict.
        let stale_reader = payload(&[("x", 3)], &[], 0);
        assert_eq!(
            policy.certify(&[&committed], &stale_reader),
            Decision::Commit
        );
        // A stale writer of the same key aborts.
        let stale_writer = payload(&[("x", 3)], &[("x", "2")], 4);
        assert_eq!(
            policy.certify(&[&committed], &stale_writer),
            Decision::Abort
        );
    }

    #[test]
    fn write_conflict_gs_blocks_only_write_write() {
        let certifier = WriteConflictShard;
        let pending = payload(&[("x", 0)], &[("x", "1")], 2);
        let reader = payload(&[("x", 0)], &[], 0);
        assert_eq!(
            certifier.certify_prepared(&[&pending], &reader),
            Decision::Commit
        );
        let writer = payload(&[("x", 0)], &[("x", "2")], 3);
        assert_eq!(
            certifier.certify_prepared(&[&pending], &writer),
            Decision::Abort
        );
    }

    #[test]
    fn vote_meets_both_functions() {
        let certifier = SerializabilityShard;
        let committed = payload(&[("x", 0)], &[("x", "1")], 5);
        let pending = payload(&[("y", 0)], &[("y", "1")], 6);
        // Transaction conflicting only with the committed set.
        let t1 = payload(&[("x", 2)], &[], 0);
        assert_eq!(certifier.vote(&[&committed], &[], &t1), Decision::Abort);
        // Transaction conflicting only with the prepared set.
        let t2 = payload(&[("y", 0)], &[], 0);
        assert_eq!(certifier.vote(&[], &[&pending], &t2), Decision::Abort);
        // Transaction conflicting with neither.
        let t3 = payload(&[("z", 0)], &[], 0);
        assert_eq!(
            certifier.vote(&[&committed], &[&pending], &t3),
            Decision::Commit
        );
    }

    #[test]
    fn empty_payload_always_commits() {
        let committed = payload(&[("x", 0)], &[("x", "1")], 5);
        assert!(properties::empty_payload_commits(
            &SerializabilityShard,
            &[&committed]
        ));
        assert!(properties::empty_payload_commits(
            &WriteConflictShard,
            &[&committed]
        ));
    }

    #[test]
    fn distributivity_on_examples() {
        let policy = Serializability::new();
        let c1 = payload(&[("x", 0)], &[("x", "1")], 2);
        let c2 = payload(&[("y", 0)], &[("y", "1")], 3);
        let t = payload(&[("x", 0), ("y", 3)], &[], 0);
        assert!(properties::distributive_global(&policy, &[&c1], &[&c2], &t));
        let certifier = policy.shard_certifier(ShardId::new(0));
        assert!(properties::distributive_shard_committed(
            &*certifier,
            &[&c1],
            &[&c2],
            &t
        ));
        assert!(properties::distributive_shard_prepared(
            &*certifier,
            &[&c1],
            &[&c2],
            &t
        ));
    }

    #[test]
    fn matching_on_examples() {
        let policy = Serializability::new();
        let sharding = HashSharding::new(3);
        let c1 = payload(&[("x", 0)], &[("x", "1")], 2);
        let c2 = payload(&[("y", 0)], &[("y", "1")], 3);
        let conflicting = payload(&[("x", 0)], &[], 0);
        let clean = payload(&[("x", 2), ("y", 3)], &[], 0);
        assert!(properties::matching(
            &policy,
            &sharding,
            &[&c1, &c2],
            &conflicting
        ));
        assert!(properties::matching(
            &policy,
            &sharding,
            &[&c1, &c2],
            &clean
        ));
    }

    #[test]
    fn gs_no_weaker_and_commutation_on_examples() {
        let certifier = SerializabilityShard;
        let pending = payload(&[("x", 0)], &[("x", "1")], 2);
        let candidate = payload(&[("y", 0)], &[("y", "2")], 3);
        assert!(properties::prepared_no_weaker(
            &certifier,
            &[&pending],
            &candidate
        ));
        assert!(properties::commutation(&certifier, &pending, &candidate));
    }

    /// Replays `(committed, prepared)` into an indexed certifier and checks
    /// its vote against the set-based reference for `candidate`.
    fn assert_indexed_matches_reference(
        policy: &dyn CertificationPolicy,
        committed: &[Payload],
        prepared: &[Payload],
        candidate: &Payload,
    ) {
        let certifier = policy.shard_certifier(ShardId::new(0));
        let mut indexed = policy.indexed_certifier(ShardId::new(0));
        let mut pos = 0u64;
        for p in committed {
            indexed.apply_committed(Position::new(pos), p);
            pos += 1;
        }
        for p in prepared {
            indexed.prepare(Position::new(pos), p);
            pos += 1;
        }
        let committed_refs: Vec<&Payload> = committed.iter().collect();
        let prepared_refs: Vec<&Payload> = prepared.iter().collect();
        assert_eq!(
            indexed.vote(candidate),
            certifier.vote(&committed_refs, &prepared_refs, candidate),
            "indexed vote diverged from reference for {candidate}"
        );
    }

    #[test]
    fn indexed_serializability_matches_reference_on_examples() {
        let committed = vec![
            payload(&[("x", 0)], &[("x", "1")], 5),
            payload(&[("y", 0)], &[("y", "1")], 3),
        ];
        let prepared = vec![payload(&[("z", 0)], &[("z", "2")], 7)];
        for candidate in [
            payload(&[("x", 3)], &[], 0),
            payload(&[("x", 5)], &[], 0),
            payload(&[("z", 0)], &[], 0),
            payload(&[("w", 0)], &[("w", "9")], 9),
            payload(&[("z", 0)], &[("z", "9")], 9),
            Payload::empty(),
        ] {
            assert_indexed_matches_reference(
                &Serializability::new(),
                &committed,
                &prepared,
                &candidate,
            );
            assert_indexed_matches_reference(
                &WriteConflict::new(),
                &committed,
                &prepared,
                &candidate,
            );
        }
    }

    #[test]
    fn indexed_release_drops_locks() {
        let mut indexed = Serializability::new().indexed_certifier(ShardId::new(0));
        let pending = payload(&[("x", 0)], &[("x", "1")], 2);
        indexed.prepare(Position::new(0), &pending);
        let reader = payload(&[("x", 0)], &[], 0);
        assert_eq!(indexed.vote(&reader), Decision::Abort);
        indexed.release(Position::new(0));
        assert_eq!(indexed.vote(&reader), Decision::Commit);
    }

    #[test]
    fn indexed_refcounts_survive_partial_release() {
        let mut indexed = Serializability::new().indexed_certifier(ShardId::new(0));
        let a = payload(&[("x", 0)], &[("x", "1")], 2);
        let b = payload(&[("x", 0)], &[("x", "2")], 3);
        indexed.prepare(Position::new(0), &a);
        indexed.prepare(Position::new(1), &b);
        indexed.release(Position::new(0));
        // b still write-locks x.
        let reader = payload(&[("x", 0)], &[], 0);
        assert_eq!(indexed.vote(&reader), Decision::Abort);
        indexed.release(Position::new(1));
        assert_eq!(indexed.vote(&reader), Decision::Commit);
    }

    #[test]
    fn indexed_transitions_are_idempotent() {
        let mut indexed = Serializability::new().indexed_certifier(ShardId::new(0));
        let pending = payload(&[("x", 0)], &[("x", "1")], 2);
        indexed.prepare(Position::new(0), &pending);
        indexed.prepare(Position::new(0), &pending);
        indexed.release(Position::new(0));
        let reader = payload(&[("x", 0)], &[], 0);
        // A single release suffices even after a duplicated prepare.
        assert_eq!(indexed.vote(&reader), Decision::Commit);
        let committed = payload(&[("y", 0)], &[("y", "1")], 4);
        indexed.apply_committed(Position::new(1), &committed);
        indexed.apply_committed(Position::new(1), &committed);
        let stale = payload(&[("y", 1)], &[], 0);
        assert_eq!(indexed.vote(&stale), Decision::Abort);
    }

    #[test]
    fn indexed_reset_clears_all_state() {
        let mut indexed = WriteConflict::new().indexed_certifier(ShardId::new(0));
        indexed.apply_committed(Position::new(0), &payload(&[("x", 0)], &[("x", "1")], 5));
        indexed.prepare(Position::new(1), &payload(&[("y", 0)], &[("y", "1")], 6));
        indexed.reset();
        let candidate = payload(&[("x", 0), ("y", 0)], &[("x", "2"), ("y", "2")], 9);
        assert_eq!(indexed.vote(&candidate), Decision::Commit);
    }

    #[test]
    fn mirror_certifier_is_reference_equivalent() {
        #[derive(Debug)]
        struct Custom;
        impl CertificationPolicy for Custom {
            fn certify(&self, committed: &[&Payload], payload: &Payload) -> Decision {
                Serializability::new().certify(committed, payload)
            }
            fn shard_certifier(&self, _shard: ShardId) -> Arc<dyn ShardCertifier> {
                Arc::new(SerializabilityShard)
            }
            fn name(&self) -> &'static str {
                "custom"
            }
        }
        // A policy without an override gets the mirror, which must agree with
        // the pure functions.
        let committed = vec![payload(&[("x", 0)], &[("x", "1")], 5)];
        let prepared = vec![payload(&[("y", 0)], &[("y", "1")], 6)];
        for candidate in [payload(&[("x", 2)], &[], 0), payload(&[("y", 0)], &[], 0)] {
            assert_indexed_matches_reference(&Custom, &committed, &prepared, &candidate);
        }
    }

    #[test]
    fn committed_residue_stands_in_for_truncated_payloads() {
        // Seeding an index with the per-key newest-writer residue must vote
        // identically to an index that saw the full committed payload.
        let committed = payload(&[("x", 0)], &[("x", "1")], 5);
        let policies: Vec<Box<dyn CertificationPolicy>> = vec![
            Box::new(Serializability::new()),
            Box::new(WriteConflict::new()),
        ];
        let candidates = [
            payload(&[("x", 3)], &[("x", "2")], 9),
            payload(&[("x", 5)], &[], 0),
            payload(&[("x", 5)], &[("x", "3")], 8),
            payload(&[("y", 0)], &[("y", "2")], 2),
        ];
        for policy in &policies {
            let mut full = policy.indexed_certifier(ShardId::new(0));
            full.apply_committed(Position::new(0), &committed);
            let mut residue = policy.indexed_certifier(ShardId::new(0));
            residue.apply_committed_residue(&Key::new("x"), Version::new(5));
            for candidate in &candidates {
                assert_eq!(
                    full.vote(candidate),
                    residue.vote(candidate),
                    "{}: residue diverged for {candidate}",
                    policy.name()
                );
            }
        }
        // The mirror fallback honours residues too (and keeps per-key maxima).
        let mut mirror =
            MirrorCertifier::new(Serializability::new().shard_certifier(ShardId::new(0)));
        mirror.apply_committed_residue(&Key::new("x"), Version::new(2));
        mirror.apply_committed_residue(&Key::new("x"), Version::new(5));
        assert_eq!(mirror.vote(&payload(&[("x", 3)], &[], 0)), Decision::Abort);
        assert_eq!(mirror.vote(&payload(&[("x", 5)], &[], 0)), Decision::Commit);
    }

    #[test]
    fn indexed_clone_box_preserves_state() {
        let mut indexed = Serializability::new().indexed_certifier(ShardId::new(0));
        indexed.prepare(Position::new(0), &payload(&[("x", 0)], &[("x", "1")], 2));
        let cloned = indexed.clone_box();
        let reader = payload(&[("x", 0)], &[], 0);
        assert_eq!(cloned.vote(&reader), Decision::Abort);
    }

    #[test]
    fn policy_names() {
        assert_eq!(Serializability::new().name(), "serializability");
        assert_eq!(WriteConflict::new().name(), "write-conflict");
        let shared: Arc<dyn CertificationPolicy> = Serializability::shared();
        assert_eq!(shared.name(), "serializability");
    }
}
