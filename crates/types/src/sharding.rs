//! Mapping database objects to shards.
//!
//! The paper assumes a function `shards : T → 2^S` determining the shards that
//! must certify a transaction; in a data store this is derived from which shard
//! manages each object the transaction accesses. This module provides the
//! [`ShardMap`] trait together with a hash-based implementation
//! ([`HashSharding`]) and an explicit table ([`ExplicitSharding`]) used by
//! tests that need full control over object placement.

use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

use serde::{Deserialize, Serialize};

use crate::ids::{Key, ShardId};

/// Determines which shard manages each database object.
///
/// Implementations must be *stable*: the same key always maps to the same
/// shard for the lifetime of the map. (Data migration between shards is out of
/// scope of the paper and of this reproduction.)
pub trait ShardMap {
    /// Returns the shard that manages `key`.
    fn shard_of(&self, key: &Key) -> ShardId;

    /// Returns the total number of shards.
    fn shard_count(&self) -> usize;

    /// Returns all shard identifiers, in ascending order.
    fn shards(&self) -> Vec<ShardId> {
        (0..self.shard_count() as u32).map(ShardId::new).collect()
    }
}

/// Hash partitioning: a key is managed by `hash(key) mod n`.
///
/// # Example
///
/// ```
/// use ratc_types::prelude::*;
/// let m = HashSharding::new(4);
/// let s = m.shard_of(&Key::new("x"));
/// assert!(s.as_usize() < 4);
/// assert_eq!(m.shard_count(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HashSharding {
    shard_count: u32,
}

impl HashSharding {
    /// Creates a hash-based shard map over `shard_count` shards.
    ///
    /// # Panics
    ///
    /// Panics if `shard_count` is zero.
    pub fn new(shard_count: u32) -> Self {
        assert!(shard_count > 0, "shard_count must be positive");
        HashSharding { shard_count }
    }
}

impl ShardMap for HashSharding {
    fn shard_of(&self, key: &Key) -> ShardId {
        let mut hasher = DefaultHasher::new();
        key.as_str().hash(&mut hasher);
        ShardId::new((hasher.finish() % u64::from(self.shard_count)) as u32)
    }

    fn shard_count(&self) -> usize {
        self.shard_count as usize
    }
}

/// An explicit key → shard table with a default shard for unknown keys.
///
/// Useful in tests and in the scripted counter-example reproduction, where a
/// specific placement of objects on shards is required.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExplicitSharding {
    table: BTreeMap<Key, ShardId>,
    default_shard: ShardId,
    shard_count: u32,
}

impl ExplicitSharding {
    /// Creates an explicit shard map over `shard_count` shards; keys not present
    /// in the table map to `default_shard`.
    ///
    /// # Panics
    ///
    /// Panics if `shard_count` is zero or `default_shard` is out of range.
    pub fn new(shard_count: u32, default_shard: ShardId) -> Self {
        assert!(shard_count > 0, "shard_count must be positive");
        assert!(
            default_shard.as_u32() < shard_count,
            "default shard out of range"
        );
        ExplicitSharding {
            table: BTreeMap::new(),
            default_shard,
            shard_count,
        }
    }

    /// Assigns `key` to `shard`.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn assign(&mut self, key: Key, shard: ShardId) -> &mut Self {
        assert!(shard.as_u32() < self.shard_count, "shard out of range");
        self.table.insert(key, shard);
        self
    }

    /// Builder-style variant of [`ExplicitSharding::assign`].
    pub fn with(mut self, key: Key, shard: ShardId) -> Self {
        self.assign(key, shard);
        self
    }
}

impl ShardMap for ExplicitSharding {
    fn shard_of(&self, key: &Key) -> ShardId {
        self.table.get(key).copied().unwrap_or(self.default_shard)
    }

    fn shard_count(&self) -> usize {
        self.shard_count as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_sharding_is_stable_and_in_range() {
        let m = HashSharding::new(8);
        for i in 0..100 {
            let key = Key::new(format!("key-{i}"));
            let s1 = m.shard_of(&key);
            let s2 = m.shard_of(&key);
            assert_eq!(s1, s2);
            assert!(s1.as_usize() < 8);
        }
    }

    #[test]
    fn hash_sharding_spreads_keys() {
        let m = HashSharding::new(4);
        let mut counts = [0usize; 4];
        for i in 0..400 {
            let key = Key::new(format!("key-{i}"));
            counts[m.shard_of(&key).as_usize()] += 1;
        }
        // Every shard should receive a non-trivial share of 400 uniform keys.
        for c in counts {
            assert!(c > 40, "unbalanced sharding: {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "shard_count must be positive")]
    fn zero_shards_is_rejected() {
        let _ = HashSharding::new(0);
    }

    #[test]
    fn explicit_sharding_uses_table_then_default() {
        let m = ExplicitSharding::new(3, ShardId::new(0))
            .with(Key::new("a"), ShardId::new(1))
            .with(Key::new("b"), ShardId::new(2));
        assert_eq!(m.shard_of(&Key::new("a")), ShardId::new(1));
        assert_eq!(m.shard_of(&Key::new("b")), ShardId::new(2));
        assert_eq!(m.shard_of(&Key::new("unknown")), ShardId::new(0));
        assert_eq!(m.shard_count(), 3);
        assert_eq!(m.shards().len(), 3);
    }

    #[test]
    #[should_panic(expected = "shard out of range")]
    fn explicit_sharding_rejects_out_of_range() {
        let mut m = ExplicitSharding::new(2, ShardId::new(0));
        m.assign(Key::new("x"), ShardId::new(5));
    }

    #[test]
    fn shards_lists_all_shards() {
        let m = HashSharding::new(3);
        assert_eq!(
            m.shards(),
            vec![ShardId::new(0), ShardId::new(1), ShardId::new(2)]
        );
    }
}
