//! TCS histories: sequences of `certify` and `decide` actions.
//!
//! The TCS specification (§2) is stated in terms of *histories* — sequences of
//! `certify(t, l)` and `decide(t, d)` actions in which every transaction is
//! certified at most once and every decision responds to exactly one preceding
//! certification. This module provides the history record type shared by all
//! TCS implementations in the workspace; the correctness *checkers* over
//! histories live in the `ratc-spec` crate.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::decision::Decision;
use crate::ids::TxId;
use crate::payload::Payload;

/// A single action of a TCS history.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum HistoryAction {
    /// A client submitted transaction `tx` with `payload` for certification.
    Certify {
        /// The transaction identifier.
        tx: TxId,
        /// The payload submitted for certification.
        payload: Payload,
    },
    /// The service responded with `decision` for transaction `tx`.
    Decide {
        /// The transaction identifier.
        tx: TxId,
        /// The decision returned to the client.
        decision: Decision,
    },
}

impl HistoryAction {
    /// The transaction this action concerns.
    pub fn tx(&self) -> TxId {
        match self {
            HistoryAction::Certify { tx, .. } | HistoryAction::Decide { tx, .. } => *tx,
        }
    }

    /// Returns `true` if this is a `certify` action.
    pub fn is_certify(&self) -> bool {
        matches!(self, HistoryAction::Certify { .. })
    }

    /// Returns `true` if this is a `decide` action.
    pub fn is_decide(&self) -> bool {
        matches!(self, HistoryAction::Decide { .. })
    }
}

impl fmt::Display for HistoryAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistoryAction::Certify { tx, payload } => write!(f, "certify({tx}, {payload})"),
            HistoryAction::Decide { tx, decision } => write!(f, "decide({tx}, {decision})"),
        }
    }
}

/// Errors detected while *recording* a history (structural violations of the
/// history well-formedness conditions of §2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum HistoryError {
    /// The same transaction was submitted for certification twice.
    DuplicateCertify(TxId),
    /// A decision was recorded for a transaction that was never certified.
    DecideWithoutCertify(TxId),
    /// Two *different* decisions were recorded for the same transaction.
    ///
    /// Recording the same decision twice is tolerated (the protocols may
    /// deliver duplicate `DECISION` messages); contradictory decisions are a
    /// safety violation (Invariant 4b).
    ContradictoryDecisions {
        /// The transaction with contradictory decisions.
        tx: TxId,
        /// The decision recorded first.
        first: Decision,
        /// The conflicting decision recorded later.
        second: Decision,
    },
}

impl fmt::Display for HistoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistoryError::DuplicateCertify(tx) => {
                write!(f, "transaction {tx} certified more than once")
            }
            HistoryError::DecideWithoutCertify(tx) => {
                write!(f, "decision for {tx} without a preceding certify")
            }
            HistoryError::ContradictoryDecisions { tx, first, second } => write!(
                f,
                "contradictory decisions for {tx}: {first} and then {second}"
            ),
        }
    }
}

impl std::error::Error for HistoryError {}

/// A recorded TCS history.
///
/// Histories are recorded by the client side of every TCS implementation in
/// the workspace and consumed by the checkers in `ratc-spec` and by the
/// experiment harnesses (which derive latency and abort-rate metrics from
/// them).
///
/// # Example
///
/// ```
/// use ratc_types::prelude::*;
///
/// let mut h = TcsHistory::new();
/// let p = Payload::builder().read(Key::new("x"), Version::new(0)).build()?;
/// h.record_certify(TxId::new(1), p)?;
/// h.record_decide(TxId::new(1), Decision::Commit)?;
/// assert!(h.is_complete());
/// assert_eq!(h.committed().count(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TcsHistory {
    actions: Vec<HistoryAction>,
    payloads: BTreeMap<TxId, Payload>,
    decisions: BTreeMap<TxId, Decision>,
}

impl TcsHistory {
    /// Creates an empty history.
    pub fn new() -> Self {
        TcsHistory::default()
    }

    /// Records a `certify(tx, payload)` action.
    ///
    /// # Errors
    ///
    /// Returns [`HistoryError::DuplicateCertify`] if `tx` was already certified.
    pub fn record_certify(&mut self, tx: TxId, payload: Payload) -> Result<(), HistoryError> {
        if self.payloads.contains_key(&tx) {
            return Err(HistoryError::DuplicateCertify(tx));
        }
        self.payloads.insert(tx, payload.clone());
        self.actions.push(HistoryAction::Certify { tx, payload });
        Ok(())
    }

    /// Records a `decide(tx, decision)` action.
    ///
    /// Duplicate identical decisions are ignored (the protocols may deliver the
    /// decision to the client more than once).
    ///
    /// # Errors
    ///
    /// Returns an error if `tx` was never certified or if a *different*
    /// decision was already recorded for it.
    pub fn record_decide(&mut self, tx: TxId, decision: Decision) -> Result<(), HistoryError> {
        if !self.payloads.contains_key(&tx) {
            return Err(HistoryError::DecideWithoutCertify(tx));
        }
        if let Some(existing) = self.decisions.get(&tx) {
            if *existing != decision {
                return Err(HistoryError::ContradictoryDecisions {
                    tx,
                    first: *existing,
                    second: decision,
                });
            }
            return Ok(());
        }
        self.decisions.insert(tx, decision);
        self.actions.push(HistoryAction::Decide { tx, decision });
        Ok(())
    }

    /// The recorded actions, in order.
    pub fn actions(&self) -> &[HistoryAction] {
        &self.actions
    }

    /// The payload submitted for `tx`, if it was certified.
    pub fn payload(&self, tx: TxId) -> Option<&Payload> {
        self.payloads.get(&tx)
    }

    /// The decision recorded for `tx`, if any.
    pub fn decision(&self, tx: TxId) -> Option<Decision> {
        self.decisions.get(&tx).copied()
    }

    /// Iterates over all certified transactions with their payloads.
    pub fn certified(&self) -> impl Iterator<Item = (TxId, &Payload)> + '_ {
        self.payloads.iter().map(|(tx, p)| (*tx, p))
    }

    /// Iterates over the transactions that committed in this history.
    pub fn committed(&self) -> impl Iterator<Item = TxId> + '_ {
        self.decisions
            .iter()
            .filter(|(_, d)| d.is_commit())
            .map(|(tx, _)| *tx)
    }

    /// Iterates over the transactions that aborted in this history.
    pub fn aborted(&self) -> impl Iterator<Item = TxId> + '_ {
        self.decisions
            .iter()
            .filter(|(_, d)| d.is_abort())
            .map(|(tx, _)| *tx)
    }

    /// Iterates over certified transactions that have no decision yet.
    pub fn undecided(&self) -> impl Iterator<Item = TxId> + '_ {
        self.payloads
            .keys()
            .filter(|tx| !self.decisions.contains_key(tx))
            .copied()
    }

    /// Number of certified transactions.
    pub fn certify_count(&self) -> usize {
        self.payloads.len()
    }

    /// Number of decided transactions.
    pub fn decide_count(&self) -> usize {
        self.decisions.len()
    }

    /// Returns `true` if every certified transaction has a decision.
    pub fn is_complete(&self) -> bool {
        self.payloads.len() == self.decisions.len()
    }

    /// Merges another history into this one, preserving the relative order of
    /// `other`'s actions after this history's actions.
    ///
    /// Used by experiment drivers that collect one history per client.
    ///
    /// # Errors
    ///
    /// Propagates the same structural errors as the `record_*` methods.
    pub fn merge(&mut self, other: &TcsHistory) -> Result<(), HistoryError> {
        for action in other.actions() {
            match action {
                HistoryAction::Certify { tx, payload } => {
                    self.record_certify(*tx, payload.clone())?;
                }
                HistoryAction::Decide { tx, decision } => {
                    self.record_decide(*tx, *decision)?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Key, Version};

    fn payload(key: &str) -> Payload {
        Payload::builder()
            .read(Key::new(key), Version::new(0))
            .build()
            .expect("well-formed")
    }

    #[test]
    fn record_and_query() {
        let mut h = TcsHistory::new();
        h.record_certify(TxId::new(1), payload("x")).unwrap();
        h.record_certify(TxId::new(2), payload("y")).unwrap();
        h.record_decide(TxId::new(1), Decision::Commit).unwrap();
        assert_eq!(h.certify_count(), 2);
        assert_eq!(h.decide_count(), 1);
        assert!(!h.is_complete());
        assert_eq!(h.decision(TxId::new(1)), Some(Decision::Commit));
        assert_eq!(h.decision(TxId::new(2)), None);
        assert_eq!(h.undecided().collect::<Vec<_>>(), vec![TxId::new(2)]);
        assert_eq!(h.committed().count(), 1);
        assert_eq!(h.aborted().count(), 0);
        assert!(h.payload(TxId::new(1)).is_some());
    }

    #[test]
    fn duplicate_certify_is_rejected() {
        let mut h = TcsHistory::new();
        h.record_certify(TxId::new(1), payload("x")).unwrap();
        assert_eq!(
            h.record_certify(TxId::new(1), payload("x")),
            Err(HistoryError::DuplicateCertify(TxId::new(1)))
        );
    }

    #[test]
    fn decide_without_certify_is_rejected() {
        let mut h = TcsHistory::new();
        assert_eq!(
            h.record_decide(TxId::new(7), Decision::Abort),
            Err(HistoryError::DecideWithoutCertify(TxId::new(7)))
        );
    }

    #[test]
    fn duplicate_identical_decisions_are_tolerated() {
        let mut h = TcsHistory::new();
        h.record_certify(TxId::new(1), payload("x")).unwrap();
        h.record_decide(TxId::new(1), Decision::Commit).unwrap();
        h.record_decide(TxId::new(1), Decision::Commit).unwrap();
        assert_eq!(h.decide_count(), 1);
        assert_eq!(h.actions().len(), 2);
    }

    #[test]
    fn contradictory_decisions_are_a_safety_violation() {
        let mut h = TcsHistory::new();
        h.record_certify(TxId::new(1), payload("x")).unwrap();
        h.record_decide(TxId::new(1), Decision::Commit).unwrap();
        let err = h.record_decide(TxId::new(1), Decision::Abort).unwrap_err();
        assert!(matches!(err, HistoryError::ContradictoryDecisions { .. }));
    }

    #[test]
    fn merge_combines_histories() {
        let mut a = TcsHistory::new();
        a.record_certify(TxId::new(1), payload("x")).unwrap();
        a.record_decide(TxId::new(1), Decision::Commit).unwrap();
        let mut b = TcsHistory::new();
        b.record_certify(TxId::new(2), payload("y")).unwrap();
        b.record_decide(TxId::new(2), Decision::Abort).unwrap();
        a.merge(&b).unwrap();
        assert_eq!(a.certify_count(), 2);
        assert!(a.is_complete());
        assert_eq!(a.aborted().collect::<Vec<_>>(), vec![TxId::new(2)]);
    }

    #[test]
    fn display_of_actions() {
        let action = HistoryAction::Certify {
            tx: TxId::new(3),
            payload: Payload::empty(),
        };
        assert_eq!(action.to_string(), "certify(t3, ε)");
        assert_eq!(action.tx(), TxId::new(3));
        assert!(action.is_certify());
        let d = HistoryAction::Decide {
            tx: TxId::new(3),
            decision: Decision::Abort,
        };
        assert!(d.is_decide());
        assert_eq!(d.to_string(), "decide(t3, abort)");
    }
}
