//! A lightweight item parser on top of [`crate::lexer`].
//!
//! Recovers exactly the shapes the protocol-surface lints need:
//!
//! * `enum` declarations with their variant names and declaration lines;
//! * `match` expressions with per-arm pattern token slices (guards split
//!   off at the top-level `if`);
//! * the token index ranges covered by `#[cfg(test)] mod … { … }` blocks,
//!   so lints can skip test-only code (the repo keeps unit tests in such
//!   modules inside the same file).
//!
//! This is not a general Rust parser: it tracks bracket depth and a handful
//! of keywords, which is enough because lints only need variant/arm
//! *vocabulary*, not expression structure.

use crate::lexer::{Tok, TokKind};

/// One variant of a parsed enum.
#[derive(Debug, Clone)]
pub struct VariantDef {
    /// Variant name.
    pub name: String,
    /// 1-based line of the variant declaration.
    pub line: u32,
}

/// A parsed `enum` item.
#[derive(Debug, Clone)]
pub struct EnumDef {
    /// Enum name.
    pub name: String,
    /// 1-based line of the `enum` keyword.
    pub line: u32,
    /// Variants in declaration order.
    pub variants: Vec<VariantDef>,
}

/// One arm of a parsed `match`.
#[derive(Debug, Clone)]
pub struct MatchArm {
    /// Pattern tokens (guard excluded).
    pub pattern: Vec<Tok>,
    /// `true` if the arm carries an `if` guard.
    pub has_guard: bool,
    /// 1-based line the pattern starts on.
    pub line: u32,
}

/// A parsed `match` expression.
#[derive(Debug, Clone)]
pub struct MatchExpr {
    /// 1-based line of the `match` keyword.
    pub line: u32,
    /// Arms in source order.
    pub arms: Vec<MatchArm>,
}

/// Finds all `#[cfg(test)] mod … { … }` blocks and returns the token index
/// ranges (half-open) their bodies cover, including the attribute itself.
pub fn test_mod_ranges(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        // Look for `# [ cfg ( test ) ] mod`.
        if toks[i].is_punct('#')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('['))
            && toks.get(i + 2).is_some_and(|t| t.is_ident("cfg"))
            && toks.get(i + 3).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 4).is_some_and(|t| t.is_ident("test"))
            && toks.get(i + 5).is_some_and(|t| t.is_punct(')'))
            && toks.get(i + 6).is_some_and(|t| t.is_punct(']'))
        {
            // Skip further attributes between the cfg and the `mod` keyword.
            let mut j = i + 7;
            while j < toks.len() && toks[j].is_punct('#') {
                j = skip_attribute(toks, j);
            }
            if toks.get(j).is_some_and(|t| t.is_ident("mod")) {
                // Advance to the opening brace, then to its close.
                let mut k = j;
                while k < toks.len() && !toks[k].is_punct('{') {
                    k += 1;
                }
                let end = skip_balanced(toks, k, '{', '}');
                ranges.push((i, end));
                i = end;
                continue;
            }
        }
        i += 1;
    }
    ranges
}

/// Skips one `#[…]` attribute starting at the `#` token; returns the index
/// just past the closing `]`.
fn skip_attribute(toks: &[Tok], at: usize) -> usize {
    let mut i = at + 1; // past '#'
    if toks.get(i).is_some_and(|t| t.is_punct('!')) {
        i += 1;
    }
    if toks.get(i).is_some_and(|t| t.is_punct('[')) {
        skip_balanced(toks, i, '[', ']')
    } else {
        i
    }
}

/// From an opening bracket at `open_at`, returns the index just past its
/// matching close. If `open_at` is not the opening bracket, returns
/// `open_at + 1`.
fn skip_balanced(toks: &[Tok], open_at: usize, open: char, close: char) -> usize {
    if !toks.get(open_at).is_some_and(|t| t.is_punct(open)) {
        return open_at + 1;
    }
    let mut depth = 0usize;
    let mut i = open_at;
    while i < toks.len() {
        if toks[i].is_punct(open) {
            depth += 1;
        } else if toks[i].is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    toks.len()
}

/// Collects every `enum` declaration in the token stream.
pub fn parse_enums(toks: &[Tok]) -> Vec<EnumDef> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("enum") && toks.get(i + 1).map(|t| t.kind) == Some(TokKind::Ident) {
            let name = toks[i + 1].text.clone();
            let line = toks[i].line;
            // Find the opening brace (skipping generics `<…>` shallowly).
            let mut j = i + 2;
            let mut angle = 0i32;
            while j < toks.len() {
                if toks[j].is_punct('<') {
                    angle += 1;
                } else if toks[j].is_punct('>') {
                    angle -= 1;
                } else if toks[j].is_punct('{') && angle <= 0 {
                    break;
                } else if toks[j].is_punct(';') {
                    // `enum` in a path like `std::enum` can't happen; but a
                    // stray `;` means this wasn't a braced enum — bail.
                    break;
                }
                j += 1;
            }
            if j < toks.len() && toks[j].is_punct('{') {
                let end = skip_balanced(toks, j, '{', '}');
                let variants = parse_variants(&toks[j + 1..end.saturating_sub(1)]);
                out.push(EnumDef {
                    name,
                    line,
                    variants,
                });
                i = end;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Parses the body of an enum (tokens between its braces) into variants.
fn parse_variants(body: &[Tok]) -> Vec<VariantDef> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < body.len() {
        // Skip attributes and doc comments (doc comments aren't tokens).
        if body[i].is_punct('#') {
            i = skip_attribute(body, i);
            continue;
        }
        if body[i].is_ident("pub") {
            i += 1;
            continue;
        }
        if body[i].kind == TokKind::Ident {
            out.push(VariantDef {
                name: body[i].text.clone(),
                line: body[i].line,
            });
            i += 1;
            // Skip payload: tuple `(…)`, struct `{…}`, discriminant `= …`.
            while i < body.len() && !body[i].is_punct(',') {
                if body[i].is_punct('(') {
                    i = skip_balanced(body, i, '(', ')');
                } else if body[i].is_punct('{') {
                    i = skip_balanced(body, i, '{', '}');
                } else {
                    i += 1;
                }
            }
            i += 1; // past the comma
            continue;
        }
        i += 1;
    }
    out
}

/// Collects every `match` expression, with arm patterns and guard flags.
///
/// A `match` token is recognized when followed eventually by `{`; the
/// scrutinee tokens are skipped by brace/paren balance. Arms are split at
/// top-level `,` / after braced bodies; the guard is split at a top-level
/// `if` inside the pattern.
pub fn parse_matches(toks: &[Tok]) -> Vec<MatchExpr> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("match") {
            i += 1;
            continue;
        }
        let line = toks[i].line;
        // Scan the scrutinee: up to the `{` that opens the arm block at
        // depth 0 (parens/brackets/braces inside struct literals are
        // tracked; a `{` at depth 0 that isn't preceded by an ident/`)` is
        // taken as the arm block — in practice scrutinees in this repo are
        // simple expressions, and a mis-parse only costs lint coverage of
        // that one match, never a false finding).
        let mut j = i + 1;
        let mut depth = 0i32;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if t.is_punct('{') {
                if depth == 0 {
                    break;
                }
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
            }
            j += 1;
        }
        if j >= toks.len() {
            break;
        }
        let body_end = skip_balanced(toks, j, '{', '}');
        let arms = parse_arms(&toks[j + 1..body_end.saturating_sub(1)]);
        out.push(MatchExpr { line, arms });
        // Continue scanning *inside* the match body too (nested matches):
        // simply advance past the `match` keyword, not the whole body.
        i += 1;
    }
    out
}

/// Splits a match body (tokens between its braces) into arms.
fn parse_arms(body: &[Tok]) -> Vec<MatchArm> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < body.len() {
        // Skip attributes on arms and leading commas.
        if body[i].is_punct('#') {
            i = skip_attribute(body, i);
            continue;
        }
        if body[i].is_punct(',') {
            i += 1;
            continue;
        }
        // Pattern: tokens until a top-level `=>` (lexed as `=` `>`).
        let pat_start = i;
        let pat_line = body[i].line;
        let mut depth = 0i32;
        let mut guard_at: Option<usize> = None;
        let mut arrow_at: Option<usize> = None;
        let mut j = i;
        while j < body.len() {
            let t = &body[j];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
            } else if depth == 0 && t.is_ident("if") && guard_at.is_none() {
                guard_at = Some(j);
            } else if depth == 0
                && t.is_punct('=')
                && body.get(j + 1).is_some_and(|n| n.is_punct('>'))
                && n_not_fat_arrow_in_closure(body, j)
            {
                arrow_at = Some(j);
                break;
            }
            j += 1;
        }
        let Some(arrow) = arrow_at else { break };
        let pat_end = guard_at.unwrap_or(arrow);
        out.push(MatchArm {
            pattern: body[pat_start..pat_end].to_vec(),
            has_guard: guard_at.is_some(),
            line: pat_line,
        });
        // Body: either a balanced `{…}` or an expression up to a top-level
        // `,` (tracking nested matches' own `=>` via bracket depth).
        let mut k = arrow + 2;
        if body.get(k).is_some_and(|t| t.is_punct('{')) {
            k = skip_balanced(body, k, '{', '}');
        } else {
            let mut d = 0i32;
            while k < body.len() {
                let t = &body[k];
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    d += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    d -= 1;
                } else if d == 0 && t.is_punct(',') {
                    break;
                }
                k += 1;
            }
        }
        i = k;
    }
    out
}

/// `=>` in a pattern position is always an arm arrow: patterns cannot
/// contain closures. (Kept as a named check for readability.)
fn n_not_fat_arrow_in_closure(_body: &[Tok], _at: usize) -> bool {
    true
}

/// `true` if the arm pattern is a wildcard: exactly `_`, or a single bare
/// lowercase-initial identifier (an irrefutable binding like `other`).
pub fn arm_is_wildcard(arm: &MatchArm) -> bool {
    let toks: Vec<&Tok> = arm.pattern.iter().collect();
    match toks.as_slice() {
        [t] if t.is_ident("_") => true,
        [t] if t.kind == TokKind::Ident => t
            .text
            .chars()
            .next()
            .is_some_and(|c| c.is_lowercase() || c == '_'),
        _ => false,
    }
}

/// Collects the `Enum::Variant` paths referenced in an arm's pattern.
/// Returns `(enum_name, variant_name)` pairs.
pub fn arm_variant_paths(arm: &MatchArm) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let p = &arm.pattern;
    let mut i = 0usize;
    while i + 3 < p.len() + 1 {
        if i + 3 <= p.len()
            && p[i].kind == TokKind::Ident
            && p[i].text.chars().next().is_some_and(|c| c.is_uppercase())
            && p.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && p.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && p.get(i + 3).is_some_and(|t| t.kind == TokKind::Ident)
        {
            out.push((p[i].text.clone(), p[i + 3].text.clone()));
            i += 4;
            continue;
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn parses_enum_variants_with_payloads() {
        let src = r#"
            pub enum Msg {
                /// doc
                Certify { tx: TxId, keys: Vec<Key> },
                Prepare(u64, bool),
                #[allow(dead_code)]
                Retry,
                Decided = 3,
            }
        "#;
        let enums = parse_enums(&lex(src).toks);
        assert_eq!(enums.len(), 1);
        assert_eq!(enums[0].name, "Msg");
        let names: Vec<&str> = enums[0].variants.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, ["Certify", "Prepare", "Retry", "Decided"]);
    }

    #[test]
    fn parses_match_arms_guards_and_wildcards() {
        let src = r#"
            fn f(m: Msg) {
                match m {
                    Msg::Certify { tx, .. } if tx > 0 => handle(tx),
                    Msg::Prepare(a, _) => { nested(a); },
                    Msg::Retry | Msg::Decided => {}
                    _ => {}
                }
            }
        "#;
        let matches = parse_matches(&lex(src).toks);
        assert_eq!(matches.len(), 1);
        let m = &matches[0];
        assert_eq!(m.arms.len(), 4);
        assert!(m.arms[0].has_guard);
        assert!(!m.arms[1].has_guard);
        assert!(arm_is_wildcard(&m.arms[3]));
        assert!(!arm_is_wildcard(&m.arms[2]));
        let paths = arm_variant_paths(&m.arms[2]);
        assert_eq!(
            paths,
            vec![
                ("Msg".to_owned(), "Retry".to_owned()),
                ("Msg".to_owned(), "Decided".to_owned())
            ]
        );
    }

    #[test]
    fn nested_match_is_found_and_bare_binding_is_wildcard() {
        let src = r#"
            fn f(m: Msg, n: Msg) {
                match m {
                    Msg::A => match n {
                        Msg::B => {}
                        other => drop(other),
                    },
                    Msg::C => {}
                }
            }
        "#;
        let matches = parse_matches(&lex(src).toks);
        assert_eq!(matches.len(), 2);
        let inner = &matches[1];
        assert!(arm_is_wildcard(&inner.arms[1]));
    }

    #[test]
    fn test_mod_ranges_cover_bodies() {
        let src = r#"
            fn live() { let m = std::collections::HashMap::new(); }
            #[cfg(test)]
            mod tests {
                fn t() { only_in_tests(); }
            }
            fn after() {}
        "#;
        let toks = lex(src).toks;
        let ranges = test_mod_ranges(&toks);
        assert_eq!(ranges.len(), 1);
        let (a, b) = ranges[0];
        let inside: Vec<&str> = toks[a..b].iter().map(|t| t.text.as_str()).collect();
        assert!(inside.contains(&"only_in_tests"));
        assert!(!inside.contains(&"after"));
    }

    #[test]
    fn match_on_method_call_scrutinee() {
        let src = r#"
            fn f(x: Foo) {
                match x.kind() {
                    Kind::A => {}
                    Kind::B => {}
                }
            }
        "#;
        let matches = parse_matches(&lex(src).toks);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].arms.len(), 2);
    }
}
