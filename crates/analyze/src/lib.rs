//! `ratc-analyze`: determinism & protocol-surface static analysis for the
//! RATC workspace.
//!
//! Every guarantee the reproduction makes — same-seed bit-identical replays,
//! nemesis shrinking, obs schedule-invisibility, sim-vs-threads agreement —
//! rests on conventions (no wall clock, no unseeded randomness, no
//! order-dependent hash iteration, total message dispatch). This crate turns
//! those conventions into machine-checked invariants.
//!
//! Like `ratc_bench::json`, the analyzer is entirely hand-rolled (lexer +
//! lightweight item parser, no dependencies) so the lint gate can never be
//! blocked on registry access.
//!
//! # Lint catalog
//!
//! Determinism lints (protocol crates: `types`, `config`, `core`, `rdma`,
//! `baseline`, `paxos`, `sim` — minus the `rt.rs` threaded engine):
//!
//! * `hash-iter` — iteration over a `HashMap`/`HashSet` unless the site
//!   visibly sorts or reduces order-insensitively.
//! * `float-state` — floating-point types/literals in protocol state
//!   (observability sink calls are carved out).
//!
//! Clock/thread lints (everywhere except `rt.rs`, vendor stubs, bench):
//!
//! * `wall-clock` — `Instant::now` / `SystemTime`.
//! * `unseeded-rng` — `thread_rng` / `from_entropy` / `OsRng`.
//! * `ad-hoc-thread` — `std::thread` / `std::sync::mpsc` use.
//!
//! Protocol-surface lints (cross-file):
//!
//! * `wildcard-dispatch` — a `_ =>` (or bare-binding) arm in a match over a
//!   message enum.
//! * `missing-dispatch-arm` — a message-enum variant with no explicit arm
//!   anywhere in its owning crate.
//! * `unpaired-batch` — a `*Batch` variant with no unbatched twin.
//! * `milestone-parity` — a `TxMilestone`/`CtrlMilestone` variant not
//!   stamped by all three stacks (core, rdma, baseline; stamps in the shared
//!   `sim`/`chaos` engines count for every stack).
//!
//! Pragma hygiene:
//!
//! * `malformed-allow` — a suppression pragma with an unknown lint name or
//!   an empty justification.
//! * `unused-allow` — a well-formed pragma that suppressed nothing.
//!
//! Suppression syntax is documented in the README ("Static analysis"
//! section). A pragma names one lint and must carry a non-empty
//! justification after a colon; the `-file` form covers the whole file,
//! otherwise the pragma covers its own line (trailing form) or the next
//! code line. This crate itself is excluded from scanning — its docs and
//! fixtures are full of lint-name literals.

use std::fmt;
use std::io;
use std::path::Path;

pub mod lexer;
mod lints;
pub mod parse;

use lexer::{Comment, Tok};
use parse::{parse_enums, parse_matches, test_mod_ranges, EnumDef, MatchExpr};

/// One source file handed to the analyzer. `path` is workspace-relative
/// with forward slashes (e.g. `crates/core/src/replica.rs`) — scope rules
/// key off it.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative, forward-slash path.
    pub path: String,
    /// Full file text.
    pub text: String,
}

/// The lint catalog. `name()` gives the kebab-case name used in findings
/// and pragmas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lint {
    /// Order-dependent `HashMap`/`HashSet` iteration in a protocol crate.
    HashIter,
    /// `Instant::now` / `SystemTime` outside the threaded engine.
    WallClock,
    /// `thread_rng` / `from_entropy` / `OsRng`.
    UnseededRng,
    /// `std::thread` / `std::sync::mpsc` outside the threaded engine.
    AdHocThread,
    /// Floating point in protocol state.
    FloatState,
    /// Wildcard arm in a match over a message enum.
    WildcardDispatch,
    /// Message-enum variant with no explicit arm in its owning crate.
    MissingDispatchArm,
    /// `*Batch` variant with no unbatched twin.
    UnpairedBatch,
    /// Milestone variant not stamped by all three stacks.
    MilestoneParity,
    /// Suppression pragma with unknown lint or empty justification.
    MalformedAllow,
    /// Suppression pragma that suppressed nothing.
    UnusedAllow,
}

impl Lint {
    /// Every lint, in severity-agnostic catalog order.
    pub const ALL: [Lint; 11] = [
        Lint::HashIter,
        Lint::WallClock,
        Lint::UnseededRng,
        Lint::AdHocThread,
        Lint::FloatState,
        Lint::WildcardDispatch,
        Lint::MissingDispatchArm,
        Lint::UnpairedBatch,
        Lint::MilestoneParity,
        Lint::MalformedAllow,
        Lint::UnusedAllow,
    ];

    /// Kebab-case lint name.
    pub fn name(self) -> &'static str {
        match self {
            Lint::HashIter => "hash-iter",
            Lint::WallClock => "wall-clock",
            Lint::UnseededRng => "unseeded-rng",
            Lint::AdHocThread => "ad-hoc-thread",
            Lint::FloatState => "float-state",
            Lint::WildcardDispatch => "wildcard-dispatch",
            Lint::MissingDispatchArm => "missing-dispatch-arm",
            Lint::UnpairedBatch => "unpaired-batch",
            Lint::MilestoneParity => "milestone-parity",
            Lint::MalformedAllow => "malformed-allow",
            Lint::UnusedAllow => "unused-allow",
        }
    }

    /// Parses a kebab-case lint name (pragma syntax).
    pub fn from_name(name: &str) -> Option<Lint> {
        Lint::ALL.into_iter().find(|l| l.name() == name)
    }

    /// Meta lints about pragmas themselves cannot be suppressed by pragmas.
    fn suppressible(self) -> bool {
        !matches!(self, Lint::MalformedAllow | Lint::UnusedAllow)
    }
}

/// One analyzer finding. Displays as `file:line lint-name: message`.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Which lint fired.
    pub lint: Lint,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} {}: {}",
            self.file,
            self.line,
            self.lint.name(),
            self.message
        )
    }
}

/// A file after lexing/parsing, with `#[cfg(test)] mod` bodies stripped —
/// the unit the lint passes consume.
pub(crate) struct Prepared {
    pub path: String,
    pub crate_name: Option<String>,
    /// Live (non-test) tokens.
    pub toks: Vec<Tok>,
    /// Live (non-test) line comments.
    pub comments: Vec<Comment>,
    pub enums: Vec<EnumDef>,
    pub matches: Vec<MatchExpr>,
}

/// Crates whose code is replayed protocol state: the determinism lints
/// (`hash-iter`, `float-state`) apply here.
const DETERMINISM_CRATES: [&str; 7] = [
    "types", "config", "core", "rdma", "baseline", "paxos", "sim",
];

/// The one file allowed to touch OS threads, channels and wall-clock: the
/// threaded execution engine.
const RT_ENGINE: &str = "crates/sim/src/rt.rs";

/// The three protocol stacks that must stamp every milestone.
pub(crate) const STACKS: [&str; 3] = ["core", "rdma", "baseline"];

/// Engine crates whose milestone stamps count for every stack (the sim
/// world and chaos harness stamp crash/fault lifecycle events on behalf of
/// whichever stack is running).
pub(crate) const SHARED_STAMPERS: [&str; 2] = ["sim", "chaos"];

pub(crate) fn crate_of(path: &str) -> Option<&str> {
    path.strip_prefix("crates/")?.split('/').next()
}

pub(crate) fn in_determinism_scope(path: &str) -> bool {
    path != RT_ENGINE && crate_of(path).is_some_and(|c| DETERMINISM_CRATES.contains(&c))
}

pub(crate) fn in_clock_scope(path: &str) -> bool {
    path != RT_ENGINE
}

/// A parsed suppression pragma.
struct Allow {
    line: u32,
    lint: Lint,
    file_wide: bool,
    /// Line the pragma covers (pragma's own line if it trails code,
    /// otherwise the next code line). `None` for file-wide pragmas.
    target_line: Option<u32>,
    used: bool,
}

const PRAGMA: &str = "analyze:allow";

/// Parses pragmas out of a file's live comments. Malformed ones are
/// reported immediately; well-formed ones are returned for suppression.
fn parse_allows(prep: &Prepared, findings: &mut Vec<Finding>) -> Vec<Allow> {
    let mut allows = Vec::new();
    for c in &prep.comments {
        let Some(at) = c.text.find(PRAGMA) else {
            continue;
        };
        let rest = &c.text[at + PRAGMA.len()..];
        let (file_wide, rest) = match rest.strip_prefix("-file") {
            Some(r) => (true, r),
            None => (false, rest),
        };
        let mut malformed = |msg: &str| {
            findings.push(Finding {
                file: prep.path.clone(),
                line: c.line,
                lint: Lint::MalformedAllow,
                message: msg.to_owned(),
            });
        };
        let Some(rest) = rest.strip_prefix('(') else {
            malformed("pragma must name a lint in parentheses");
            continue;
        };
        let Some(close) = rest.find(')') else {
            malformed("unclosed lint name in pragma");
            continue;
        };
        let name = rest[..close].trim();
        let Some(lint) = Lint::from_name(name) else {
            malformed(&format!("unknown lint `{name}` in pragma"));
            continue;
        };
        if !lint.suppressible() {
            malformed(&format!("lint `{name}` cannot be suppressed"));
            continue;
        }
        let after = &rest[close + 1..];
        let Some(just) = after.strip_prefix(':') else {
            malformed("pragma must carry `: <justification>` after the lint name");
            continue;
        };
        if just.trim().is_empty() {
            malformed("pragma justification must not be empty");
            continue;
        }
        let target_line = if file_wide {
            None
        } else if prep.toks.iter().any(|t| t.line == c.line) {
            // Trailing form: covers its own line.
            Some(c.line)
        } else {
            // Standalone form: covers the next code line.
            prep.toks.iter().map(|t| t.line).find(|&l| l > c.line)
        };
        if !file_wide && target_line.is_none() {
            malformed("pragma is not followed by any code line");
            continue;
        }
        allows.push(Allow {
            line: c.line,
            lint,
            file_wide,
            target_line,
            used: false,
        });
    }
    allows
}

/// Analyzes a set of source files together (cross-file lints need the whole
/// set). Returns findings sorted by `(file, line, lint)`.
pub fn analyze_files(files: &[SourceFile]) -> Vec<Finding> {
    let preps: Vec<Prepared> = files.iter().map(prepare).collect();

    let mut findings: Vec<Finding> = Vec::new();
    for prep in &preps {
        lints::determinism(prep, &mut findings);
    }
    lints::protocol_surface(&preps, &mut findings);

    // Pragmas: parse per file, suppress matching findings, then report
    // pragmas that suppressed nothing.
    let mut all_allows: Vec<(String, Vec<Allow>)> = Vec::new();
    let mut pragma_findings: Vec<Finding> = Vec::new();
    for prep in &preps {
        let allows = parse_allows(prep, &mut pragma_findings);
        all_allows.push((prep.path.clone(), allows));
    }
    findings.retain(|f| {
        if !f.lint.suppressible() {
            return true;
        }
        let Some((_, allows)) = all_allows.iter_mut().find(|(p, _)| *p == f.file) else {
            return true;
        };
        let mut suppressed = false;
        for a in allows.iter_mut() {
            if a.lint == f.lint && (a.file_wide || a.target_line == Some(f.line)) {
                a.used = true;
                suppressed = true;
            }
        }
        !suppressed
    });
    for (path, allows) in &all_allows {
        for a in allows {
            if !a.used {
                pragma_findings.push(Finding {
                    file: path.clone(),
                    line: a.line,
                    lint: Lint::UnusedAllow,
                    message: format!(
                        "pragma for `{}` suppressed nothing — remove it or fix the target",
                        a.lint.name()
                    ),
                });
            }
        }
    }
    findings.extend(pragma_findings);

    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.lint, a.message.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.lint,
            b.message.as_str(),
        ))
    });
    findings
}

/// Lexes and parses one file, stripping `#[cfg(test)] mod` bodies (the repo
/// keeps unit tests in such modules; test code may use clocks, threads and
/// hash iteration freely).
fn prepare(file: &SourceFile) -> Prepared {
    let lexed = lexer::lex(&file.text);
    let ranges = test_mod_ranges(&lexed.toks);
    let mut live = Vec::with_capacity(lexed.toks.len());
    let mut line_spans: Vec<(u32, u32)> = Vec::new();
    for &(a, b) in &ranges {
        if b > a {
            line_spans.push((lexed.toks[a].line, lexed.toks[b - 1].line));
        }
    }
    'tok: for (i, t) in lexed.toks.into_iter().enumerate() {
        for &(a, b) in &ranges {
            if i >= a && i < b {
                continue 'tok;
            }
        }
        live.push(t);
    }
    let comments = lexed
        .comments
        .into_iter()
        .filter(|c| !line_spans.iter().any(|&(a, b)| c.line >= a && c.line <= b))
        .collect();
    let enums = parse_enums(&live);
    let matches = parse_matches(&live);
    Prepared {
        path: file.path.clone(),
        crate_name: crate_of(&file.path).map(str::to_owned),
        toks: live,
        comments,
        enums,
        matches,
    }
}

/// Path prefixes excluded from scanning: offline vendor stubs, the bench
/// harness (measures wall-clock by design), and this tool crate itself
/// (its docs and fixtures are full of lint-name literals).
const SKIP_PREFIXES: [&str; 3] = ["crates/vendor/", "crates/bench/", "crates/analyze/"];

/// Walks the workspace at `root` and collects every `crates/*/src/**/*.rs`
/// (plus a root `src/` if present), excluding [`SKIP_PREFIXES`]. Files come
/// back sorted by path so analysis order is deterministic.
pub fn collect_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<_> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .collect();
        members.sort();
        for member in members {
            let src = member.join("src");
            if src.is_dir() {
                collect_rs(&src, root, &mut out)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, root, &mut out)?;
    }
    out.retain(|f| !SKIP_PREFIXES.iter().any(|p| f.path.starts_with(p)));
    out.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(out)
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<SourceFile>) -> io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.filter_map(|e| e.ok()).collect();
    entries.sort_by_key(|e| e.path());
    for e in entries {
        let p = e.path();
        if p.is_dir() {
            collect_rs(&p, root, out)?;
        } else if p.extension().is_some_and(|x| x == "rs") {
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            let text = std::fs::read_to_string(&p)?;
            out.push(SourceFile { path: rel, text });
        }
    }
    Ok(())
}

/// Collects and analyzes the workspace rooted at `root`.
pub fn analyze_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    Ok(analyze_files(&collect_workspace(root)?))
}
