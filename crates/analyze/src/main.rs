//! `cargo run -p ratc-analyze` — the CI gate.
//!
//! Locates the workspace root (walking up from the current directory to the
//! first `Cargo.toml` containing `[workspace]`), runs every lint, prints
//! findings as `file:line lint-name: message`, and exits nonzero if any
//! finding survives suppression.

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let root = match std::env::args().nth(1) {
        Some(p) => PathBuf::from(p),
        None => match workspace_root() {
            Some(r) => r,
            None => {
                eprintln!("ratc-analyze: no workspace root found above the current directory");
                return ExitCode::from(2);
            }
        },
    };

    let files = match ratc_analyze::collect_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!(
                "ratc-analyze: failed to read workspace at {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };
    let findings = ratc_analyze::analyze_files(&files);
    if findings.is_empty() {
        println!(
            "ratc-analyze: workspace clean ({} files scanned, 0 findings)",
            files.len()
        );
        return ExitCode::SUCCESS;
    }
    for f in &findings {
        println!("{f}");
    }
    eprintln!(
        "ratc-analyze: {} finding(s) in {} file(s) scanned",
        findings.len(),
        files.len()
    );
    ExitCode::FAILURE
}
