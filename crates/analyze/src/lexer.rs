//! A hand-rolled Rust lexer: just enough fidelity for lint scanning.
//!
//! The lexer turns source text into a flat token stream with line numbers and
//! a separate list of line comments (block comments are skipped, string and
//! char literals are opaque single tokens, lifetimes are distinguished from
//! char literals). It deliberately does **not** build an AST — the lint
//! passes in [`crate::lints`] pattern-match over token windows, and the
//! lightweight item parser in [`crate::parse`] recovers the two shapes the
//! protocol-surface lints need (enum declarations and `match` expressions).

/// Token classes. Keywords are ordinary [`TokKind::Ident`] tokens; multi-char
/// operators are emitted as consecutive single-char [`TokKind::Punct`] tokens
/// (`=>` is `=` then `>`), which is unambiguous for every pattern the lints
/// look for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Single punctuation character.
    Punct,
    /// Numeric literal (kept verbatim, so `1.0f64` retains its suffix).
    Num,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`), opaque.
    Str,
    /// Char or byte literal (`'x'`, `b'\n'`), opaque.
    Char,
    /// Lifetime (`'a`), distinguished from char literals.
    Lifetime,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// The token class.
    pub kind: TokKind,
    /// Verbatim text (for [`TokKind::Str`] the quotes/hashes are dropped).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// `true` if this token is the identifier `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokKind::Ident && self.text == word
    }

    /// `true` if this token is the punctuation character `ch`.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokKind::Punct && self.text.as_bytes()[0] as char == ch && self.text.len() == 1
    }
}

/// A `//` line comment (doc comments included), with leading slashes kept.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line of the comment.
    pub line: u32,
    /// Comment text including the leading `//`.
    pub text: String,
}

/// The output of [`lex`]: tokens plus line comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All tokens in source order.
    pub toks: Vec<Tok>,
    /// All `//` comments in source order (pragma scanning reads these).
    pub comments: Vec<Comment>,
}

/// Lexes `src`. Unterminated literals are tolerated (the remainder of the
/// file becomes one opaque token) so a half-edited file cannot panic the
/// analyzer — it will simply lint what it can see.
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    let count_lines = |s: &str| s.bytes().filter(|&b| b == b'\n').count() as u32;

    while i < bytes.len() {
        let c = bytes[i] as char;

        // Whitespace.
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }

        // Comments.
        if c == '/' && i + 1 < bytes.len() {
            if bytes[i + 1] == b'/' {
                let end = src[i..].find('\n').map(|n| i + n).unwrap_or(bytes.len());
                out.comments.push(Comment {
                    line,
                    text: src[i..end].to_owned(),
                });
                i = end;
                continue;
            }
            if bytes[i + 1] == b'*' {
                // Nested block comment.
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < bytes.len() && depth > 0 {
                    if bytes[j] == b'\n' {
                        line += 1;
                        j += 1;
                    } else if bytes[j] == b'/' && j + 1 < bytes.len() && bytes[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == b'*' && j + 1 < bytes.len() && bytes[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                i = j;
                continue;
            }
        }

        // Raw strings and raw identifiers: r"…", r#"…"#, br#"…"#, r#ident.
        if (c == 'r' || c == 'b') && i + 1 < bytes.len() {
            let (prefix_len, rest) = if c == 'b' && bytes[i + 1] == b'r' {
                (2, &src[i + 2..])
            } else if c == 'r' {
                (1, &src[i + 1..])
            } else {
                (0, "")
            };
            if prefix_len > 0 {
                let hashes = rest.bytes().take_while(|&b| b == b'#').count();
                let after = &rest[hashes..];
                if after.starts_with('"') {
                    let close: String = std::iter::once('"')
                        .chain("#".repeat(hashes).chars())
                        .collect();
                    let body_start = i + prefix_len + hashes + 1;
                    let end = src[body_start..]
                        .find(&close)
                        .map(|n| body_start + n)
                        .unwrap_or(bytes.len());
                    let text = &src[body_start..end.min(bytes.len())];
                    out.toks.push(Tok {
                        kind: TokKind::Str,
                        text: text.to_owned(),
                        line,
                    });
                    line += count_lines(text);
                    i = (end + close.len()).min(bytes.len());
                    continue;
                }
                if c == 'r'
                    && hashes == 1
                    && after.starts_with(|ch: char| ch.is_alphanumeric() || ch == '_')
                {
                    // Raw identifier r#ident.
                    let start = i + 2;
                    let mut j = start;
                    while j < bytes.len()
                        && ((bytes[j] as char).is_alphanumeric() || bytes[j] == b'_')
                    {
                        j += 1;
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Ident,
                        text: src[start..j].to_owned(),
                        line,
                    });
                    i = j;
                    continue;
                }
            }
        }

        // Byte char / byte string: b'…', b"…".
        if c == 'b' && i + 1 < bytes.len() && (bytes[i + 1] == b'\'' || bytes[i + 1] == b'"') {
            i += 1;
            // Fall through to the quote handling below on the next loop
            // iteration would lose the prefix; handle inline instead.
            let quote = bytes[i] as char;
            let (tok, consumed, newlines) = read_quoted(&src[i..], quote);
            out.toks.push(Tok {
                kind: if quote == '"' {
                    TokKind::Str
                } else {
                    TokKind::Char
                },
                text: tok,
                line,
            });
            line += newlines;
            i += consumed;
            continue;
        }

        // String literal.
        if c == '"' {
            let (tok, consumed, newlines) = read_quoted(&src[i..], '"');
            out.toks.push(Tok {
                kind: TokKind::Str,
                text: tok,
                line,
            });
            line += newlines;
            i += consumed;
            continue;
        }

        // Lifetime or char literal.
        if c == '\'' {
            let next = bytes.get(i + 1).copied().map(|b| b as char);
            let after = bytes.get(i + 2).copied().map(|b| b as char);
            let is_lifetime =
                matches!(next, Some(ch) if ch.is_alphabetic() || ch == '_') && after != Some('\'');
            if is_lifetime {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && ((bytes[j] as char).is_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: src[start..j].to_owned(),
                    line,
                });
                i = j;
                continue;
            }
            let (tok, consumed, newlines) = read_quoted(&src[i..], '\'');
            out.toks.push(Tok {
                kind: TokKind::Char,
                text: tok,
                line,
            });
            line += newlines;
            i += consumed;
            continue;
        }

        // Identifier / keyword.
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && ((bytes[i] as char).is_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text: src[start..i].to_owned(),
                line,
            });
            continue;
        }

        // Numeric literal (suffixes kept: `1.0f64`, `0xffu32`, `1e-3`).
        if c.is_ascii_digit() {
            let start = i;
            i += 1;
            while i < bytes.len() {
                let d = bytes[i] as char;
                if d.is_alphanumeric() || d == '_' {
                    // Exponent sign: 1e-3 / 2.5E+7.
                    if (d == 'e' || d == 'E')
                        && !src[start..i].starts_with("0x")
                        && matches!(bytes.get(i + 1), Some(b'+') | Some(b'-'))
                        && bytes.get(i + 2).is_some_and(|b| b.is_ascii_digit())
                    {
                        i += 2;
                    }
                    i += 1;
                    continue;
                }
                // A decimal point only if followed by a digit (so `0..3` and
                // `x.0` stay punctuation-separated).
                if d == '.'
                    && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit())
                    && !src[start..i].contains('.')
                {
                    i += 1;
                    continue;
                }
                break;
            }
            out.toks.push(Tok {
                kind: TokKind::Num,
                text: src[start..i].to_owned(),
                line,
            });
            continue;
        }

        // Anything else: single punctuation character.
        out.toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += c.len_utf8();
    }

    out
}

/// Reads a quoted literal starting at the opening quote. Returns the body
/// text (quotes stripped), bytes consumed including quotes, and the number of
/// newlines inside.
fn read_quoted(s: &str, quote: char) -> (String, usize, u32) {
    let bytes = s.as_bytes();
    let mut j = 1usize;
    let mut newlines = 0u32;
    while j < bytes.len() {
        let ch = bytes[j] as char;
        if ch == '\\' {
            j += 2;
            continue;
        }
        if ch == '\n' {
            newlines += 1;
        }
        if ch == quote {
            return (s[1..j].to_owned(), j + 1, newlines);
        }
        j += 1;
    }
    (s[1..].to_owned(), bytes.len(), newlines)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .toks
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_puncts_and_lines() {
        let l = lex("let x = a.b;\nfor y in z {}");
        assert!(l.toks.iter().any(|t| t.is_ident("for") && t.line == 2));
        assert!(l.toks.iter().any(|t| t.is_punct(';') && t.line == 1));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Lifetime && t == "a"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Char && t == "x"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Char && t == "\\n"));
    }

    #[test]
    fn strings_are_opaque_and_multiline_counts() {
        let l = lex("let s = \"HashMap iter()\";\nlet t = 1;");
        assert!(!l.toks.iter().any(|t| t.is_ident("HashMap")));
        assert!(l.toks.iter().any(|t| t.is_ident("t") && t.line == 2));
        let raw = lex("let s = r#\"a \" b\"#; x");
        assert!(raw.toks.iter().any(|t| t.is_ident("x")));
    }

    #[test]
    fn comments_are_captured_not_tokenized() {
        let l = lex("// analyze:allow(hash-iter): fine\nlet x = 1; /* block\nmulti */ y");
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.contains("analyze:allow"));
        assert!(l.toks.iter().any(|t| t.is_ident("y") && t.line == 3));
    }

    #[test]
    fn numbers_keep_suffixes_and_ranges_split() {
        let toks = kinds("let a = 1.0f64; let b = 0..3; let c = 1e-3;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Num && t == "1.0f64"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Num && t == "0"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Num && t == "3"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Num && t == "1e-3"));
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* a /* b */ c */ after");
        assert_eq!(l.toks.len(), 1);
        assert!(l.toks[0].is_ident("after"));
    }
}
