//! The lint passes: per-file determinism lints and cross-file
//! protocol-surface lints. All passes work over the test-stripped token
//! streams produced in [`crate::prepare`].

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use crate::lexer::{Tok, TokKind};
use crate::parse::{arm_is_wildcard, arm_variant_paths};
use crate::{
    in_clock_scope, in_determinism_scope, Finding, Lint, Prepared, SHARED_STAMPERS, STACKS,
};

/// Methods on `HashMap`/`HashSet` whose result order depends on hash state.
const ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Identifiers that, seen shortly after an iteration site, prove the order
/// is re-established (sorting, collecting into an ordered map) or that the
/// reduction is order-insensitive.
const ORDER_OK: [&str; 15] = [
    "sort",
    "sort_unstable",
    "sort_by",
    "sort_by_key",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "sorted",
    "BTreeMap",
    "BTreeSet",
    "count",
    "sum",
    "min",
    "max",
    "all",
    "any",
];

/// How far (in tokens) past an iteration site to look for [`ORDER_OK`]
/// evidence. Deliberately spans statement boundaries so the common
/// `let mut v: Vec<_> = m.keys().collect(); v.sort();` shape is recognized.
const ORDER_LOOKAHEAD: usize = 40;

/// Observability sink calls: floats flowing into these never re-enter
/// protocol state (metrics are recorded out-of-band and are
/// schedule-invisible per the PR 8 tests), so `float-state` carves out any
/// statement that mentions one.
const OBS_SINKS: [&str; 3] = ["obs_gauge", "record_sample", "record_ctrl_gauge"];

/// Per-file determinism lints: `hash-iter`, `float-state`, `wall-clock`,
/// `unseeded-rng`, `ad-hoc-thread`.
pub(crate) fn determinism(prep: &Prepared, findings: &mut Vec<Finding>) {
    if in_clock_scope(&prep.path) {
        clock_lints(prep, findings);
    }
    if in_determinism_scope(&prep.path) {
        hash_iter(prep, findings);
        float_state(prep, findings);
    }
}

fn push(findings: &mut Vec<Finding>, prep: &Prepared, line: u32, lint: Lint, message: String) {
    findings.push(Finding {
        file: prep.path.clone(),
        line,
        lint,
        message,
    });
}

/// `wall-clock`, `unseeded-rng`, `ad-hoc-thread`: straightforward token
/// patterns. The threaded engine (`rt.rs`), vendor stubs and bench crates
/// are out of scope by construction.
fn clock_lints(prep: &Prepared, findings: &mut Vec<Finding>) {
    let t = &prep.toks;
    for i in 0..t.len() {
        let tok = &t[i];
        if tok.kind != TokKind::Ident {
            continue;
        }
        let followed_by_path = t.get(i + 1).is_some_and(|a| a.is_punct(':'))
            && t.get(i + 2).is_some_and(|a| a.is_punct(':'));
        match tok.text.as_str() {
            "Instant" if followed_by_path && t.get(i + 3).is_some_and(|a| a.is_ident("now")) => {
                push(
                    findings,
                    prep,
                    tok.line,
                    Lint::WallClock,
                    "`Instant::now` reads the wall clock; protocol code must use sim time"
                        .to_owned(),
                );
            }
            "SystemTime" => {
                push(
                    findings,
                    prep,
                    tok.line,
                    Lint::WallClock,
                    "`SystemTime` reads the wall clock; protocol code must use sim time".to_owned(),
                );
            }
            "thread_rng" | "from_entropy" | "OsRng" => {
                push(
                    findings,
                    prep,
                    tok.line,
                    Lint::UnseededRng,
                    format!(
                        "`{}` draws OS entropy; all randomness must come from the seeded \
                         ChaCha stream",
                        tok.text
                    ),
                );
            }
            "thread" if followed_by_path => {
                push(
                    findings,
                    prep,
                    tok.line,
                    Lint::AdHocThread,
                    "`std::thread` outside the rt.rs engine breaks single-threaded determinism"
                        .to_owned(),
                );
            }
            "mpsc" => {
                push(
                    findings,
                    prep,
                    tok.line,
                    Lint::AdHocThread,
                    "`std::sync::mpsc` outside the rt.rs engine breaks single-threaded \
                     determinism"
                        .to_owned(),
                );
            }
            _ => {}
        }
    }
}

/// Collects the identifiers a file binds to `HashMap`/`HashSet` — struct
/// fields and annotated bindings (`name: HashMap<…>`) plus constructor
/// bindings (`let name = HashMap::new()`), then flags iteration over them
/// unless [`ORDER_OK`] evidence follows within [`ORDER_LOOKAHEAD`] tokens.
fn hash_iter(prep: &Prepared, findings: &mut Vec<Finding>) {
    let t = &prep.toks;
    let mut names: BTreeSet<&str> = BTreeSet::new();
    for i in 0..t.len() {
        if t[i].kind != TokKind::Ident || (t[i].text != "HashMap" && t[i].text != "HashSet") {
            continue;
        }
        // Walk back over a leading path (`std :: collections ::`).
        let mut j = i;
        while j >= 2 && t[j - 1].is_punct(':') && t[j - 2].is_punct(':') {
            j -= 2;
            if j >= 1 && t[j - 1].kind == TokKind::Ident {
                j -= 1;
            }
        }
        if j == 0 {
            continue;
        }
        // `name : HashMap` (field / annotated binding). Requiring an ident
        // before the `:` also rules out the second half of a `::` path.
        if j >= 2 && t[j - 1].is_punct(':') && t[j - 2].kind == TokKind::Ident {
            names.insert(&t[j - 2].text);
            continue;
        }
        // `name = HashMap :: …` (constructor binding).
        if t[j - 1].is_punct('=') && j >= 2 && t[j - 2].kind == TokKind::Ident {
            names.insert(&t[j - 2].text);
        }
    }
    if names.is_empty() {
        return;
    }

    let order_ok_after = |from: usize| -> bool {
        t[from..]
            .iter()
            .take(ORDER_LOOKAHEAD)
            .any(|x| x.kind == TokKind::Ident && ORDER_OK.contains(&x.text.as_str()))
    };

    for i in 0..t.len() {
        // `name . method (` where name is hash-bound and method iterates.
        if t[i].kind == TokKind::Ident
            && names.contains(t[i].text.as_str())
            && t.get(i + 1).is_some_and(|a| a.is_punct('.'))
            && t.get(i + 2).is_some_and(|a| {
                a.kind == TokKind::Ident && ITER_METHODS.contains(&a.text.as_str())
            })
            && t.get(i + 3).is_some_and(|a| a.is_punct('('))
        {
            if !order_ok_after(i + 3) {
                push(
                    findings,
                    prep,
                    t[i].line,
                    Lint::HashIter,
                    format!(
                        "iteration over hash-ordered `{}` (`.{}()`) is \
                         schedule-order-dependent; sort, use a BTree map, or justify",
                        t[i].text,
                        t[i + 2].text
                    ),
                );
            }
            continue;
        }
        // `for pat in [&][mut] …name {` — direct for-loop over the map.
        if t[i].is_ident("for") {
            // Find the matching `in` at depth 0, then the loop body `{`.
            let mut depth = 0i32;
            let mut in_at = None;
            for (k, x) in t.iter().enumerate().skip(i + 1).take(64) {
                if x.is_punct('(') || x.is_punct('[') {
                    depth += 1;
                } else if x.is_punct(')') || x.is_punct(']') {
                    depth -= 1;
                } else if depth == 0 && x.is_ident("in") {
                    in_at = Some(k);
                    break;
                }
            }
            let Some(in_at) = in_at else { continue };
            let mut body_at = None;
            let mut d = 0i32;
            for (k, x) in t.iter().enumerate().skip(in_at + 1).take(64) {
                if x.is_punct('(') || x.is_punct('[') {
                    d += 1;
                } else if x.is_punct(')') || x.is_punct(']') {
                    d -= 1;
                } else if d == 0 && x.is_punct('{') {
                    body_at = Some(k);
                    break;
                }
            }
            let Some(body_at) = body_at else { continue };
            let seg = &t[in_at + 1..body_at];
            // Method-call iterables are handled by the rule above.
            if seg.iter().any(|x| x.is_punct('(')) {
                continue;
            }
            let Some(last_ident) = seg.iter().rev().find(|x| x.kind == TokKind::Ident) else {
                continue;
            };
            if names.contains(last_ident.text.as_str()) {
                push(
                    findings,
                    prep,
                    t[i].line,
                    Lint::HashIter,
                    format!(
                        "`for … in {}` iterates a hash-ordered collection in hash order; \
                         sort, use a BTree map, or justify",
                        last_ident.text
                    ),
                );
            }
        }
    }
}

/// Flags floating-point type tokens and literals in protocol state, except
/// inside statements that feed an observability sink ([`OBS_SINKS`]).
fn float_state(prep: &Prepared, findings: &mut Vec<Finding>) {
    let t = &prep.toks;
    let is_stmt_boundary = |x: &Tok| x.is_punct(';') || x.is_punct('{') || x.is_punct('}');
    for i in 0..t.len() {
        let tok = &t[i];
        let is_float = match tok.kind {
            TokKind::Ident => tok.text == "f64" || tok.text == "f32",
            TokKind::Num => {
                let s = tok.text.as_str();
                !s.starts_with("0x")
                    && (s.contains('.')
                        || s.ends_with("f64")
                        || s.ends_with("f32")
                        || s.contains("e-")
                        || s.contains("e+")
                        || s.contains("E-")
                        || s.contains("E+"))
            }
            _ => false,
        };
        if !is_float {
            continue;
        }
        // Statement region: back to the nearest boundary, forward likewise.
        let start = (0..i)
            .rev()
            .find(|&k| is_stmt_boundary(&t[k]))
            .map_or(0, |k| k + 1);
        let end = (i..t.len())
            .find(|&k| is_stmt_boundary(&t[k]))
            .unwrap_or(t.len());
        let feeds_sink = t[start..end]
            .iter()
            .any(|x| x.kind == TokKind::Ident && OBS_SINKS.contains(&x.text.as_str()));
        if !feeds_sink {
            push(
                findings,
                prep,
                tok.line,
                Lint::FloatState,
                format!(
                    "floating point (`{}`) in protocol state is not replay-stable across \
                     platforms; use integers or justify",
                    tok.text
                ),
            );
        }
    }
}

/// Cross-file protocol-surface lints: `wildcard-dispatch`,
/// `missing-dispatch-arm`, `unpaired-batch`, `milestone-parity`.
pub(crate) fn protocol_surface(preps: &[Prepared], findings: &mut Vec<Finding>) {
    // Message enums: any `*Msg` enum declared in a scanned crate. Key:
    // enum name → (owning crate, declaring file path, variants).
    struct MsgEnum<'a> {
        owner: String,
        decl_file: &'a str,
        variants: Vec<(String, u32)>,
    }
    let mut msg_enums: BTreeMap<&str, MsgEnum<'_>> = BTreeMap::new();
    for prep in preps {
        let Some(crate_name) = &prep.crate_name else {
            continue;
        };
        for e in &prep.enums {
            if e.name.ends_with("Msg") {
                msg_enums.insert(
                    &e.name,
                    MsgEnum {
                        owner: crate_name.clone(),
                        decl_file: &prep.path,
                        variants: e
                            .variants
                            .iter()
                            .map(|v| (v.name.clone(), v.line))
                            .collect(),
                    },
                );
            }
        }
    }

    // Walk every match everywhere: attribute it to a message enum when any
    // arm pattern references `ThatEnum::…`.
    let mut covered: BTreeMap<(String, String), BTreeSet<String>> = BTreeMap::new();
    for prep in preps {
        for m in &prep.matches {
            let mut enums_here: BTreeSet<&str> = BTreeSet::new();
            for arm in &m.arms {
                for (e, _) in arm_variant_paths(arm) {
                    if let Some((k, _)) = msg_enums.get_key_value(e.as_str()) {
                        enums_here.insert(k);
                    }
                }
            }
            if enums_here.is_empty() {
                continue;
            }
            for arm in &m.arms {
                if arm_is_wildcard(arm) {
                    let names: Vec<&str> = enums_here.iter().copied().collect();
                    findings.push(Finding {
                        file: prep.path.clone(),
                        line: arm.line,
                        lint: Lint::WildcardDispatch,
                        message: format!(
                            "wildcard arm in a dispatch over `{}`: new variants would be \
                             silently swallowed — list every no-op variant explicitly",
                            names.join("`/`")
                        ),
                    });
                }
                for (e, v) in arm_variant_paths(arm) {
                    if let Some(info) = msg_enums.get(e.as_str()) {
                        // Only dispatches inside the owning crate count as
                        // stack coverage.
                        if prep.crate_name.as_deref() == Some(info.owner.as_str()) {
                            covered
                                .entry((e.clone(), info.owner.clone()))
                                .or_default()
                                .insert(v);
                        }
                    }
                }
            }
        }
    }

    for (name, info) in &msg_enums {
        let empty = BTreeSet::new();
        let got = covered
            .get(&((*name).to_owned(), info.owner.clone()))
            .unwrap_or(&empty);
        // A declaration with no dispatch at all in its crate is a fixture
        // or pure data definition; only enforce coverage once the crate
        // dispatches the enum somewhere.
        if got.is_empty() {
            continue;
        }
        for (v, line) in &info.variants {
            if !got.contains(v) {
                findings.push(Finding {
                    file: info.decl_file.to_owned(),
                    line: *line,
                    lint: Lint::MissingDispatchArm,
                    message: format!(
                        "`{name}::{v}` has no explicit arm in any `crates/{}` dispatch",
                        info.owner
                    ),
                });
            }
        }
        // `unpaired-batch`: every `XBatch` needs an unbatched twin `X` (or
        // `XShard`, the broadcast form).
        let variant_names: BTreeSet<&str> = info.variants.iter().map(|(v, _)| v.as_str()).collect();
        for (v, line) in &info.variants {
            if let Some(base) = v.strip_suffix("Batch") {
                if base.is_empty() {
                    continue;
                }
                let shard = format!("{base}Shard");
                if !variant_names.contains(base) && !variant_names.contains(shard.as_str()) {
                    findings.push(Finding {
                        file: info.decl_file.to_owned(),
                        line: *line,
                        lint: Lint::UnpairedBatch,
                        message: format!(
                            "batched variant `{name}::{v}` has no unbatched twin \
                             (`{base}` or `{shard}`) — batching must be an optimization, \
                             not the only path"
                        ),
                    });
                }
            }
        }
    }

    milestone_parity(preps, findings);
}

/// `milestone-parity`: every `TxMilestone`/`CtrlMilestone` variant must be
/// stamped (referenced outside tests) by each of the three stacks. Stamps
/// in shared engine crates ([`SHARED_STAMPERS`]) count for every stack.
fn milestone_parity(preps: &[Prepared], findings: &mut Vec<Finding>) {
    for enum_name in ["TxMilestone", "CtrlMilestone"] {
        let Some((decl_file, variants)) = preps.iter().find_map(|p| {
            p.enums
                .iter()
                .find(|e| e.name == enum_name)
                .map(|e| (p.path.clone(), e.variants.clone()))
        }) else {
            continue;
        };

        // Which crates mention `Enum::Variant` outside tests?
        let mut stamped_in: BTreeMap<&str, BTreeSet<String>> = BTreeMap::new();
        for prep in preps {
            let Some(crate_name) = prep.crate_name.as_deref() else {
                continue;
            };
            if !STACKS.contains(&crate_name) && !SHARED_STAMPERS.contains(&crate_name) {
                continue;
            }
            let t = &prep.toks;
            for i in 0..t.len() {
                if t[i].is_ident(enum_name)
                    && t.get(i + 1).is_some_and(|a| a.is_punct(':'))
                    && t.get(i + 2).is_some_and(|a| a.is_punct(':'))
                    && t.get(i + 3).is_some_and(|a| a.kind == TokKind::Ident)
                {
                    stamped_in
                        .entry(crate_name)
                        .or_default()
                        .insert(t[i + 3].text.clone());
                }
            }
        }

        let empty = BTreeSet::new();
        for v in &variants {
            let shared = SHARED_STAMPERS
                .iter()
                .any(|c| stamped_in.get(c).unwrap_or(&empty).contains(&v.name));
            let missing: Vec<&str> = STACKS
                .iter()
                .copied()
                .filter(|s| !shared && !stamped_in.get(s).unwrap_or(&empty).contains(&v.name))
                .collect();
            if !missing.is_empty() {
                findings.push(Finding {
                    file: decl_file.clone(),
                    line: v.line,
                    lint: Lint::MilestoneParity,
                    message: format!(
                        "`{enum_name}::{}` is not stamped by stack(s) {} — cross-stack \
                         observability parity requires all of core/rdma/baseline",
                        v.name,
                        missing.join(", ")
                    ),
                });
            }
        }
    }
}
