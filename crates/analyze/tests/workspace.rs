//! Meta-tests against the live workspace: the tree must be clean (which,
//! because `malformed-allow`/`unused-allow` are findings, also proves every
//! suppression pragma carries a justification and earns its keep), and
//! seeding a known regression into a protocol crate must trip the gate.

use std::path::{Path, PathBuf};

use ratc_analyze::{analyze_files, collect_workspace, Lint, SourceFile};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/analyze sits two levels below the workspace root")
        .to_path_buf()
}

fn live_files() -> Vec<SourceFile> {
    let files = collect_workspace(&workspace_root()).expect("readable workspace");
    assert!(
        files.len() > 50,
        "workspace walk looks broken: only {} files found",
        files.len()
    );
    assert!(
        files
            .iter()
            .any(|f| f.path == "crates/types/src/certify.rs"),
        "certify.rs must be in scope"
    );
    assert!(
        !files.iter().any(|f| f.path.starts_with("crates/vendor/")),
        "vendor stubs must be excluded"
    );
    files
}

/// The gate the CI step enforces: zero findings on the live tree. Running
/// under `cargo test` means tier-1 itself fails if hygiene regresses.
#[test]
fn live_workspace_is_clean() {
    let files = live_files();
    let findings = analyze_files(&files);
    assert!(
        findings.is_empty(),
        "live workspace has findings:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Acceptance pin: a wildcard arm seeded into a stack's message dispatch is
/// caught. The mutation adds a new core file dispatching `Msg` with `_ =>`.
#[test]
fn seeded_wildcard_dispatch_trips_the_gate() {
    let mut files = live_files();
    files.push(SourceFile {
        path: "crates/core/src/seeded_mutation.rs".to_owned(),
        text: r#"
            use crate::messages::Msg;
            fn sloppy_dispatch(m: Msg) {
                match m {
                    Msg::Certify { .. } => {}
                    _ => {}
                }
            }
        "#
        .to_owned(),
    });
    let findings = analyze_files(&files);
    assert!(
        findings
            .iter()
            .any(|f| f.lint == Lint::WildcardDispatch
                && f.file == "crates/core/src/seeded_mutation.rs"),
        "seeded wildcard must be flagged, got:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Acceptance pin: unsorted `HashMap` iteration seeded into `certify.rs`
/// is caught at the seeded line.
#[test]
fn seeded_hash_iteration_in_certify_trips_the_gate() {
    let mut files = live_files();
    let certify = files
        .iter_mut()
        .find(|f| f.path == "crates/types/src/certify.rs")
        .expect("certify.rs present");
    certify.text.push_str(
        r#"
impl CommittedWriterIndex {
    fn seeded_mutation(&self) -> Vec<Key> {
        let mut out = Vec::new();
        for key in self.newest_writer.keys() {
            out.push(key.clone());
        }
        out
    }
}
"#,
    );
    let findings = analyze_files(&files);
    assert!(
        findings
            .iter()
            .any(|f| f.lint == Lint::HashIter && f.file == "crates/types/src/certify.rs"),
        "seeded hash iteration must be flagged, got:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Seeding wall-clock into a protocol crate is caught (the same class of
/// regression the TCP-transport tentpole could introduce).
#[test]
fn seeded_wall_clock_in_protocol_crate_trips_the_gate() {
    let mut files = live_files();
    files.push(SourceFile {
        path: "crates/rdma/src/seeded_mutation.rs".to_owned(),
        text: "fn t() -> std::time::Instant { std::time::Instant::now() }".to_owned(),
    });
    let findings = analyze_files(&files);
    assert!(findings
        .iter()
        .any(|f| f.lint == Lint::WallClock && f.file == "crates/rdma/src/seeded_mutation.rs"));
}

/// An allow pragma without a justification is itself a finding, so the
/// "zero unjustified allows" guarantee is enforced by `analyze` directly.
#[test]
fn seeded_unjustified_allow_trips_the_gate() {
    let mut files = live_files();
    files.push(SourceFile {
        path: "crates/core/src/seeded_mutation.rs".to_owned(),
        text: "// analyze:allow(hash-iter):\nfn f() {}".to_owned(),
    });
    let findings = analyze_files(&files);
    assert!(findings
        .iter()
        .any(|f| f.lint == Lint::MalformedAllow && f.file == "crates/core/src/seeded_mutation.rs"));
}
