//! Fixture self-tests: every known-bad snippet trips exactly its lint, and
//! the matching known-good snippet stays clean.

use ratc_analyze::{analyze_files, Finding, Lint, SourceFile};

/// Analyzes one snippet placed at `path`.
fn analyze_at(path: &str, text: &str) -> Vec<Finding> {
    analyze_files(&[SourceFile {
        path: path.to_owned(),
        text: text.to_owned(),
    }])
}

/// Analyzes a snippet in a protocol crate (determinism + clock scope).
fn analyze_protocol(text: &str) -> Vec<Finding> {
    analyze_at("crates/core/src/fixture.rs", text)
}

fn lints_of(findings: &[Finding]) -> Vec<Lint> {
    findings.iter().map(|f| f.lint).collect()
}

// ---------------------------------------------------------------- hash-iter

#[test]
fn hash_iter_flags_for_loop_over_map_field() {
    let findings = analyze_protocol(
        r#"
        use std::collections::HashMap;
        struct Locks { by_key: HashMap<u64, u32> }
        impl Locks {
            fn broadcast(&self) -> Vec<u64> {
                let mut out = Vec::new();
                for (k, _) in &self.by_key { out.push(*k); }
                out
            }
        }
        "#,
    );
    assert_eq!(lints_of(&findings), vec![Lint::HashIter]);
}

#[test]
fn hash_iter_flags_values_on_let_binding() {
    let findings = analyze_protocol(
        r#"
        fn collect_all() -> Vec<u64> {
            let table = std::collections::HashMap::new();
            table.values().cloned().collect::<Vec<u64>>()
        }
        "#,
    );
    assert_eq!(lints_of(&findings), vec![Lint::HashIter]);
}

#[test]
fn hash_iter_accepts_lookup_only_use() {
    let findings = analyze_protocol(
        r#"
        use std::collections::HashMap;
        struct Index { newest: HashMap<u64, u64> }
        impl Index {
            fn get(&self, k: u64) -> Option<u64> { self.newest.get(&k).copied() }
            fn put(&mut self, k: u64, v: u64) { self.newest.insert(k, v); }
        }
        "#,
    );
    assert!(
        findings.is_empty(),
        "lookup-only maps are fine: {findings:?}"
    );
}

#[test]
fn hash_iter_accepts_sorted_and_order_insensitive_iteration() {
    let findings = analyze_protocol(
        r#"
        use std::collections::HashMap;
        struct S { m: HashMap<u64, u64> }
        impl S {
            fn sorted_keys(&self) -> Vec<u64> {
                let mut keys: Vec<u64> = self.m.keys().copied().collect();
                keys.sort_unstable();
                keys
            }
            fn total(&self) -> u64 { self.m.values().sum() }
        }
        "#,
    );
    assert!(
        findings.is_empty(),
        "sorted/reduced iteration is fine: {findings:?}"
    );
}

#[test]
fn hash_iter_ignores_out_of_scope_crates_and_test_modules() {
    let bad = r#"
        use std::collections::HashMap;
        fn f(m: &HashMap<u64, u64>) -> Vec<u64> { m.values().copied().collect() }
    "#;
    // Out of determinism scope: the workload crate.
    assert!(analyze_at("crates/workload/src/fixture.rs", bad).is_empty());
    // In scope, but inside a #[cfg(test)] mod.
    let in_tests = format!("#[cfg(test)]\nmod tests {{ {bad} }}");
    assert!(analyze_protocol(&in_tests).is_empty());
}

// ------------------------------------------------- wall-clock / rng / thread

#[test]
fn wall_clock_flags_instant_now_and_system_time() {
    let findings = analyze_protocol(
        r#"
        fn stamp() -> std::time::Instant { std::time::Instant::now() }
        fn epoch() -> std::time::SystemTime { std::time::SystemTime::now() }
        "#,
    );
    // Instant::now once; SystemTime twice (type position and ::now).
    assert!(findings.len() >= 2);
    assert!(lints_of(&findings).iter().all(|&l| l == Lint::WallClock));
}

#[test]
fn wall_clock_exempts_the_rt_engine() {
    let findings = analyze_at(
        "crates/sim/src/rt.rs",
        "fn stamp() -> std::time::Instant { std::time::Instant::now() }",
    );
    assert!(
        findings.is_empty(),
        "rt.rs may use the wall clock: {findings:?}"
    );
}

#[test]
fn unseeded_rng_flags_thread_rng() {
    let findings = analyze_protocol("fn draw() -> u64 { rand::thread_rng().next_u64() }");
    assert_eq!(lints_of(&findings), vec![Lint::UnseededRng]);
}

#[test]
fn ad_hoc_thread_flags_spawn_and_mpsc() {
    let findings = analyze_protocol(
        r#"
        fn go() {
            let (tx, rx) = std::sync::mpsc::channel::<u64>();
            std::thread::spawn(move || tx.send(1));
            drop(rx);
        }
        "#,
    );
    assert!(findings.iter().any(|f| f.lint == Lint::AdHocThread));
    assert!(lints_of(&findings).iter().all(|&l| l == Lint::AdHocThread));
}

// -------------------------------------------------------------- float-state

#[test]
fn float_state_flags_float_fields_and_literals() {
    let findings = analyze_protocol(
        r#"
        struct Vote { weight: f64 }
        fn quorum() -> f64 { 0.5 }
        "#,
    );
    assert!(findings.iter().all(|f| f.lint == Lint::FloatState));
    assert!(findings.len() >= 2, "field type and literal both flagged");
}

#[test]
fn float_state_carves_out_observability_sinks() {
    let findings = analyze_protocol(
        r#"
        fn report(ctx: &mut Context, n: usize) {
            ctx.obs_gauge("obs_batch_occupancy", n as f64);
            ctx.record_sample("latency_ms", (n * 2) as f64);
        }
        "#,
    );
    assert!(
        findings.is_empty(),
        "obs sink floats are fine: {findings:?}"
    );
}

// -------------------------------------------------------- protocol surface

/// A minimal stack crate: an enum named `*Msg` plus a dispatch.
fn dispatch_fixture(match_body: &str) -> Vec<Finding> {
    analyze_at(
        "crates/core/src/fixture.rs",
        &format!(
            r#"
            pub enum FixMsg {{
                Certify,
                Prepare,
                Decide,
            }}
            fn dispatch(m: FixMsg) {{
                match m {{
                    {match_body}
                }}
            }}
            "#
        ),
    )
}

#[test]
fn wildcard_dispatch_flags_underscore_and_bare_binding() {
    let findings = dispatch_fixture("FixMsg::Certify => {}\n FixMsg::Prepare => {}\n _ => {}");
    assert!(findings.iter().any(|f| f.lint == Lint::WildcardDispatch));
    let findings =
        dispatch_fixture("FixMsg::Certify => {}\n FixMsg::Prepare => {}\n other => drop(other),");
    assert!(findings.iter().any(|f| f.lint == Lint::WildcardDispatch));
}

#[test]
fn missing_dispatch_arm_flags_uncovered_variant() {
    let findings = dispatch_fixture("FixMsg::Certify => {}\n FixMsg::Prepare => {}\n _ => {}");
    let missing: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.lint == Lint::MissingDispatchArm)
        .collect();
    assert_eq!(missing.len(), 1);
    assert!(missing[0].message.contains("FixMsg::Decide"));
}

#[test]
fn explicit_or_pattern_dispatch_is_clean() {
    let findings =
        dispatch_fixture("FixMsg::Certify => {}\n FixMsg::Prepare | FixMsg::Decide => {}");
    assert!(
        findings.is_empty(),
        "explicit total dispatch is clean: {findings:?}"
    );
}

#[test]
fn dispatch_outside_owning_crate_does_not_count_as_coverage() {
    let decl = SourceFile {
        path: "crates/core/src/messages_fix.rs".to_owned(),
        text: "pub enum FixMsg { Certify, Prepare }".to_owned(),
    };
    // The owner dispatches only `Certify`; a foreign crate dispatches both.
    let own_dispatch = SourceFile {
        path: "crates/core/src/replica_fix.rs".to_owned(),
        text: "fn d(m: FixMsg) { match m { FixMsg::Certify => {} } }".to_owned(),
    };
    let foreign_dispatch = SourceFile {
        path: "crates/workload/src/probe_fix.rs".to_owned(),
        text: "fn d(m: FixMsg) { match m { FixMsg::Certify => {}, FixMsg::Prepare => {} } }"
            .to_owned(),
    };
    let findings = analyze_files(&[decl, own_dispatch, foreign_dispatch]);
    let missing: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.lint == Lint::MissingDispatchArm)
        .collect();
    // `Prepare` is covered only outside the owning crate — still missing.
    assert_eq!(missing.len(), 1);
    assert!(missing[0].message.contains("FixMsg::Prepare"));
}

#[test]
fn unpaired_batch_flags_batch_without_twin() {
    let findings = analyze_at(
        "crates/core/src/fixture.rs",
        r#"
        pub enum FixMsg { VoteBatch, Decide }
        fn d(m: FixMsg) { match m { FixMsg::VoteBatch => {}, FixMsg::Decide => {} } }
        "#,
    );
    assert_eq!(
        findings
            .iter()
            .filter(|f| f.lint == Lint::UnpairedBatch)
            .count(),
        1
    );
}

#[test]
fn unpaired_batch_accepts_plain_and_shard_twins() {
    let findings = analyze_at(
        "crates/core/src/fixture.rs",
        r#"
        pub enum FixMsg { Prepare, PrepareBatch, DecisionShard, DecisionBatch }
        fn d(m: FixMsg) {
            match m {
                FixMsg::Prepare | FixMsg::PrepareBatch => {}
                FixMsg::DecisionShard | FixMsg::DecisionBatch => {}
            }
        }
        "#,
    );
    assert!(
        findings.is_empty(),
        "twinned batches are clean: {findings:?}"
    );
}

// --------------------------------------------------------- milestone parity

fn parity_files(baseline_stamps: bool, shared_stamps: bool) -> Vec<SourceFile> {
    let decl = SourceFile {
        path: "crates/obs/src/fix.rs".to_owned(),
        text: "pub enum TxMilestone { Submitted, Decided }".to_owned(),
    };
    let stamp = |krate: &str, body: &str| SourceFile {
        path: format!("crates/{krate}/src/fix.rs"),
        text: body.to_owned(),
    };
    let full = "fn s(ctx: &mut C) { ctx.m(TxMilestone::Submitted); ctx.m(TxMilestone::Decided); }";
    let partial = "fn s(ctx: &mut C) { ctx.m(TxMilestone::Submitted); }";
    let mut files = vec![
        decl,
        stamp("core", full),
        stamp("rdma", full),
        stamp("baseline", if baseline_stamps { full } else { partial }),
    ];
    if shared_stamps {
        files.push(stamp(
            "sim",
            "fn s(ctx: &mut C) { ctx.m(TxMilestone::Decided); }",
        ));
    }
    files
}

#[test]
fn milestone_parity_flags_stack_gap() {
    let findings = analyze_files(&parity_files(false, false));
    let parity: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.lint == Lint::MilestoneParity)
        .collect();
    assert_eq!(parity.len(), 1);
    assert!(parity[0].message.contains("Decided"));
    assert!(parity[0].message.contains("baseline"));
}

#[test]
fn milestone_parity_accepts_full_or_shared_stamping() {
    assert!(analyze_files(&parity_files(true, false)).is_empty());
    // A stamp in the shared sim/chaos engines counts for every stack.
    assert!(analyze_files(&parity_files(false, true)).is_empty());
}

// ------------------------------------------------------------------ pragmas

#[test]
fn allow_pragma_suppresses_trailing_and_next_line() {
    let text = r#"
        fn stamp() -> std::time::Instant { std::time::Instant::now() } // analyze:allow(wall-clock): fixture justification
        // analyze:allow(wall-clock): fixture justification
        fn stamp2() -> std::time::Instant { std::time::Instant::now() }
    "#;
    let findings = analyze_protocol(text);
    assert!(findings.is_empty(), "both forms suppress: {findings:?}");
}

#[test]
fn allow_file_pragma_covers_whole_file() {
    let text = r#"
        // analyze:allow-file(float-state): fixture justification
        struct A { x: f64 }
        struct B { y: f32 }
    "#;
    assert!(analyze_protocol(text).is_empty());
}

#[test]
fn allow_pragma_does_not_cover_other_lines_or_lints() {
    let text = r#"
        // analyze:allow(wall-clock): fixture justification
        fn fine() {}
        fn stamp() -> std::time::Instant { std::time::Instant::now() }
    "#;
    let findings = analyze_protocol(text);
    // The pragma targeted `fn fine()`: the real finding survives, and the
    // pragma is reported as unused (findings sort by line, pragma first).
    assert_eq!(
        lints_of(&findings),
        vec![Lint::UnusedAllow, Lint::WallClock]
    );
}

#[test]
fn malformed_allow_flags_unknown_lint_and_missing_justification() {
    let unknown = "// analyze:allow(no-such-lint): why\nfn f() {}";
    let findings = analyze_protocol(unknown);
    assert_eq!(lints_of(&findings), vec![Lint::MalformedAllow]);

    let empty = "// analyze:allow(wall-clock):\nfn f() {}";
    let findings = analyze_protocol(empty);
    assert_eq!(lints_of(&findings), vec![Lint::MalformedAllow]);

    let no_colon = "// analyze:allow(wall-clock)\nfn f() {}";
    let findings = analyze_protocol(no_colon);
    assert_eq!(lints_of(&findings), vec![Lint::MalformedAllow]);
}

#[test]
fn unused_allow_is_reported() {
    let findings = analyze_protocol("// analyze:allow(hash-iter): nothing here\nfn f() {}");
    assert_eq!(lints_of(&findings), vec![Lint::UnusedAllow]);
}

#[test]
fn findings_format_as_file_line_lint_message() {
    let findings = analyze_protocol("struct A { x: f64 }");
    assert_eq!(findings.len(), 1);
    let s = findings[0].to_string();
    assert!(
        s.starts_with("crates/core/src/fixture.rs:1 float-state: "),
        "display format is file:line lint-name: message, got {s}"
    );
}
