//! Unscripted rediscovery of the Figure 4a violation class.
//!
//! PR 0–3 replayed the paper's counterexample from a hand-written schedule.
//! Here the nemesis *finds* it: random seed-driven fault plans against the
//! RDMA stack under naive per-shard reconfiguration until one provokes
//! contradictory client decisions, which is then shrunk to a minimal
//! schedule. The same schedule is verified harmless under the correct global
//! reconfiguration — the paper's central claim, demonstrated adversarially.

use ratc_chaos::{find_naive_violation, reproduces_violation, Stack};

const MAX_SEEDS: u64 = 300;

#[test]
fn nemesis_rediscovers_and_shrinks_the_naive_reconfiguration_violation() {
    let result = find_naive_violation(MAX_SEEDS)
        .expect("the nemesis must find a contradictory-decision violation");

    // The report of the failing run names the violation class.
    assert!(
        result
            .report
            .safety_violations
            .iter()
            .any(|v| v.contains("contradictory decisions")),
        "violations: {:?}",
        result.report.safety_violations
    );

    // Acceptance criterion: the shrunk schedule is small and human-readable.
    assert!(
        result.shrunk.len() <= 6,
        "shrunk schedule has {} events:\n{}",
        result.shrunk.len(),
        result.shrunk
    );
    assert!(result.shrunk.noise.is_none(), "noise shrinks away");

    // The shrunk schedule still reproduces deterministically...
    let (again, _) = reproduces_violation(Stack::RdmaNaive, result.seed, &result.shrunk);
    assert!(again, "shrunk schedule must still reproduce");

    // ...and is 1-minimal: removing any single event loses the violation.
    for i in 0..result.shrunk.len() {
        let weaker = result.shrunk.without_event(i);
        let (still, _) = reproduces_violation(Stack::RdmaNaive, result.seed, &weaker);
        assert!(
            !still,
            "event {} ({}) is removable — the shrinker should have dropped it",
            i, result.shrunk.events[i].event
        );
    }

    // The very same schedule is harmless under the correct protocol: the
    // probe step closes RDMA connections, the stale write is rejected, and
    // the run ends safe and live.
    let (correct_repro, correct_report) =
        reproduces_violation(Stack::Rdma, result.seed, &result.shrunk);
    assert!(
        !correct_repro,
        "global reconfiguration must exclude the violation"
    );
    assert!(
        correct_report.ok(),
        "correct-mode run must be safe and live: violations={:?} undecided={:?}",
        correct_report.safety_violations,
        correct_report.undecided
    );
}

/// The hunt is deterministic: searching again finds the same seed and
/// shrinks to the same schedule.
#[test]
fn the_hunt_is_deterministic() {
    let a = find_naive_violation(MAX_SEEDS).expect("found once");
    let b = find_naive_violation(MAX_SEEDS).expect("found twice");
    assert_eq!(a.seed, b.seed);
    assert_eq!(a.plan, b.plan);
    assert_eq!(a.shrunk, b.shrunk);
    assert_eq!(a.report, b.report);
}
