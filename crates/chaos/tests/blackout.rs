//! E12 acceptance: the blackout matrix is live on every stack, and every
//! availability window a chaos soak derives nests inside its enclosing
//! fault→heal span of the merged control-plane event log.

use ratc_chaos::{blackout_experiment, BlackoutScenario, Stack};
use ratc_sim::CtrlMilestone;

const STACKS: [Stack; 3] = [Stack::Core, Stack::Rdma, Stack::Baseline];

/// Every E12 cell recovers (all submitted transactions decided, windows
/// closed), and each closed window is bracketed by the merged control-plane
/// stream: it opens at a degrading milestone no earlier than the injected
/// fault, stops degrading before it closes, and closes before the soak's
/// final `recovered` marker — i.e. the window nests inside the fault→heal
/// span.
#[test]
fn blackout_windows_nest_inside_their_fault_heal_span() {
    for stack in STACKS {
        for scenario in BlackoutScenario::ALL {
            let (result, ctrl, blackouts) = blackout_experiment(stack, scenario, 42);
            assert!(
                result.ok,
                "{stack:?} {scenario}: cell did not recover: {result}"
            );
            assert_eq!(
                result.unclosed_windows, 0,
                "{stack:?} {scenario}: unclosed availability window"
            );
            assert!(
                !ctrl.is_empty(),
                "{stack:?} {scenario}: merged ctrl stream is empty"
            );

            let first_fault = ctrl
                .iter()
                .filter(|e| e.milestone.degrades())
                .map(|e| e.at_micros)
                .min();
            let healed = ctrl
                .iter()
                .filter(|e| e.milestone == CtrlMilestone::Recovered)
                .map(|e| e.at_micros)
                .max();
            assert!(
                healed.is_some(),
                "{stack:?} {scenario}: soak never stamped recovery"
            );

            for blackout in &blackouts {
                assert!(
                    ctrl.iter().any(|e| e.at_micros == blackout.start_micros
                        && e.milestone == blackout.cause
                        && e.milestone.degrades()),
                    "{stack:?} {scenario}: window start {} not anchored to a \
                     degrading ctrl event",
                    blackout.start_micros
                );
                assert!(
                    Some(blackout.start_micros) >= first_fault,
                    "{stack:?} {scenario}: window precedes the injected fault"
                );
                let end = blackout
                    .end_micros
                    .expect("all windows closed (asserted above)");
                assert!(
                    end > blackout.last_degrade_micros,
                    "{stack:?} {scenario}: window closed while still degrading"
                );
                assert!(
                    Some(end) <= healed,
                    "{stack:?} {scenario}: window outlives the heal marker \
                     (end={end}, healed={healed:?})"
                );
            }

            // Degrading scenarios actually produce a measurable window on
            // every stack — even the masking baseline exposes a (short) one
            // for the crash scenarios.
            if matches!(
                scenario,
                BlackoutScenario::LeaderCrash | BlackoutScenario::PartitionHeal
            ) {
                assert!(
                    result.windows > 0,
                    "{stack:?} {scenario}: no availability window derived"
                );
            }
        }
    }
}
