//! Crash–restart recovery under load, per stack.
//!
//! A process crashed mid-traffic and later restarted recovers from what it
//! models as stable storage (checkpoint + suffix of the certification log,
//! or the durable Paxos state), re-establishes its connections, and the
//! cluster finishes every transaction without a reconfiguration being
//! strictly necessary. All four suites drive the same stack-agnostic
//! [`ChaosHarness`](ratc_chaos::ChaosHarness); only the stack selector and
//! the assertions differ.

use ratc_chaos::{build_harness, run_soak, FaultEvent, FaultPlan, SoakConfig, Stack, TimedFault};
use ratc_types::ShardId;

fn restart_plan(events: &[(u64, FaultEvent)]) -> FaultPlan {
    FaultPlan {
        noise: None,
        events: events
            .iter()
            .map(|(at_micros, event)| TimedFault {
                at_micros: *at_micros,
                event: event.clone(),
            })
            .collect(),
    }
}

fn leader_and_follower_restart_plan() -> FaultPlan {
    let s0 = ShardId::new(0);
    let s1 = ShardId::new(1);
    restart_plan(&[
        (5_000, FaultEvent::CrashLeader { shard: s0 }),
        (
            8_000,
            FaultEvent::CrashFollower {
                shard: s1,
                index: 0,
            },
        ),
        (14_000, FaultEvent::RestartCrashed),
        (20_000, FaultEvent::CrashCoordinator),
        (26_000, FaultEvent::RestartCrashed),
    ])
}

fn config() -> SoakConfig {
    SoakConfig {
        seed: 11,
        txs: 40,
        ..SoakConfig::default()
    }
}

#[test]
fn core_replicas_recover_from_checkpoint_and_suffix_under_load() {
    let mut harness = build_harness(Stack::Core, 2, 11, None);
    let report = run_soak(&mut harness, &config(), &leader_and_follower_restart_plan());
    assert!(
        report.ok(),
        "violations={:?} undecided={:?}",
        report.safety_violations,
        report.undecided
    );
    // Restarts actually exercised the recovery path (the counter is bumped
    // by `Replica::on_restart`, which rebuilds the certification index from
    // checkpoint + suffix).
    assert!(
        harness.cluster().counter("replica_restarts") >= 3,
        "expected at least three replica restarts"
    );
}

#[test]
fn rdma_replicas_reconnect_and_recover_under_load() {
    let mut harness = build_harness(Stack::Rdma, 2, 11, None);
    let report = run_soak(&mut harness, &config(), &leader_and_follower_restart_plan());
    assert!(
        report.ok(),
        "violations={:?} undecided={:?}",
        report.safety_violations,
        report.undecided
    );
    assert!(harness.cluster().counter("replica_restarts") >= 3);
}

#[test]
fn baseline_masks_a_follower_crash_and_recovers_leaders_by_restart() {
    let s0 = ShardId::new(0);
    // The minority follower crash is masked by Paxos without any repair; the
    // shard leader and the TM leader recover by restarting from their
    // durable Paxos state.
    let plan = restart_plan(&[
        (
            4_000,
            FaultEvent::CrashFollower {
                shard: s0,
                index: 0,
            },
        ),
        (9_000, FaultEvent::CrashLeader { shard: s0 }),
        (15_000, FaultEvent::RestartCrashed),
        (20_000, FaultEvent::CrashCoordinator), // the TM leader
        (26_000, FaultEvent::RestartCrashed),
    ]);
    let mut harness = build_harness(Stack::Baseline, 2, 11, None);
    let report = run_soak(&mut harness, &config(), &plan);
    assert!(
        report.ok(),
        "violations={:?} undecided={:?}",
        report.safety_violations,
        report.undecided
    );
    let cluster = harness.cluster();
    assert!(cluster.counter("replica_restarts") + cluster.counter("tm_restarts") >= 3);
}

/// A leader that crashes and restarts resumes leadership from its persisted
/// log — no reconfiguration required (the registry epoch never moves).
#[test]
fn core_leader_restart_resumes_without_reconfiguration() {
    let s0 = ShardId::new(0);
    let plan = restart_plan(&[
        (6_000, FaultEvent::CrashLeader { shard: s0 }),
        (12_000, FaultEvent::RestartCrashed),
    ]);
    let mut harness = build_harness(Stack::Core, 2, 23, None);
    let report = run_soak(&mut harness, &config(), &plan);
    assert!(
        report.ok(),
        "violations={:?} undecided={:?}",
        report.safety_violations,
        report.undecided
    );
    assert_eq!(
        harness.cluster().epoch_of(s0).as_u64(),
        0,
        "no reconfiguration should have been needed"
    );
}
