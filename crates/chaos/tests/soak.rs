//! The chaos soak suite: randomized fault schedules against all three
//! stacks, judged by the `ratc-spec::chaos` safety and liveness checkers.
//!
//! This is the acceptance suite of the chaos subsystem: ten fixed seeds per
//! stack, each soak mixing crashes, restarts, partitions, reconfigurations
//! and background drop/duplicate/delay noise with paced cross-shard traffic,
//! must finish with zero safety violations and full liveness once faults
//! lift.

use ratc_chaos::{
    build_harness, run_soak, ChaosHarness, FaultEvent, FaultPlan, LinkNoise, Nemesis,
    NemesisConfig, Profile, SoakConfig, SoakReport, Stack, TimedFault,
};
use ratc_core::batch::BatchingConfig;
use ratc_core::replica::TruncationConfig;
use ratc_harness::ClusterSpec;

fn soak(stack: Stack, seed: u64, intensity: u8) -> SoakReport {
    let nemesis = NemesisConfig {
        seed,
        intensity,
        events: 10,
        ..NemesisConfig::default()
    };
    let plan = Nemesis::generate(&nemesis);
    let mut harness = build_harness(stack, 2, seed, None);
    run_soak(
        &mut harness,
        &SoakConfig {
            seed,
            ..SoakConfig::default()
        },
        &plan,
    )
}

/// The headline acceptance criterion: ≥ 10 seeds × all three stacks, with
/// crashes, restarts, partitions and reconfigurations (plus noise), all safe
/// and fully live after recovery.
#[test]
fn fixed_seed_soaks_are_safe_and_live_on_all_stacks() {
    let mut failures = Vec::new();
    for stack in [Stack::Core, Stack::Rdma, Stack::Baseline] {
        for seed in 0..10u64 {
            let report = soak(stack, seed, 40);
            assert_eq!(report.submitted, 40, "{stack} seed={seed} lost submissions");
            if !report.ok() {
                failures.push(format!(
                    "{stack} seed={seed}: violations={:?} undecided={:?}\n  forensics:\n    {}",
                    report.safety_violations,
                    report.undecided,
                    report.forensics.join("\n    ")
                ));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "failing soaks:\n{}",
        failures.join("\n")
    );
}

/// Deterministic replay: the same seed produces the identical report —
/// including the step count, which fingerprints the whole event order.
#[test]
fn same_seed_reproduces_the_identical_soak() {
    for stack in [Stack::Core, Stack::Rdma, Stack::Baseline] {
        let a = soak(stack, 3, 40);
        let b = soak(stack, 3, 40);
        assert_eq!(a, b, "{stack}: same seed must replay identically");
        let c = soak(stack, 4, 40);
        assert_ne!(
            a.steps, c.steps,
            "{stack}: different seeds should execute different schedules"
        );
    }
}

/// Satellite regression: duplicate- and reorder-tolerance of every handler.
/// Duplicating *every* message (and, separately, heavily delaying a random
/// half, which reorders them past the FIFO floor) must leave all three
/// stacks safe and live. Before this PR the Paxos proposer counted a
/// duplicated `Promise` twice (see `ratc-paxos::proposer` for the pinned
/// unit test) and re-submitted transactions were silently swallowed by
/// coordinators and the baseline TM.
#[test]
fn duplicate_and_reorder_storms_are_harmless() {
    let storms = [
        (
            "duplicate-all",
            LinkNoise {
                drop: 0.0,
                duplicate: 1.0,
                delay: 0.0,
                max_delay_micros: 0,
            },
        ),
        (
            "reorder",
            LinkNoise {
                drop: 0.0,
                duplicate: 0.3,
                delay: 0.5,
                max_delay_micros: 3_000,
            },
        ),
        (
            "lossy",
            LinkNoise {
                drop: 0.3,
                duplicate: 0.3,
                delay: 0.3,
                max_delay_micros: 2_000,
            },
        ),
    ];
    for stack in [Stack::Core, Stack::Rdma, Stack::Baseline] {
        for (name, noise) in storms {
            let plan = FaultPlan {
                noise: Some(noise),
                events: vec![],
            };
            let mut harness = build_harness(stack, 2, 7, None);
            let report = run_soak(
                &mut harness,
                &SoakConfig {
                    seed: 7,
                    ..SoakConfig::default()
                },
                &plan,
            );
            assert!(
                report.ok(),
                "{stack} under {name} noise: violations={:?} undecided={:?}",
                report.safety_violations,
                report.undecided
            );
        }
    }
}

/// The batching × chaos soak matrix (ROADMAP item): the batched
/// certification pipeline under the nemesis, on every stack. Batched
/// re-delivery (duplicated `*_BATCH` messages), batch-timer races with
/// crashes and the truncation interplay must stay safe and fully live.
/// Submissions go through a fixed coordinator on the RATC stacks so
/// certifies actually coalesce into batches.
#[test]
fn batched_soaks_are_safe_and_live_on_all_stacks() {
    for stack in [Stack::Core, Stack::Rdma, Stack::Baseline] {
        for seed in 0..3u64 {
            let nemesis = NemesisConfig {
                seed,
                intensity: 40,
                events: 8,
                ..NemesisConfig::default()
            };
            let plan = Nemesis::generate(&nemesis);
            let spec = ClusterSpec::new(stack)
                .with_shards(2)
                .with_seed(seed)
                .with_truncation(TruncationConfig::with_batch(8))
                .with_batching(BatchingConfig::with_batch(8));
            let coordinator = if stack == Stack::Baseline {
                None
            } else {
                Some((ratc_types::ShardId::new(1), 1))
            };
            let mut harness = ChaosHarness::new(&spec, coordinator);
            let report = run_soak(
                &mut harness,
                &SoakConfig {
                    seed,
                    ..SoakConfig::default()
                },
                &plan,
            );
            assert!(
                report.ok(),
                "{stack} seed={seed} batched: violations={:?} undecided={:?}",
                report.safety_violations,
                report.undecided
            );
        }
    }
}

/// A short smoke variant for CI: three seeds per stack at high intensity.
#[test]
fn high_intensity_smoke() {
    for stack in [Stack::Core, Stack::Rdma, Stack::Baseline] {
        for seed in 20..23u64 {
            let report = soak(stack, seed, 80);
            assert!(
                report.ok(),
                "{stack} seed={seed}: violations={:?} undecided={:?}",
                report.safety_violations,
                report.undecided
            );
        }
    }
}

/// Overload as a first-class fault (hand-written plan): two open-loop bursts
/// land while a follower is down, on every stack. The flow-control layer —
/// admission windows, retry backoff, adaptive batching — must absorb the
/// bursts without a single safety violation, and every burst transaction
/// must decide once the crash heals: the soak's liveness check covers the
/// burst range like any other submission.
#[test]
fn overload_bursts_under_crashes_stay_safe_and_live() {
    let plan = FaultPlan {
        noise: None,
        events: vec![
            TimedFault {
                at_micros: 5_000,
                event: FaultEvent::OverloadBurst { depth: 300 },
            },
            TimedFault {
                at_micros: 10_000,
                event: FaultEvent::CrashFollower {
                    shard: ratc_types::ShardId::new(0),
                    index: 0,
                },
            },
            TimedFault {
                at_micros: 20_000,
                event: FaultEvent::OverloadBurst { depth: 200 },
            },
            TimedFault {
                at_micros: 30_000,
                event: FaultEvent::RestartCrashed,
            },
        ],
    };
    for stack in [Stack::Core, Stack::Rdma, Stack::Baseline] {
        let mut harness = build_harness(stack, 2, 11, None);
        let report = run_soak(
            &mut harness,
            &SoakConfig {
                seed: 11,
                ..SoakConfig::default()
            },
            &plan,
        );
        assert!(
            report.submitted > 500,
            "{stack}: bursts not recorded ({} submissions)",
            report.submitted
        );
        assert!(
            report.ok(),
            "{stack} overload: violations={:?} undecided={:?}",
            report.safety_violations,
            report.undecided
        );
    }
}

/// The randomized overload soak: `Profile::Overload` plans (bursts mixed
/// with crashes, restarts and partitions) across seeds and stacks.
#[test]
fn overload_profile_soaks_are_safe_and_live() {
    for stack in [Stack::Core, Stack::Rdma, Stack::Baseline] {
        for seed in 0..3u64 {
            let nemesis = NemesisConfig {
                seed,
                events: 5,
                profile: Profile::Overload,
                ..NemesisConfig::default()
            };
            let plan = Nemesis::generate(&nemesis);
            let mut harness = build_harness(stack, 2, seed, None);
            let report = run_soak(
                &mut harness,
                &SoakConfig {
                    seed,
                    ..SoakConfig::default()
                },
                &plan,
            );
            assert!(
                report.ok(),
                "{stack} seed={seed} overload-profile: violations={:?} undecided={:?}",
                report.safety_violations,
                report.undecided
            );
        }
    }
}
