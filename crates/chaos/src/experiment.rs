//! E9: availability under fault injection — throughput and recovery time vs.
//! fault intensity, for all three stacks. E12: the time-to-recover matrix —
//! per-shard availability windows (blackouts) under four canonical
//! degradations, derived from the control-plane event stream.

use std::fmt;

use ratc_sim::{Blackout, CtrlEvent};
use ratc_types::ShardId;

use crate::driver::{run_soak, SoakConfig, SoakReport};
use crate::harness::{build_harness, Stack};
use crate::nemesis::{Nemesis, NemesisConfig, Profile};
use crate::plan::{FaultEvent, FaultPlan, TimedFault};

/// Result of one E9 cell: one stack at one fault intensity.
#[derive(Debug, Clone)]
pub struct AvailabilityResult {
    /// The stack measured.
    pub stack: Stack,
    /// Fault intensity in `[0, 100]` (scales noise and event count).
    pub intensity: u8,
    /// Transactions submitted.
    pub submitted: usize,
    /// Transactions committed.
    pub committed: usize,
    /// Commit throughput during the fault window, in commits per simulated
    /// millisecond.
    pub commits_per_milli: f64,
    /// Simulated recovery time after faults lift, in microseconds.
    pub recovery_micros: u64,
    /// Total simulated time shards spent dark, in microseconds: the sum of
    /// every closed per-shard availability window (first degrading
    /// control-plane event → first decision after the last one).
    pub blackout_micros: u64,
    /// Worst-case time-to-recover across closed availability windows, in
    /// microseconds: from a window's last degrading event to the first
    /// decision that closed it. `0` when no window closed.
    pub time_to_recover_micros: u64,
    /// Messages delivered per decided transaction, per message type
    /// (`(label, msgs/tx)`, sorted by label). Empty when nothing decided.
    pub msgs_per_tx: Vec<(String, f64)>,
    /// Whether the run was safe and live.
    pub ok: bool,
}

impl fmt::Display for AvailabilityResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<12} intensity={:<3} committed={:>3}/{:<3} throughput={:>6.2}/ms \
             recovery={:>7}us blackout={:>7}us ttr={:>7}us ok={}",
            self.stack.to_string(),
            self.intensity,
            self.committed,
            self.submitted,
            self.commits_per_milli,
            self.recovery_micros,
            self.blackout_micros,
            self.time_to_recover_micros,
            self.ok
        )
    }
}

/// Runs one E9 cell: a fixed-seed soak of `stack` at `intensity`.
pub fn availability_experiment(stack: Stack, intensity: u8, seed: u64) -> AvailabilityResult {
    let soak = SoakConfig {
        seed,
        txs: 60,
        keys: 96,
        keys_per_tx: 2,
        interval_micros: 700,
        recovery_rounds: 12,
    };
    let nemesis = NemesisConfig {
        seed,
        shards: 2,
        members_per_shard: 2,
        window_micros: soak.txs as u64 * soak.interval_micros,
        events: 2 + (usize::from(intensity) / 12),
        intensity,
        profile: Profile::Default,
    };
    let plan = Nemesis::generate(&nemesis);
    let mut harness = build_harness(stack, 2, seed, None);
    let report: SoakReport = run_soak(&mut harness, &soak, &plan);
    let window_millis = (nemesis.window_micros as f64 / 1_000.0).max(f64::EPSILON);
    // Availability windows come from the control-plane event stream the soak
    // recorded (observability is on for every chaos harness).
    let blackouts = harness.blackouts();
    let blackout_micros = blackouts.iter().filter_map(|b| b.duration_micros()).sum();
    let time_to_recover_micros = blackouts
        .iter()
        .filter_map(|b| b.time_to_recover_micros())
        .max()
        .unwrap_or(0);
    let decided = report.decided;
    let msgs_per_tx = if decided == 0 {
        Vec::new()
    } else {
        harness
            .cluster()
            .msg_type_counters()
            .into_iter()
            .map(|(label, counters)| (label, counters.delivered as f64 / decided as f64))
            .collect()
    };
    AvailabilityResult {
        stack,
        intensity,
        submitted: report.submitted,
        committed: report.committed,
        commits_per_milli: report.committed as f64 / window_millis,
        recovery_micros: report.recovery_micros,
        blackout_micros,
        time_to_recover_micros,
        msgs_per_tx,
        ok: report.ok(),
    }
}

// ---------------------------------------------------------------------------
// E12 (blackout): time-to-recover matrix from the control-plane stream
// ---------------------------------------------------------------------------

/// One canonical degradation of the E12 blackout matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlackoutScenario {
    /// Crash the leader of shard 0 mid-stream (restarted when faults lift).
    LeaderCrash,
    /// Initiate a per-shard reconfiguration of shard 0 mid-stream (a no-op
    /// on stacks without reconfiguration).
    ShardReconfig,
    /// Initiate a global reconfiguration mid-stream (per-shard stacks
    /// reconfigure every shard).
    GlobalReconfig,
    /// Partition the leader of shard 0 away from everyone, then heal the
    /// partition 10 simulated milliseconds later.
    PartitionHeal,
}

impl BlackoutScenario {
    /// Every scenario of the matrix, in reporting order.
    pub const ALL: [BlackoutScenario; 4] = [
        BlackoutScenario::LeaderCrash,
        BlackoutScenario::ShardReconfig,
        BlackoutScenario::GlobalReconfig,
        BlackoutScenario::PartitionHeal,
    ];

    /// Stable kebab-case label (used in tables and JSON rows).
    pub fn as_str(&self) -> &'static str {
        match self {
            BlackoutScenario::LeaderCrash => "leader-crash",
            BlackoutScenario::ShardReconfig => "shard-reconfig",
            BlackoutScenario::GlobalReconfig => "global-reconfig",
            BlackoutScenario::PartitionHeal => "partition-heal",
        }
    }
}

impl fmt::Display for BlackoutScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Result of one E12 cell: one stack under one scenario.
#[derive(Debug, Clone)]
pub struct BlackoutResult {
    /// The stack measured.
    pub stack: Stack,
    /// The degradation injected.
    pub scenario: BlackoutScenario,
    /// Transactions submitted.
    pub submitted: usize,
    /// Transactions committed.
    pub committed: usize,
    /// Total simulated time shards spent dark (sum of closed availability
    /// windows), in microseconds.
    pub blackout_micros: u64,
    /// Worst-case time-to-recover across closed windows (last degrading
    /// event → first decision after it), in microseconds.
    pub time_to_recover_micros: u64,
    /// Availability windows observed (closed + unclosed).
    pub windows: usize,
    /// Windows never closed by a post-degradation decision. `0` in a
    /// recovered run with per-shard traffic after the fault.
    pub unclosed_windows: usize,
    /// Control-plane events recorded (faults + protocol milestones).
    pub ctrl_events: usize,
    /// Messages delivered per decided transaction, per message type
    /// (`(label, msgs/tx)`, sorted by label).
    pub msgs_per_tx: Vec<(String, f64)>,
    /// Whether the run was safe and live.
    pub ok: bool,
}

impl fmt::Display for BlackoutResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<12} {:<16} committed={:>3}/{:<3} blackout={:>7}us ttr={:>7}us \
             windows={:<2} ctrl_events={:<3} ok={}",
            self.stack.to_string(),
            self.scenario.to_string(),
            self.committed,
            self.submitted,
            self.blackout_micros,
            self.time_to_recover_micros,
            self.windows,
            self.ctrl_events,
            self.ok
        )
    }
}

/// The fault plan of one E12 scenario: a single degradation injected at
/// `at_micros` (plus its paired heal, for [`BlackoutScenario::PartitionHeal`]).
fn blackout_plan(scenario: BlackoutScenario, at_micros: u64) -> FaultPlan {
    let shard = ShardId::new(0);
    let events = match scenario {
        BlackoutScenario::LeaderCrash => vec![TimedFault {
            at_micros,
            event: FaultEvent::CrashLeader { shard },
        }],
        BlackoutScenario::ShardReconfig => vec![TimedFault {
            at_micros,
            event: FaultEvent::Reconfigure { shard },
        }],
        BlackoutScenario::GlobalReconfig => vec![TimedFault {
            at_micros,
            event: FaultEvent::GlobalReconfigure,
        }],
        BlackoutScenario::PartitionHeal => vec![
            TimedFault {
                at_micros,
                event: FaultEvent::PartitionLeader { shard },
            },
            TimedFault {
                at_micros: at_micros + 10_000,
                event: FaultEvent::HealFaults,
            },
        ],
    };
    FaultPlan {
        noise: None,
        events,
    }
}

/// Runs one E12 cell: a fixed-seed paced workload on `stack` with a single
/// `scenario` degradation injected a third of the way through, healed and
/// recovered by the soak driver. Availability windows, time-to-recover and
/// the control-plane event count all come from the cluster's control-plane
/// observability stream; the raw stream and windows are returned alongside
/// the summary for exporters and span-bracketing checks.
pub fn blackout_experiment(
    stack: Stack,
    scenario: BlackoutScenario,
    seed: u64,
) -> (BlackoutResult, Vec<CtrlEvent>, Vec<Blackout>) {
    let soak = SoakConfig {
        seed,
        txs: 60,
        keys: 96,
        keys_per_tx: 2,
        interval_micros: 700,
        recovery_rounds: 12,
    };
    let window_micros = soak.txs as u64 * soak.interval_micros;
    let plan = blackout_plan(scenario, window_micros / 3);
    let mut harness = build_harness(stack, 2, seed, None);
    let report: SoakReport = run_soak(&mut harness, &soak, &plan);
    let ctrl = harness.ctrl_events();
    let blackouts = harness.blackouts();
    let blackout_micros = blackouts.iter().filter_map(|b| b.duration_micros()).sum();
    let time_to_recover_micros = blackouts
        .iter()
        .filter_map(|b| b.time_to_recover_micros())
        .max()
        .unwrap_or(0);
    let unclosed_windows = blackouts.iter().filter(|b| b.end_micros.is_none()).count();
    let decided = report.decided;
    let msgs_per_tx = if decided == 0 {
        Vec::new()
    } else {
        harness
            .cluster()
            .msg_type_counters()
            .into_iter()
            .map(|(label, counters)| (label, counters.delivered as f64 / decided as f64))
            .collect()
    };
    let result = BlackoutResult {
        stack,
        scenario,
        submitted: report.submitted,
        committed: report.committed,
        blackout_micros,
        time_to_recover_micros,
        windows: blackouts.len(),
        unclosed_windows,
        ctrl_events: ctrl.len(),
        msgs_per_tx,
        ok: report.ok(),
    };
    (result, ctrl, blackouts)
}
