//! E9: availability under fault injection — throughput and recovery time vs.
//! fault intensity, for all three stacks.

use std::fmt;

use crate::driver::{run_soak, SoakConfig, SoakReport};
use crate::harness::{build_harness, Stack};
use crate::nemesis::{Nemesis, NemesisConfig, Profile};

/// Result of one E9 cell: one stack at one fault intensity.
#[derive(Debug, Clone)]
pub struct AvailabilityResult {
    /// The stack measured.
    pub stack: Stack,
    /// Fault intensity in `[0, 100]` (scales noise and event count).
    pub intensity: u8,
    /// Transactions submitted.
    pub submitted: usize,
    /// Transactions committed.
    pub committed: usize,
    /// Commit throughput during the fault window, in commits per simulated
    /// millisecond.
    pub commits_per_milli: f64,
    /// Simulated recovery time after faults lift, in microseconds.
    pub recovery_micros: u64,
    /// Whether the run was safe and live.
    pub ok: bool,
}

impl fmt::Display for AvailabilityResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<12} intensity={:<3} committed={:>3}/{:<3} throughput={:>6.2}/ms \
             recovery={:>7}us ok={}",
            self.stack.to_string(),
            self.intensity,
            self.committed,
            self.submitted,
            self.commits_per_milli,
            self.recovery_micros,
            self.ok
        )
    }
}

/// Runs one E9 cell: a fixed-seed soak of `stack` at `intensity`.
pub fn availability_experiment(stack: Stack, intensity: u8, seed: u64) -> AvailabilityResult {
    let soak = SoakConfig {
        seed,
        txs: 60,
        keys: 96,
        keys_per_tx: 2,
        interval_micros: 700,
        recovery_rounds: 12,
    };
    let nemesis = NemesisConfig {
        seed,
        shards: 2,
        members_per_shard: 2,
        window_micros: soak.txs as u64 * soak.interval_micros,
        events: 2 + (usize::from(intensity) / 12),
        intensity,
        profile: Profile::Default,
    };
    let plan = Nemesis::generate(&nemesis);
    let mut harness = build_harness(stack, 2, seed, None);
    let report: SoakReport = run_soak(&mut harness, &soak, &plan);
    let window_millis = (nemesis.window_micros as f64 / 1_000.0).max(f64::EPSILON);
    AvailabilityResult {
        stack,
        intensity,
        submitted: report.submitted,
        committed: report.committed,
        commits_per_milli: report.committed as f64 / window_millis,
        recovery_micros: report.recovery_micros,
        ok: report.ok(),
    }
}
