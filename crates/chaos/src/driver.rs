//! The soak driver: paced workload + fault plan → safety/liveness report.
//!
//! A soak interleaves a paced `ratc-workload` transaction stream with the
//! discrete events of a [`FaultPlan`] on one simulated cluster, then lifts
//! the faults and drives recovery:
//!
//! 1. heal every link fault and partition, restart every crashed process;
//! 2. repeatedly quiesce, re-drive reconfigurations until every shard is
//!    operational ([`ChaosHarness::stabilize`]) and re-submit transactions
//!    the client never saw decided (the client retry of the TCS model);
//! 3. check the observed history with the `ratc-spec` chaos checkers.
//!
//! Everything is deterministic per `(stack, seed, plan)`.

use std::fmt;

use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use ratc_sim::SimDuration;
use ratc_types::{Serializability, TxId};
use ratc_workload::WorkloadSpec;

use crate::harness::ChaosHarness;
use crate::plan::FaultPlan;

/// Cap on control-plane events attached to a failing report's forensics (the
/// tail is kept — the events nearest the failure).
const CTRL_FORENSICS_CAP: usize = 40;

/// Configuration of one soak run.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakConfig {
    /// Seed for the workload generator (fault plans carry their own seed).
    pub seed: u64,
    /// Number of transactions to submit.
    pub txs: usize,
    /// Number of distinct keys (smaller = more conflicts).
    pub keys: usize,
    /// Keys per transaction (2+ makes most transactions cross-shard).
    pub keys_per_tx: usize,
    /// Mean spacing between submissions, in microseconds.
    pub interval_micros: u64,
    /// Recovery rounds after faults lift before liveness is judged.
    pub recovery_rounds: usize,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            seed: 0,
            txs: 40,
            keys: 64,
            keys_per_tx: 2,
            interval_micros: 800,
            recovery_rounds: 12,
        }
    }
}

/// Outcome of one soak run.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakReport {
    /// The stack that ran.
    pub stack: String,
    /// The workload seed.
    pub seed: u64,
    /// Transactions submitted.
    pub submitted: usize,
    /// Transactions decided by the end of recovery.
    pub decided: usize,
    /// Transactions committed.
    pub committed: usize,
    /// Safety violations (client-observed + history checker). Empty in a
    /// correct run.
    pub safety_violations: Vec<String>,
    /// Transactions still undecided after recovery (liveness violations).
    pub undecided: Vec<TxId>,
    /// Discrete fault events applied.
    pub fault_events: usize,
    /// Simulated time from the end of the fault window to full recovery, in
    /// microseconds.
    pub recovery_micros: u64,
    /// Total simulation events executed (a determinism fingerprint).
    pub steps: u64,
    /// Forensics of a failing run: one rendered lifecycle timeline per
    /// transaction implicated in a failure (safety violation or undecided),
    /// followed by the control-plane context — the tail of the merged
    /// fault/reconfiguration/recovery event log (`ctrl:` lines) and the
    /// per-shard availability windows (`blackout:` lines). Empty when the
    /// soak is [`ok`](SoakReport::ok).
    pub forensics: Vec<String>,
}

impl SoakReport {
    /// `true` if no safety violation was observed.
    pub fn safe(&self) -> bool {
        self.safety_violations.is_empty()
    }

    /// `true` if every submitted transaction was decided.
    pub fn live(&self) -> bool {
        self.undecided.is_empty()
    }

    /// `true` if the soak was both safe and live.
    pub fn ok(&self) -> bool {
        self.safe() && self.live()
    }
}

impl fmt::Display for SoakReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<16} seed={:<4} txs={:<4} decided={:<4} committed={:<4} faults={:<3} \
             recovery={:>6}us safe={} live={}",
            self.stack,
            self.seed,
            self.submitted,
            self.decided,
            self.committed,
            self.fault_events,
            self.recovery_micros,
            self.safe(),
            self.live()
        )
    }
}

/// Lets the cluster settle: advances time in bounded slices until a whole
/// slice executes no event. Unlike an unbounded run-to-quiescence this
/// terminates even while retry or reconfiguration timers are still looping
/// (a broken shard keeps its repair timers alive until `stabilize` fixes it,
/// which is exactly what the recovery loop interleaves with).
fn settle(harness: &mut ChaosHarness) {
    for _ in 0..200 {
        let before = harness.steps();
        harness.run_for(SimDuration::from_millis(25));
        if harness.steps() == before {
            return;
        }
    }
}

/// Runs one soak: `config`'s workload under `plan`'s faults on `harness`.
pub fn run_soak(harness: &mut ChaosHarness, config: &SoakConfig, plan: &FaultPlan) -> SoakReport {
    let spec = WorkloadSpec {
        key_count: config.keys,
        keys_per_tx: config.keys_per_tx,
        write_fraction: 1.0,
        tx_count: config.txs,
        distribution: ratc_workload::KeyDistribution::Uniform,
    };
    let mut rng = ChaCha12Rng::seed_from_u64(config.seed);
    let arrivals = spec.generate_paced(
        &mut rng,
        SimDuration::from_micros(config.interval_micros.max(1)),
    );

    harness.set_noise(plan.noise);

    // Merge the submission timeline with the fault timeline.
    let start = harness.now_micros();
    let mut submissions = arrivals.into_iter().peekable();
    let mut faults = plan.events.iter().peekable();
    let mut applied = 0usize;
    loop {
        let next_submit = submissions.peek().map(|(at, _, _)| at.as_micros());
        let next_fault = faults.peek().map(|f| f.at_micros);
        let next = match (next_submit, next_fault) {
            (None, None) => break,
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (Some(a), Some(b)) => a.min(b),
        };
        let target = start + next;
        let now = harness.now_micros();
        if target > now {
            harness.run_for(SimDuration::from_micros(target - now));
        }
        if next_submit == Some(next) {
            let (_, tx, payload) = submissions.next().expect("peeked");
            harness.submit(tx, payload);
        } else {
            let fault = faults.next().expect("peeked");
            harness.apply(&fault.event);
            applied += 1;
        }
    }

    // Fault window over: lift the noise, heal everything and drive recovery.
    let fault_end = harness.now_micros();
    harness.set_noise(None);
    harness.heal();
    let mut recovered_at = fault_end;
    for _ in 0..config.recovery_rounds.max(1) {
        settle(harness);
        let stable = harness.stabilize();
        settle(harness);
        recovered_at = harness.now_micros();
        let undecided: Vec<TxId> = harness.history().undecided().collect();
        if stable && undecided.is_empty() {
            harness.stamp_recovered();
            break;
        }
        for tx in undecided {
            harness.resubmit(tx);
        }
    }
    // The final round may have re-submitted transactions: give them one last
    // settle before judging liveness, so that work is not dead on the queue.
    settle(harness);

    let history = harness.history();
    let verdict = ratc_spec::check_chaos_run(
        &history,
        &Serializability::new(),
        &harness.client_violations(),
    );
    // A failing soak ships the commit-path story of every implicated
    // transaction: the undecided set, plus any transaction a safety
    // violation names.
    let mut implicated: Vec<TxId> = verdict.undecided.clone();
    for violation in &verdict.safety_violations {
        implicated.extend(
            history
                .undecided()
                .chain(history.committed())
                .chain(history.aborted())
                .filter(|tx| violation.contains(&format!("tx {}", tx.as_u64()))),
        );
    }
    implicated.sort_unstable();
    implicated.dedup();
    let forensics = if verdict.safety_violations.is_empty() && verdict.undecided.is_empty() {
        Vec::new()
    } else {
        // Commit-path timelines of the implicated transactions, then the
        // control-plane story: which faults landed, what the protocol did
        // about them, and how long each shard was dark.
        let mut forensics = harness.timeline_forensics(&implicated);
        forensics.extend(harness.ctrl_forensics(CTRL_FORENSICS_CAP));
        forensics
    };
    SoakReport {
        stack: harness.stack().to_string(),
        seed: config.seed,
        submitted: history.certify_count(),
        decided: history.decide_count(),
        committed: history.committed().count(),
        safety_violations: verdict.safety_violations,
        undecided: verdict.undecided,
        fault_events: applied,
        recovery_micros: recovered_at.saturating_sub(fault_end),
        steps: harness.steps(),
        forensics,
    }
}
