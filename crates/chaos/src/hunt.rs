//! Hunting the Figure 4a violation class without a script.
//!
//! PR 0–3 replayed the paper's Figure 4a counterexample from a hand-written
//! schedule (`ratc-workload::counterexample`). The nemesis instead
//! *rediscovers* the violation class by random search: seed-driven
//! [`Profile::NaiveHunt`](crate::nemesis::Profile) plans against the RDMA
//! stack under [`ReconfigMode::NaivePerShard`](ratc_rdma::ReconfigMode),
//! until some seed's schedule
//! lines a slow stale coordinator up with a per-shard reconfiguration and an
//! environment retry — at which point the client observes contradictory
//! decisions. The found schedule is then shrunk to a minimal counterexample.
//!
//! Under `ReconfigMode::GlobalCorrect` the very same plans are harmless:
//! probing closes the RDMA connections, the stale write is rejected, and only
//! one decision is ever externalised (verified by a regression test).

use ratc_types::ShardId;

use crate::driver::{run_soak, SoakConfig, SoakReport};
use crate::harness::{build_harness, Stack};
use crate::nemesis::{Nemesis, NemesisConfig, Profile};
use crate::plan::FaultPlan;
use crate::shrink::shrink_plan;

/// Outcome of a successful hunt.
#[derive(Debug, Clone)]
pub struct HuntResult {
    /// The seed whose schedule provoked the violation.
    pub seed: u64,
    /// The full generated plan.
    pub plan: FaultPlan,
    /// The plan shrunk to a minimal failing schedule.
    pub shrunk: FaultPlan,
    /// The report of the failing run (under the full plan).
    pub report: SoakReport,
}

/// Soak configuration used by the hunt: a fixed coordinator (the prospective
/// stale coordinator) submitting cross-shard transactions.
pub fn hunt_soak_config(seed: u64) -> SoakConfig {
    SoakConfig {
        seed,
        txs: 24,
        keys: 48,
        keys_per_tx: 2,
        interval_micros: 600,
        recovery_rounds: 12,
    }
}

fn hunt_nemesis_config(seed: u64) -> NemesisConfig {
    NemesisConfig {
        seed,
        shards: 2,
        members_per_shard: 2,
        window_micros: 15_000,
        events: 7,
        intensity: 0,
        profile: Profile::NaiveHunt,
    }
}

/// The fixed coordinator of a hunt soak: the plan's slow-fabric victim (the
/// prospective stale coordinator, like the paper's `p_c`), defaulting to a
/// follower of shard 0 for plans without a `DelayRdmaOutbound` event.
fn hunt_coordinator(plan: &FaultPlan) -> (ShardId, usize) {
    plan.events
        .iter()
        .find_map(|f| match f.event {
            crate::plan::FaultEvent::DelayRdmaOutbound { shard, index, .. } => Some((shard, index)),
            _ => None,
        })
        .unwrap_or((ShardId::new(0), 1))
}

/// Runs one hunt soak of `plan` against the given reconfiguration stack and
/// returns whether the client observed contradictory decisions.
pub fn reproduces_violation(stack: Stack, seed: u64, plan: &FaultPlan) -> (bool, SoakReport) {
    let mut harness = build_harness(stack, 2, seed, Some(hunt_coordinator(plan)));
    let report = run_soak(&mut harness, &hunt_soak_config(seed), plan);
    let contradictory = report
        .safety_violations
        .iter()
        .any(|v| v.contains("contradictory"));
    (contradictory, report)
}

/// Searches seeds `0..max_seeds` for a naive-mode violation and shrinks the
/// first hit. Returns `None` if no seed provokes one.
pub fn find_naive_violation(max_seeds: u64) -> Option<HuntResult> {
    for seed in 0..max_seeds {
        let plan = Nemesis::generate(&hunt_nemesis_config(seed));
        let (found, report) = reproduces_violation(Stack::RdmaNaive, seed, &plan);
        if !found {
            continue;
        }
        let shrunk = shrink_plan(&plan, |candidate| {
            reproduces_violation(Stack::RdmaNaive, seed, candidate).0
        });
        return Some(HuntResult {
            seed,
            plan,
            shrunk,
            report,
        });
    }
    None
}
