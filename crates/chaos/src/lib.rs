//! Chaos nemesis for the RATC stacks: randomized fault injection,
//! crash-restart recovery and automatic schedule shrinking.
//!
//! The paper's central claim is that reconfiguration lets the commit protocol
//! ride out failures that block classic 2PC. This crate validates that claim
//! *adversarially*, against all three TCS implementations in the workspace
//! (`ratc-core`, `ratc-rdma`, `ratc-baseline`):
//!
//! * [`plan`] — deterministic, serializable, human-readable fault schedules:
//!   crashes and restarts of leaders/followers/coordinators, asymmetric link
//!   cuts, slow RDMA fabrics, leader partitions, mid-flight per-shard and
//!   global reconfigurations, environment-driven retries, plus fabric-wide
//!   drop/duplicate/delay noise;
//! * [`nemesis`] — the seed-driven plan generator (same seed, same plan);
//! * [`harness`] — one stack-agnostic adapter over the unified
//!   [`TcsCluster`](ratc_harness::TcsCluster) facade, resolving role-based
//!   fault targets and driving recovery on any stack;
//! * [`driver`] — the soak loop: paced `ratc-workload` traffic under a fault
//!   plan, then heal → restart → stabilise → re-submit, judged by the
//!   `ratc-spec::chaos` safety and liveness checkers;
//! * [`shrink`] — greedy minimization of a failing plan to a small
//!   counterexample schedule;
//! * [`hunt`] — unscripted rediscovery of the Figure 4a violation class
//!   under naive per-shard reconfiguration, shrunk to a minimal schedule;
//! * [`experiment`] — E9: commit throughput and recovery time vs. fault
//!   intensity; E12: the per-shard availability-window (blackout)
//!   time-to-recover matrix, derived from the control-plane event stream.
//!
//! Every run is deterministic given `(stack, seed, plan)`: the same seed
//! reproduces the same trace, the same violations and the same shrunk
//! schedule.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod driver;
pub mod experiment;
pub mod harness;
pub mod hunt;
pub mod nemesis;
pub mod plan;
pub mod shrink;

pub use driver::{run_soak, SoakConfig, SoakReport};
pub use experiment::{
    availability_experiment, blackout_experiment, AvailabilityResult, BlackoutResult,
    BlackoutScenario,
};
pub use harness::{build_harness, ChaosHarness, Stack};
pub use hunt::{find_naive_violation, reproduces_violation, HuntResult};
pub use nemesis::{Nemesis, NemesisConfig, Profile};
pub use plan::{FaultEvent, FaultPlan, LinkNoise, TimedFault};
pub use shrink::shrink_plan;
