//! Fault plans: the deterministic, serializable schedules a nemesis executes.
//!
//! A [`FaultPlan`] is the unit of chaos testing: optional fabric-wide
//! background noise plus a time-ordered list of discrete [`FaultEvent`]s.
//! Events name their targets by *role* (the current leader of a shard, the
//! `index`-th replica of a shard's initial roster), so the same plan replays
//! deterministically against a freshly built cluster and remains readable
//! after shrinking.

use ratc_types::ShardId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Fabric-wide probabilistic background noise, applied to every
/// replica-to-replica link for the duration of the fault window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkNoise {
    /// Per-send drop probability.
    pub drop: f64,
    /// Per-send duplication probability.
    pub duplicate: f64,
    /// Per-send extra-delay probability.
    pub delay: f64,
    /// Maximum extra delay in microseconds (uniform in `[0, max]`).
    pub max_delay_micros: u64,
}

impl LinkNoise {
    /// Noise scaled by `intensity` in `[0, 100]`: at 100, 20% drops, 20%
    /// duplicates and 20% delays of up to 2 ms.
    pub fn scaled(intensity: u8) -> LinkNoise {
        let f = f64::from(intensity.min(100)) / 100.0;
        LinkNoise {
            drop: 0.2 * f,
            duplicate: 0.2 * f,
            delay: 0.2 * f,
            max_delay_micros: 2_000,
        }
    }
}

/// One discrete fault (or repair) action, applied at a point in simulated
/// time. Targets are resolved against the cluster at execution time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// Crash the current leader of `shard`.
    CrashLeader {
        /// The targeted shard.
        shard: ShardId,
    },
    /// Crash a non-leader member of `shard` (the `index`-th live one,
    /// wrapping).
    CrashFollower {
        /// The targeted shard.
        shard: ShardId,
        /// Index into the shard's current non-leader members.
        index: usize,
    },
    /// Crash the process acting as the workload's coordinator (stacks without
    /// a distinguished coordinator crash their transaction-manager leader).
    CrashCoordinator,
    /// Restart every crashed process (crash-restart recovery under load).
    RestartCrashed,
    /// Asymmetrically cut every *message* link into the `index`-th replica of
    /// `shard`'s initial roster: it can still send (and its RDMA writes still
    /// land), but hears nothing — the classic stale-coordinator scenario of
    /// Figure 4a.
    IsolateInbound {
        /// The targeted shard.
        shard: ShardId,
        /// Index into the shard's initial roster.
        index: usize,
    },
    /// Delay every RDMA write issued by the `index`-th replica of `shard`'s
    /// initial roster by exactly `delay_micros` (a slow NIC / congested
    /// fabric whose writes land late).
    DelayRdmaOutbound {
        /// The targeted shard.
        shard: ShardId,
        /// Index into the shard's initial roster.
        index: usize,
        /// The extra delay in microseconds.
        delay_micros: u64,
    },
    /// Partition the current leader of `shard` away from every other replica.
    PartitionLeader {
        /// The targeted shard.
        shard: ShardId,
    },
    /// Heal every cut, per-link fault and partition (background noise stays).
    HealFaults,
    /// Initiate a reconfiguration of `shard`, excluding currently crashed
    /// members (a no-op on stacks without reconfiguration).
    Reconfigure {
        /// The targeted shard.
        shard: ShardId,
    },
    /// Initiate a global reconfiguration (the §5 protocol probes every
    /// shard; per-shard stacks reconfigure shard 0).
    GlobalReconfigure,
    /// Ask the current leader of `shard` to act as recovery coordinator for
    /// every transaction it holds prepared but undecided (the `retry` of
    /// Figure 1, driven by the environment).
    RetryPrepared {
        /// The targeted shard.
        shard: ShardId,
    },
    /// Flood the cluster with `depth` disjoint transactions submitted in one
    /// burst (open loop): overload as a first-class fault. The flow-control
    /// layer must absorb the burst — every burst transaction still decides
    /// and the soak's safety/liveness checks apply to it like any other.
    OverloadBurst {
        /// Number of transactions in the burst.
        depth: u32,
    },
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultEvent::CrashLeader { shard } => write!(f, "crash-leader({shard})"),
            FaultEvent::CrashFollower { shard, index } => {
                write!(f, "crash-follower({shard}, #{index})")
            }
            FaultEvent::CrashCoordinator => write!(f, "crash-coordinator"),
            FaultEvent::RestartCrashed => write!(f, "restart-crashed"),
            FaultEvent::IsolateInbound { shard, index } => {
                write!(f, "isolate-inbound({shard}, #{index})")
            }
            FaultEvent::DelayRdmaOutbound {
                shard,
                index,
                delay_micros,
            } => write!(f, "delay-rdma-out({shard}, #{index}, {delay_micros}us)"),
            FaultEvent::PartitionLeader { shard } => write!(f, "partition-leader({shard})"),
            FaultEvent::HealFaults => write!(f, "heal-faults"),
            FaultEvent::Reconfigure { shard } => write!(f, "reconfigure({shard})"),
            FaultEvent::GlobalReconfigure => write!(f, "global-reconfigure"),
            FaultEvent::RetryPrepared { shard } => write!(f, "retry-prepared({shard})"),
            FaultEvent::OverloadBurst { depth } => write!(f, "overload-burst({depth})"),
        }
    }
}

/// A fault event scheduled at an absolute simulated-time offset.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimedFault {
    /// Offset from the start of the soak, in microseconds.
    pub at_micros: u64,
    /// The fault to apply.
    pub event: FaultEvent,
}

/// A complete, deterministic fault schedule.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Fabric-wide background noise active for the whole fault window.
    pub noise: Option<LinkNoise>,
    /// Discrete events, sorted by `at_micros`.
    pub events: Vec<TimedFault>,
}

impl FaultPlan {
    /// Number of discrete fault events in the plan.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if the plan has no discrete events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// A copy of the plan with the `index`-th event removed (used by the
    /// shrinker).
    pub fn without_event(&self, index: usize) -> FaultPlan {
        let mut shrunk = self.clone();
        shrunk.events.remove(index);
        shrunk
    }

    /// A copy of the plan without background noise.
    pub fn without_noise(&self) -> FaultPlan {
        FaultPlan {
            noise: None,
            events: self.events.clone(),
        }
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.noise {
            Some(n) => writeln!(
                f,
                "noise: drop={:.2} dup={:.2} delay={:.2} (≤{}us)",
                n.drop, n.duplicate, n.delay, n.max_delay_micros
            )?,
            None => writeln!(f, "noise: none")?,
        }
        for fault in &self.events {
            writeln!(f, "  t={:>7}us  {}", fault.at_micros, fault.event)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_render_human_readably_and_shrink_structurally() {
        let plan = FaultPlan {
            noise: Some(LinkNoise::scaled(50)),
            events: vec![
                TimedFault {
                    at_micros: 1_000,
                    event: FaultEvent::CrashLeader {
                        shard: ShardId::new(1),
                    },
                },
                TimedFault {
                    at_micros: 5_000,
                    event: FaultEvent::RestartCrashed,
                },
            ],
        };
        let text = plan.to_string();
        assert!(text.contains("crash-leader(s1)"), "text: {text}");
        assert!(text.contains("restart-crashed"));
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
        let shrunk = plan.without_event(0);
        assert_eq!(shrunk.len(), 1);
        assert_eq!(shrunk.events[0].event, FaultEvent::RestartCrashed);
        assert!(plan.without_noise().noise.is_none());
    }

    #[test]
    fn noise_scales_with_intensity() {
        let none = LinkNoise::scaled(0);
        assert_eq!(none.drop, 0.0);
        let full = LinkNoise::scaled(100);
        assert!(full.drop > 0.0 && full.drop <= 0.5);
        let over = LinkNoise::scaled(200);
        assert_eq!(over, full);
    }
}
