//! The seed-driven nemesis: deterministic randomized [`FaultPlan`]s.
//!
//! Given a seed and a cluster shape, [`Nemesis::generate`] emits a fault
//! schedule drawn from the event vocabulary of [`FaultEvent`]: crash/restart
//! of leaders, followers and coordinators, leader partitions, asymmetric
//! inbound cuts, slow RDMA fabrics, mid-flight reconfigurations and
//! environment-driven retries, optionally on top of fabric-wide
//! drop/duplicate/delay noise. The same seed always yields the same plan.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use ratc_types::ShardId;

use crate::plan::{FaultEvent, FaultPlan, LinkNoise, TimedFault};

/// What mix of faults a nemesis draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Crashes, restarts, partitions and reconfigurations under background
    /// noise — the general availability soak.
    Default,
    /// The hunting mix for the naive-reconfiguration violation class: slow
    /// RDMA fabrics, asymmetric inbound isolation, leader crashes,
    /// reconfigurations and environment-driven retries, with no background
    /// noise (so the violation is observable, not masked by dropped
    /// decisions). One of each core ingredient is always drawn, at
    /// independent random times — the *schedule* is entirely seed-driven.
    NaiveHunt,
    /// The overload soak: open-loop [`FaultEvent::OverloadBurst`]s — always
    /// at least one — interleaved with crashes, restarts and partitions, so
    /// the flow-control layer absorbs bursts *while* the cluster is also
    /// failing over. No background noise: every burst transaction must
    /// decide, so drops would turn the liveness check into noise-chasing.
    Overload,
}

/// Configuration of a nemesis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NemesisConfig {
    /// Seed of the plan generator.
    pub seed: u64,
    /// Number of shards in the target cluster.
    pub shards: u32,
    /// Replicas per shard in the initial roster.
    pub members_per_shard: usize,
    /// Length of the fault window in microseconds; events land within it.
    pub window_micros: u64,
    /// Number of discrete events to draw.
    pub events: usize,
    /// Fault intensity in `[0, 100]`, controlling the background noise.
    pub intensity: u8,
    /// The event mix.
    pub profile: Profile,
}

impl Default for NemesisConfig {
    fn default() -> Self {
        NemesisConfig {
            seed: 0,
            shards: 2,
            members_per_shard: 2,
            window_micros: 40_000,
            events: 8,
            intensity: 30,
            profile: Profile::Default,
        }
    }
}

/// Deterministic fault-plan generator.
#[derive(Debug)]
pub struct Nemesis;

impl Nemesis {
    /// Generates the fault plan for `config`. Deterministic per seed.
    pub fn generate(config: &NemesisConfig) -> FaultPlan {
        let mut rng = ChaCha12Rng::seed_from_u64(config.seed);
        let mut events: Vec<TimedFault> = Vec::new();
        let shard = |rng: &mut ChaCha12Rng, config: &NemesisConfig| {
            ShardId::new(rng.gen_range(0..config.shards.max(1)))
        };
        let index = |rng: &mut ChaCha12Rng, config: &NemesisConfig| {
            rng.gen_range(0..config.members_per_shard.max(1))
        };
        match config.profile {
            Profile::Default => {
                for _ in 0..config.events {
                    let at_micros = rng.gen_range(0..config.window_micros.max(1));
                    let event = match rng.gen_range(0..10u32) {
                        0 | 1 => FaultEvent::CrashLeader {
                            shard: shard(&mut rng, config),
                        },
                        2 | 3 => FaultEvent::CrashFollower {
                            shard: shard(&mut rng, config),
                            index: index(&mut rng, config),
                        },
                        4 => FaultEvent::CrashCoordinator,
                        5 | 6 => FaultEvent::RestartCrashed,
                        7 => FaultEvent::PartitionLeader {
                            shard: shard(&mut rng, config),
                        },
                        8 => FaultEvent::HealFaults,
                        _ => FaultEvent::Reconfigure {
                            shard: shard(&mut rng, config),
                        },
                    };
                    events.push(TimedFault { at_micros, event });
                }
                // Crashed processes must get a chance to recover *under
                // traffic* (the driver restarts everything after the window
                // anyway, but mid-soak restarts exercise recovery under
                // load). Reconfigurations likewise repair crashed shards.
                let tail = config.window_micros;
                events.push(TimedFault {
                    at_micros: tail,
                    event: FaultEvent::RestartCrashed,
                });
            }
            Profile::NaiveHunt => {
                // One of each core ingredient at an independent random time;
                // whether the schedule lines up into the violation is up to
                // the seed.
                let window = config.window_micros.max(10);
                let victim_shard = shard(&mut rng, config);
                let victim_index = index(&mut rng, config);
                let other_shard = ShardId::new(
                    (victim_shard.as_u32() + 1 + rng.gen_range(0..config.shards.max(2) - 1))
                        % config.shards.max(1),
                );
                let delay_micros = rng.gen_range(30_000..60_000);
                let mut core_events = vec![
                    FaultEvent::DelayRdmaOutbound {
                        shard: victim_shard,
                        index: victim_index,
                        delay_micros,
                    },
                    FaultEvent::IsolateInbound {
                        shard: victim_shard,
                        index: victim_index,
                    },
                    FaultEvent::CrashLeader { shard: other_shard },
                    FaultEvent::Reconfigure { shard: other_shard },
                    FaultEvent::RetryPrepared {
                        shard: victim_shard,
                    },
                ];
                let extras = config.events.saturating_sub(core_events.len());
                for _ in 0..extras {
                    let event = match rng.gen_range(0..4u32) {
                        0 => FaultEvent::CrashFollower {
                            shard: shard(&mut rng, config),
                            index: index(&mut rng, config),
                        },
                        1 => FaultEvent::RestartCrashed,
                        2 => FaultEvent::RetryPrepared {
                            shard: shard(&mut rng, config),
                        },
                        _ => FaultEvent::HealFaults,
                    };
                    core_events.push(event);
                }
                for event in core_events {
                    events.push(TimedFault {
                        at_micros: rng.gen_range(0..window),
                        event,
                    });
                }
            }
            Profile::Overload => {
                let window = config.window_micros.max(10);
                events.push(TimedFault {
                    at_micros: rng.gen_range(0..window),
                    event: FaultEvent::OverloadBurst {
                        depth: rng.gen_range(100..=300),
                    },
                });
                let extras = config.events.saturating_sub(1);
                for _ in 0..extras {
                    let event = match rng.gen_range(0..6u32) {
                        0 => FaultEvent::OverloadBurst {
                            depth: rng.gen_range(50..=200),
                        },
                        1 => FaultEvent::CrashFollower {
                            shard: shard(&mut rng, config),
                            index: index(&mut rng, config),
                        },
                        2 => FaultEvent::CrashLeader {
                            shard: shard(&mut rng, config),
                        },
                        3 | 4 => FaultEvent::RestartCrashed,
                        _ => FaultEvent::HealFaults,
                    };
                    events.push(TimedFault {
                        at_micros: rng.gen_range(0..window),
                        event,
                    });
                }
                events.push(TimedFault {
                    at_micros: window,
                    event: FaultEvent::RestartCrashed,
                });
            }
        }
        events.sort_by_key(|f| f.at_micros);
        let noise = match config.profile {
            Profile::Default if config.intensity > 0 => Some(LinkNoise::scaled(config.intensity)),
            _ => None,
        };
        FaultPlan { noise, events }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let config = NemesisConfig {
            seed: 42,
            ..NemesisConfig::default()
        };
        assert_eq!(Nemesis::generate(&config), Nemesis::generate(&config));
        let other = NemesisConfig { seed: 43, ..config };
        assert_ne!(Nemesis::generate(&config), Nemesis::generate(&other));
    }

    #[test]
    fn default_profile_schedules_requested_events_sorted() {
        let config = NemesisConfig {
            seed: 7,
            events: 12,
            ..NemesisConfig::default()
        };
        let plan = Nemesis::generate(&config);
        // Requested events plus the trailing restart.
        assert_eq!(plan.len(), 13);
        assert!(plan.noise.is_some());
        for pair in plan.events.windows(2) {
            assert!(pair[0].at_micros <= pair[1].at_micros);
        }
        assert!(plan
            .events
            .iter()
            .any(|f| f.event == FaultEvent::RestartCrashed));
    }

    #[test]
    fn naive_hunt_draws_every_core_ingredient() {
        let config = NemesisConfig {
            seed: 3,
            events: 7,
            profile: Profile::NaiveHunt,
            ..NemesisConfig::default()
        };
        let plan = Nemesis::generate(&config);
        assert!(plan.noise.is_none(), "the hunt runs without masking noise");
        let has = |f: fn(&FaultEvent) -> bool| plan.events.iter().any(|e| f(&e.event));
        assert!(has(|e| matches!(e, FaultEvent::DelayRdmaOutbound { .. })));
        assert!(has(|e| matches!(e, FaultEvent::IsolateInbound { .. })));
        assert!(has(|e| matches!(e, FaultEvent::CrashLeader { .. })));
        assert!(has(|e| matches!(e, FaultEvent::Reconfigure { .. })));
        assert!(has(|e| matches!(e, FaultEvent::RetryPrepared { .. })));
    }

    #[test]
    fn overload_profile_always_draws_a_burst() {
        for seed in 0..8u64 {
            let config = NemesisConfig {
                seed,
                events: 6,
                profile: Profile::Overload,
                ..NemesisConfig::default()
            };
            let plan = Nemesis::generate(&config);
            assert!(
                plan.noise.is_none(),
                "bursts must not race dropped decisions"
            );
            assert!(
                plan.events
                    .iter()
                    .any(|e| matches!(e.event, FaultEvent::OverloadBurst { .. })),
                "seed {seed}: no burst drawn"
            );
            assert!(plan
                .events
                .iter()
                .any(|f| f.event == FaultEvent::RestartCrashed));
        }
    }
}
