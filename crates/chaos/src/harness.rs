//! The [`ChaosHarness`] trait and its adapters for the three TCS stacks.
//!
//! A chaos harness wraps one deployed cluster and exposes exactly what the
//! soak driver and the nemesis need: paced submission, fault application,
//! time control, healing/stabilisation, and the observed history. Fault
//! events name roles (leaders, roster indices); each adapter resolves them
//! against its stack.
//!
//! The client process is marked fault-exempt in every adapter: it is the
//! measurement apparatus recording the history that safety and liveness are
//! judged by, not a protocol participant. Everything else — including the
//! configuration service — runs over faultable links.

use std::collections::BTreeMap;
use std::fmt;

use ratc_baseline::{BaselineCluster, BaselineClusterConfig};
use ratc_core::harness::{Cluster, ClusterConfig};
use ratc_core::log::TxPhase;
use ratc_core::replica::{Replica, Status, TruncationConfig};
use ratc_rdma::replica::RdmaStatus;
use ratc_rdma::{RdmaCluster, RdmaClusterConfig, RdmaReplica, ReconfigMode};
use ratc_sim::faults::{FaultScope, LinkFault};
use ratc_sim::SimDuration;
use ratc_types::{Payload, ProcessId, ShardId, TcsHistory, TxId};

use crate::plan::{FaultEvent, LinkNoise};

/// Cap on how many prepared transactions one `RetryPrepared` event re-drives.
const RETRY_CAP: usize = 64;

/// Which TCS stack a harness drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stack {
    /// The message-passing RATC protocol (`ratc-core`).
    Core,
    /// The RDMA protocol with correct global reconfiguration (`ratc-rdma`).
    Rdma,
    /// The RDMA protocol with the **incorrect** naive per-shard
    /// reconfiguration — the Figure 4a hunting ground.
    RdmaNaive,
    /// The 2PC-over-Paxos baseline (`ratc-baseline`).
    Baseline,
}

impl fmt::Display for Stack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stack::Core => f.write_str("ratc-mp"),
            Stack::Rdma => f.write_str("ratc-rdma"),
            Stack::RdmaNaive => f.write_str("ratc-rdma-naive"),
            Stack::Baseline => f.write_str("2pc-paxos"),
        }
    }
}

/// What the soak driver needs from a cluster under chaos.
pub trait ChaosHarness {
    /// The stack under test.
    fn stack(&self) -> Stack;
    /// Submits a fresh transaction (recorded in the client history).
    fn submit(&mut self, tx: TxId, payload: Payload);
    /// Re-drives an already-submitted transaction without re-recording it.
    fn resubmit(&mut self, tx: TxId);
    /// Applies one fault event, resolving role targets against the cluster.
    fn apply(&mut self, event: &FaultEvent);
    /// Installs (or clears) fabric-wide background noise.
    fn set_noise(&mut self, noise: Option<LinkNoise>);
    /// Advances simulated time by `d`.
    fn run_for(&mut self, d: SimDuration);
    /// Runs until no events remain.
    fn run_to_quiescence(&mut self);
    /// Current simulated time in microseconds.
    fn now_micros(&self) -> u64;
    /// Events executed so far (a determinism fingerprint).
    fn steps(&self) -> u64;
    /// Heals every injected fault and restarts every crashed process.
    fn heal(&mut self);
    /// Post-heal repair: re-drives reconfigurations until every shard is
    /// operational again. Returns `true` once the cluster looks operational.
    fn stabilize(&mut self) -> bool;
    /// The client-observed history.
    fn history(&self) -> TcsHistory;
    /// Structural violations the client observed (contradictory decisions).
    fn client_violations(&self) -> Vec<String>;
}

fn noise_fault(noise: &LinkNoise) -> LinkFault {
    LinkFault {
        drop: noise.drop,
        duplicate: noise.duplicate,
        delay: noise.delay,
        delay_micros: (0, noise.max_delay_micros),
        scope: FaultScope::All,
    }
}

// ---------------------------------------------------------------------------
// ratc-core adapter
// ---------------------------------------------------------------------------

/// Chaos adapter for the message-passing stack.
pub struct CoreChaos {
    cluster: Cluster,
    payloads: BTreeMap<TxId, Payload>,
    replicas: Vec<ProcessId>,
    roster: BTreeMap<ShardId, Vec<ProcessId>>,
    coordinator: Option<ProcessId>,
    partition_seq: u64,
    next_coordinator: usize,
}

impl CoreChaos {
    /// Builds a core cluster for chaos testing. `coordinator` optionally
    /// routes every submission through one fixed replica (shard, roster
    /// index); otherwise submissions round-robin.
    pub fn new(shards: u32, seed: u64, coordinator: Option<(ShardId, usize)>) -> Self {
        let cluster = Cluster::new(
            ClusterConfig::default()
                .with_shards(shards)
                .with_seed(seed)
                .with_truncation(TruncationConfig::with_batch(8)),
        );
        let mut roster = BTreeMap::new();
        let mut replicas = Vec::new();
        for shard in cluster.shards() {
            let members = cluster.initial_members(shard).to_vec();
            replicas.extend(members.iter().copied());
            replicas.extend(cluster.spares(shard).iter().copied());
            roster.insert(shard, members);
        }
        let coordinator =
            coordinator.map(|(shard, index)| roster[&shard][index % roster[&shard].len()]);
        let mut this = CoreChaos {
            cluster,
            payloads: BTreeMap::new(),
            replicas,
            roster,
            coordinator,
            partition_seq: 0,
            next_coordinator: 0,
        };
        let client = this.cluster.client_id();
        this.cluster.world.mark_fault_exempt(client);
        this
    }

    /// The wrapped cluster (read access for tests and debugging).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    fn member(&self, shard: ShardId, index: usize) -> ProcessId {
        let roster = &self.roster[&shard];
        roster[index % roster.len()]
    }

    fn live_initiator(&self, shard: ShardId) -> Option<ProcessId> {
        let mut candidates = self.cluster.current_members(shard);
        candidates.extend(self.roster[&shard].iter().copied());
        candidates.extend(self.cluster.spares(shard).to_vec());
        candidates.into_iter().find(|p| {
            !self.cluster.world.is_crashed(*p)
                && self
                    .cluster
                    .world
                    .actor::<Replica>(*p)
                    .map(|r| r.is_initialized() && !r.reconfiguration_in_flight())
                    .unwrap_or(false)
        })
    }

    fn reconfigure(&mut self, shard: ShardId) {
        let Some(initiator) = self.live_initiator(shard) else {
            return;
        };
        let exclude: Vec<ProcessId> = self
            .cluster
            .current_members(shard)
            .into_iter()
            .filter(|p| self.cluster.world.is_crashed(*p))
            .collect();
        self.cluster
            .start_reconfiguration(shard, initiator, exclude);
    }

    fn shard_operational(&self, shard: ShardId) -> bool {
        let members = self.cluster.current_members(shard);
        if members.is_empty() {
            return false;
        }
        let leader = self.cluster.current_leader(shard);
        let epoch = self.cluster.current_epoch(shard);
        members.iter().all(|m| {
            if self.cluster.world.is_crashed(*m) {
                return false;
            }
            let Some(replica) = self.cluster.world.actor::<Replica>(*m) else {
                return false;
            };
            let expected = if *m == leader {
                Status::Leader
            } else {
                Status::Follower
            };
            replica.is_initialized()
                && replica.epoch_of(shard) == epoch
                && replica.status() == expected
        })
    }
}

impl ChaosHarness for CoreChaos {
    fn stack(&self) -> Stack {
        Stack::Core
    }

    fn submit(&mut self, tx: TxId, payload: Payload) {
        self.payloads.insert(tx, payload.clone());
        // Fixed coordinator if configured, else round-robin over live
        // replicas. With everything crashed, submit to a crashed process:
        // the message is dropped (the cluster is down), the transaction
        // stays in the history undecided, and recovery re-drives it.
        let target = self.coordinator.unwrap_or_else(|| {
            let live: Vec<ProcessId> = self
                .replicas
                .iter()
                .copied()
                .filter(|p| !self.cluster.world.is_crashed(*p))
                .collect();
            let pool = if live.is_empty() {
                &self.replicas
            } else {
                &live
            };
            let target = pool[self.next_coordinator % pool.len()];
            self.next_coordinator += 1;
            target
        });
        self.cluster.submit_via(tx, payload, target);
    }

    fn resubmit(&mut self, tx: TxId) {
        let Some(payload) = self.payloads.get(&tx).cloned() else {
            return;
        };
        let shards = payload.shards(self.cluster.sharding());
        let Some(first) = shards.first().copied() else {
            return;
        };
        let target = self.cluster.current_leader(first);
        if self.cluster.world.is_crashed(target) {
            return;
        }
        let client = self.cluster.client_id();
        self.cluster.world.send_external(
            target,
            ratc_core::messages::Msg::Certify {
                tx,
                payload,
                client,
            },
        );
    }

    fn apply(&mut self, event: &FaultEvent) {
        match event {
            FaultEvent::CrashLeader { shard } => {
                let leader = self.cluster.current_leader(*shard);
                self.cluster.crash(leader);
            }
            FaultEvent::CrashFollower { shard, index } => {
                let leader = self.cluster.current_leader(*shard);
                let followers: Vec<ProcessId> = self
                    .cluster
                    .current_members(*shard)
                    .into_iter()
                    .filter(|p| *p != leader)
                    .collect();
                if !followers.is_empty() {
                    self.cluster.crash(followers[index % followers.len()]);
                }
            }
            FaultEvent::CrashCoordinator => {
                let target = self
                    .coordinator
                    .unwrap_or_else(|| self.roster.values().next().expect("shards")[0]);
                self.cluster.crash(target);
            }
            FaultEvent::RestartCrashed => {
                for pid in self.replicas.clone() {
                    if self.cluster.world.is_crashed(pid) {
                        self.cluster.restart(pid);
                    }
                }
            }
            FaultEvent::IsolateInbound { shard, index } => {
                let victim = self.member(*shard, *index);
                let cs = self.cluster.config_service_id();
                for from in self.replicas.clone().into_iter().chain([cs]) {
                    if from != victim {
                        self.cluster.world.set_link_fault(
                            from,
                            victim,
                            LinkFault::cut(FaultScope::MessagesOnly),
                        );
                    }
                }
            }
            FaultEvent::DelayRdmaOutbound {
                shard,
                index,
                delay_micros,
            } => {
                // The message-passing stack has no RDMA fabric; the scoped
                // fault is installed but never fires.
                let victim = self.member(*shard, *index);
                for to in self.replicas.clone() {
                    if to != victim {
                        self.cluster.world.set_link_fault(
                            victim,
                            to,
                            LinkFault::delay_all(*delay_micros, FaultScope::RdmaOnly),
                        );
                    }
                }
            }
            FaultEvent::PartitionLeader { shard } => {
                let leader = self.cluster.current_leader(*shard);
                let others: Vec<ProcessId> = self
                    .replicas
                    .iter()
                    .copied()
                    .filter(|p| *p != leader)
                    .collect();
                self.partition_seq += 1;
                let name = format!("part-{}", self.partition_seq);
                self.cluster
                    .world
                    .install_partition(&name, vec![vec![leader], others]);
            }
            FaultEvent::HealFaults => self.cluster.world.heal_all_faults(),
            FaultEvent::Reconfigure { shard } => self.reconfigure(*shard),
            FaultEvent::GlobalReconfigure => {
                for shard in self.cluster.shards() {
                    self.reconfigure(shard);
                }
            }
            FaultEvent::RetryPrepared { shard } => {
                let leader = self.cluster.current_leader(*shard);
                if self.cluster.world.is_crashed(leader) {
                    return;
                }
                let prepared: Vec<TxId> = self
                    .cluster
                    .replica(leader)
                    .log()
                    .entries()
                    .filter(|(_, e)| e.phase == TxPhase::Prepared)
                    .map(|(_, e)| e.tx)
                    .take(RETRY_CAP)
                    .collect();
                for tx in prepared {
                    self.cluster.retry(leader, tx);
                }
            }
        }
    }

    fn set_noise(&mut self, noise: Option<LinkNoise>) {
        self.cluster
            .world
            .set_default_link_fault(noise.as_ref().map(noise_fault));
    }

    fn run_for(&mut self, d: SimDuration) {
        self.cluster.run_for(d);
    }

    fn run_to_quiescence(&mut self) {
        self.cluster.run_to_quiescence();
    }

    fn now_micros(&self) -> u64 {
        self.cluster.world.now().as_micros()
    }

    fn steps(&self) -> u64 {
        self.cluster.world.steps()
    }

    fn heal(&mut self) {
        self.cluster.world.heal_all_faults();
        self.apply(&FaultEvent::RestartCrashed);
    }

    fn stabilize(&mut self) -> bool {
        let mut all_ok = true;
        for shard in self.cluster.shards() {
            if !self.shard_operational(shard) {
                all_ok = false;
                self.reconfigure(shard);
            }
        }
        all_ok
    }

    fn history(&self) -> TcsHistory {
        self.cluster.history()
    }

    fn client_violations(&self) -> Vec<String> {
        self.cluster.client_violations()
    }
}

// ---------------------------------------------------------------------------
// ratc-rdma adapter
// ---------------------------------------------------------------------------

/// Chaos adapter for the RDMA stack (correct or naive reconfiguration mode).
pub struct RdmaChaos {
    cluster: RdmaCluster,
    mode: ReconfigMode,
    payloads: BTreeMap<TxId, Payload>,
    replicas: Vec<ProcessId>,
    roster: BTreeMap<ShardId, Vec<ProcessId>>,
    coordinator: Option<ProcessId>,
    partition_seq: u64,
    next_coordinator: usize,
}

impl RdmaChaos {
    /// Builds an RDMA cluster for chaos testing in the given mode.
    pub fn new(
        shards: u32,
        seed: u64,
        mode: ReconfigMode,
        coordinator: Option<(ShardId, usize)>,
    ) -> Self {
        let cluster = RdmaCluster::new(
            RdmaClusterConfig::default()
                .with_shards(shards)
                .with_seed(seed)
                .with_mode(mode)
                .with_truncation(TruncationConfig::with_batch(8)),
        );
        let config = cluster.current_config();
        let mut roster = BTreeMap::new();
        let mut replicas = Vec::new();
        for (shard, members) in &config.members {
            replicas.extend(members.iter().copied());
            replicas.extend(cluster.spares(*shard).to_vec());
            roster.insert(*shard, members.clone());
        }
        let coordinator =
            coordinator.map(|(shard, index)| roster[&shard][index % roster[&shard].len()]);
        let mut this = RdmaChaos {
            cluster,
            mode,
            payloads: BTreeMap::new(),
            replicas,
            roster,
            coordinator,
            partition_seq: 0,
            next_coordinator: 0,
        };
        let client = this.cluster.client_id();
        this.cluster.world.mark_fault_exempt(client);
        this
    }

    /// The wrapped cluster (read access for tests and debugging).
    pub fn cluster(&self) -> &RdmaCluster {
        &self.cluster
    }

    fn member(&self, shard: ShardId, index: usize) -> ProcessId {
        let roster = &self.roster[&shard];
        roster[index % roster.len()]
    }

    fn current_leader(&self, shard: ShardId) -> Option<ProcessId> {
        self.cluster.current_config().leader_of(shard)
    }

    fn live_initiator(&self, shard: ShardId) -> Option<ProcessId> {
        let config = self.cluster.current_config();
        let mut candidates: Vec<ProcessId> = config.members_of(shard).to_vec();
        candidates.extend(self.roster[&shard].iter().copied());
        candidates.extend(self.cluster.spares(shard).to_vec());
        candidates.into_iter().find(|p| {
            !self.cluster.world.is_crashed(*p)
                && self
                    .cluster
                    .world
                    .actor::<RdmaReplica>(*p)
                    .map(|r| r.is_initialized() && !r.reconfiguration_in_flight())
                    .unwrap_or(false)
        })
    }

    fn reconfigure(&mut self, shard: ShardId) {
        let Some(initiator) = self.live_initiator(shard) else {
            return;
        };
        let config = self.cluster.current_config();
        let exclude: Vec<ProcessId> = config
            .members
            .values()
            .flatten()
            .copied()
            .filter(|p| self.cluster.world.is_crashed(*p))
            .collect();
        self.cluster
            .start_reconfiguration(shard, initiator, exclude);
    }

    fn shard_operational(&self, shard: ShardId) -> bool {
        let config = self.cluster.current_config();
        let members = config.members_of(shard);
        if members.is_empty() {
            return false;
        }
        let leader = config.leader_of(shard);
        members.iter().all(|m| {
            if self.cluster.world.is_crashed(*m) {
                return false;
            }
            let Some(replica) = self.cluster.world.actor::<RdmaReplica>(*m) else {
                return false;
            };
            let expected = if Some(*m) == leader {
                RdmaStatus::Leader
            } else {
                RdmaStatus::Follower
            };
            replica.is_initialized()
                && replica.epoch() == config.epoch
                && replica.status() == expected
        })
    }
}

impl ChaosHarness for RdmaChaos {
    fn stack(&self) -> Stack {
        match self.mode {
            ReconfigMode::GlobalCorrect => Stack::Rdma,
            ReconfigMode::NaivePerShard => Stack::RdmaNaive,
        }
    }

    fn submit(&mut self, tx: TxId, payload: Payload) {
        self.payloads.insert(tx, payload.clone());
        let target = self.coordinator.unwrap_or_else(|| {
            let live: Vec<ProcessId> = self
                .replicas
                .iter()
                .copied()
                .filter(|p| !self.cluster.world.is_crashed(*p))
                .collect();
            let pool = if live.is_empty() {
                &self.replicas
            } else {
                &live
            };
            let target = pool[self.next_coordinator % pool.len()];
            self.next_coordinator += 1;
            target
        });
        self.cluster.submit_via(tx, payload, target);
    }

    fn resubmit(&mut self, tx: TxId) {
        let Some(payload) = self.payloads.get(&tx).cloned() else {
            return;
        };
        let shards = payload.shards(self.cluster.sharding());
        let Some(target) = shards.first().and_then(|s| self.current_leader(*s)) else {
            return;
        };
        if self.cluster.world.is_crashed(target) {
            return;
        }
        let client = self.cluster.client_id();
        self.cluster.world.send_external(
            target,
            ratc_rdma::RdmaMsg::Certify {
                tx,
                payload,
                client,
            },
        );
    }

    fn apply(&mut self, event: &FaultEvent) {
        match event {
            FaultEvent::CrashLeader { shard } => {
                if let Some(leader) = self.current_leader(*shard) {
                    self.cluster.crash(leader);
                }
            }
            FaultEvent::CrashFollower { shard, index } => {
                let followers = self.cluster.current_config().followers_of(*shard);
                if !followers.is_empty() {
                    self.cluster.crash(followers[index % followers.len()]);
                }
            }
            FaultEvent::CrashCoordinator => {
                let target = self
                    .coordinator
                    .unwrap_or_else(|| self.roster.values().next().expect("shards")[0]);
                self.cluster.crash(target);
            }
            FaultEvent::RestartCrashed => {
                for pid in self.replicas.clone() {
                    if self.cluster.world.is_crashed(pid) {
                        self.cluster.restart(pid);
                    }
                }
            }
            FaultEvent::IsolateInbound { shard, index } => {
                let victim = self.member(*shard, *index);
                let cs = self.cluster.config_service_id();
                for from in self.replicas.clone().into_iter().chain([cs]) {
                    if from != victim {
                        self.cluster.world.set_link_fault(
                            from,
                            victim,
                            LinkFault::cut(FaultScope::MessagesOnly),
                        );
                    }
                }
            }
            FaultEvent::DelayRdmaOutbound {
                shard,
                index,
                delay_micros,
            } => {
                let victim = self.member(*shard, *index);
                for to in self.replicas.clone() {
                    if to != victim {
                        self.cluster.world.set_link_fault(
                            victim,
                            to,
                            LinkFault::delay_all(*delay_micros, FaultScope::RdmaOnly),
                        );
                    }
                }
            }
            FaultEvent::PartitionLeader { shard } => {
                let Some(leader) = self.current_leader(*shard) else {
                    return;
                };
                let others: Vec<ProcessId> = self
                    .replicas
                    .iter()
                    .copied()
                    .filter(|p| *p != leader)
                    .collect();
                self.partition_seq += 1;
                let name = format!("part-{}", self.partition_seq);
                self.cluster
                    .world
                    .install_partition(&name, vec![vec![leader], others]);
            }
            FaultEvent::HealFaults => self.cluster.world.heal_all_faults(),
            FaultEvent::Reconfigure { shard } => self.reconfigure(*shard),
            FaultEvent::GlobalReconfigure => {
                let shard = *self.roster.keys().next().expect("shards");
                self.reconfigure(shard);
            }
            FaultEvent::RetryPrepared { shard } => {
                let Some(leader) = self.current_leader(*shard) else {
                    return;
                };
                if self.cluster.world.is_crashed(leader) {
                    return;
                }
                let prepared: Vec<TxId> = self
                    .cluster
                    .replica(leader)
                    .log()
                    .entries()
                    .filter(|(_, e)| e.phase == TxPhase::Prepared)
                    .map(|(_, e)| e.tx)
                    .take(RETRY_CAP)
                    .collect();
                for tx in prepared {
                    self.cluster.retry(leader, tx);
                }
            }
        }
    }

    fn set_noise(&mut self, noise: Option<LinkNoise>) {
        self.cluster
            .world
            .set_default_link_fault(noise.as_ref().map(noise_fault));
    }

    fn run_for(&mut self, d: SimDuration) {
        self.cluster.run_for(d);
    }

    fn run_to_quiescence(&mut self) {
        self.cluster.run_to_quiescence();
    }

    fn now_micros(&self) -> u64 {
        self.cluster.world.now().as_micros()
    }

    fn steps(&self) -> u64 {
        self.cluster.world.steps()
    }

    fn heal(&mut self) {
        self.cluster.world.heal_all_faults();
        self.apply(&FaultEvent::RestartCrashed);
    }

    fn stabilize(&mut self) -> bool {
        let config = self.cluster.current_config();
        let mut all_ok = true;
        for shard in config.members.keys().copied().collect::<Vec<_>>() {
            if !self.shard_operational(shard) {
                all_ok = false;
                self.reconfigure(shard);
            }
        }
        all_ok
    }

    fn history(&self) -> TcsHistory {
        self.cluster.history()
    }

    fn client_violations(&self) -> Vec<String> {
        self.cluster.client_violations()
    }
}

// ---------------------------------------------------------------------------
// baseline adapter
// ---------------------------------------------------------------------------

/// Chaos adapter for the 2PC-over-Paxos baseline. The baseline has no
/// reconfiguration: `Reconfigure`/`GlobalReconfigure`/`RetryPrepared` are
/// no-ops, and crashed processes recover only by restarting (which the
/// recovery phase guarantees). Paxos masks minority follower crashes.
pub struct BaselineChaos {
    cluster: BaselineCluster,
    payloads: BTreeMap<TxId, Payload>,
    processes: Vec<ProcessId>,
    partition_seq: u64,
}

impl BaselineChaos {
    /// Builds a baseline cluster for chaos testing.
    pub fn new(shards: u32, seed: u64) -> Self {
        let cluster = BaselineCluster::new(
            BaselineClusterConfig::default()
                .with_shards(shards)
                .with_seed(seed),
        );
        let mut processes: Vec<ProcessId> = Vec::new();
        for shard_idx in 0..shards {
            processes.extend(cluster.shard_group(ShardId::new(shard_idx)).to_vec());
        }
        processes.extend(cluster.tm_group().to_vec());
        let mut this = BaselineChaos {
            cluster,
            payloads: BTreeMap::new(),
            processes,
            partition_seq: 0,
        };
        let client = this.cluster.client_id();
        this.cluster.world.mark_fault_exempt(client);
        this
    }

    /// The wrapped cluster (read access for tests and debugging).
    pub fn cluster(&self) -> &BaselineCluster {
        &self.cluster
    }

    fn group(&self, shard: ShardId) -> Vec<ProcessId> {
        self.cluster.shard_group(shard).to_vec()
    }
}

impl ChaosHarness for BaselineChaos {
    fn stack(&self) -> Stack {
        Stack::Baseline
    }

    fn submit(&mut self, tx: TxId, payload: Payload) {
        self.payloads.insert(tx, payload.clone());
        self.cluster.submit(tx, payload);
    }

    fn resubmit(&mut self, tx: TxId) {
        if let Some(payload) = self.payloads.get(&tx).cloned() {
            self.cluster.resubmit(tx, payload);
        }
    }

    fn apply(&mut self, event: &FaultEvent) {
        match event {
            FaultEvent::CrashLeader { shard } => {
                let leader = self.cluster.shard_leader(*shard);
                self.cluster.crash(leader);
            }
            FaultEvent::CrashFollower { shard, index } => {
                let leader = self.cluster.shard_leader(*shard);
                let followers: Vec<ProcessId> = self
                    .group(*shard)
                    .into_iter()
                    .filter(|p| *p != leader)
                    .collect();
                if !followers.is_empty() {
                    self.cluster.crash(followers[index % followers.len()]);
                }
            }
            FaultEvent::CrashCoordinator => {
                let tm = self.cluster.tm_leader();
                self.cluster.crash(tm);
            }
            FaultEvent::RestartCrashed => {
                for pid in self.processes.clone() {
                    if self.cluster.world.is_crashed(pid) {
                        self.cluster.restart(pid);
                    }
                }
            }
            FaultEvent::IsolateInbound { shard, index } => {
                let group = self.group(*shard);
                let victim = group[index % group.len()];
                for from in self.processes.clone() {
                    if from != victim {
                        self.cluster.world.set_link_fault(
                            from,
                            victim,
                            LinkFault::cut(FaultScope::MessagesOnly),
                        );
                    }
                }
            }
            FaultEvent::DelayRdmaOutbound { .. } => {
                // The baseline has no RDMA fabric.
            }
            FaultEvent::PartitionLeader { shard } => {
                let leader = self.cluster.shard_leader(*shard);
                let others: Vec<ProcessId> = self
                    .processes
                    .iter()
                    .copied()
                    .filter(|p| *p != leader)
                    .collect();
                self.partition_seq += 1;
                let name = format!("part-{}", self.partition_seq);
                self.cluster
                    .world
                    .install_partition(&name, vec![vec![leader], others]);
            }
            FaultEvent::HealFaults => self.cluster.world.heal_all_faults(),
            FaultEvent::Reconfigure { .. }
            | FaultEvent::GlobalReconfigure
            | FaultEvent::RetryPrepared { .. } => {
                // No reconfiguration machinery in the baseline.
            }
        }
    }

    fn set_noise(&mut self, noise: Option<LinkNoise>) {
        self.cluster
            .world
            .set_default_link_fault(noise.as_ref().map(noise_fault));
    }

    fn run_for(&mut self, d: SimDuration) {
        self.cluster.run_for(d);
    }

    fn run_to_quiescence(&mut self) {
        self.cluster.run_to_quiescence();
    }

    fn now_micros(&self) -> u64 {
        self.cluster.world.now().as_micros()
    }

    fn steps(&self) -> u64 {
        self.cluster.world.steps()
    }

    fn heal(&mut self) {
        self.cluster.world.heal_all_faults();
        self.apply(&FaultEvent::RestartCrashed);
    }

    fn stabilize(&mut self) -> bool {
        true
    }

    fn history(&self) -> TcsHistory {
        self.cluster.history()
    }

    fn client_violations(&self) -> Vec<String> {
        self.cluster.client_violations()
    }
}

/// Builds the chaos harness for `stack`.
pub fn build_harness(
    stack: Stack,
    shards: u32,
    seed: u64,
    coordinator: Option<(ShardId, usize)>,
) -> Box<dyn ChaosHarness> {
    match stack {
        Stack::Core => Box::new(CoreChaos::new(shards, seed, coordinator)),
        Stack::Rdma => Box::new(RdmaChaos::new(
            shards,
            seed,
            ReconfigMode::GlobalCorrect,
            coordinator,
        )),
        Stack::RdmaNaive => Box::new(RdmaChaos::new(
            shards,
            seed,
            ReconfigMode::NaivePerShard,
            coordinator,
        )),
        Stack::Baseline => Box::new(BaselineChaos::new(shards, seed)),
    }
}
