//! The [`ChaosHarness`]: one stack-agnostic adapter between the soak driver
//! and a cluster under chaos.
//!
//! Before the unified [`TcsCluster`] facade existed this module carried three
//! near-identical per-stack adapters (~900 lines); the shared trait collapsed
//! them into this single struct. The harness resolves the role-addressed
//! targets of [`FaultEvent`]s (current leaders, roster indices) against the
//! cluster's introspection queries, paces submissions through a fixed or
//! round-robin coordinator, and drives post-fault recovery
//! ([`ChaosHarness::heal`] / [`ChaosHarness::stabilize`]). The real semantic
//! differences between the stacks are behind the trait's capability probes:
//! the baseline ignores reconfiguration events, the §5 RDMA protocol
//! reconfigures globally, and only the RATC stacks let arbitrary replicas
//! coordinate.
//!
//! The client process is marked fault-exempt: it is the measurement apparatus
//! recording the history that safety and liveness are judged by, not a
//! protocol participant. Everything else — including the configuration
//! service — runs over faultable links.

use std::collections::BTreeMap;

use ratc_core::replica::TruncationConfig;
use ratc_harness::{ClusterSpec, TcsCluster};
use ratc_sim::faults::{FaultScope, LinkFault};
use ratc_sim::{Blackout, CtrlEvent, CtrlMilestone, SimDuration};
use ratc_types::{Key, Payload, ProcessId, ShardId, TcsHistory, TxId, Value, Version};

use crate::plan::{FaultEvent, LinkNoise};

/// Which TCS stack a harness drives (the facade's stack selector).
pub use ratc_harness::StackKind as Stack;

/// Cap on how many prepared transactions one `RetryPrepared` event re-drives.
const RETRY_CAP: usize = 64;

fn noise_fault(noise: &LinkNoise) -> LinkFault {
    LinkFault {
        drop: noise.drop,
        duplicate: noise.duplicate,
        delay: noise.delay,
        delay_micros: (0, noise.max_delay_micros),
        scope: FaultScope::All,
    }
}

/// A cluster under chaos: fault application, paced submission, time control,
/// healing/stabilisation and history observation for any [`TcsCluster`].
pub struct ChaosHarness {
    cluster: Box<dyn TcsCluster>,
    payloads: BTreeMap<TxId, Payload>,
    /// Initial roster per shard (fault events address replicas by roster
    /// index so plans replay against a freshly built cluster).
    roster: BTreeMap<ShardId, Vec<ProcessId>>,
    /// Every faultable protocol process, in shard order.
    processes: Vec<ProcessId>,
    /// The submission pool, captured once at construction (the cluster's
    /// coordinator pool is membership-stable).
    pool: Vec<ProcessId>,
    /// Fixed submission coordinator, if configured (and supported).
    coordinator: Option<ProcessId>,
    partition_seq: u64,
    next_coordinator: usize,
    /// Transactions injected by `OverloadBurst` events so far (bursts use a
    /// dedicated high TxId range that never collides with the workload's).
    burst_seq: u64,
}

impl ChaosHarness {
    /// Deploys `spec` and wraps it for chaos testing. `coordinator`
    /// optionally routes every submission through one fixed replica (shard,
    /// roster index); stacks with a dedicated transaction-manager group
    /// ignore it (their coordinator is the TM leader).
    pub fn new(spec: &ClusterSpec, coordinator: Option<(ShardId, usize)>) -> Self {
        let cluster = spec.build();
        Self::from_cluster(cluster, coordinator)
    }

    /// Wraps an already-built cluster for chaos testing.
    pub fn from_cluster(
        mut cluster: Box<dyn TcsCluster>,
        coordinator: Option<(ShardId, usize)>,
    ) -> Self {
        let mut roster = BTreeMap::new();
        let mut processes = Vec::new();
        for shard in cluster.shards() {
            let members = cluster.roster_of(shard);
            processes.extend(members.iter().copied());
            processes.extend(cluster.spares_of(shard));
            roster.insert(shard, members);
        }
        let pool = cluster.coordinator_pool();
        let coordinator = if cluster.replicas_coordinate() {
            coordinator.map(|(shard, index)| roster[&shard][index % roster[&shard].len()])
        } else {
            // A dedicated TM group coordinates; include it in the faultable
            // set (`all_processes` covers it) and pin submissions to its
            // leader (the pool head) for plan-replay stability.
            processes = cluster.all_processes();
            Some(pool[0])
        };
        let client = cluster.client_id();
        cluster.mark_fault_exempt(client);
        ChaosHarness {
            cluster,
            payloads: BTreeMap::new(),
            roster,
            processes,
            pool,
            coordinator,
            partition_seq: 0,
            next_coordinator: 0,
            burst_seq: 0,
        }
    }

    /// The wrapped cluster (read access for tests and debugging).
    pub fn cluster(&self) -> &dyn TcsCluster {
        self.cluster.as_ref()
    }

    /// The stack under test.
    pub fn stack(&self) -> Stack {
        self.cluster.stack()
    }

    /// Submits a fresh transaction (recorded in the client history) through
    /// the fixed coordinator if configured, else round-robin over live
    /// coordinators. With everything crashed, the submission goes to a
    /// crashed process: the message is dropped (the cluster is down), the
    /// transaction stays in the history undecided, and recovery re-drives
    /// it.
    pub fn submit(&mut self, tx: TxId, payload: Payload) {
        self.payloads.insert(tx, payload.clone());
        let target = self.coordinator.unwrap_or_else(|| {
            let live: Vec<ProcessId> = self
                .pool
                .iter()
                .copied()
                .filter(|p| !self.cluster.is_crashed(*p))
                .collect();
            let pool = if live.is_empty() { &self.pool } else { &live };
            let target = pool[self.next_coordinator % pool.len()];
            self.next_coordinator += 1;
            target
        });
        self.cluster.submit_via(tx, payload, target);
    }

    /// Re-drives an already-submitted transaction without re-recording it.
    pub fn resubmit(&mut self, tx: TxId) {
        if let Some(payload) = self.payloads.get(&tx).cloned() {
            self.cluster.resubmit(tx, payload);
        }
    }

    fn member(&self, shard: ShardId, index: usize) -> ProcessId {
        let roster = &self.roster[&shard];
        roster[index % roster.len()]
    }

    fn reconfigure(&mut self, shard: ShardId) {
        if !self.cluster.supports_reconfiguration() {
            return;
        }
        let mut candidates = self.cluster.members_of(shard);
        candidates.extend(self.roster[&shard].iter().copied());
        candidates.extend(self.cluster.spares_of(shard));
        let Some(initiator) = candidates
            .into_iter()
            .find(|p| !self.cluster.is_crashed(*p) && self.cluster.replica_ready(*p))
        else {
            return;
        };
        // A global reconfiguration must exclude crashed members of *every*
        // shard (the probe touches the whole system); per-shard modes only
        // exclude within the suspected shard.
        let exclude_shards: Vec<ShardId> = if self.cluster.reconfiguration_is_global() {
            self.cluster.shards()
        } else {
            vec![shard]
        };
        let exclude: Vec<ProcessId> = exclude_shards
            .into_iter()
            .flat_map(|s| self.cluster.members_of(s))
            .filter(|p| self.cluster.is_crashed(*p))
            .collect();
        self.cluster
            .start_reconfiguration(shard, initiator, exclude);
    }

    /// Shard of `pid` in the initial roster/spare layout, if any.
    fn shard_of(&self, pid: ProcessId) -> Option<ShardId> {
        for (shard, members) in &self.roster {
            if members.contains(&pid) || self.cluster.spares_of(*shard).contains(&pid) {
                return Some(*shard);
            }
        }
        None
    }

    /// Records the fault event in the cluster's control-plane stream, so one
    /// time-ordered forensic log merges injected faults with the protocol
    /// milestones they trigger. Degrading injections stamp
    /// [`CtrlMilestone::FaultInjected`]; healing events stamp
    /// [`CtrlMilestone::FaultHealed`]. Recovery-driving events
    /// (`Reconfigure`, `GlobalReconfigure`, `RetryPrepared`) are not stamped
    /// here — the protocol itself stamps `ReconfigInitiated` /
    /// `CoordinatorHandoff` into the same stream when they land. A no-op
    /// unless observability is enabled; never perturbs the schedule.
    fn stamp_fault(&mut self, event: &FaultEvent) {
        let stamp = match event {
            FaultEvent::CrashLeader { shard }
            | FaultEvent::CrashFollower { shard, .. }
            | FaultEvent::IsolateInbound { shard, .. }
            | FaultEvent::DelayRdmaOutbound { shard, .. }
            | FaultEvent::PartitionLeader { shard } => {
                Some((CtrlMilestone::FaultInjected, Some(*shard)))
            }
            FaultEvent::CrashCoordinator => {
                let target = self.coordinator.unwrap_or(self.pool[0]);
                Some((CtrlMilestone::FaultInjected, self.shard_of(target)))
            }
            FaultEvent::OverloadBurst { .. } => Some((CtrlMilestone::FaultInjected, None)),
            FaultEvent::HealFaults | FaultEvent::RestartCrashed => {
                Some((CtrlMilestone::FaultHealed, None))
            }
            FaultEvent::Reconfigure { .. }
            | FaultEvent::GlobalReconfigure
            | FaultEvent::RetryPrepared { .. } => None,
        };
        if let Some((milestone, shard)) = stamp {
            let by = self.cluster.client_id();
            let note = event.to_string();
            self.cluster.record_ctrl(by, milestone, shard, &note);
        }
    }

    /// Applies one fault event, resolving role targets against the cluster.
    pub fn apply(&mut self, event: &FaultEvent) {
        self.stamp_fault(event);
        match event {
            FaultEvent::CrashLeader { shard } => {
                if let Some(leader) = self.cluster.leader_of(*shard) {
                    self.cluster.crash(leader);
                }
            }
            FaultEvent::CrashFollower { shard, index } => {
                let leader = self.cluster.leader_of(*shard);
                let followers: Vec<ProcessId> = self
                    .cluster
                    .members_of(*shard)
                    .into_iter()
                    .filter(|p| Some(*p) != leader)
                    .collect();
                if !followers.is_empty() {
                    self.cluster.crash(followers[index % followers.len()]);
                }
            }
            FaultEvent::CrashCoordinator => {
                let target = self.coordinator.unwrap_or(self.pool[0]);
                self.cluster.crash(target);
            }
            FaultEvent::RestartCrashed => {
                for pid in self.processes.clone() {
                    if self.cluster.is_crashed(pid) {
                        self.cluster.restart(pid);
                    }
                }
            }
            FaultEvent::IsolateInbound { shard, index } => {
                let victim = self.member(*shard, *index);
                let sources: Vec<ProcessId> = self
                    .processes
                    .iter()
                    .copied()
                    .chain(self.cluster.config_service_id())
                    .collect();
                for from in sources {
                    if from != victim {
                        self.cluster.set_link_fault(
                            from,
                            victim,
                            LinkFault::cut(FaultScope::MessagesOnly),
                        );
                    }
                }
            }
            FaultEvent::DelayRdmaOutbound {
                shard,
                index,
                delay_micros,
            } => {
                // Scoped to the RDMA fabric: on stacks without one the fault
                // is installed but never fires (and consumes no randomness).
                let victim = self.member(*shard, *index);
                for to in self.processes.clone() {
                    if to != victim {
                        self.cluster.set_link_fault(
                            victim,
                            to,
                            LinkFault::delay_all(*delay_micros, FaultScope::RdmaOnly),
                        );
                    }
                }
            }
            FaultEvent::PartitionLeader { shard } => {
                let Some(leader) = self.cluster.leader_of(*shard) else {
                    return;
                };
                let others: Vec<ProcessId> = self
                    .processes
                    .iter()
                    .copied()
                    .filter(|p| *p != leader)
                    .collect();
                self.partition_seq += 1;
                let name = format!("part-{}", self.partition_seq);
                self.cluster
                    .install_partition(&name, vec![vec![leader], others]);
            }
            FaultEvent::HealFaults => self.cluster.heal_all_faults(),
            FaultEvent::Reconfigure { shard } => self.reconfigure(*shard),
            FaultEvent::GlobalReconfigure => {
                if self.cluster.reconfiguration_is_global() {
                    // One probe reconfigures the whole system.
                    let shard = *self.roster.keys().next().expect("shards");
                    self.reconfigure(shard);
                } else {
                    for shard in self.cluster.shards() {
                        self.reconfigure(shard);
                    }
                }
            }
            FaultEvent::RetryPrepared { shard } => {
                let Some(leader) = self.cluster.leader_of(*shard) else {
                    return;
                };
                if self.cluster.is_crashed(leader) {
                    return;
                }
                let prepared: Vec<TxId> = self
                    .cluster
                    .prepared_transactions(*shard)
                    .into_iter()
                    .take(RETRY_CAP)
                    .collect();
                for tx in prepared {
                    self.cluster.retry(leader, tx);
                }
            }
            FaultEvent::OverloadBurst { depth } => {
                for _ in 0..*depth {
                    self.burst_seq += 1;
                    let seq = self.burst_seq;
                    let tx = TxId::new(1_000_000 + seq);
                    let payload = Payload::builder()
                        .read(Key::new(format!("burst-{seq}")), Version::ZERO)
                        .write(Key::new(format!("burst-{seq}")), Value::from("b"))
                        .commit_version(Version::new(1))
                        .build()
                        .expect("well-formed");
                    self.submit(tx, payload);
                }
            }
        }
    }

    /// Installs (or clears) fabric-wide background noise.
    pub fn set_noise(&mut self, noise: Option<LinkNoise>) {
        self.cluster
            .set_default_link_fault(noise.as_ref().map(noise_fault));
    }

    /// Advances simulated time by `d`.
    pub fn run_for(&mut self, d: SimDuration) {
        self.cluster.run_for(d);
    }

    /// Runs until no events remain.
    pub fn run_to_quiescence(&mut self) {
        self.cluster.run_to_quiescence();
    }

    /// Current simulated time in microseconds.
    pub fn now_micros(&self) -> u64 {
        self.cluster.now().as_micros()
    }

    /// Events executed so far (a determinism fingerprint).
    pub fn steps(&self) -> u64 {
        self.cluster.steps()
    }

    /// Heals every injected fault and restarts every crashed process.
    pub fn heal(&mut self) {
        self.cluster.heal_all_faults();
        self.apply(&FaultEvent::RestartCrashed);
    }

    /// Stamps a harness-level [`CtrlMilestone::Recovered`] marker: the
    /// recovery loop observed every shard operational with nothing left
    /// undecided. Closes the crash → heal → recovered span in the merged
    /// forensic log on every stack (the protocols themselves mark recovery
    /// with stack-specific milestones like `ShardOperational`).
    pub fn stamp_recovered(&mut self) {
        let by = self.cluster.client_id();
        self.cluster
            .record_ctrl(by, CtrlMilestone::Recovered, None, "soak-recovered");
    }

    /// Post-heal repair: re-drives reconfigurations until every shard is
    /// operational again. Returns `true` once the cluster looks operational.
    pub fn stabilize(&mut self) -> bool {
        if !self.cluster.supports_reconfiguration() {
            return true;
        }
        let mut all_ok = true;
        for shard in self.cluster.shards() {
            if !self.cluster.shard_operational(shard) {
                all_ok = false;
                self.reconfigure(shard);
            }
        }
        all_ok
    }

    /// The client-observed history.
    pub fn history(&self) -> TcsHistory {
        self.cluster.history()
    }

    /// Structural violations the client observed (contradictory decisions).
    pub fn client_violations(&self) -> Vec<String> {
        self.cluster.client_violations()
    }

    /// Per-transaction timeline forensics for `txs`: one rendered lifecycle
    /// timeline per transaction that has observability events (see
    /// [`TcsCluster::timelines`]). Soak drivers attach these to failing
    /// reports so a safety or liveness violation arrives with the full
    /// commit-path story of the transactions involved.
    pub fn timeline_forensics(&self, txs: &[TxId]) -> Vec<String> {
        let timelines = self.cluster.timelines();
        txs.iter()
            .map(|tx| match timelines.get(tx) {
                Some(timeline) => format!("tx {}: {timeline}", tx.as_u64()),
                None => format!("tx {}: no lifecycle events recorded", tx.as_u64()),
            })
            .collect()
    }

    /// The cluster's control-plane event stream (injected faults merged with
    /// protocol reconfiguration/recovery milestones, in time order).
    pub fn ctrl_events(&self) -> Vec<CtrlEvent> {
        self.cluster.ctrl_events()
    }

    /// Per-shard availability windows (see
    /// [`TcsCluster::blackouts`]).
    pub fn blackouts(&self) -> Vec<Blackout> {
        self.cluster.blackouts()
    }

    /// Control-plane forensics: the tail of the merged fault + protocol
    /// event log, one rendered line per event (at most the last `limit`),
    /// followed by one line per availability window. Soak drivers attach
    /// this to failing reports so a violation arrives with the control-plane
    /// story — which faults landed, what the protocol did about them, and
    /// how long each shard was dark.
    pub fn ctrl_forensics(&self, limit: usize) -> Vec<String> {
        let events = self.ctrl_events();
        let skipped = events.len().saturating_sub(limit);
        let mut lines = Vec::new();
        if skipped > 0 {
            lines.push(format!("ctrl: … {skipped} earlier events elided"));
        }
        lines.extend(events.iter().skip(skipped).map(|e| format!("ctrl: {e}")));
        lines.extend(self.blackouts().iter().map(|b| format!("blackout: {b}")));
        lines
    }
}

/// Builds the chaos harness for `stack`: checkpointed truncation with fold
/// batch 8 (so soaks exercise the truncation/fault interplay), default
/// batching, and an optional fixed submission coordinator.
pub fn build_harness(
    stack: Stack,
    shards: u32,
    seed: u64,
    coordinator: Option<(ShardId, usize)>,
) -> ChaosHarness {
    let spec = ClusterSpec::new(stack)
        .with_shards(shards)
        .with_seed(seed)
        .with_truncation(TruncationConfig::with_batch(8))
        // Observability is on for every soak: recording never perturbs the
        // seeded schedule, and a failing run dumps the violating/undecided
        // transactions' timelines as forensics.
        .with_observability();
    ChaosHarness::new(&spec, coordinator)
}
