//! Greedy schedule shrinking: minimize a failing [`FaultPlan`].
//!
//! Given a plan that provokes a violation and a deterministic reproduction
//! predicate, [`shrink_plan`] repeatedly tries to drop the background noise
//! and individual events, keeping every removal under which the violation
//! still reproduces, until no single removal does. The result is a small,
//! human-readable counterexample schedule (`FaultPlan: Display`).

use crate::plan::FaultPlan;

/// Greedily shrinks `plan` with respect to `fails` (which must return `true`
/// when the violation reproduces under the given plan; it is re-run from a
/// fresh cluster each time, so the check is deterministic).
///
/// The input plan is assumed failing. Worst-case `O(n²)` reproductions for an
/// `n`-event plan.
pub fn shrink_plan<F>(plan: &FaultPlan, mut fails: F) -> FaultPlan
where
    F: FnMut(&FaultPlan) -> bool,
{
    let mut current = plan.clone();
    // Dropping the noise first makes the remaining schedule fully discrete.
    if current.noise.is_some() {
        let candidate = current.without_noise();
        if fails(&candidate) {
            current = candidate;
        }
    }
    loop {
        let mut shrunk = false;
        let mut i = 0;
        while i < current.events.len() {
            let candidate = current.without_event(i);
            if fails(&candidate) {
                current = candidate;
                shrunk = true;
                // Do not advance: the next event shifted into slot `i`.
            } else {
                i += 1;
            }
        }
        if !shrunk {
            return current;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{FaultEvent, LinkNoise, TimedFault};
    use ratc_types::ShardId;

    fn plan_of(kinds: &[FaultEvent]) -> FaultPlan {
        FaultPlan {
            noise: Some(LinkNoise::scaled(40)),
            events: kinds
                .iter()
                .enumerate()
                .map(|(i, event)| TimedFault {
                    at_micros: (i as u64 + 1) * 1_000,
                    event: event.clone(),
                })
                .collect(),
        }
    }

    #[test]
    fn shrinks_to_the_minimal_failing_core() {
        let s0 = ShardId::new(0);
        let s1 = ShardId::new(1);
        let full = plan_of(&[
            FaultEvent::CrashFollower {
                shard: s0,
                index: 0,
            },
            FaultEvent::CrashLeader { shard: s1 },
            FaultEvent::RestartCrashed,
            FaultEvent::Reconfigure { shard: s1 },
            FaultEvent::HealFaults,
        ]);
        // The "violation" needs exactly CrashLeader(s1) and Reconfigure(s1),
        // in that order, and no noise requirement.
        let fails = |p: &FaultPlan| {
            let crash = p
                .events
                .iter()
                .position(|e| e.event == FaultEvent::CrashLeader { shard: s1 });
            let recon = p
                .events
                .iter()
                .position(|e| e.event == FaultEvent::Reconfigure { shard: s1 });
            matches!((crash, recon), (Some(c), Some(r)) if c < r)
        };
        assert!(fails(&full));
        let shrunk = shrink_plan(&full, fails);
        assert_eq!(shrunk.len(), 2);
        assert!(shrunk.noise.is_none());
        assert_eq!(
            shrunk.events[0].event,
            FaultEvent::CrashLeader { shard: s1 }
        );
        assert_eq!(
            shrunk.events[1].event,
            FaultEvent::Reconfigure { shard: s1 }
        );
        // The shrunk schedule still fails, and is 1-minimal.
        assert!(fails(&shrunk));
        for i in 0..shrunk.len() {
            assert!(!fails(&shrunk.without_event(i)));
        }
    }
}
