//! Commit-path observability: per-transaction lifecycle spans and
//! phase-latency attribution.
//!
//! The experiment harnesses can *measure outcomes* (committed tx/s, undecided
//! counts, goodput knees) but outcomes alone cannot *explain* a latency
//! number: how much of it was admission-queue wait, how much was
//! certification, how much was waiting for the accept quorum, on which stack,
//! under which engine? The paper's whole argument is about shaving commit-path
//! message delays (5 for RATC vs 7 for 2PC-over-Paxos; §6 of Bravo & Gotsman
//! 2019), so this crate provides the instrument that attributes an observed
//! end-to-end latency to the protocol steps that produced it.
//!
//! The model is deliberately tiny and stack-agnostic:
//!
//! * [`TxMilestone`] — the protocol milestones every stack passes through on
//!   its commit path, plus annotations (retries, batch flushes).
//! * [`TxObsEvent`] — one timestamped milestone observation. Recorders (the
//!   simulation substrate's metrics sink) simply append these to a vector;
//!   this crate never records anything itself.
//! * [`TxTimeline`] — all observations of one transaction, folded from a flat
//!   event stream by [`fold_timelines`].
//! * [`Phase`] / [`PhaseBreakdown`] — the attribution: consecutive milestone
//!   pairs become six telescoping phases whose durations sum *exactly* to the
//!   end-to-end latency (see [`PhaseBreakdown::from_timeline`]).
//! * [`LatencyUnit`] — whether the timestamps (and hence every derived
//!   duration) are virtual simulated microseconds or wall-clock microseconds,
//!   so reports can label their numbers unambiguously.
//!
//! Timestamps are plain `u64` microseconds since the time origin of whatever
//! clock the recorder used; this crate only ever subtracts them, so it works
//! identically under the deterministic simulator (virtual time) and the
//! threaded runtime (wall time).
//!
//! The [`ctrl`] module is the control-plane mirror of this commit-path layer:
//! cluster-scope [`CtrlEvent`] milestones (reconfiguration, crash/recovery,
//! injected faults) and the per-shard availability windows ([`Blackout`])
//! derived from them.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod ctrl;

pub use ctrl::{blackouts, decided_times_per_shard, Blackout, CtrlEvent, CtrlMilestone};

use std::collections::BTreeMap;
use std::fmt;

use ratc_types::{ProcessId, TxId};

/// The clock a latency or timestamp was measured on.
///
/// Every latency the workspace reports is in microseconds, but *whose*
/// microseconds depends on the execution engine: the deterministic simulator
/// advances a virtual clock (identical across runs with the same seed), while
/// the threaded runtime reads the monotonic wall clock. Mixing the two in one
/// table is meaningless, so experiment outputs carry this label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LatencyUnit {
    /// Virtual simulated microseconds (deterministic, seed-reproducible).
    VirtualMicros,
    /// Wall-clock microseconds from the monotonic clock (real elapsed time).
    WallMicros,
}

impl LatencyUnit {
    /// The stable string used in JSON keys and report rows.
    pub fn as_str(self) -> &'static str {
        match self {
            LatencyUnit::VirtualMicros => "virtual_micros",
            LatencyUnit::WallMicros => "wall_micros",
        }
    }
}

impl fmt::Display for LatencyUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A protocol milestone on the commit path of one transaction.
///
/// The first seven variants are the lifecycle proper, in commit-path order;
/// all three stacks pass through all of them. [`TxMilestone::Retry`] and
/// [`TxMilestone::BatchFlush`] are annotations: they explain *why* a phase
/// took as long as it did but do not bound any phase themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TxMilestone {
    /// The client handed the transaction to a coordinator (CERTIFY sent).
    Submitted,
    /// The coordinator's flow control released the transaction into the
    /// in-flight window (immediately on arrival when the window has room,
    /// later when it was queued).
    Admitted,
    /// The coordinator sent the certification requests (PREPARE) to the
    /// shards — directly, or as part of a batch flush.
    CertifySent,
    /// One shard's vote reached the coordinator
    /// ([`TxObsEvent::detail`] = the shard id).
    ShardVoted,
    /// The last required vote arrived: the accept quorum is complete and the
    /// outcome is determined.
    AcceptQuorum,
    /// The coordinator durably fixed the decision and began externalising it.
    Decided,
    /// The decision reached the client (end of the client-visible latency).
    ClientLearned,
    /// A retry/backoff re-drive fired for this transaction
    /// ([`TxObsEvent::detail`] = the 0-based backoff attempt).
    Retry,
    /// The transaction was flushed as part of a certification batch
    /// ([`TxObsEvent::detail`] = the batch occupancy at flush).
    BatchFlush,
}

impl TxMilestone {
    /// The lifecycle milestones in commit-path order (annotations excluded).
    pub const LIFECYCLE: [TxMilestone; 7] = [
        TxMilestone::Submitted,
        TxMilestone::Admitted,
        TxMilestone::CertifySent,
        TxMilestone::ShardVoted,
        TxMilestone::AcceptQuorum,
        TxMilestone::Decided,
        TxMilestone::ClientLearned,
    ];
}

impl fmt::Display for TxMilestone {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            TxMilestone::Submitted => "submitted",
            TxMilestone::Admitted => "admitted",
            TxMilestone::CertifySent => "certify-sent",
            TxMilestone::ShardVoted => "shard-voted",
            TxMilestone::AcceptQuorum => "accept-quorum",
            TxMilestone::Decided => "decided",
            TxMilestone::ClientLearned => "client-learned",
            TxMilestone::Retry => "retry",
            TxMilestone::BatchFlush => "batch-flush",
        };
        f.write_str(name)
    }
}

/// One timestamped milestone observation, as appended by a recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxObsEvent {
    /// The transaction this observation belongs to.
    pub tx: TxId,
    /// Microseconds since the recorder's time origin (see [`LatencyUnit`]).
    pub at_micros: u64,
    /// The process that observed the milestone.
    pub by: ProcessId,
    /// Which milestone was observed.
    pub milestone: TxMilestone,
    /// Milestone-specific detail: the shard id for
    /// [`TxMilestone::ShardVoted`], the batch occupancy for
    /// [`TxMilestone::BatchFlush`], the backoff attempt for
    /// [`TxMilestone::Retry`], `0` otherwise.
    pub detail: u64,
}

/// Every observation of one transaction, in recording order.
///
/// A timeline holds the raw events; the lookup helpers implement the
/// milestone-time conventions the phase attribution relies on (first
/// occurrence for most milestones, *last* occurrence for
/// [`TxMilestone::ShardVoted`], since certification ends when the final shard
/// has voted).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TxTimeline {
    events: Vec<TxObsEvent>,
}

impl TxTimeline {
    /// Appends one observation (events are kept in recording order).
    pub fn push(&mut self, event: TxObsEvent) {
        self.events.push(event);
    }

    /// The raw observations, in recording order.
    pub fn events(&self) -> &[TxObsEvent] {
        &self.events
    }

    /// The timestamp of the first occurrence of `milestone`, if observed.
    pub fn first(&self, milestone: TxMilestone) -> Option<u64> {
        self.events
            .iter()
            .filter(|e| e.milestone == milestone)
            .map(|e| e.at_micros)
            .min()
    }

    /// The timestamp of the last occurrence of `milestone`, if observed.
    pub fn last(&self, milestone: TxMilestone) -> Option<u64> {
        self.events
            .iter()
            .filter(|e| e.milestone == milestone)
            .map(|e| e.at_micros)
            .max()
    }

    /// Number of retry/backoff re-drives recorded for this transaction.
    pub fn retries(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.milestone == TxMilestone::Retry)
            .count()
    }

    /// `true` once both endpoints of the client-visible latency are present
    /// (so a [`PhaseBreakdown`] can be attributed).
    pub fn is_complete(&self) -> bool {
        self.first(TxMilestone::Submitted).is_some()
            && self.first(TxMilestone::ClientLearned).is_some()
    }
}

impl fmt::Display for TxTimeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let origin = self
            .events
            .iter()
            .map(|e| e.at_micros)
            .min()
            .unwrap_or_default();
        let mut first = true;
        for event in &self.events {
            if !first {
                write!(f, " ")?;
            }
            first = false;
            write!(
                f,
                "+{}us {}@{}",
                event.at_micros - origin,
                event.milestone,
                event.by
            )?;
            match event.milestone {
                TxMilestone::ShardVoted => write!(f, "(s{})", event.detail)?,
                TxMilestone::Retry => write!(f, "(attempt {})", event.detail)?,
                TxMilestone::BatchFlush => write!(f, "(batch {})", event.detail)?,
                _ => {}
            }
        }
        if first {
            write!(f, "(no observations)")?;
        }
        Ok(())
    }
}

/// Folds a flat recorder event stream into per-transaction timelines.
pub fn fold_timelines(events: &[TxObsEvent]) -> BTreeMap<TxId, TxTimeline> {
    let mut timelines: BTreeMap<TxId, TxTimeline> = BTreeMap::new();
    for event in events {
        timelines.entry(event.tx).or_default().push(*event);
    }
    timelines
}

/// One of the six telescoping commit-path phases.
///
/// Each phase is the interval between two consecutive lifecycle milestones,
/// so the six durations always sum to the end-to-end latency (submitted →
/// client-learned). The paper counts commit-path *message delays* (§6:
/// 5 for RATC, 7 for the 2PC-over-Paxos baseline); the mapping is:
///
/// | Phase | Interval | RATC (§3/§5) | Baseline (2PC/Paxos) |
/// |---|---|---|---|
/// | [`Phase::Admission`] | submitted → admitted | delay 1 (CERTIFY) + any flow-control queue wait | delay 1 + queue wait |
/// | [`Phase::Dispatch`] | admitted → certify-sent | coordinator-local (0 unless batched) | TM-local |
/// | [`Phase::Certification`] | certify-sent → last shard vote | delays 2–3 (PREPARE + vote) | delays 2–4 (votes made durable in the shard's Paxos log before they count) |
/// | [`Phase::Quorum`] | last vote → accept-quorum | 0 (the last vote *is* the quorum) | delays 5–6 (decision chosen in the TM's Paxos log) |
/// | [`Phase::Decide`] | accept-quorum → decided | coordinator-local | TM-local |
/// | [`Phase::Relay`] | decided → client-learned | delay 5 (DECISION to client; delay 4 runs in parallel) | delay 7 |
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Submitted → admitted: client-to-coordinator delay plus flow-control
    /// queue wait. Grows without bound under overload — the signature of
    /// admission-queue backpressure.
    Admission,
    /// Admitted → certify-sent: coordinator-local dispatch, nonzero mainly
    /// when the batching pipeline holds transactions for a flush.
    Dispatch,
    /// Certify-sent → last shard vote: the certification round trip(s).
    Certification,
    /// Last shard vote → accept quorum complete. Zero on the RATC stacks
    /// (the last vote completes the quorum); on the baseline this is where
    /// the TM's own Paxos round would surface if votes were counted earlier.
    Quorum,
    /// Accept quorum → decision fixed: local bookkeeping, ≈ 0 everywhere.
    Decide,
    /// Decided → client learned: the decision relay.
    Relay,
}

impl Phase {
    /// All six phases, in commit-path order.
    pub const ALL: [Phase; 6] = [
        Phase::Admission,
        Phase::Dispatch,
        Phase::Certification,
        Phase::Quorum,
        Phase::Decide,
        Phase::Relay,
    ];

    /// The stable string used in JSON keys and report rows.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Admission => "admission",
            Phase::Dispatch => "dispatch",
            Phase::Certification => "certification",
            Phase::Quorum => "quorum",
            Phase::Decide => "decide",
            Phase::Relay => "relay",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The per-phase attribution of one transaction's end-to-end latency.
///
/// Built by [`PhaseBreakdown::from_timeline`]; the six phase durations sum to
/// [`PhaseBreakdown::total_micros`] *exactly* (not just within rounding), by
/// construction. See [`Phase`] for what each phase means and which paper
/// message delays it contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// Duration of each phase in microseconds, indexed like [`Phase::ALL`].
    phases: [u64; 6],
    /// End-to-end latency (submitted → client-learned) in microseconds.
    total_micros: u64,
    /// Retry/backoff re-drives observed for this transaction.
    retries: usize,
}

impl PhaseBreakdown {
    /// Attributes a completed timeline to phases. Returns `None` unless both
    /// endpoints (submitted, client-learned) were observed.
    ///
    /// Interior milestones may be missing (e.g. a decision re-sent from the
    /// log after a crash skips the vote milestones of the new incarnation) or
    /// — under the threaded engine — observed marginally out of order across
    /// worker clock reads. Both are repaired conservatively: a missing
    /// milestone time is back-filled from the next later one (its phase
    /// becomes 0) and every time is clamped into the envelope of its
    /// predecessor and the end of the timeline. The telescoping sum
    /// `Σ phases = client_learned − submitted` therefore holds exactly.
    pub fn from_timeline(timeline: &TxTimeline) -> Option<PhaseBreakdown> {
        let submitted = timeline.first(TxMilestone::Submitted)?;
        let learned = timeline.first(TxMilestone::ClientLearned)?;
        let learned = learned.max(submitted);
        let mut times = [
            Some(submitted),
            timeline.first(TxMilestone::Admitted),
            timeline.first(TxMilestone::CertifySent),
            // Certification ends when the *final* shard has voted.
            timeline.last(TxMilestone::ShardVoted),
            timeline.first(TxMilestone::AcceptQuorum),
            timeline.first(TxMilestone::Decided),
            Some(learned),
        ];
        // Back-fill right-to-left: an unobserved milestone collapses its
        // phase to zero instead of poisoning the sum.
        for i in (0..times.len() - 1).rev() {
            if times[i].is_none() {
                times[i] = times[i + 1];
            }
        }
        let mut bounds = [0u64; 7];
        let mut prev = submitted;
        for (slot, time) in bounds.iter_mut().zip(times) {
            let t = time.expect("back-filled").clamp(prev, learned);
            *slot = t;
            prev = t;
        }
        let mut phases = [0u64; 6];
        for (i, phase) in phases.iter_mut().enumerate() {
            *phase = bounds[i + 1] - bounds[i];
        }
        Some(PhaseBreakdown {
            phases,
            total_micros: learned - submitted,
            retries: timeline.retries(),
        })
    }

    /// The duration of `phase` in microseconds.
    pub fn phase_micros(&self, phase: Phase) -> u64 {
        let index = Phase::ALL.iter().position(|p| *p == phase).expect("phase");
        self.phases[index]
    }

    /// The six phase durations, indexed like [`Phase::ALL`].
    pub fn phases(&self) -> [u64; 6] {
        self.phases
    }

    /// End-to-end latency (submitted → client-learned) in microseconds;
    /// always equal to the sum of the six phases.
    pub fn total_micros(&self) -> u64 {
        self.total_micros
    }

    /// Retry/backoff re-drives observed for this transaction.
    pub fn retries(&self) -> usize {
        self.retries
    }
}

impl fmt::Display for PhaseBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "total={}us [", self.total_micros)?;
        for (i, phase) in Phase::ALL.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}={}", phase, self.phases[i])?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(tx: u64, at: u64, milestone: TxMilestone, detail: u64) -> TxObsEvent {
        TxObsEvent {
            tx: TxId::new(tx),
            at_micros: at,
            by: ProcessId::new(9),
            milestone,
            detail,
        }
    }

    fn full_timeline() -> TxTimeline {
        let mut t = TxTimeline::default();
        t.push(ev(1, 100, TxMilestone::Submitted, 0));
        t.push(ev(1, 130, TxMilestone::Admitted, 0));
        t.push(ev(1, 135, TxMilestone::CertifySent, 0));
        t.push(ev(1, 160, TxMilestone::ShardVoted, 0));
        t.push(ev(1, 180, TxMilestone::ShardVoted, 1));
        t.push(ev(1, 180, TxMilestone::AcceptQuorum, 0));
        t.push(ev(1, 181, TxMilestone::Decided, 0));
        t.push(ev(1, 210, TxMilestone::ClientLearned, 0));
        t
    }

    #[test]
    fn breakdown_phases_sum_exactly_to_end_to_end() {
        let b = PhaseBreakdown::from_timeline(&full_timeline()).expect("complete");
        assert_eq!(b.total_micros(), 110);
        assert_eq!(b.phases().iter().sum::<u64>(), b.total_micros());
        assert_eq!(b.phase_micros(Phase::Admission), 30);
        assert_eq!(b.phase_micros(Phase::Dispatch), 5);
        assert_eq!(b.phase_micros(Phase::Certification), 45);
        assert_eq!(b.phase_micros(Phase::Quorum), 0);
        assert_eq!(b.phase_micros(Phase::Decide), 1);
        assert_eq!(b.phase_micros(Phase::Relay), 29);
    }

    #[test]
    fn certification_ends_at_the_last_shard_vote() {
        let t = full_timeline();
        assert_eq!(t.first(TxMilestone::ShardVoted), Some(160));
        assert_eq!(t.last(TxMilestone::ShardVoted), Some(180));
    }

    #[test]
    fn missing_interior_milestones_collapse_their_phase_to_zero() {
        let mut t = TxTimeline::default();
        t.push(ev(2, 50, TxMilestone::Submitted, 0));
        t.push(ev(2, 90, TxMilestone::Decided, 0));
        t.push(ev(2, 120, TxMilestone::ClientLearned, 0));
        let b = PhaseBreakdown::from_timeline(&t).expect("complete");
        assert_eq!(b.total_micros(), 70);
        assert_eq!(b.phases().iter().sum::<u64>(), 70);
        // Everything before `Decided` back-fills onto its time: the missing
        // phases are 0 and Admission absorbs the submitted→decided interval.
        assert_eq!(b.phase_micros(Phase::Admission), 40);
        assert_eq!(b.phase_micros(Phase::Certification), 0);
        assert_eq!(b.phase_micros(Phase::Relay), 30);
    }

    #[test]
    fn out_of_order_times_are_clamped_and_still_sum() {
        let mut t = TxTimeline::default();
        t.push(ev(3, 100, TxMilestone::Submitted, 0));
        t.push(ev(3, 95, TxMilestone::Admitted, 0)); // clock skew artefact
        t.push(ev(3, 400, TxMilestone::Decided, 0)); // after client-learned
        t.push(ev(3, 300, TxMilestone::ClientLearned, 0));
        let b = PhaseBreakdown::from_timeline(&t).expect("complete");
        assert_eq!(b.total_micros(), 200);
        assert_eq!(b.phases().iter().sum::<u64>(), 200);
    }

    #[test]
    fn incomplete_timelines_yield_no_breakdown() {
        let mut t = TxTimeline::default();
        t.push(ev(4, 10, TxMilestone::Submitted, 0));
        t.push(ev(4, 20, TxMilestone::Admitted, 0));
        assert!(!t.is_complete());
        assert!(PhaseBreakdown::from_timeline(&t).is_none());
    }

    #[test]
    fn fold_groups_by_transaction_and_counts_retries() {
        let events = vec![
            ev(1, 10, TxMilestone::Submitted, 0),
            ev(2, 11, TxMilestone::Submitted, 0),
            ev(1, 40, TxMilestone::Retry, 0),
            ev(1, 90, TxMilestone::Retry, 1),
            ev(1, 120, TxMilestone::ClientLearned, 0),
        ];
        let timelines = fold_timelines(&events);
        assert_eq!(timelines.len(), 2);
        let t1 = &timelines[&TxId::new(1)];
        assert_eq!(t1.retries(), 2);
        assert!(t1.is_complete());
        let b = PhaseBreakdown::from_timeline(t1).expect("complete");
        assert_eq!(b.retries(), 2);
        assert!(!timelines[&TxId::new(2)].is_complete());
    }

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(LatencyUnit::VirtualMicros.to_string(), "virtual_micros");
        assert_eq!(LatencyUnit::WallMicros.to_string(), "wall_micros");
        assert_eq!(Phase::Certification.to_string(), "certification");
        assert_eq!(TxMilestone::AcceptQuorum.to_string(), "accept-quorum");
        let mut t = TxTimeline::default();
        t.push(ev(1, 100, TxMilestone::Submitted, 0));
        t.push(ev(1, 140, TxMilestone::ShardVoted, 3));
        let text = t.to_string();
        assert!(text.contains("+0us submitted@p9"), "{text}");
        assert!(text.contains("+40us shard-voted@p9(s3)"), "{text}");
    }
}
