//! Control-plane observability: cluster-scope milestones, fault correlation
//! and per-shard availability windows.
//!
//! The commit-path layer ([`crate::TxMilestone`]) explains where one
//! transaction's latency went; this module explains what the *cluster* was
//! doing around it. A [`CtrlEvent`] stamps one control-plane milestone — a
//! reconfiguration step, a crash, a restart, an injected fault — and the
//! stream of them, merged with the per-transaction stream, answers the
//! question the paper's reconfiguration protocol exists for: *how long is a
//! shard dark when the environment misbehaves?*
//!
//! [`blackouts`] computes that number: a per-shard **availability window**
//! opens at the first event that degrades the shard and closes at the first
//! transaction decided on the shard afterwards.
//!
//! # Mapping to the paper's reconfiguration phases
//!
//! The milestones stamp the phases of Bravo & Gotsman 2019's reconfiguration
//! protocol (§3 for the message-passing TCS, §5 for the RDMA one). Both
//! protocol stacks stamp the *same* milestones at the equivalent step, so a
//! single forensic pipeline reads either:
//!
//! | Milestone | Paper phase |
//! |---|---|
//! | [`CtrlMilestone::ReconfigInitiated`] | `reconfigure()` entered: the initiator asks the configuration service for the last epoch (`CS.getLast`) |
//! | [`CtrlMilestone::ProbeStarted`] | probe phase: `PROBE` sent to the members of every shard being reconfigured (§5 lines 111–116) |
//! | [`CtrlMilestone::ProbeGrace`] | the new epoch is viable but some probed members have not answered; a grace timer briefly waits for warm replicas before falling back to spares |
//! | [`CtrlMilestone::ConfigChosen`] | the initiator computed the new configuration and won the `CS.CAS` on the configuration service (§5 lines 121–124) |
//! | [`CtrlMilestone::StateTransferred`] | a follower installed the new leader's log via `NEW_STATE` (§5 lines 148–153) |
//! | [`CtrlMilestone::ShardOperational`] | the new leader activated the configuration on receiving `NEW_CONFIG` (§5 lines 141–147): the shard serves again |
//! | [`CtrlMilestone::LeaderHandoff`] | the `NEW_CONFIG` recipient differs from the previous leader of the shard |
//!
//! Crash/restart/recovery spans ([`CtrlMilestone::Crash`] →
//! [`CtrlMilestone::Restart`] → [`CtrlMilestone::Recovered`]) and the chaos
//! harness's injected faults ([`CtrlMilestone::FaultInjected`] /
//! [`CtrlMilestone::FaultHealed`]) share the stream, so one time-ordered log
//! correlates every latency spike with its cause.

use std::collections::BTreeMap;
use std::fmt;

use ratc_types::{ProcessId, ShardId, TxId};

use crate::{TxMilestone, TxObsEvent};

/// A cluster-scope (control-plane) milestone.
///
/// See the [module docs](self) for the mapping of the reconfiguration
/// milestones onto the paper's protocol phases. The variants are ordered
/// roughly by lifecycle: reconfiguration, crash/recovery, fault injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CtrlMilestone {
    /// A reconfiguration was initiated (`reconfigure()` entered; the
    /// initiator asked the configuration service for the latest epoch).
    /// [`CtrlEvent::detail`] = the epoch the initiator currently holds.
    // analyze:allow(milestone-parity): the baseline stack is the paper's
    // static-membership strawman (§2) — it has no reconfiguration protocol,
    // so the reconfiguration lifecycle structurally cannot occur there.
    ReconfigInitiated,
    /// The probe phase started: `PROBE` messages were sent to the members of
    /// every shard being reconfigured. [`CtrlEvent::detail`] = the candidate
    /// new epoch.
    // analyze:allow(milestone-parity): no probe phase in the static-membership
    // baseline — reconfiguration-only milestone.
    ProbeStarted,
    /// The probe grace timer was armed: the new epoch is viable, but the
    /// initiator briefly waits for stragglers so warm replicas are preferred
    /// over spares. [`CtrlEvent::detail`] = the candidate new epoch.
    // analyze:allow(milestone-parity): no probe phase in the static-membership
    // baseline — reconfiguration-only milestone.
    ProbeGrace,
    /// The new configuration was chosen: the initiator won the configuration
    /// service CAS. [`CtrlEvent::detail`] = the new epoch.
    // analyze:allow(milestone-parity): the static-membership baseline has no
    // configuration service — reconfiguration-only milestone.
    ConfigChosen,
    /// A follower installed the transferred state (`NEW_STATE`) of the new
    /// configuration. [`CtrlEvent::detail`] = the new epoch.
    // analyze:allow(milestone-parity): no state transfer in the
    // static-membership baseline — reconfiguration-only milestone.
    StateTransferred,
    /// A leader activated the new configuration (`NEW_CONFIG`): the shard is
    /// operational in the new epoch. [`CtrlEvent::detail`] = the new epoch.
    // analyze:allow(milestone-parity): no epoch activation in the
    // static-membership baseline — reconfiguration-only milestone.
    ShardOperational,
    /// The process activating `NEW_CONFIG` was not the shard's previous
    /// leader: leadership moved. [`CtrlEvent::detail`] = the new epoch.
    // analyze:allow(milestone-parity): baseline leadership is fixed at
    // deployment (static membership) — leadership never moves there.
    LeaderHandoff,
    /// The process crashed (lost its volatile state; RDMA permissions
    /// revoked). [`CtrlEvent::detail`] = the incarnation that crashed.
    Crash,
    /// The process restarted with empty volatile state.
    /// [`CtrlEvent::detail`] = the new incarnation.
    Restart,
    /// A restarted process finished catching up (e.g. re-established its
    /// connections or reinstalled state) and serves again.
    Recovered,
    /// The chaos harness injected a fault; [`CtrlEvent::note`] carries the
    /// fault's display form (e.g. `crash-leader(s1)`).
    FaultInjected,
    /// The chaos harness healed its standing faults (partitions, delays).
    FaultHealed,
    /// A coordinator handoff: a stalled transaction was handed to a member
    /// of the current configuration. [`CtrlEvent::detail`] = the raw
    /// transaction id.
    // analyze:allow(milestone-parity): in the baseline the TM group *is* the
    // coordinator and fails over via Paxos leadership, not via the
    // per-transaction handoff of §4 — nothing to stamp there.
    CoordinatorHandoff,
}

impl CtrlMilestone {
    /// `true` for the milestones that *degrade* a shard — the events that can
    /// open an availability window (see [`blackouts`]): a crash of one of its
    /// members, a reconfiguration touching it, or an injected fault.
    pub fn degrades(self) -> bool {
        matches!(
            self,
            CtrlMilestone::ReconfigInitiated | CtrlMilestone::Crash | CtrlMilestone::FaultInjected
        )
    }

    /// The stable string used in JSON keys and report rows.
    pub fn as_str(self) -> &'static str {
        match self {
            CtrlMilestone::ReconfigInitiated => "reconfig-initiated",
            CtrlMilestone::ProbeStarted => "probe-started",
            CtrlMilestone::ProbeGrace => "probe-grace",
            CtrlMilestone::ConfigChosen => "config-chosen",
            CtrlMilestone::StateTransferred => "state-transferred",
            CtrlMilestone::ShardOperational => "shard-operational",
            CtrlMilestone::LeaderHandoff => "leader-handoff",
            CtrlMilestone::Crash => "crash",
            CtrlMilestone::Restart => "restart",
            CtrlMilestone::Recovered => "recovered",
            CtrlMilestone::FaultInjected => "fault-injected",
            CtrlMilestone::FaultHealed => "fault-healed",
            CtrlMilestone::CoordinatorHandoff => "coordinator-handoff",
        }
    }
}

impl fmt::Display for CtrlMilestone {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One timestamped control-plane observation, as appended by a recorder.
///
/// Unlike [`TxObsEvent`] this is not `Copy`: the optional [`CtrlEvent::note`]
/// carries free-form context (the chaos harness stores the injected fault's
/// display form there). Protocol-stamped events leave it empty, which does
/// not allocate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CtrlEvent {
    /// Microseconds since the recorder's time origin (see
    /// [`crate::LatencyUnit`]).
    pub at_micros: u64,
    /// The process that observed the milestone (the harness itself stamps
    /// with the process it acted on).
    pub by: ProcessId,
    /// Which milestone was observed.
    pub milestone: CtrlMilestone,
    /// The shard the milestone concerns, when the observer knows it. Events
    /// stamped by the substrate (crash/restart) leave this `None`; the
    /// harness layer re-attributes them from the roster.
    pub shard: Option<ShardId>,
    /// Milestone-specific detail (see each [`CtrlMilestone`] variant).
    pub detail: u64,
    /// Free-form context; empty for protocol-stamped events.
    pub note: String,
}

impl fmt::Display for CtrlEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "+{}us {}@{}", self.at_micros, self.milestone, self.by)?;
        if let Some(shard) = self.shard {
            write!(f, "({shard})")?;
        }
        if !self.note.is_empty() {
            write!(f, " [{}]", self.note)?;
        }
        Ok(())
    }
}

/// One per-shard availability window, computed by [`blackouts`].
///
/// The window opens at the first [degrading](CtrlMilestone::degrades) event
/// touching the shard and closes at the first transaction *decided* on the
/// shard strictly after the last degrading event inside the window. A window
/// that never closes (`end_micros == None`) means the shard never decided
/// another transaction in the observed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Blackout {
    /// The shard that went dark.
    pub shard: ShardId,
    /// When the first degrading event hit the shard.
    pub start_micros: u64,
    /// When the last degrading event inside this window hit the shard
    /// (equal to `start_micros` for a single-event window).
    pub last_degrade_micros: u64,
    /// When the first post-event transaction was decided on the shard, if
    /// any.
    pub end_micros: Option<u64>,
    /// The milestone that opened the window.
    pub cause: CtrlMilestone,
}

impl Blackout {
    /// The blackout duration (`end − start`), if the window closed.
    pub fn duration_micros(&self) -> Option<u64> {
        self.end_micros.map(|end| end - self.start_micros)
    }

    /// Time from the *last* degrading event to recovery — how long the
    /// protocol took to recover once the environment stopped misbehaving.
    pub fn time_to_recover_micros(&self) -> Option<u64> {
        self.end_micros.map(|end| end - self.last_degrade_micros)
    }
}

impl fmt::Display for Blackout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.end_micros {
            Some(end) => write!(
                f,
                "{}: [{}us, {}us] ({}us, cause {})",
                self.shard,
                self.start_micros,
                end,
                end - self.start_micros,
                self.cause
            ),
            None => write!(
                f,
                "{}: [{}us, …] (unrecovered, cause {})",
                self.shard, self.start_micros, self.cause
            ),
        }
    }
}

/// Extracts, from a commit-path event stream, the times at which
/// transactions were *decided on each shard*: a transaction counts for every
/// shard that voted on it ([`TxMilestone::ShardVoted`] detail), at its first
/// [`TxMilestone::Decided`] timestamp. Returned per-shard lists are sorted.
pub fn decided_times_per_shard(events: &[TxObsEvent]) -> BTreeMap<ShardId, Vec<u64>> {
    let mut shards_of: BTreeMap<TxId, Vec<ShardId>> = BTreeMap::new();
    let mut decided_at: BTreeMap<TxId, u64> = BTreeMap::new();
    for event in events {
        match event.milestone {
            TxMilestone::ShardVoted => {
                let shard = ShardId::new(event.detail as u32);
                let shards = shards_of.entry(event.tx).or_default();
                if !shards.contains(&shard) {
                    shards.push(shard);
                }
            }
            TxMilestone::Decided => {
                let at = decided_at.entry(event.tx).or_insert(event.at_micros);
                *at = (*at).min(event.at_micros);
            }
            _ => {}
        }
    }
    let mut per_shard: BTreeMap<ShardId, Vec<u64>> = BTreeMap::new();
    for (tx, at) in decided_at {
        for shard in shards_of.get(&tx).map(Vec::as_slice).unwrap_or(&[]) {
            per_shard.entry(*shard).or_default().push(at);
        }
    }
    for times in per_shard.values_mut() {
        times.sort_unstable();
    }
    per_shard
}

/// Computes per-shard availability windows from a control-plane stream and
/// the per-shard decided-transaction times (see [`decided_times_per_shard`]).
///
/// Only events with a known [`CtrlEvent::shard`] participate; the harness
/// layer attributes shard-less substrate events (crashes) from its roster
/// before calling this. A degrading event while a window is already open
/// *extends* it (recovery is measured from the last degradation); a decided
/// transaction strictly after the last degradation closes the window.
/// Windows are returned sorted by (shard, start).
pub fn blackouts(ctrl: &[CtrlEvent], decided: &BTreeMap<ShardId, Vec<u64>>) -> Vec<Blackout> {
    // Group degrading events per shard, in time order.
    let mut degrades: BTreeMap<ShardId, Vec<&CtrlEvent>> = BTreeMap::new();
    for event in ctrl {
        if let Some(shard) = event.shard {
            if event.milestone.degrades() {
                degrades.entry(shard).or_default().push(event);
            }
        }
    }
    let empty: Vec<u64> = Vec::new();
    let mut out = Vec::new();
    for (shard, mut events) in degrades {
        events.sort_by_key(|e| e.at_micros);
        let decided = decided.get(&shard).unwrap_or(&empty);
        // First decided time strictly after `t`, if any.
        let close_after = |t: u64| -> Option<u64> {
            let i = decided.partition_point(|&d| d <= t);
            decided.get(i).copied()
        };
        let mut open: Option<Blackout> = None;
        for event in events {
            match open.as_mut() {
                None => {
                    open = Some(Blackout {
                        shard,
                        start_micros: event.at_micros,
                        last_degrade_micros: event.at_micros,
                        end_micros: None,
                        cause: event.milestone,
                    });
                }
                Some(window) => {
                    match close_after(window.last_degrade_micros) {
                        // The shard recovered before this event: close the
                        // window and open a fresh one.
                        Some(end) if end <= event.at_micros => {
                            window.end_micros = Some(end);
                            out.push(open.take().expect("open window"));
                            open = Some(Blackout {
                                shard,
                                start_micros: event.at_micros,
                                last_degrade_micros: event.at_micros,
                                end_micros: None,
                                cause: event.milestone,
                            });
                        }
                        // Still dark: the new degradation extends the window.
                        _ => window.last_degrade_micros = event.at_micros,
                    }
                }
            }
        }
        if let Some(mut window) = open {
            window.end_micros = close_after(window.last_degrade_micros);
            out.push(window);
        }
    }
    out.sort_by_key(|b| (b.shard, b.start_micros));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctrl(at: u64, milestone: CtrlMilestone, shard: Option<u32>) -> CtrlEvent {
        CtrlEvent {
            at_micros: at,
            by: ProcessId::new(7),
            milestone,
            shard: shard.map(ShardId::new),
            detail: 0,
            note: String::new(),
        }
    }

    fn tx_ev(tx: u64, at: u64, milestone: TxMilestone, detail: u64) -> TxObsEvent {
        TxObsEvent {
            tx: TxId::new(tx),
            at_micros: at,
            by: ProcessId::new(7),
            milestone,
            detail,
        }
    }

    #[test]
    fn degrading_milestones_are_exactly_the_window_openers() {
        for m in [
            CtrlMilestone::ReconfigInitiated,
            CtrlMilestone::Crash,
            CtrlMilestone::FaultInjected,
        ] {
            assert!(m.degrades(), "{m}");
        }
        for m in [
            CtrlMilestone::ProbeStarted,
            CtrlMilestone::ProbeGrace,
            CtrlMilestone::ConfigChosen,
            CtrlMilestone::StateTransferred,
            CtrlMilestone::ShardOperational,
            CtrlMilestone::LeaderHandoff,
            CtrlMilestone::Restart,
            CtrlMilestone::Recovered,
            CtrlMilestone::FaultHealed,
            CtrlMilestone::CoordinatorHandoff,
        ] {
            assert!(!m.degrades(), "{m}");
        }
    }

    #[test]
    fn decided_times_attribute_a_tx_to_every_voting_shard() {
        let events = vec![
            tx_ev(1, 10, TxMilestone::ShardVoted, 0),
            tx_ev(1, 12, TxMilestone::ShardVoted, 1),
            tx_ev(1, 20, TxMilestone::Decided, 0),
            tx_ev(2, 30, TxMilestone::ShardVoted, 1),
            tx_ev(2, 40, TxMilestone::Decided, 0),
            // Duplicate decide (e.g. log-replayed): first one counts.
            tx_ev(2, 55, TxMilestone::Decided, 0),
        ];
        let per_shard = decided_times_per_shard(&events);
        assert_eq!(per_shard[&ShardId::new(0)], vec![20]);
        assert_eq!(per_shard[&ShardId::new(1)], vec![20, 40]);
    }

    #[test]
    fn blackout_opens_at_degrade_and_closes_at_first_later_decide() {
        let ctrl_events = vec![ctrl(100, CtrlMilestone::Crash, Some(0))];
        let mut decided = BTreeMap::new();
        decided.insert(ShardId::new(0), vec![50, 90, 340]);
        let windows = blackouts(&ctrl_events, &decided);
        assert_eq!(windows.len(), 1);
        let w = &windows[0];
        assert_eq!(w.start_micros, 100);
        assert_eq!(w.end_micros, Some(340));
        assert_eq!(w.duration_micros(), Some(240));
        assert_eq!(w.cause, CtrlMilestone::Crash);
    }

    #[test]
    fn consecutive_degrades_extend_one_window() {
        let ctrl_events = vec![
            ctrl(100, CtrlMilestone::Crash, Some(2)),
            ctrl(150, CtrlMilestone::ReconfigInitiated, Some(2)),
        ];
        let mut decided = BTreeMap::new();
        // No decide between the two degrades: a single window.
        decided.insert(ShardId::new(2), vec![80, 400]);
        let windows = blackouts(&ctrl_events, &decided);
        assert_eq!(windows.len(), 1);
        let w = &windows[0];
        assert_eq!(w.start_micros, 100);
        assert_eq!(w.last_degrade_micros, 150);
        assert_eq!(w.end_micros, Some(400));
        assert_eq!(w.duration_micros(), Some(300));
        assert_eq!(w.time_to_recover_micros(), Some(250));
        assert_eq!(w.cause, CtrlMilestone::Crash);
    }

    #[test]
    fn a_decide_between_degrades_splits_the_windows() {
        let ctrl_events = vec![
            ctrl(100, CtrlMilestone::Crash, Some(1)),
            ctrl(300, CtrlMilestone::FaultInjected, Some(1)),
        ];
        let mut decided = BTreeMap::new();
        decided.insert(ShardId::new(1), vec![200, 500]);
        let windows = blackouts(&ctrl_events, &decided);
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].start_micros, 100);
        assert_eq!(windows[0].end_micros, Some(200));
        assert_eq!(windows[1].start_micros, 300);
        assert_eq!(windows[1].end_micros, Some(500));
        assert_eq!(windows[1].cause, CtrlMilestone::FaultInjected);
    }

    #[test]
    fn unrecovered_shard_yields_an_open_window() {
        let ctrl_events = vec![ctrl(100, CtrlMilestone::Crash, Some(3))];
        let windows = blackouts(&ctrl_events, &BTreeMap::new());
        assert_eq!(windows.len(), 1);
        assert_eq!(windows[0].end_micros, None);
        assert_eq!(windows[0].duration_micros(), None);
        assert!(windows[0].to_string().contains("unrecovered"));
    }

    #[test]
    fn shardless_and_nondegrading_events_open_nothing() {
        let ctrl_events = vec![
            ctrl(10, CtrlMilestone::Crash, None),
            ctrl(20, CtrlMilestone::ProbeStarted, Some(0)),
            ctrl(30, CtrlMilestone::Restart, Some(0)),
        ];
        let mut decided = BTreeMap::new();
        decided.insert(ShardId::new(0), vec![100]);
        assert!(blackouts(&ctrl_events, &decided).is_empty());
    }

    #[test]
    fn a_decide_at_the_same_instant_does_not_close_the_window() {
        let ctrl_events = vec![ctrl(100, CtrlMilestone::Crash, Some(0))];
        let mut decided = BTreeMap::new();
        decided.insert(ShardId::new(0), vec![100, 180]);
        let windows = blackouts(&ctrl_events, &decided);
        assert_eq!(windows[0].end_micros, Some(180));
    }

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(CtrlMilestone::ConfigChosen.to_string(), "config-chosen");
        assert_eq!(CtrlMilestone::FaultInjected.to_string(), "fault-injected");
        let mut event = ctrl(40, CtrlMilestone::Crash, Some(1));
        event.note = "crash-leader(s1)".to_owned();
        let text = event.to_string();
        assert!(text.contains("+40us crash@p7(s1)"), "{text}");
        assert!(text.contains("[crash-leader(s1)]"), "{text}");
    }
}
