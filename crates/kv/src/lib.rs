//! A sharded, versioned key-value store with optimistic concurrency control,
//! certified through a Transaction Certification Service.
//!
//! The paper's system model (§2) assumes a transaction-processing layer that
//! executes transactions optimistically — reading versions written by
//! committed transactions and buffering writes — and then submits the
//! resulting payload `⟨R, W, Vc⟩` to the TCS for certification. This crate is
//! that layer: it turns the TCS protocols of `ratc-core`/`ratc-rdma`/
//! `ratc-baseline` into a usable transactional store and is what the examples
//! and the contention experiments drive.
//!
//! The store itself is deliberately simple: a multi-versioned map per key. The
//! interesting part is the interaction contract with the TCS:
//!
//! * [`KvStore::begin`] starts an [`OptimisticTransaction`] that reads the
//!   latest *committed* version of each key (satisfying §2's requirement that
//!   read sets only contain values written by committed transactions);
//! * [`OptimisticTransaction::into_payload`] produces the certification
//!   payload with a commit version above every version read;
//! * [`KvStore::apply_commit`] applies the writes of a transaction the TCS
//!   decided to commit (idempotently), installing the new versions.
//!
//! # Example
//!
//! ```
//! use ratc_kv::KvStore;
//! use ratc_types::prelude::*;
//!
//! let mut store = KvStore::new();
//! store.seed(Key::new("alice"), Value::from(100u64));
//! store.seed(Key::new("bob"), Value::from(0u64));
//!
//! // Execute a transfer optimistically.
//! let mut tx = store.begin(TxId::new(1));
//! let alice = tx.read(Key::new("alice")).expect("seeded");
//! assert_eq!(alice.as_bytes(), 100u64.to_be_bytes());
//! tx.write(Key::new("alice"), Value::from(90u64));
//! tx.write(Key::new("bob"), Value::from(10u64));
//! let payload = tx.into_payload().expect("well-formed");
//!
//! // (Submit `payload` to a TCS here; on commit:)
//! store.apply_commit(TxId::new(1), &payload);
//! assert_eq!(
//!     store.read_committed(&Key::new("alice")).unwrap().1,
//!     Value::from(90u64)
//! );
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use std::collections::{BTreeMap, BTreeSet};

use ratc_types::{Key, Payload, PayloadBuilder, PayloadError, TxId, Value, Version};

/// A multi-versioned, transactional key-value store.
#[derive(Debug, Clone, Default)]
pub struct KvStore {
    /// Per key: committed versions in ascending order.
    data: BTreeMap<Key, BTreeMap<Version, Value>>,
    /// Highest version ever committed (used to pick fresh commit versions).
    high_water: Version,
    /// Transactions whose writes have already been applied (idempotence).
    applied: BTreeSet<TxId>,
}

impl KvStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        KvStore::default()
    }

    /// Seeds an initial value at version 1, bypassing certification. Intended
    /// for populating test and benchmark datasets.
    pub fn seed(&mut self, key: Key, value: Value) {
        let version = Version::new(1);
        self.data.entry(key).or_default().insert(version, value);
        self.high_water = self.high_water.max(version);
    }

    /// The latest committed `(version, value)` of `key`, if any.
    pub fn read_committed(&self, key: &Key) -> Option<(Version, Value)> {
        self.data
            .get(key)
            .and_then(|versions| versions.iter().next_back())
            .map(|(v, value)| (*v, value.clone()))
    }

    /// The committed value of `key` at exactly `version`.
    pub fn read_at(&self, key: &Key, version: Version) -> Option<&Value> {
        self.data
            .get(key)
            .and_then(|versions| versions.get(&version))
    }

    /// Number of keys with at least one committed version.
    pub fn key_count(&self) -> usize {
        self.data.len()
    }

    /// Highest committed version across all keys.
    pub fn high_water_mark(&self) -> Version {
        self.high_water
    }

    /// Begins an optimistic transaction against the current committed state.
    pub fn begin(&self, tx: TxId) -> OptimisticTransaction<'_> {
        OptimisticTransaction {
            store: self,
            tx,
            reads: BTreeMap::new(),
            writes: BTreeMap::new(),
        }
    }

    /// Applies the writes of a transaction that the TCS decided to commit.
    /// Re-applying the same transaction is a no-op, matching the idempotent
    /// upcall a replica would perform when it learns a decision more than
    /// once.
    pub fn apply_commit(&mut self, tx: TxId, payload: &Payload) {
        if !self.applied.insert(tx) {
            return;
        }
        let version = payload.commit_version();
        for (key, value) in payload.writes() {
            self.data
                .entry(key.clone())
                .or_default()
                .insert(version, value.clone());
        }
        self.high_water = self.high_water.max(version);
    }

    /// Returns `true` if the writes of `tx` have been applied.
    pub fn is_applied(&self, tx: TxId) -> bool {
        self.applied.contains(&tx)
    }

    /// A commit version strictly above everything committed so far and above
    /// every version in `reads`.
    pub fn next_commit_version<'a, I>(&self, reads: I) -> Version
    where
        I: IntoIterator<Item = &'a Version>,
    {
        let mut max = self.high_water;
        for v in reads {
            max = max.max(*v);
        }
        max.next()
    }
}

/// An optimistic transaction: reads go to the latest committed versions, and
/// writes are buffered until certification.
#[derive(Debug)]
pub struct OptimisticTransaction<'a> {
    store: &'a KvStore,
    tx: TxId,
    reads: BTreeMap<Key, Version>,
    writes: BTreeMap<Key, Value>,
}

impl<'a> OptimisticTransaction<'a> {
    /// The transaction's identifier.
    pub fn id(&self) -> TxId {
        self.tx
    }

    /// Reads the latest committed value of `key`, recording the version in the
    /// read set. Reads of keys this transaction has already written return the
    /// buffered value ("read your own writes").
    pub fn read(&mut self, key: Key) -> Option<Value> {
        if let Some(value) = self.writes.get(&key) {
            // Still record the underlying committed version for certification.
            let version = self
                .store
                .read_committed(&key)
                .map(|(v, _)| v)
                .unwrap_or(Version::ZERO);
            self.reads.entry(key).or_insert(version);
            return Some(value.clone());
        }
        match self.store.read_committed(&key) {
            Some((version, value)) => {
                self.reads.insert(key, version);
                Some(value)
            }
            None => {
                // Reading a missing key still records a read at version 0 so
                // that a concurrent creator conflicts with us.
                self.reads.insert(key, Version::ZERO);
                None
            }
        }
    }

    /// Buffers a write of `value` to `key`. The key is read first (if it has
    /// not been already) so the payload satisfies the "writes ⊆ reads"
    /// requirement of §2.
    pub fn write(&mut self, key: Key, value: Value) {
        if !self.reads.contains_key(&key) {
            let version = self
                .store
                .read_committed(&key)
                .map(|(v, _)| v)
                .unwrap_or(Version::ZERO);
            self.reads.insert(key.clone(), version);
        }
        self.writes.insert(key, value);
    }

    /// Number of keys read so far.
    pub fn read_count(&self) -> usize {
        self.reads.len()
    }

    /// Number of keys written so far.
    pub fn write_count(&self) -> usize {
        self.writes.len()
    }

    /// Finishes optimistic execution and produces the certification payload
    /// `⟨R, W, Vc⟩`.
    ///
    /// # Errors
    ///
    /// Propagates [`PayloadError`] if the accumulated read/write sets violate
    /// the payload well-formedness conditions (cannot happen through this
    /// API's normal usage).
    pub fn into_payload(self) -> Result<Payload, PayloadError> {
        let commit_version = self.store.next_commit_version(self.reads.values());
        let mut builder = PayloadBuilder::default();
        for (key, version) in self.reads {
            builder = builder.read(key, version);
        }
        for (key, value) in self.writes {
            builder = builder.write(key, value);
        }
        builder.commit_version(commit_version).build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(name: &str) -> Key {
        Key::new(name)
    }

    #[test]
    fn seed_and_read() {
        let mut store = KvStore::new();
        store.seed(k("x"), Value::from("10"));
        assert_eq!(store.key_count(), 1);
        let (version, value) = store.read_committed(&k("x")).expect("seeded");
        assert_eq!(version, Version::new(1));
        assert_eq!(value, Value::from("10"));
        assert_eq!(
            store.read_at(&k("x"), Version::new(1)),
            Some(&Value::from("10"))
        );
        assert_eq!(store.read_at(&k("x"), Version::new(2)), None);
        assert!(store.read_committed(&k("missing")).is_none());
    }

    #[test]
    fn optimistic_transaction_builds_wellformed_payload() {
        let mut store = KvStore::new();
        store.seed(k("a"), Value::from("1"));
        let mut tx = store.begin(TxId::new(1));
        assert_eq!(tx.id(), TxId::new(1));
        assert_eq!(tx.read(k("a")), Some(Value::from("1")));
        tx.write(k("a"), Value::from("2"));
        tx.write(k("b"), Value::from("9"));
        assert_eq!(tx.read_count(), 2);
        assert_eq!(tx.write_count(), 2);
        let payload = tx.into_payload().expect("well-formed");
        assert!(payload.validate().is_ok());
        assert!(payload.commit_version() > Version::new(1));
        assert_eq!(payload.read_version(&k("b")), Some(Version::ZERO));
    }

    #[test]
    fn read_your_own_writes() {
        let mut store = KvStore::new();
        store.seed(k("a"), Value::from("old"));
        let mut tx = store.begin(TxId::new(1));
        tx.write(k("a"), Value::from("new"));
        assert_eq!(tx.read(k("a")), Some(Value::from("new")));
        // The recorded read version is still the committed one.
        let payload = tx.into_payload().expect("well-formed");
        assert_eq!(payload.read_version(&k("a")), Some(Version::new(1)));
    }

    #[test]
    fn apply_commit_is_idempotent_and_versions_advance() {
        let mut store = KvStore::new();
        store.seed(k("x"), Value::from("1"));
        let mut tx = store.begin(TxId::new(7));
        tx.read(k("x"));
        tx.write(k("x"), Value::from("2"));
        let payload = tx.into_payload().expect("well-formed");
        store.apply_commit(TxId::new(7), &payload);
        assert!(store.is_applied(TxId::new(7)));
        let (v1, value1) = store.read_committed(&k("x")).expect("committed");
        store.apply_commit(TxId::new(7), &payload);
        let (v2, value2) = store.read_committed(&k("x")).expect("committed");
        assert_eq!((v1, value1), (v2, value2));
        assert_eq!(store.high_water_mark(), v2);
    }

    #[test]
    fn missing_key_reads_are_recorded_at_version_zero() {
        let store = KvStore::new();
        let mut tx = store.begin(TxId::new(1));
        assert_eq!(tx.read(k("ghost")), None);
        let payload = tx.into_payload().expect("well-formed");
        assert_eq!(payload.read_version(&k("ghost")), Some(Version::ZERO));
    }

    #[test]
    fn next_commit_version_exceeds_reads_and_high_water() {
        let mut store = KvStore::new();
        store.seed(k("x"), Value::from("1"));
        let v = store.next_commit_version([&Version::new(5)]);
        assert!(v > Version::new(5));
        let v = store.next_commit_version([]);
        assert!(v > store.high_water_mark());
    }
}
