//! The client actor: records the TCS history and client-visible latency.
//!
//! Clients are outside the protocol proper: they submit `certify` requests to
//! a replica acting as coordinator (the deployment harness injects the
//! request) and receive `DECISION(t, d)` messages. The client actor records a
//! [`TcsHistory`] — the object over which the specification checkers in
//! `ratc-spec` operate — plus, for every decision, the number of message
//! delays and the simulated time since submission.

use std::collections::BTreeMap;

use ratc_sim::{Actor, Context, SimTime, TxMilestone};
use ratc_types::{Decision, Payload, TcsHistory, TxId};

use crate::messages::Msg;

/// Latency observed by the client for one decided transaction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionLatency {
    /// Message delays between submission and the decision arriving at the
    /// client (the unit of the paper's latency claims).
    pub hops: u32,
    /// Microseconds between submission and the decision, on the cluster's
    /// clock: *simulated* microseconds under
    /// [`ExecutionMode::Sim`](ratc_sim::ExecutionMode) (a function of the
    /// configured latency model, not of the host), *wall-clock* (monotonic
    /// [`std::time::Instant`]) microseconds under
    /// [`ExecutionMode::Threads`](ratc_sim::ExecutionMode). Same field, same
    /// unit — but only the threaded numbers measure real hardware.
    pub micros: u64,
    /// The decision itself.
    pub decision: Decision,
}

/// A client process recording a TCS history and latency samples.
#[derive(Debug, Default)]
pub struct ClientActor {
    history: TcsHistory,
    submit_times: BTreeMap<TxId, SimTime>,
    latencies: BTreeMap<TxId, DecisionLatency>,
    violations: Vec<String>,
    /// Acknowledge received decisions back to their sender (decision-map
    /// compaction, leg 1). Off by default: the ack is not part of the paper's
    /// message vocabulary and must not perturb default schedules.
    ack_decisions: bool,
}

impl ClientActor {
    /// Creates a client with an empty history.
    pub fn new() -> Self {
        ClientActor::default()
    }

    /// Enables or disables decision acknowledgements (see
    /// [`crate::replica::TruncationConfig::compaction`]).
    pub fn set_ack_decisions(&mut self, ack: bool) {
        self.ack_decisions = ack;
    }

    /// Records the `certify(t, l)` action. Called by the deployment harness at
    /// the moment it injects the request into the coordinator.
    pub fn record_certify(&mut self, tx: TxId, payload: Payload, now: SimTime) {
        if let Err(err) = self.history.record_certify(tx, payload) {
            self.violations.push(err.to_string());
        }
        self.submit_times.insert(tx, now);
    }

    /// The recorded history.
    pub fn history(&self) -> &TcsHistory {
        &self.history
    }

    /// Latency of each decided transaction.
    pub fn latencies(&self) -> &BTreeMap<TxId, DecisionLatency> {
        &self.latencies
    }

    /// Structural specification violations observed while recording
    /// (duplicate certifies, contradictory decisions). Always empty in a
    /// correct run.
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// Number of committed transactions seen so far.
    pub fn committed_count(&self) -> usize {
        self.history.committed().count()
    }

    /// Number of aborted transactions seen so far.
    pub fn aborted_count(&self) -> usize {
        self.history.aborted().count()
    }
}

impl Actor<Msg> for ClientActor {
    fn on_message(&mut self, from: ratc_types::ProcessId, msg: Msg, ctx: &mut Context<'_, Msg>) {
        if let Msg::DecisionClient { tx, decision } = msg {
            if let Err(err) = self.history.record_decide(tx, decision) {
                self.violations.push(err.to_string());
                return;
            }
            if self.ack_decisions {
                // Compaction leg 1: tell the sender (original or recovery
                // coordinator — whoever delivered this copy) the decision
                // arrived. Idempotent at the receiver, so duplicates are fine.
                ctx.send(from, Msg::DecisionAck { tx });
            }
            let micros = self
                .submit_times
                .get(&tx)
                .map(|t| ctx.now().since(*t).as_micros())
                .unwrap_or(0);
            // Record only the first decision's latency (duplicates from
            // concurrent recovery coordinators carry the same decision).
            if !self.latencies.contains_key(&tx) {
                ctx.obs_milestone(tx, TxMilestone::ClientLearned, 0);
            }
            self.latencies.entry(tx).or_insert(DecisionLatency {
                hops: ctx.hops(),
                micros,
                decision,
            });
            ctx.record_sample("client_decision_hops", f64::from(ctx.hops()));
            ctx.record_sample("client_decision_micros", micros as f64);
            match decision {
                Decision::Commit => ctx.add_counter("client_commits", 1),
                Decision::Abort => ctx.add_counter("client_aborts", 1),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratc_sim::{SimConfig, World};
    use ratc_types::{Key, ProcessId, Version};

    fn payload(key: &str) -> Payload {
        Payload::builder()
            .read(Key::new(key), Version::new(0))
            .build()
            .expect("well-formed")
    }

    #[test]
    fn records_history_and_latency() {
        let mut world: World<Msg> = World::new(SimConfig::default());
        let client = world.add_actor(ClientActor::new());
        let now = world.now();
        world
            .actor_mut::<ClientActor>(client)
            .expect("client")
            .record_certify(TxId::new(1), payload("x"), now);
        world.send_external(
            client,
            Msg::DecisionClient {
                tx: TxId::new(1),
                decision: Decision::Commit,
            },
        );
        world.run();
        let actor = world.actor::<ClientActor>(client).expect("client");
        assert_eq!(actor.committed_count(), 1);
        assert_eq!(actor.aborted_count(), 0);
        assert!(actor.violations().is_empty());
        assert_eq!(
            actor.history().decision(TxId::new(1)),
            Some(Decision::Commit)
        );
        assert!(actor.latencies().contains_key(&TxId::new(1)));
        assert_eq!(world.metrics().counter("client_commits"), 1);
    }

    #[test]
    fn contradictory_decisions_are_reported_as_violations() {
        let mut world: World<Msg> = World::new(SimConfig::default());
        let client = world.add_actor(ClientActor::new());
        let now = world.now();
        world
            .actor_mut::<ClientActor>(client)
            .expect("client")
            .record_certify(TxId::new(1), payload("x"), now);
        world.send_external(
            client,
            Msg::DecisionClient {
                tx: TxId::new(1),
                decision: Decision::Commit,
            },
        );
        world.send_external(
            client,
            Msg::DecisionClient {
                tx: TxId::new(1),
                decision: Decision::Abort,
            },
        );
        world.run();
        let actor = world.actor::<ClientActor>(client).expect("client");
        assert_eq!(actor.violations().len(), 1);
    }

    #[test]
    fn duplicate_identical_decisions_are_benign() {
        let mut world: World<Msg> = World::new(SimConfig::default());
        let client = world.add_actor(ClientActor::new());
        let now = world.now();
        world
            .actor_mut::<ClientActor>(client)
            .expect("client")
            .record_certify(TxId::new(2), payload("y"), now);
        for _ in 0..3 {
            world.send_external(
                client,
                Msg::DecisionClient {
                    tx: TxId::new(2),
                    decision: Decision::Abort,
                },
            );
        }
        world.run();
        let actor = world.actor::<ClientActor>(client).expect("client");
        assert!(actor.violations().is_empty());
        assert_eq!(actor.aborted_count(), 1);
        let _ = ProcessId::new(0);
    }
}
