//! Deployment harness: build and drive a full simulated RATC cluster.
//!
//! [`Cluster`] wires together everything a test, example or benchmark needs:
//! the replicas of every shard, per-shard spare (fresh) replicas available to
//! reconfiguration, the configuration service, a client, and the deterministic
//! simulation world. The harness mirrors what an operator would deploy around
//! the protocol; it contains no protocol logic of its own.

use std::collections::BTreeMap;
use std::sync::Arc;

use ratc_config::ShardConfiguration;
use ratc_sim::{ExecutionMode, SimConfig, SimDuration, SimTime, World};
use ratc_types::{
    CertificationPolicy, Epoch, HashSharding, Payload, ProcessId, Serializability, ShardId,
    ShardMap, TcsHistory, TxId,
};

use crate::batch::BatchingConfig;
use crate::client::{ClientActor, DecisionLatency};
use crate::config_service::ConfigServiceActor;
use crate::flow::FlowControlConfig;
use crate::messages::Msg;
use crate::replica::{Replica, TruncationConfig};

/// Configuration of a simulated RATC deployment.
#[derive(Clone)]
pub struct ClusterConfig {
    /// Number of shards.
    pub shards: u32,
    /// Replicas per shard (`f + 1` to tolerate `f` failures between
    /// reconfigurations).
    pub replicas_per_shard: usize,
    /// Spare (fresh) replicas per shard available to reconfiguration.
    pub spares_per_shard: usize,
    /// The certification policy (isolation level).
    pub policy: Arc<dyn CertificationPolicy>,
    /// Checkpointed log truncation (default: enabled, batch 32), applied to
    /// every replica and spare.
    pub truncation: TruncationConfig,
    /// Batched certification pipeline (default: disabled), applied to every
    /// replica and spare.
    pub batching: BatchingConfig,
    /// Flow control (default: on): coordinator admission window and retry
    /// backoff, applied to every replica and spare.
    pub flow: FlowControlConfig,
    /// Simulation parameters (seed, latency model, tracing).
    pub sim: SimConfig,
    /// Which engine drives the actors: the deterministic simulator or one OS
    /// thread per process (see [`ExecutionMode`]).
    pub execution: ExecutionMode,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            shards: 2,
            replicas_per_shard: 2,
            spares_per_shard: 2,
            policy: Arc::new(Serializability::new()),
            truncation: TruncationConfig::default(),
            batching: BatchingConfig::default(),
            flow: FlowControlConfig::default(),
            sim: SimConfig::default(),
            execution: ExecutionMode::default(),
        }
    }
}

impl std::fmt::Debug for ClusterConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterConfig")
            .field("shards", &self.shards)
            .field("replicas_per_shard", &self.replicas_per_shard)
            .field("spares_per_shard", &self.spares_per_shard)
            .field("policy", &self.policy.name())
            .finish()
    }
}

impl ClusterConfig {
    /// Returns a copy with the given number of shards.
    pub fn with_shards(mut self, shards: u32) -> Self {
        self.shards = shards;
        self
    }

    /// Returns a copy with the given number of replicas per shard.
    pub fn with_replicas_per_shard(mut self, replicas: usize) -> Self {
        self.replicas_per_shard = replicas;
        self
    }

    /// Returns a copy with the given number of spares per shard.
    pub fn with_spares_per_shard(mut self, spares: usize) -> Self {
        self.spares_per_shard = spares;
        self
    }

    /// Returns a copy with the given certification policy.
    pub fn with_policy(mut self, policy: Arc<dyn CertificationPolicy>) -> Self {
        self.policy = policy;
        self
    }

    /// Returns a copy with the given checkpointed-truncation policy.
    pub fn with_truncation(mut self, truncation: TruncationConfig) -> Self {
        self.truncation = truncation;
        self
    }

    /// Returns a copy with the given batching-pipeline knobs.
    pub fn with_batching(mut self, batching: BatchingConfig) -> Self {
        self.batching = batching;
        self
    }

    /// Returns a copy with the given flow-control knobs.
    pub fn with_flow(mut self, flow: FlowControlConfig) -> Self {
        self.flow = flow;
        self
    }

    /// Returns a copy with the given simulation configuration.
    pub fn with_sim(mut self, sim: SimConfig) -> Self {
        self.sim = sim;
        self
    }

    /// Returns a copy with the given random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.sim.seed = seed;
        self
    }

    /// Returns a copy with the given execution mode.
    pub fn with_execution(mut self, execution: ExecutionMode) -> Self {
        self.execution = execution;
        self
    }
}

/// A fully wired simulated deployment of the message-passing protocol.
pub struct Cluster {
    /// The simulation world; exposed so tests can crash processes, inspect
    /// metrics and traces, or step the simulation manually.
    pub world: World<Msg>,
    sharding: Arc<HashSharding>,
    cs: ProcessId,
    client: ProcessId,
    members: BTreeMap<ShardId, Vec<ProcessId>>,
    spares: BTreeMap<ShardId, Vec<ProcessId>>,
    replicas_per_shard: usize,
    next_coordinator: usize,
    execution: ExecutionMode,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("shards", &self.members.len())
            .field("cs", &self.cs)
            .field("client", &self.client)
            .finish()
    }
}

impl Cluster {
    /// Builds a cluster: replicas and spares per shard, the configuration
    /// service and one client.
    pub fn new(config: ClusterConfig) -> Self {
        let sharding = Arc::new(HashSharding::new(config.shards));
        let mut world: World<Msg> = World::new(config.sim.clone());

        // Create the replicas of every shard, then the spares.
        let mut members: BTreeMap<ShardId, Vec<ProcessId>> = BTreeMap::new();
        let mut spares: BTreeMap<ShardId, Vec<ProcessId>> = BTreeMap::new();
        for shard_idx in 0..config.shards {
            let shard = ShardId::new(shard_idx);
            let mut shard_members = Vec::new();
            for _ in 0..config.replicas_per_shard {
                let pid = world.add_actor(Replica::new(
                    shard,
                    config.policy.as_ref(),
                    sharding.clone() as Arc<dyn ShardMap + Send + Sync>,
                ));
                shard_members.push(pid);
            }
            members.insert(shard, shard_members);
            let mut shard_spares = Vec::new();
            for _ in 0..config.spares_per_shard {
                let pid = world.add_actor(Replica::new(
                    shard,
                    config.policy.as_ref(),
                    sharding.clone() as Arc<dyn ShardMap + Send + Sync>,
                ));
                shard_spares.push(pid);
            }
            spares.insert(shard, shard_spares);
        }

        // Initial configurations: the first replica of each shard leads.
        let initial: BTreeMap<ShardId, ShardConfiguration> = members
            .iter()
            .map(|(shard, shard_members)| {
                (
                    *shard,
                    ShardConfiguration::new(Epoch::ZERO, shard_members.clone(), shard_members[0]),
                )
            })
            .collect();

        let cs = world.add_actor(ConfigServiceActor::new(
            initial.iter().map(|(s, c)| (*s, c.clone())),
        ));
        let client = world.add_actor(ClientActor::new());
        if config.truncation.compaction {
            world
                .actor_mut::<ClientActor>(client)
                .expect("client")
                .set_ack_decisions(true);
        }

        // Install the initial view at every replica (members and spares).
        for (shard, shard_members) in &members {
            for pid in shard_members {
                let replica = world.actor_mut::<Replica>(*pid).expect("replica");
                replica.install_initial_config(*pid, cs, &initial, true);
                replica.set_truncation(config.truncation);
                replica.set_batching(config.batching);
                replica.set_flow(config.flow);
            }
            for pid in &spares[shard] {
                let replica = world.actor_mut::<Replica>(*pid).expect("spare replica");
                replica.install_initial_config(*pid, cs, &initial, false);
                replica.set_truncation(config.truncation);
                replica.set_batching(config.batching);
                replica.set_flow(config.flow);
            }
        }

        Cluster {
            world,
            sharding,
            cs,
            client,
            members,
            spares,
            replicas_per_shard: config.replicas_per_shard,
            next_coordinator: 0,
            execution: config.execution,
        }
    }

    /// The shard map used by this cluster.
    pub fn sharding(&self) -> &HashSharding {
        &self.sharding
    }

    /// The client process.
    pub fn client_id(&self) -> ProcessId {
        self.client
    }

    /// The configuration-service process.
    pub fn config_service_id(&self) -> ProcessId {
        self.cs
    }

    /// The initial members of `shard`.
    pub fn initial_members(&self, shard: ShardId) -> &[ProcessId] {
        self.members.get(&shard).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The spare replicas of `shard`.
    pub fn spares(&self, shard: ShardId) -> &[ProcessId] {
        self.spares.get(&shard).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All replicas that are currently members of some shard, according to the
    /// configuration service.
    pub fn current_members(&self, shard: ShardId) -> Vec<ProcessId> {
        self.cs_registry()
            .get_last(shard)
            .map(|c| c.members.clone())
            .unwrap_or_default()
    }

    /// The current leader of `shard` according to the configuration service.
    pub fn current_leader(&self, shard: ShardId) -> ProcessId {
        self.cs_registry()
            .get_last(shard)
            .map(|c| c.leader)
            .expect("shard exists")
    }

    /// The current epoch of `shard` according to the configuration service.
    pub fn current_epoch(&self, shard: ShardId) -> Epoch {
        self.cs_registry()
            .get_last(shard)
            .map(|c| c.epoch)
            .expect("shard exists")
    }

    fn cs_registry(&self) -> &ratc_config::ShardConfigRegistry {
        self.world
            .actor::<ConfigServiceActor>(self.cs)
            .expect("configuration service")
            .registry()
    }

    /// All shards of this cluster.
    pub fn shards(&self) -> Vec<ShardId> {
        self.members.keys().copied().collect()
    }

    /// Downcast access to a replica's state.
    pub fn replica(&self, pid: ProcessId) -> &Replica {
        self.world.actor::<Replica>(pid).expect("replica")
    }

    /// Submits a transaction for certification, using a round-robin choice of
    /// coordinator replica. Returns the chosen coordinator.
    pub fn submit(&mut self, tx: TxId, payload: Payload) -> ProcessId {
        let all: Vec<ProcessId> = self
            .members
            .values()
            .flat_map(|v| v.iter().copied())
            .filter(|p| !self.world.is_crashed(*p))
            .collect();
        let coordinator = all[self.next_coordinator % all.len()];
        self.next_coordinator += 1;
        self.submit_via(tx, payload, coordinator);
        coordinator
    }

    /// Submits a transaction through a specific coordinator replica.
    pub fn submit_via(&mut self, tx: TxId, payload: Payload, coordinator: ProcessId) {
        let now = self.world.now();
        self.world
            .actor_mut::<ClientActor>(self.client)
            .expect("client")
            .record_certify(tx, payload.clone(), now);
        self.world
            .obs_milestone(tx, ratc_sim::TxMilestone::Submitted, self.client);
        let client = self.client;
        self.world.send_external(
            coordinator,
            Msg::Certify {
                tx,
                payload,
                client,
            },
        );
    }

    /// Asks `initiator` to start reconfiguring `shard`, excluding `exclude`
    /// (e.g. crashed replicas) and drawing replacements from the shard's spare
    /// pool. The target size is the cluster's `replicas_per_shard`.
    pub fn start_reconfiguration(
        &mut self,
        shard: ShardId,
        initiator: ProcessId,
        exclude: Vec<ProcessId>,
    ) {
        let spares = self.spares.get(&shard).cloned().unwrap_or_default();
        let target_size = self.replicas_per_shard;
        self.world.send_external(
            initiator,
            Msg::StartReconfigure {
                shard,
                spares,
                target_size,
                exclude,
            },
        );
    }

    /// Asks `replica` to become a recovery coordinator for `tx` (the `retry`
    /// function of Figure 1).
    pub fn retry(&mut self, replica: ProcessId, tx: TxId) {
        self.world.send_external(replica, Msg::Retry { tx });
    }

    /// Re-submits a transaction to the current leader of its first shard
    /// without re-recording it in the client history: the client retry of
    /// the TCS model, used by recovery drivers.
    pub fn resubmit(&mut self, tx: TxId, payload: Payload) {
        let shards = payload.shards(self.sharding.as_ref());
        let Some(first) = shards.first().copied() else {
            return;
        };
        let target = self.current_leader(first);
        if self.world.is_crashed(target) {
            return;
        }
        let client = self.client;
        self.world.send_external(
            target,
            Msg::Certify {
                tx,
                payload,
                client,
            },
        );
    }

    /// Crashes a process immediately.
    pub fn crash(&mut self, pid: ProcessId) {
        self.world.crash(pid);
    }

    /// Restarts a crashed replica: it recovers from its certification log
    /// (checkpoint + suffix, the modelled stable storage) and rejoins with
    /// all volatile state lost. Returns `false` if `pid` was not crashed.
    pub fn restart(&mut self, pid: ProcessId) -> bool {
        self.world.restart(pid)
    }

    /// The execution engine driving this cluster's actors.
    pub fn execution(&self) -> ExecutionMode {
        self.execution
    }

    /// Runs the cluster until no events remain (on the configured
    /// [`ExecutionMode`]: simulated or threaded).
    pub fn run_to_quiescence(&mut self) {
        match self.execution {
            ExecutionMode::Sim => {
                self.world.run();
            }
            ExecutionMode::Threads => {
                self.world.run_threaded();
            }
        }
    }

    /// Runs the cluster for `duration` (simulated time on the simulator,
    /// wall-clock time on the threaded backend).
    pub fn run_for(&mut self, duration: SimDuration) {
        let until = self.world.now() + duration;
        self.run_until(until);
    }

    /// Runs the cluster until the given absolute time on the cluster's clock.
    pub fn run_until(&mut self, until: SimTime) {
        match self.execution {
            ExecutionMode::Sim => {
                self.world.run_until(until);
            }
            ExecutionMode::Threads => {
                self.world.run_threaded_until(until);
            }
        }
    }

    /// The client's recorded TCS history.
    pub fn history(&self) -> TcsHistory {
        self.world
            .actor::<ClientActor>(self.client)
            .expect("client")
            .history()
            .clone()
    }

    /// The client's recorded per-transaction latencies.
    pub fn latencies(&self) -> BTreeMap<TxId, DecisionLatency> {
        self.world
            .actor::<ClientActor>(self.client)
            .expect("client")
            .latencies()
            .clone()
    }

    /// Structural specification violations observed by the client (always
    /// empty in a correct run).
    pub fn client_violations(&self) -> Vec<String> {
        self.world
            .actor::<ClientActor>(self.client)
            .expect("client")
            .violations()
            .to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratc_types::{Decision, Key, Value, Version};

    fn rw_payload(key: &str, read_version: u64, commit_version: u64) -> Payload {
        Payload::builder()
            .read(Key::new(key), Version::new(read_version))
            .write(Key::new(key), Value::from("v"))
            .commit_version(Version::new(commit_version))
            .build()
            .expect("well-formed")
    }

    #[test]
    fn single_transaction_commits_in_five_delays() {
        let mut cluster = Cluster::new(ClusterConfig::default());
        cluster.submit(TxId::new(1), rw_payload("x", 0, 1));
        cluster.run_to_quiescence();
        let history = cluster.history();
        assert_eq!(history.decision(TxId::new(1)), Some(Decision::Commit));
        assert!(cluster.client_violations().is_empty());
        let latency = cluster.latencies()[&TxId::new(1)];
        assert_eq!(
            latency.hops, 5,
            "decision must arrive after 5 message delays"
        );
    }

    #[test]
    fn conflicting_transactions_do_not_both_commit() {
        let mut cluster = Cluster::new(ClusterConfig::default().with_seed(3));
        // Both transactions read version 0 of the same key and write it: at
        // most one of them can commit under serializability.
        cluster.submit(TxId::new(1), rw_payload("hot", 0, 1));
        cluster.submit(TxId::new(2), rw_payload("hot", 0, 2));
        cluster.run_to_quiescence();
        let history = cluster.history();
        let committed = history.committed().count();
        assert!(committed <= 1, "conflicting transactions both committed");
        assert_eq!(
            history.decide_count(),
            2,
            "both transactions must be decided"
        );
        assert!(cluster.client_violations().is_empty());
    }

    #[test]
    fn disjoint_transactions_all_commit() {
        let mut cluster = Cluster::new(ClusterConfig::default().with_shards(3).with_seed(9));
        for i in 0..20 {
            cluster.submit(TxId::new(i), rw_payload(&format!("key-{i}"), 0, 1));
        }
        cluster.run_to_quiescence();
        let history = cluster.history();
        assert_eq!(history.committed().count(), 20);
        assert!(cluster.client_violations().is_empty());
    }

    #[test]
    fn long_history_is_truncated_to_a_bounded_log() {
        let mut cluster = Cluster::new(
            ClusterConfig::default()
                .with_shards(1)
                .with_seed(7)
                .with_truncation(TruncationConfig::with_batch(8)),
        );
        let total = 200u64;
        for i in 0..total {
            cluster.submit(TxId::new(i + 1), rw_payload(&format!("k{i}"), 0, 1));
            cluster.run_to_quiescence();
        }
        assert_eq!(cluster.history().decide_count(), total as usize);
        assert!(cluster.client_violations().is_empty());
        let shard = ShardId::new(0);
        for pid in cluster.initial_members(shard).to_vec() {
            let log = cluster.replica(pid).log();
            assert!(
                log.base().as_u64() > 0,
                "member {pid} never truncated its log"
            );
            assert!(
                log.len() < 64,
                "member {pid} retains {} slots of a {total}-tx history",
                log.len()
            );
            // Logical positions and decisions survive the physical fold.
            assert_eq!(log.next().as_u64(), total);
            assert!(log.position_of(TxId::new(1)).is_some());
        }
        let violations = crate::invariants::check_cluster(&cluster);
        assert!(violations.is_empty(), "violations: {violations:?}");
    }

    #[test]
    fn prepare_for_truncated_transaction_returns_the_decision() {
        let mut cluster = Cluster::new(
            ClusterConfig::default()
                .with_shards(1)
                .with_seed(13)
                .with_truncation(TruncationConfig::with_batch(1)),
        );
        for i in 0..10u64 {
            cluster.submit(TxId::new(i + 1), rw_payload(&format!("k{i}"), 0, 1));
            cluster.run_to_quiescence();
        }
        let shard = ShardId::new(0);
        let leader = cluster.current_leader(shard);
        assert_eq!(
            cluster
                .replica(leader)
                .log()
                .truncated_decision(TxId::new(1)),
            Some(Decision::Commit),
            "t1 must be decided and truncated at the leader"
        );
        // A recovery coordinator re-prepares the truncated transaction with
        // the ⊥ payload: the leader answers with the recorded decision
        // instead of re-certifying it as new, and the coordinator forwards
        // the (benign duplicate) decision to the client.
        let other = *cluster
            .initial_members(shard)
            .iter()
            .find(|p| **p != leader)
            .expect("another member");
        let client = cluster.client_id();
        cluster.world.send_from(
            other,
            leader,
            Msg::Prepare {
                tx: TxId::new(1),
                payload: None,
                shards: vec![shard],
                client,
            },
        );
        cluster.run_to_quiescence();
        assert!(cluster.client_violations().is_empty());
        assert_eq!(
            cluster.history().decision(TxId::new(1)),
            Some(Decision::Commit)
        );
    }

    /// A shard that missed a transaction's `DECISION` and still holds it as
    /// prepared must learn the decision when a recovery coordinator is
    /// answered with `TxDecided` by a shard that already truncated it —
    /// otherwise the slot (and its `L2` locks) stay stranded forever.
    #[test]
    fn tx_decided_recovery_unsticks_prepared_slots_at_other_shards() {
        use ratc_types::ShardMap;
        let mut cluster = Cluster::new(
            ClusterConfig::default()
                .with_shards(2)
                .with_seed(19)
                .with_truncation(TruncationConfig::with_batch(1)),
        );
        let s0 = ShardId::new(0);
        let s1 = ShardId::new(1);
        let key_on = |shard: ShardId, cluster: &Cluster| {
            (0..10_000)
                .map(|i| Key::new(format!("k{i}")))
                .find(|k| cluster.sharding().shard_of(k) == shard)
                .expect("hash sharding covers every shard")
        };
        // Two shard-0 transactions: the second's decision floor truncates the
        // first out of every shard-0 log.
        let k0 = key_on(s0, &cluster);
        cluster.submit(TxId::new(1), rw_payload(k0.as_str(), 0, 1));
        cluster.run_to_quiescence();
        cluster.submit(TxId::new(2), rw_payload(&format!("{}x", k0.as_str()), 0, 1));
        cluster.run_to_quiescence();
        let l0 = cluster.current_leader(s0);
        assert_eq!(
            cluster.replica(l0).log().truncated_decision(TxId::new(1)),
            Some(Decision::Commit)
        );

        // Shard 1 "missed the decision": inject a prepare of t1 at shard 1,
        // coordinated by shard-1's follower, with no shard-0 progress — both
        // shard-1 members end up holding t1 as Prepared, undecided.
        let l1 = cluster.current_leader(s1);
        let f1 = *cluster
            .initial_members(s1)
            .iter()
            .find(|p| **p != l1)
            .expect("follower");
        let k1 = key_on(s1, &cluster);
        let client = cluster.client_id();
        cluster.world.send_from(
            f1,
            l1,
            Msg::Prepare {
                tx: TxId::new(1),
                payload: Some(
                    Payload::builder()
                        .read(Key::new(k1.as_str()), ratc_types::Version::new(0))
                        .build()
                        .expect("well-formed"),
                ),
                shards: vec![s0, s1],
                client,
            },
        );
        cluster.run_to_quiescence();
        let pos1 = cluster
            .replica(l1)
            .log()
            .position_of(TxId::new(1))
            .expect("t1 prepared at shard 1");
        assert_eq!(
            cluster.replica(l1).log().get(pos1).unwrap().phase,
            crate::log::TxPhase::Prepared,
            "precondition: t1 stranded as prepared at shard 1"
        );

        // Recovery: the follower re-coordinates t1. Shard 0 answers with
        // TxDecided (slot truncated); the decision must reach shard 1.
        cluster.retry(f1, TxId::new(1));
        cluster.run_to_quiescence();
        for pid in [l1, f1] {
            let entry = cluster
                .replica(pid)
                .log()
                .get(pos1)
                .expect("slot still present");
            assert_eq!(
                entry.dec,
                Some(Decision::Commit),
                "{pid} still holds t1 undecided after TxDecided recovery"
            );
        }
        assert!(cluster.client_violations().is_empty());
    }

    #[test]
    fn batched_pipeline_commits_disjoint_transactions() {
        let mut cluster = Cluster::new(
            ClusterConfig::default()
                .with_shards(2)
                .with_seed(21)
                .with_batching(BatchingConfig::with_batch(8)),
        );
        // Fixed coordinator so certifies actually coalesce into batches.
        let coordinator = cluster.initial_members(ShardId::new(0))[1];
        for i in 0..32u64 {
            cluster.submit_via(
                TxId::new(i + 1),
                rw_payload(&format!("k{i}"), 0, 1),
                coordinator,
            );
        }
        cluster.run_to_quiescence();
        let history = cluster.history();
        assert_eq!(history.committed().count(), 32);
        assert!(cluster.client_violations().is_empty());
        assert!(
            cluster.world.metrics().counter("prepare_batches_sent") > 0,
            "the batcher never coalesced anything"
        );
        let violations = crate::invariants::check_cluster(&cluster);
        assert!(violations.is_empty(), "violations: {violations:?}");
    }

    #[test]
    fn batched_pipeline_preserves_conflict_decisions() {
        let mut cluster = Cluster::new(
            ClusterConfig::default()
                .with_shards(1)
                .with_seed(23)
                .with_batching(BatchingConfig::with_batch(4)),
        );
        let coordinator = cluster.initial_members(ShardId::new(0))[1];
        // Both read version 0 of the same key and write it: they land in the
        // same batch, and at most one may commit.
        cluster.submit_via(TxId::new(1), rw_payload("hot", 0, 1), coordinator);
        cluster.submit_via(TxId::new(2), rw_payload("hot", 0, 2), coordinator);
        cluster.submit_via(TxId::new(3), rw_payload("cold", 0, 3), coordinator);
        cluster.run_to_quiescence();
        let history = cluster.history();
        assert_eq!(history.decide_count(), 3);
        assert!(history.committed().count() <= 2);
        assert_eq!(history.decision(TxId::new(3)), Some(Decision::Commit));
        assert!(cluster.client_violations().is_empty());
    }

    #[test]
    fn partially_filled_batches_are_flushed_by_the_batch_timer() {
        let mut cluster = Cluster::new(
            ClusterConfig::default()
                .with_shards(1)
                .with_seed(29)
                .with_batching(BatchingConfig::with_batch(64)),
        );
        let coordinator = cluster.initial_members(ShardId::new(0))[1];
        // Far fewer submissions than max_batch: only the delay timer can
        // flush them.
        for i in 0..5u64 {
            cluster.submit_via(
                TxId::new(i + 1),
                rw_payload(&format!("k{i}"), 0, 1),
                coordinator,
            );
        }
        cluster.run_to_quiescence();
        assert_eq!(cluster.history().committed().count(), 5);
        assert!(cluster.client_violations().is_empty());
    }

    #[test]
    fn batching_interoperates_with_truncation() {
        let mut cluster = Cluster::new(
            ClusterConfig::default()
                .with_shards(1)
                .with_seed(31)
                .with_truncation(TruncationConfig::with_batch(8))
                .with_batching(BatchingConfig::with_batch(8)),
        );
        let coordinator = cluster.initial_members(ShardId::new(0))[1];
        let total = 128u64;
        for wave in 0..(total / 8) {
            for i in 0..8u64 {
                let n = wave * 8 + i;
                cluster.submit_via(
                    TxId::new(n + 1),
                    rw_payload(&format!("k{n}"), 0, 1),
                    coordinator,
                );
            }
            cluster.run_to_quiescence();
        }
        assert_eq!(cluster.history().decide_count(), total as usize);
        for pid in cluster.initial_members(ShardId::new(0)).to_vec() {
            let log = cluster.replica(pid).log();
            assert!(
                log.base().as_u64() > 0,
                "member {pid} never truncated under batching"
            );
            assert!(log.len() < 64, "member {pid} retains {} slots", log.len());
        }
        assert!(cluster.client_violations().is_empty());
    }

    /// Decision-map compaction regression: on a 10k-transaction history the
    /// checkpoint's per-position decision map must stay bounded (without
    /// compaction it grows linearly — one record per truncated transaction).
    #[test]
    fn compaction_bounds_the_checkpoint_on_a_10k_tx_history() {
        let mut cluster = Cluster::new(
            ClusterConfig::default()
                .with_shards(1)
                .with_seed(37)
                .with_truncation(TruncationConfig::with_batch(8).with_compaction())
                .with_batching(BatchingConfig::with_batch(32)),
        );
        let coordinator = cluster.initial_members(ShardId::new(0))[1];
        let total = 10_000u64;
        let wave = 100u64;
        for w in 0..(total / wave) {
            for i in 0..wave {
                let n = w * wave + i;
                cluster.submit_via(
                    TxId::new(n + 1),
                    rw_payload(&format!("k{n}"), 0, 1),
                    coordinator,
                );
            }
            cluster.run_to_quiescence();
        }
        assert_eq!(cluster.history().decide_count(), total as usize);
        assert!(cluster.client_violations().is_empty());
        for pid in cluster.initial_members(ShardId::new(0)).to_vec() {
            let log = cluster.replica(pid).log();
            assert!(
                log.base().as_u64() > total - 256,
                "member {pid} truncated only to {}",
                log.base()
            );
            assert!(log.len() < 256, "member {pid} retains {} slots", log.len());
            // The point of the satellite: the decision map does not scale
            // with history length once every decision has been acked.
            assert!(
                log.checkpoint().decided_count() < 64,
                "member {pid} retains {} checkpoint records of a {total}-tx history",
                log.checkpoint().decided_count()
            );
            assert!(
                log.acked_pending() < 256,
                "member {pid} holds {} pending acks",
                log.acked_pending()
            );
        }
        // Every decision was acknowledged end to end exactly once, and the
        // coordinator dropped its per-transaction state on the way.
        assert_eq!(cluster.world.metrics().counter("decisions_acked"), total);
        assert_eq!(cluster.replica(coordinator).undecided_coordinated(), 0);
        let violations = crate::invariants::check_cluster(&cluster);
        assert!(violations.is_empty(), "violations: {violations:?}");
    }

    #[test]
    fn reconfiguration_replaces_a_crashed_follower() {
        let mut cluster = Cluster::new(ClusterConfig::default().with_seed(5));
        let shard = ShardId::new(0);
        let members = cluster.initial_members(shard).to_vec();
        let leader = cluster.current_leader(shard);
        let follower = *members.iter().find(|p| **p != leader).expect("follower");

        // Commit one transaction first so there is state to transfer.
        cluster.submit(TxId::new(1), rw_payload("a", 0, 1));
        cluster.run_to_quiescence();

        // Crash the follower and reconfigure, initiated by the leader.
        cluster.crash(follower);
        cluster.start_reconfiguration(shard, leader, vec![follower]);
        cluster.run_to_quiescence();

        let new_config = cluster.current_members(shard);
        assert!(
            !new_config.contains(&follower),
            "crashed follower must be replaced"
        );
        assert_eq!(new_config.len(), 2);
        assert_eq!(cluster.current_epoch(shard), Epoch::new(1));

        // The shard keeps certifying transactions after reconfiguration.
        cluster.submit(TxId::new(2), rw_payload("b", 0, 1));
        cluster.run_to_quiescence();
        assert_eq!(
            cluster.history().decision(TxId::new(2)),
            Some(Decision::Commit)
        );
        assert!(cluster.client_violations().is_empty());
    }

    #[test]
    fn leader_crash_is_recovered_by_promoting_the_follower() {
        let mut cluster = Cluster::new(ClusterConfig::default().with_seed(11));
        let shard = ShardId::new(0);
        let leader = cluster.current_leader(shard);
        let members = cluster.initial_members(shard).to_vec();
        let follower = *members.iter().find(|p| **p != leader).expect("follower");

        cluster.submit(TxId::new(1), rw_payload("a", 0, 1));
        cluster.run_to_quiescence();

        cluster.crash(leader);
        // The surviving follower initiates reconfiguration.
        cluster.start_reconfiguration(shard, follower, vec![leader]);
        cluster.run_to_quiescence();

        assert_eq!(cluster.current_leader(shard), follower);
        assert!(!cluster.current_members(shard).contains(&leader));

        cluster.submit(TxId::new(2), rw_payload("c", 0, 1));
        cluster.run_to_quiescence();
        assert_eq!(
            cluster.history().decision(TxId::new(2)),
            Some(Decision::Commit)
        );
        assert!(cluster.client_violations().is_empty());
    }
}
