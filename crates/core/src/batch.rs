//! Batched certification pipeline: amortised PREPARE/ACCEPT rounds.
//!
//! The paper's protocol certifies one payload per PREPARE/ACCEPT exchange, so
//! the message count at the shard leader — the metric the E2/E4 experiments
//! measure — scales linearly with the transaction rate. This module provides
//! the batching subsystem that amortises those rounds across many
//! transactions, in the style of Chockler & Gotsman's multi-shot commit
//! (certification decisions pipelined across contiguous slots):
//!
//! * [`BatchingConfig`] — the size/delay knobs, surfaced by all three
//!   deployment harnesses (`ratc-core`, `ratc-rdma`, `ratc-baseline`);
//! * [`VoteBatcher`] — the coalescing buffer. A replica acting as transaction
//!   coordinator pushes each `certify` request into it instead of sending a
//!   `PREPARE` immediately; when the batch fills (or the delay expires) the
//!   drained batch becomes one [`PrepareBatch`] per involved shard leader.
//!   The leader certifies the whole batch in one pass, *assigning a
//!   contiguous position range* to the fresh entries, and answers with a
//!   single `PREPARE_ACK_BATCH`; the coordinator persists the batch at each
//!   follower with a single `ACCEPT_BATCH` (one RDMA write per follower in
//!   the RDMA stack), and distributes a single `DECISION_BATCH` per shard
//!   once the batch completes. The baseline stack reuses the same batcher to
//!   coalesce certified votes into one Multi-Paxos command per batch
//!   (batched log appends).
//!
//! Per-transaction semantics are untouched: every batch item carries its own
//! transaction, payload, vote, position and decision, so recovery
//! coordinators, the `TxDecided` fast path, frontier gossip and checkpointed
//! truncation all keep operating on individual transactions. A batch is pure
//! transport-level coalescing — the certification order it produces is
//! exactly the order the items were submitted in, which is what the
//! `ratc-spec::batching` differential suite checks end to end.

/// Re-exported so `BatchingConfig::with_delay` is usable without a direct
/// `ratc-sim` dependency.
pub use ratc_sim::SimDuration;
use ratc_types::{Decision, Payload, Position, ProcessId, ShardId, TxId};
use serde::{Deserialize, Serialize};

/// Knobs of the batching pipeline (surfaced on all three harnesses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchingConfig {
    /// Whether the pipeline batches at all. Disabled, every transaction goes
    /// through the paper's one-PREPARE-per-payload exchange unchanged.
    pub enabled: bool,
    /// Maximum transactions coalesced into one batch; reaching it flushes
    /// immediately.
    pub max_batch: usize,
    /// How long a partially filled batch may wait for more transactions
    /// before it is flushed by the batch timer.
    pub max_delay: SimDuration,
    /// Adaptive sizing (the flow-control layer's group-commit mode): the
    /// batcher keeps a *current target* that starts at 1, doubles each time a
    /// batch fills to target (queue pressure — the pipeline is producing
    /// faster than it drains) up to `max_batch`, and halves each time the
    /// flush timer fires on a partial batch (idle — waiting longer only adds
    /// latency). Idle clusters therefore run the unbatched fast path with no
    /// flush-timer tax, while sustained load converges to `max_batch`
    /// amortisation. Self-clocking: no rate measurement, no extra timers.
    pub adaptive: bool,
}

impl Default for BatchingConfig {
    /// Batching is off by default: the unbatched exchange is the paper's
    /// protocol, and the latency-sensitive tests (5 message delays to a
    /// decision) measure it. Experiments opt in per run.
    fn default() -> Self {
        BatchingConfig::disabled()
    }
}

impl BatchingConfig {
    /// Batching switched off (the seed behaviour).
    pub fn disabled() -> Self {
        BatchingConfig {
            enabled: false,
            max_batch: 1,
            max_delay: SimDuration::from_micros(0),
            adaptive: false,
        }
    }

    /// Batching with the given maximum batch size and a 1 ms flush delay.
    /// A `max_batch` of 1 (or 0) degenerates to the unbatched exchange.
    pub fn with_batch(max_batch: usize) -> Self {
        if max_batch <= 1 {
            return BatchingConfig::disabled();
        }
        BatchingConfig {
            enabled: true,
            max_batch,
            max_delay: SimDuration::from_millis(1),
            adaptive: false,
        }
    }

    /// Adaptive batching up to `max_batch` (see [`BatchingConfig::adaptive`]):
    /// grows under queue pressure, shrinks toward the unbatched fast path
    /// when idle. A `max_batch` of 1 (or 0) degenerates to the unbatched
    /// exchange.
    pub fn adaptive(max_batch: usize) -> Self {
        if max_batch <= 1 {
            return BatchingConfig::disabled();
        }
        BatchingConfig {
            enabled: true,
            max_batch,
            max_delay: SimDuration::from_millis(1),
            adaptive: true,
        }
    }

    /// Returns a copy with the given flush delay.
    pub fn with_delay(mut self, max_delay: SimDuration) -> Self {
        self.max_delay = max_delay;
        self
    }
}

/// The coalescing buffer of the batching pipeline.
///
/// Generic in the item type: the RATC stacks buffer transaction identifiers
/// (the payloads live in the coordinator state), the baseline buffers whole
/// certified votes destined for one Multi-Paxos command.
#[derive(Debug, Clone)]
pub struct VoteBatcher<T> {
    config: BatchingConfig,
    pending: Vec<T>,
    /// Current flush threshold: `max_batch` for fixed configs, the adaptive
    /// target (1..=`max_batch`) for adaptive ones.
    target: usize,
}

impl<T> VoteBatcher<T> {
    /// Creates an empty batcher with the given knobs.
    pub fn new(config: BatchingConfig) -> Self {
        VoteBatcher {
            target: Self::initial_target(config),
            config,
            pending: Vec::new(),
        }
    }

    fn initial_target(config: BatchingConfig) -> usize {
        if config.adaptive {
            1
        } else {
            config.max_batch.max(1)
        }
    }

    /// The batcher's knobs.
    pub fn config(&self) -> BatchingConfig {
        self.config
    }

    /// Replaces the batcher's knobs (pending items are kept; the adaptive
    /// target restarts from its initial value).
    pub fn set_config(&mut self, config: BatchingConfig) {
        self.config = config;
        self.target = Self::initial_target(config);
    }

    /// The current flush threshold (the adaptive target, or `max_batch` for
    /// fixed configs).
    pub fn target(&self) -> usize {
        self.target
    }

    /// Adds an item to the pending batch. Returns `true` if the batch is now
    /// full (reached the current target) and must be flushed.
    pub fn push(&mut self, item: T) -> bool {
        self.pending.push(item);
        self.pending.len() >= self.target
    }

    /// Drains and returns the pending batch (in push order).
    pub fn drain(&mut self) -> Vec<T> {
        std::mem::take(&mut self.pending)
    }

    /// Drains a batch that filled to target: under an adaptive config this is
    /// the queue-pressure signal, so the target doubles (up to `max_batch`).
    pub fn drain_full(&mut self) -> Vec<T> {
        if self.config.adaptive {
            self.target = (self.target * 2).min(self.config.max_batch.max(1));
        }
        self.drain()
    }

    /// Drains a batch flushed by the timer while still partial: under an
    /// adaptive config this is the idle signal, so the target halves (down
    /// to 1, the unbatched fast path — at target 1 every push flushes
    /// immediately and the flush timer never arms, so an idle cluster pays
    /// no batching latency at all).
    pub fn drain_idle(&mut self) -> Vec<T> {
        if self.config.adaptive {
            self.target = (self.target / 2).max(1);
        }
        self.drain()
    }

    /// Number of pending items.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no items are pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

/// One transaction of a `PREPARE_BATCH`: the fields of an individual
/// `PREPARE`, so the leader can serve each item exactly as it would a
/// single-transaction prepare (including the `TxDecided` fast path for
/// truncated transactions and re-acks for already-certified ones).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrepareItem {
    /// Transaction identifier.
    pub tx: TxId,
    /// Shard-restricted payload, or `None` for the `⊥` payload.
    pub payload: Option<Payload>,
    /// `shards(t)`.
    pub shards: Vec<ShardId>,
    /// `client(t)`.
    pub client: ProcessId,
}

/// A coalesced prepare request: the [`VoteBatcher`]'s output for one shard
/// leader. The leader certifies the items in order and assigns fresh entries
/// a contiguous position range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrepareBatch {
    /// The batched transactions, in submission order.
    pub items: Vec<PrepareItem>,
}

/// One prepared slot of a `PREPARE_ACK_BATCH` / `ACCEPT_BATCH`: position,
/// transaction, stored payload and vote — everything a follower needs to
/// persist the slot and a recovery coordinator needs to take the transaction
/// over. Per-slot votes remain individually recoverable from a batch (in the
/// RDMA stack: from the memory region a batch write landed in).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PreparedItem {
    /// Position assigned in the certification order.
    pub pos: Position,
    /// Transaction identifier.
    pub tx: TxId,
    /// The payload stored by the leader (shard-restricted, possibly `ε`).
    pub payload: Payload,
    /// The leader's vote.
    pub vote: Decision,
    /// `shards(t)`.
    pub shards: Vec<ShardId>,
    /// `client(t)`.
    pub client: ProcessId,
}

/// One acknowledged slot of an `ACCEPT_ACK_BATCH`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcceptAckItem {
    /// Position acknowledged.
    pub pos: Position,
    /// Transaction identifier.
    pub tx: TxId,
    /// The vote acknowledged.
    pub vote: Decision,
}

/// One decided slot of a `DECISION_BATCH`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecisionItem {
    /// Position in the certification order.
    pub pos: Position,
    /// The final decision.
    pub decision: Decision,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_config_degenerates_to_single_item_batches() {
        let config = BatchingConfig::disabled();
        assert!(!config.enabled);
        let mut batcher: VoteBatcher<u64> = VoteBatcher::new(config);
        assert!(batcher.is_empty());
        assert!(batcher.push(1), "a disabled batcher flushes on every push");
        assert_eq!(batcher.drain(), vec![1]);
        assert!(batcher.is_empty());
    }

    #[test]
    fn with_batch_flushes_at_capacity() {
        let mut batcher: VoteBatcher<u64> = VoteBatcher::new(BatchingConfig::with_batch(3));
        assert!(!batcher.push(1));
        assert!(!batcher.push(2));
        assert_eq!(batcher.len(), 2);
        assert!(batcher.push(3), "third push reaches max_batch");
        assert_eq!(batcher.drain(), vec![1, 2, 3]);
    }

    #[test]
    fn adaptive_target_grows_on_pressure_and_shrinks_when_idle() {
        let mut batcher: VoteBatcher<u64> = VoteBatcher::new(BatchingConfig::adaptive(8));
        // Idle start: target 1, every push flushes immediately (fast path).
        assert_eq!(batcher.target(), 1);
        assert!(batcher.push(1));
        assert_eq!(batcher.drain_full(), vec![1]);
        // Pressure: each full flush doubles the target up to max_batch.
        assert_eq!(batcher.target(), 2);
        assert!(!batcher.push(2));
        assert!(batcher.push(3));
        assert_eq!(batcher.drain_full(), vec![2, 3]);
        assert_eq!(batcher.target(), 4);
        for i in 4..8 {
            batcher.push(i);
        }
        batcher.drain_full();
        assert_eq!(batcher.target(), 8);
        batcher.push(100);
        let _ = batcher.drain_full();
        assert_eq!(batcher.target(), 8, "capped at max_batch");
        // Idle: timer flushes on partial batches halve the target back to 1.
        batcher.push(101);
        assert_eq!(batcher.drain_idle(), vec![101]);
        assert_eq!(batcher.target(), 4);
        batcher.drain_idle();
        batcher.drain_idle();
        batcher.drain_idle();
        assert_eq!(batcher.target(), 1, "floors at the unbatched fast path");
    }

    #[test]
    fn fixed_configs_ignore_adaptive_signals() {
        let mut batcher: VoteBatcher<u64> = VoteBatcher::new(BatchingConfig::with_batch(4));
        assert_eq!(batcher.target(), 4);
        batcher.push(1);
        batcher.drain_idle();
        batcher.drain_full();
        assert_eq!(batcher.target(), 4);
        assert!(!BatchingConfig::adaptive(1).enabled);
        assert!(BatchingConfig::adaptive(16).adaptive);
    }

    #[test]
    fn tiny_batch_sizes_disable_batching() {
        assert!(!BatchingConfig::with_batch(0).enabled);
        assert!(!BatchingConfig::with_batch(1).enabled);
        let config = BatchingConfig::with_batch(16);
        assert!(config.enabled);
        assert_eq!(config.max_batch, 16);
        let delayed = config.with_delay(SimDuration::from_micros(250));
        assert_eq!(delayed.max_delay, SimDuration::from_micros(250));
    }
}
