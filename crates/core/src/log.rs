//! The per-shard certification log.
//!
//! Figure 1 keeps five parallel arrays at every replica: `txn`, `payload`,
//! `vote`, `dec` and `phase`, indexed by certification-order position, plus a
//! `next` counter pointing past the last filled slot. [`CertificationLog`]
//! bundles them into one indexed structure. Followers may have *holes* (slots
//! still in the `start` phase) because votes are persisted by coordinators
//! out of order; leaders never do.

use ratc_types::{Decision, Payload, Position, ProcessId, ShardId, TxId};
use serde::{Deserialize, Serialize};

/// The phase of a certification-order slot (the paper's `phase` array).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum TxPhase {
    /// Nothing stored yet (a hole).
    #[default]
    Start,
    /// The transaction and its vote are stored.
    Prepared,
    /// The final decision is known.
    Decided,
}

/// One slot of the certification log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogEntry {
    /// The transaction occupying this slot.
    pub tx: TxId,
    /// The shard-restricted payload stored for it (possibly `ε`).
    pub payload: Payload,
    /// The shard's vote on the transaction.
    pub vote: Decision,
    /// The final decision, once known.
    pub dec: Option<Decision>,
    /// The slot's phase.
    pub phase: TxPhase,
    /// The full set of shards certifying the transaction (`shards(t)`).
    pub shards: Vec<ShardId>,
    /// The client that issued the transaction (`client(t)`).
    pub client: ProcessId,
}

/// The certification log of one replica.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CertificationLog {
    slots: Vec<Option<LogEntry>>,
}

impl CertificationLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        CertificationLog::default()
    }

    /// The paper's `next`: the index one past the last filled slot.
    pub fn next(&self) -> Position {
        Position::new(self.slots.len() as u64)
    }

    /// Number of slots (filled or holes).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` if the log has no slots at all.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The entry at `pos`, if that slot is filled.
    pub fn get(&self, pos: Position) -> Option<&LogEntry> {
        self.slots.get(pos.as_usize()).and_then(Option::as_ref)
    }

    /// Mutable access to the entry at `pos`, if that slot is filled.
    pub fn get_mut(&mut self, pos: Position) -> Option<&mut LogEntry> {
        self.slots.get_mut(pos.as_usize()).and_then(Option::as_mut)
    }

    /// The phase of the slot at `pos` (`Start` for holes and out-of-range
    /// positions).
    pub fn phase(&self, pos: Position) -> TxPhase {
        self.get(pos).map(|e| e.phase).unwrap_or(TxPhase::Start)
    }

    /// The position of transaction `tx`, if it appears in the log
    /// (the `∃k. t = txn[k]` test of line 6).
    pub fn position_of(&self, tx: TxId) -> Option<Position> {
        self.slots.iter().enumerate().find_map(|(i, slot)| {
            slot.as_ref()
                .filter(|e| e.tx == tx)
                .map(|_| Position::new(i as u64))
        })
    }

    /// Appends a new entry at the leader (lines 9–13): the slot index is the
    /// current `next`.
    pub fn append(&mut self, entry: LogEntry) -> Position {
        let pos = self.next();
        self.slots.push(Some(entry));
        pos
    }

    /// Stores an entry at an arbitrary position (line 24 at a follower),
    /// growing the log with holes as needed. Returns `false` if the slot was
    /// already filled (the `phase[k] = start` precondition failed).
    pub fn store_at(&mut self, pos: Position, entry: LogEntry) -> bool {
        let idx = pos.as_usize();
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, None);
        }
        if self.slots[idx].is_some() {
            return false;
        }
        self.slots[idx] = Some(entry);
        true
    }

    /// Records the final decision for the slot at `pos` (line 32). Creating a
    /// decision for a hole is ignored (the replica has not yet stored the
    /// transaction; a later `NEW_STATE` will supply it).
    pub fn decide(&mut self, pos: Position, decision: Decision) {
        if let Some(entry) = self.get_mut(pos) {
            entry.dec = Some(decision);
            entry.phase = TxPhase::Decided;
        }
    }

    /// Iterates over the filled slots with their positions.
    pub fn entries(&self) -> impl Iterator<Item = (Position, &LogEntry)> + '_ {
        self.slots.iter().enumerate().filter_map(|(i, slot)| {
            slot.as_ref().map(|e| (Position::new(i as u64), e))
        })
    }

    /// The payloads used as `L1` at line 12: payloads of transactions decided
    /// to commit in slots strictly before `before`.
    pub fn committed_payloads_before(&self, before: Position) -> Vec<&Payload> {
        self.entries()
            .filter(|(pos, e)| {
                *pos < before
                    && e.phase == TxPhase::Decided
                    && e.dec == Some(Decision::Commit)
            })
            .map(|(_, e)| &e.payload)
            .collect()
    }

    /// The payloads used as `L2` at line 12: payloads of transactions prepared
    /// with a commit vote (and not yet decided) in slots strictly before
    /// `before`.
    pub fn prepared_payloads_before(&self, before: Position) -> Vec<&Payload> {
        self.entries()
            .filter(|(pos, e)| {
                *pos < before && e.phase == TxPhase::Prepared && e.vote == Decision::Commit
            })
            .map(|(_, e)| &e.payload)
            .collect()
    }

    /// Number of holes (slots still in the `Start` phase below `next`).
    pub fn hole_count(&self) -> usize {
        self.slots.iter().filter(|slot| slot.is_none()).count()
    }

    /// Checks the `≺` relation of Figure 3 against another log: this log's
    /// prefix of length `len` must agree with `other` on every slot where this
    /// log is filled (holes are allowed).
    pub fn is_prefix_with_holes_of(&self, other: &CertificationLog, len: Position) -> bool {
        for (pos, entry) in self.entries() {
            if pos >= len {
                continue;
            }
            match other.get(pos) {
                Some(other_entry) => {
                    if other_entry.tx != entry.tx
                        || other_entry.vote != entry.vote
                        || other_entry.payload != entry.payload
                    {
                        return false;
                    }
                }
                None => return false,
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratc_types::{Key, Version};

    fn entry(tx: u64) -> LogEntry {
        LogEntry {
            tx: TxId::new(tx),
            payload: Payload::builder()
                .read(Key::new(format!("k{tx}")), Version::new(0))
                .build()
                .expect("well-formed"),
            vote: Decision::Commit,
            dec: None,
            phase: TxPhase::Prepared,
            shards: vec![ShardId::new(0)],
            client: ProcessId::new(99),
        }
    }

    #[test]
    fn append_assigns_consecutive_positions() {
        let mut log = CertificationLog::new();
        assert!(log.is_empty());
        assert_eq!(log.append(entry(1)), Position::new(0));
        assert_eq!(log.append(entry(2)), Position::new(1));
        assert_eq!(log.next(), Position::new(2));
        assert_eq!(log.len(), 2);
        assert_eq!(log.position_of(TxId::new(2)), Some(Position::new(1)));
        assert_eq!(log.position_of(TxId::new(9)), None);
        assert_eq!(log.hole_count(), 0);
    }

    #[test]
    fn store_at_creates_holes_and_rejects_overwrites() {
        let mut log = CertificationLog::new();
        assert!(log.store_at(Position::new(2), entry(3)));
        assert_eq!(log.len(), 3);
        assert_eq!(log.hole_count(), 2);
        assert_eq!(log.phase(Position::new(0)), TxPhase::Start);
        assert_eq!(log.phase(Position::new(2)), TxPhase::Prepared);
        // A second store at the same position is rejected (phase != start).
        assert!(!log.store_at(Position::new(2), entry(4)));
        assert_eq!(log.get(Position::new(2)).unwrap().tx, TxId::new(3));
    }

    #[test]
    fn decide_updates_phase_and_ignores_holes() {
        let mut log = CertificationLog::new();
        log.append(entry(1));
        log.decide(Position::new(0), Decision::Abort);
        assert_eq!(log.phase(Position::new(0)), TxPhase::Decided);
        assert_eq!(log.get(Position::new(0)).unwrap().dec, Some(Decision::Abort));
        // Deciding a hole is a no-op.
        log.decide(Position::new(7), Decision::Commit);
        assert_eq!(log.phase(Position::new(7)), TxPhase::Start);
    }

    #[test]
    fn l1_and_l2_selection() {
        let mut log = CertificationLog::new();
        let committed = log.append(entry(1));
        log.decide(committed, Decision::Commit);
        let aborted = log.append(entry(2));
        log.decide(aborted, Decision::Abort);
        log.append(entry(3)); // prepared with commit vote
        let mut pending_abort = entry(4);
        pending_abort.vote = Decision::Abort;
        log.append(pending_abort);
        let cutoff = log.next();

        assert_eq!(log.committed_payloads_before(cutoff).len(), 1);
        assert_eq!(log.prepared_payloads_before(cutoff).len(), 1);
        // Positions at or after the cutoff are excluded.
        assert!(log
            .committed_payloads_before(Position::new(0))
            .is_empty());
    }

    #[test]
    fn prefix_with_holes_relation() {
        let mut leader = CertificationLog::new();
        leader.append(entry(1));
        leader.append(entry(2));
        leader.append(entry(3));

        let mut follower = CertificationLog::new();
        follower.store_at(Position::new(1), entry(2));
        assert!(follower.is_prefix_with_holes_of(&leader, leader.next()));

        // A mismatching entry violates the relation.
        let mut bad = CertificationLog::new();
        bad.store_at(Position::new(1), entry(9));
        assert!(!bad.is_prefix_with_holes_of(&leader, leader.next()));

        // An entry beyond the leader's log violates it too.
        let mut beyond = CertificationLog::new();
        beyond.store_at(Position::new(5), entry(5));
        assert!(!beyond.is_prefix_with_holes_of(&leader, Position::new(10)));
        // ... unless the comparison length excludes it.
        assert!(beyond.is_prefix_with_holes_of(&leader, Position::new(3)));
    }
}
