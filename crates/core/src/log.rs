//! The per-shard certification log.
//!
//! Figure 1 keeps five parallel arrays at every replica: `txn`, `payload`,
//! `vote`, `dec` and `phase`, indexed by certification-order position, plus a
//! `next` counter pointing past the last filled slot. [`CertificationLog`]
//! bundles them into one indexed structure. Followers may have *holes* (slots
//! still in the `start` phase) because votes are persisted by coordinators
//! out of order; leaders never do.
//!
//! # Incremental certification index
//!
//! The leader's vote (line 12) needs the sets `L1` (payloads decided to
//! commit) and `L2` (payloads prepared with a commit vote, undecided). The
//! set-based accessors [`CertificationLog::committed_payloads_before`] and
//! [`CertificationLog::prepared_payloads_before`] compute them by scanning
//! every slot — O(|log|) per call, O(n²) over a run. A log created with
//! [`CertificationLog::with_certifier`] instead owns an
//! [`IndexedCertifier`] and keeps it in lockstep with the slot phases:
//!
//! * *append / store-at* of a prepared entry with a commit vote →
//!   [`IndexedCertifier::prepare`] (entry enters `L2`);
//! * *decide* → [`IndexedCertifier::release`] (entry leaves `L2`), plus
//!   [`IndexedCertifier::apply_committed`] when the decision is commit
//!   (entry enters `L1`);
//! * wholesale replacement (`NEW_STATE`) → [`CertificationLog::set_certifier`]
//!   rebuilds the index from the slots.
//!
//! Decides may arrive out of order and slots may be holes; both are fine
//! because the index transitions are per-position, idempotent, and
//! order-insensitive (certification functions are set-based). With the index
//! in place, [`CertificationLog::vote_at`] answers the vote in O(|payload|).

use ratc_types::{Decision, IndexedCertifier, Payload, Position, ProcessId, ShardId, TxId};
use serde::{Deserialize, Serialize};

/// The phase of a certification-order slot (the paper's `phase` array).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum TxPhase {
    /// Nothing stored yet (a hole).
    #[default]
    Start,
    /// The transaction and its vote are stored.
    Prepared,
    /// The final decision is known.
    Decided,
}

/// One slot of the certification log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogEntry {
    /// The transaction occupying this slot.
    pub tx: TxId,
    /// The shard-restricted payload stored for it (possibly `ε`).
    pub payload: Payload,
    /// The shard's vote on the transaction.
    pub vote: Decision,
    /// The final decision, once known.
    pub dec: Option<Decision>,
    /// The slot's phase.
    pub phase: TxPhase,
    /// The full set of shards certifying the transaction (`shards(t)`).
    pub shards: Vec<ShardId>,
    /// The client that issued the transaction (`client(t)`).
    pub client: ProcessId,
}

/// The certification log of one replica.
///
/// Equality compares the paper-visible state (the slots); the hole counter
/// and the certification index are derived caches and do not participate.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CertificationLog {
    slots: Vec<Option<LogEntry>>,
    /// Number of `None` slots, maintained incrementally (O(1) `hole_count`).
    holes: usize,
    /// Incremental certifier kept in lockstep with the slot phases, if any.
    index: Option<Box<dyn IndexedCertifier>>,
}

impl PartialEq for CertificationLog {
    fn eq(&self, other: &Self) -> bool {
        self.slots == other.slots
    }
}

impl CertificationLog {
    /// Creates an empty log without a certification index (votes fall back to
    /// the set-based scans).
    pub fn new() -> Self {
        CertificationLog::default()
    }

    /// Creates an empty log that maintains `index` incrementally, enabling
    /// O(|payload|) [`CertificationLog::vote_at`].
    pub fn with_certifier(index: Box<dyn IndexedCertifier>) -> Self {
        CertificationLog {
            slots: Vec::new(),
            holes: 0,
            index: Some(index),
        }
    }

    /// Whether this log maintains a certification index.
    pub fn has_index(&self) -> bool {
        self.index.is_some()
    }

    /// Installs (or replaces) the certification index and rebuilds it from
    /// the current slots. Used when a follower installs a transferred log
    /// that arrived without an index, and by tests.
    pub fn set_certifier(&mut self, mut index: Box<dyn IndexedCertifier>) {
        index.reset();
        for (pos, entry) in self.entries() {
            Self::index_fill(&mut index, pos, entry);
        }
        self.index = Some(index);
    }

    /// Index transition for a slot that just became filled: a commit-voted
    /// prepared entry enters `L2`; an already-decided commit entry (state
    /// transfer, rebuild) enters `L1` directly.
    fn index_fill(index: &mut Box<dyn IndexedCertifier>, pos: Position, entry: &LogEntry) {
        match entry.phase {
            TxPhase::Prepared if entry.vote == Decision::Commit => {
                index.prepare(pos, &entry.payload);
            }
            TxPhase::Decided if entry.dec == Some(Decision::Commit) => {
                index.apply_committed(pos, &entry.payload);
            }
            _ => {}
        }
    }

    /// The paper's `next`: the index one past the last filled slot.
    pub fn next(&self) -> Position {
        Position::new(self.slots.len() as u64)
    }

    /// Number of slots (filled or holes).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` if the log has no slots at all.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The entry at `pos`, if that slot is filled.
    pub fn get(&self, pos: Position) -> Option<&LogEntry> {
        self.slots.get(pos.as_usize()).and_then(Option::as_ref)
    }

    /// The phase of the slot at `pos` (`Start` for holes and out-of-range
    /// positions).
    pub fn phase(&self, pos: Position) -> TxPhase {
        self.get(pos).map(|e| e.phase).unwrap_or(TxPhase::Start)
    }

    /// The position of transaction `tx`, if it appears in the log
    /// (the `∃k. t = txn[k]` test of line 6).
    pub fn position_of(&self, tx: TxId) -> Option<Position> {
        self.slots.iter().enumerate().find_map(|(i, slot)| {
            slot.as_ref()
                .filter(|e| e.tx == tx)
                .map(|_| Position::new(i as u64))
        })
    }

    /// The leader's vote of line 12 for a payload about to occupy `pos`:
    /// `f_s(L1, l) ⊓ g_s(L2, l)` against the slots strictly before `pos`,
    /// answered in O(|payload|) by the certification index.
    ///
    /// Returns `None` when the log maintains no index (callers fall back to
    /// the set-based scans). `pos` must be [`CertificationLog::next`]: the
    /// index summarises every filled slot, which is exactly the prefix before
    /// `next` — votes at interior positions would need a historical snapshot.
    pub fn vote_at(&self, pos: Position, payload: &Payload) -> Option<Decision> {
        debug_assert_eq!(
            pos,
            self.next(),
            "vote_at only answers votes at the append position"
        );
        self.index.as_ref().map(|index| index.vote(payload))
    }

    /// Appends a new entry at the leader (lines 9–13): the slot index is the
    /// current `next`.
    pub fn append(&mut self, entry: LogEntry) -> Position {
        let pos = self.next();
        if let Some(index) = self.index.as_mut() {
            Self::index_fill(index, pos, &entry);
        }
        self.slots.push(Some(entry));
        pos
    }

    /// Stores an entry at an arbitrary position (line 24 at a follower),
    /// growing the log with holes as needed. Returns `false` if the slot was
    /// already filled (the `phase[k] = start` precondition failed).
    pub fn store_at(&mut self, pos: Position, entry: LogEntry) -> bool {
        let idx = pos.as_usize();
        if idx >= self.slots.len() {
            self.holes += idx - self.slots.len();
            self.slots.resize(idx + 1, None);
        } else if self.slots[idx].is_some() {
            return false;
        } else {
            self.holes -= 1;
        }
        if let Some(index) = self.index.as_mut() {
            Self::index_fill(index, pos, &entry);
        }
        self.slots[idx] = Some(entry);
        true
    }

    /// Records the final decision for the slot at `pos` (line 32). Deciding a
    /// hole is ignored (the replica has not yet stored the transaction; a
    /// later `NEW_STATE` will supply it), and so is re-deciding an already
    /// decided slot: decisions are unique per transaction (TCS specification),
    /// so the first decision wins and duplicates from retrying coordinators
    /// are no-ops.
    pub fn decide(&mut self, pos: Position, decision: Decision) {
        let Some(entry) = self.slots.get_mut(pos.as_usize()).and_then(Option::as_mut) else {
            return;
        };
        if entry.phase == TxPhase::Decided {
            return;
        }
        entry.dec = Some(decision);
        entry.phase = TxPhase::Decided;
        if let Some(index) = self.index.as_mut() {
            index.release(pos);
            if decision == Decision::Commit {
                index.apply_committed(pos, &entry.payload);
            }
        }
    }

    /// Iterates over the filled slots with their positions.
    pub fn entries(&self) -> impl Iterator<Item = (Position, &LogEntry)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|e| (Position::new(i as u64), e)))
    }

    /// The payloads used as `L1` at line 12: payloads of transactions decided
    /// to commit in slots strictly before `before`.
    ///
    /// This is the set-based reference path — O(|log|) per call. The vote
    /// hot path uses [`CertificationLog::vote_at`] instead; this accessor
    /// remains for the differential tests and for logs without an index.
    pub fn committed_payloads_before(&self, before: Position) -> Vec<&Payload> {
        self.entries()
            .filter(|(pos, e)| {
                *pos < before && e.phase == TxPhase::Decided && e.dec == Some(Decision::Commit)
            })
            .map(|(_, e)| &e.payload)
            .collect()
    }

    /// The payloads used as `L2` at line 12: payloads of transactions prepared
    /// with a commit vote (and not yet decided) in slots strictly before
    /// `before`.
    ///
    /// Set-based reference path; see [`CertificationLog::committed_payloads_before`].
    pub fn prepared_payloads_before(&self, before: Position) -> Vec<&Payload> {
        self.entries()
            .filter(|(pos, e)| {
                *pos < before && e.phase == TxPhase::Prepared && e.vote == Decision::Commit
            })
            .map(|(_, e)| &e.payload)
            .collect()
    }

    /// Number of holes (slots still in the `Start` phase below `next`),
    /// maintained incrementally — O(1).
    pub fn hole_count(&self) -> usize {
        debug_assert_eq!(
            self.holes,
            self.slots.iter().filter(|slot| slot.is_none()).count()
        );
        self.holes
    }

    /// Checks the `≺` relation of Figure 3 against another log: this log's
    /// prefix of length `len` must agree with `other` on every slot where this
    /// log is filled (holes are allowed).
    pub fn is_prefix_with_holes_of(&self, other: &CertificationLog, len: Position) -> bool {
        for (pos, entry) in self.entries() {
            if pos >= len {
                continue;
            }
            match other.get(pos) {
                Some(other_entry) => {
                    if other_entry.tx != entry.tx
                        || other_entry.vote != entry.vote
                        || other_entry.payload != entry.payload
                    {
                        return false;
                    }
                }
                None => return false,
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratc_types::{CertificationPolicy, Key, Serializability, Version};

    fn entry(tx: u64) -> LogEntry {
        LogEntry {
            tx: TxId::new(tx),
            payload: Payload::builder()
                .read(Key::new(format!("k{tx}")), Version::new(0))
                .build()
                .expect("well-formed"),
            vote: Decision::Commit,
            dec: None,
            phase: TxPhase::Prepared,
            shards: vec![ShardId::new(0)],
            client: ProcessId::new(99),
        }
    }

    fn indexed_log() -> CertificationLog {
        CertificationLog::with_certifier(Serializability::new().indexed_certifier(ShardId::new(0)))
    }

    #[test]
    fn append_assigns_consecutive_positions() {
        let mut log = CertificationLog::new();
        assert!(log.is_empty());
        assert_eq!(log.append(entry(1)), Position::new(0));
        assert_eq!(log.append(entry(2)), Position::new(1));
        assert_eq!(log.next(), Position::new(2));
        assert_eq!(log.len(), 2);
        assert_eq!(log.position_of(TxId::new(2)), Some(Position::new(1)));
        assert_eq!(log.position_of(TxId::new(9)), None);
        assert_eq!(log.hole_count(), 0);
    }

    #[test]
    fn store_at_creates_holes_and_rejects_overwrites() {
        let mut log = CertificationLog::new();
        assert!(log.store_at(Position::new(2), entry(3)));
        assert_eq!(log.len(), 3);
        assert_eq!(log.hole_count(), 2);
        assert_eq!(log.phase(Position::new(0)), TxPhase::Start);
        assert_eq!(log.phase(Position::new(2)), TxPhase::Prepared);
        // A second store at the same position is rejected (phase != start).
        assert!(!log.store_at(Position::new(2), entry(4)));
        assert_eq!(log.get(Position::new(2)).unwrap().tx, TxId::new(3));
        // Filling an interior hole shrinks the count.
        assert!(log.store_at(Position::new(0), entry(1)));
        assert_eq!(log.hole_count(), 1);
    }

    #[test]
    fn decide_updates_phase_and_ignores_holes() {
        let mut log = CertificationLog::new();
        log.append(entry(1));
        log.decide(Position::new(0), Decision::Abort);
        assert_eq!(log.phase(Position::new(0)), TxPhase::Decided);
        assert_eq!(
            log.get(Position::new(0)).unwrap().dec,
            Some(Decision::Abort)
        );
        // Deciding a hole is a no-op.
        log.decide(Position::new(7), Decision::Commit);
        assert_eq!(log.phase(Position::new(7)), TxPhase::Start);
        // Re-deciding an already decided slot is a no-op (first decision wins).
        log.decide(Position::new(0), Decision::Commit);
        assert_eq!(
            log.get(Position::new(0)).unwrap().dec,
            Some(Decision::Abort)
        );
    }

    #[test]
    fn l1_and_l2_selection() {
        let mut log = CertificationLog::new();
        let committed = log.append(entry(1));
        log.decide(committed, Decision::Commit);
        let aborted = log.append(entry(2));
        log.decide(aborted, Decision::Abort);
        log.append(entry(3)); // prepared with commit vote
        let mut pending_abort = entry(4);
        pending_abort.vote = Decision::Abort;
        log.append(pending_abort);
        let cutoff = log.next();

        assert_eq!(log.committed_payloads_before(cutoff).len(), 1);
        assert_eq!(log.prepared_payloads_before(cutoff).len(), 1);
        // Positions at or after the cutoff are excluded.
        assert!(log.committed_payloads_before(Position::new(0)).is_empty());
    }

    #[test]
    fn prefix_with_holes_relation() {
        let mut leader = CertificationLog::new();
        leader.append(entry(1));
        leader.append(entry(2));
        leader.append(entry(3));

        let mut follower = CertificationLog::new();
        follower.store_at(Position::new(1), entry(2));
        assert!(follower.is_prefix_with_holes_of(&leader, leader.next()));

        // A mismatching entry violates the relation.
        let mut bad = CertificationLog::new();
        bad.store_at(Position::new(1), entry(9));
        assert!(!bad.is_prefix_with_holes_of(&leader, leader.next()));

        // An entry beyond the leader's log violates it too.
        let mut beyond = CertificationLog::new();
        beyond.store_at(Position::new(5), entry(5));
        assert!(!beyond.is_prefix_with_holes_of(&leader, Position::new(10)));
        // ... unless the comparison length excludes it.
        assert!(beyond.is_prefix_with_holes_of(&leader, Position::new(3)));
    }

    /// The indexed vote must match the set-based scans after any mix of
    /// appends, out-of-order decides and hole-filling stores.
    fn assert_vote_matches_scans(log: &CertificationLog, candidate: &Payload) {
        let next = log.next();
        let committed = log.committed_payloads_before(next);
        let prepared = log.prepared_payloads_before(next);
        let reference = Serializability::new()
            .shard_certifier(ShardId::new(0))
            .vote(&committed, &prepared, candidate);
        assert_eq!(log.vote_at(next, candidate), Some(reference));
    }

    fn rw_entry(tx: u64, key: &str, read_version: u64, commit_version: u64) -> LogEntry {
        LogEntry {
            tx: TxId::new(tx),
            payload: Payload::builder()
                .read(Key::new(key), Version::new(read_version))
                .write(Key::new(key), ratc_types::Value::from("v"))
                .commit_version(Version::new(commit_version))
                .build()
                .expect("well-formed"),
            vote: Decision::Commit,
            dec: None,
            phase: TxPhase::Prepared,
            shards: vec![ShardId::new(0)],
            client: ProcessId::new(99),
        }
    }

    #[test]
    fn indexed_vote_tracks_phase_transitions() {
        let mut log = indexed_log();
        let candidate = Payload::builder()
            .read(Key::new("a"), Version::new(0))
            .build()
            .expect("well-formed");

        // Empty log: commit.
        assert_eq!(log.vote_at(log.next(), &candidate), Some(Decision::Commit));

        // Prepared writer of "a" write-locks it.
        let pos_a = log.append(rw_entry(1, "a", 0, 5));
        assert_eq!(log.vote_at(log.next(), &candidate), Some(Decision::Abort));
        assert_vote_matches_scans(&log, &candidate);

        // Decided commit: lock released, but the read version 0 is now stale.
        log.decide(pos_a, Decision::Commit);
        assert_eq!(log.vote_at(log.next(), &candidate), Some(Decision::Abort));
        assert_vote_matches_scans(&log, &candidate);

        // A fresh reader of the committed version passes.
        let fresh = Payload::builder()
            .read(Key::new("a"), Version::new(5))
            .build()
            .expect("well-formed");
        assert_eq!(log.vote_at(log.next(), &fresh), Some(Decision::Commit));
        assert_vote_matches_scans(&log, &fresh);
    }

    #[test]
    fn indexed_vote_handles_abort_decides_and_holes() {
        let mut log = indexed_log();
        let candidate = Payload::builder()
            .read(Key::new("b"), Version::new(0))
            .build()
            .expect("well-formed");

        // Store out of order, leaving a hole at 0.
        assert!(log.store_at(Position::new(1), rw_entry(2, "b", 0, 3)));
        assert_eq!(log.vote_at(log.next(), &candidate), Some(Decision::Abort));
        assert_vote_matches_scans(&log, &candidate);

        // An abort decision releases the lock without committing anything.
        log.decide(Position::new(1), Decision::Abort);
        assert_eq!(log.vote_at(log.next(), &candidate), Some(Decision::Commit));
        assert_vote_matches_scans(&log, &candidate);

        // Deciding the hole at 0 stays a no-op for the index too.
        log.decide(Position::new(0), Decision::Commit);
        assert_eq!(log.vote_at(log.next(), &candidate), Some(Decision::Commit));
        assert_vote_matches_scans(&log, &candidate);
    }

    #[test]
    fn set_certifier_rebuilds_from_slots() {
        // Build un-indexed, then install the index and check it agrees.
        let mut log = CertificationLog::new();
        let p0 = log.append(rw_entry(1, "x", 0, 4));
        log.decide(p0, Decision::Commit);
        log.append(rw_entry(2, "y", 0, 6));
        assert!(!log.has_index());
        log.set_certifier(Serializability::new().indexed_certifier(ShardId::new(0)));
        assert!(log.has_index());
        for key in ["x", "y", "z"] {
            let candidate = Payload::builder()
                .read(Key::new(key), Version::new(0))
                .build()
                .expect("well-formed");
            assert_vote_matches_scans(&log, &candidate);
        }
    }

    #[test]
    fn clone_preserves_index_state() {
        let mut log = indexed_log();
        log.append(rw_entry(1, "x", 0, 4));
        let cloned = log.clone();
        let candidate = Payload::builder()
            .read(Key::new("x"), Version::new(0))
            .build()
            .expect("well-formed");
        assert_eq!(
            cloned.vote_at(cloned.next(), &candidate),
            Some(Decision::Abort)
        );
        // Logs compare by slots; the derived caches do not participate.
        assert_eq!(log, cloned);
        assert_eq!(log, {
            let mut plain = CertificationLog::new();
            plain.append(rw_entry(1, "x", 0, 4));
            plain
        });
    }

    #[test]
    fn unindexed_vote_at_returns_none() {
        let log = CertificationLog::new();
        let candidate = Payload::empty();
        assert_eq!(log.vote_at(log.next(), &candidate), None);
    }
}
