//! The per-shard certification log.
//!
//! Figure 1 keeps five parallel arrays at every replica: `txn`, `payload`,
//! `vote`, `dec` and `phase`, indexed by certification-order position, plus a
//! `next` counter pointing past the last filled slot. [`CertificationLog`]
//! bundles them into one indexed structure. Followers may have *holes* (slots
//! still in the `start` phase) because votes are persisted by coordinators
//! out of order; leaders never do.
//!
//! # Incremental certification index
//!
//! The leader's vote (line 12) needs the sets `L1` (payloads decided to
//! commit) and `L2` (payloads prepared with a commit vote, undecided). The
//! set-based accessors [`CertificationLog::committed_payloads_before`] and
//! [`CertificationLog::prepared_payloads_before`] compute them by scanning
//! every slot — O(|log|) per call, O(n²) over a run. A log created with
//! [`CertificationLog::with_certifier`] instead owns an
//! [`IndexedCertifier`] and keeps it in lockstep with the slot phases:
//!
//! * *append / store-at* of a prepared entry with a commit vote →
//!   [`IndexedCertifier::prepare`] (entry enters `L2`);
//! * *decide* → [`IndexedCertifier::release`] (entry leaves `L2`), plus
//!   [`IndexedCertifier::apply_committed`] when the decision is commit
//!   (entry enters `L1`);
//! * wholesale replacement (`NEW_STATE`) → [`CertificationLog::set_certifier`]
//!   rebuilds the index from the checkpoint and the slots.
//!
//! Decides may arrive out of order and slots may be holes; both are fine
//! because the index transitions are per-position, idempotent, and
//! order-insensitive (certification functions are set-based). With the index
//! in place, [`CertificationLog::vote_at`] answers the vote in O(|payload|).
//!
//! # Checkpointed truncation
//!
//! The paper (§6) assumes decided log prefixes are garbage-collected; without
//! that, long-running histories are memory-bound rather than protocol-bound.
//! [`CertificationLog::truncate_to`] folds a *fully-decided, hole-free*
//! prefix into a [`Checkpoint`] and frees the physical slots. The checkpoint
//! keeps exactly the certification-relevant residue:
//!
//! * **per-position decisions** — `(txn, dec)` of every truncated slot, so no
//!   decision recovery might still need is ever lost (recovery coordinators
//!   that re-PREPARE a truncated transaction are answered with its final
//!   decision instead of a re-ack);
//! * **per-key newest committed writer** — the summary `f_s` needs for `L1`;
//!   by distributivity (property (1) of the paper) the per-key maxima are
//!   equivalent to the full set of truncated committed payloads;
//! * **no lock state** — `g_s`'s read/write locks belong to *undecided*
//!   transactions, and undecided slots are never truncated (the truncation
//!   point is clamped to [`CertificationLog::decided_frontier`]), so the
//!   entire `L2` summary lives in the retained suffix.
//!
//! Invariants maintained by truncation:
//!
//! 1. `base ≤ decided_frontier ≤ next`: every position below `base` is folded
//!    into the checkpoint; every position below `decided_frontier` is either
//!    folded or a retained, decided slot.
//! 2. [`CertificationLog::vote_at`] is unaffected: the incremental index
//!    already summarised the truncated entries when they were live.
//! 3. [`CertificationLog::get`] returns `None` below `base`;
//!    [`CertificationLog::phase`] reports [`TxPhase::Decided`] there, and
//!    [`CertificationLog::decide`]/[`CertificationLog::store_at`] below
//!    `base` are no-ops (stale messages for truncated slots are harmless).
//! 4. [`CertificationLog::position_of`] answers over checkpoint + suffix in
//!    O(1) via tx→position maps maintained on both sides of `base`.
//! 5. State transfer (`NEW_STATE`) clones checkpoint + suffix;
//!    [`CertificationLog::set_certifier`] rebuilds an index from the
//!    checkpoint residue plus the retained entries, which votes identically
//!    to an index that saw the whole history.
//!
//! The set-based accessor [`CertificationLog::committed_payloads_before`]
//! *under-approximates* `L1` after truncation (the payloads are gone); it
//! remains exact for untruncated logs, which is the only place the protocols
//! use it as a vote fallback. `L2` ([`CertificationLog::prepared_payloads_before`])
//! stays exact always, per the no-lock-state invariant above.
//!
//! # Decision-map compaction
//!
//! The checkpoint's per-position decision map itself grows with history
//! length — it exists only so recovery can still learn a truncated
//! transaction's decision. Once the decision has been acknowledged end to end
//! (client and coordinator), recovery is impossible by the TCS specification
//! and the record is dead weight: [`CertificationLog::ack_decided`] drops it,
//! keeping only the per-key newest-writer residue. The replica-level ack
//! exchange that drives this is opt-in (see
//! `crate::replica::TruncationConfig`) so default deployments stay
//! bit-identical to the paper's message schedule.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use ratc_types::{
    Decision, IndexedCertifier, Key, Payload, Position, ProcessId, ShardId, TxId, Version,
};
use serde::{Deserialize, Serialize};

/// The phase of a certification-order slot (the paper's `phase` array).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum TxPhase {
    /// Nothing stored yet (a hole).
    #[default]
    Start,
    /// The transaction and its vote are stored.
    Prepared,
    /// The final decision is known.
    Decided,
}

/// One slot of the certification log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogEntry {
    /// The transaction occupying this slot.
    pub tx: TxId,
    /// The shard-restricted payload stored for it (possibly `ε`).
    pub payload: Payload,
    /// The shard's vote on the transaction.
    pub vote: Decision,
    /// The final decision, once known.
    pub dec: Option<Decision>,
    /// The slot's phase.
    pub phase: TxPhase,
    /// The full set of shards certifying the transaction (`shards(t)`).
    pub shards: Vec<ShardId>,
    /// The client that issued the transaction (`client(t)`).
    pub client: ProcessId,
}

/// Summary of a truncated, fully-decided, hole-free log prefix (see the
/// module docs for the invariants).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// One past the last truncated position: slots in `[0, base)` are folded
    /// into this checkpoint; physical storage starts at `base`.
    base: Position,
    /// Final decision of every truncated slot, by position.
    decided: BTreeMap<Position, (TxId, Decision)>,
    /// Position of every truncated transaction (O(1) `position_of`).
    by_tx: HashMap<TxId, Position>,
    /// Newest committed writer version per key — the `f_s` residue.
    newest_writers: BTreeMap<Key, Version>,
}

impl Checkpoint {
    /// One past the last truncated position (the log's low-water mark).
    pub fn base(&self) -> Position {
        self.base
    }

    /// Whether `pos` has been folded into this checkpoint.
    pub fn covers(&self, pos: Position) -> bool {
        pos < self.base
    }

    /// The transaction and final decision folded at `pos`, if covered.
    pub fn decision_at(&self, pos: Position) -> Option<(TxId, Decision)> {
        self.decided.get(&pos).copied()
    }

    /// The folded position and final decision of `tx`, if truncated.
    pub fn decision_of(&self, tx: TxId) -> Option<(Position, Decision)> {
        let pos = *self.by_tx.get(&tx)?;
        let (_, decision) = self.decided.get(&pos)?;
        Some((pos, *decision))
    }

    /// Iterates over the folded `(position, transaction, decision)` triples.
    pub fn decisions(&self) -> impl Iterator<Item = (Position, TxId, Decision)> + '_ {
        self.decided
            .iter()
            .map(|(pos, (tx, dec))| (*pos, *tx, *dec))
    }

    /// Number of transactions folded into this checkpoint.
    pub fn decided_count(&self) -> usize {
        self.decided.len()
    }

    /// Iterates over the per-key newest-committed-writer residue.
    pub fn newest_writers(&self) -> impl Iterator<Item = (&Key, Version)> + '_ {
        self.newest_writers.iter().map(|(k, v)| (k, *v))
    }

    /// Folds one decided slot into the summary. With `forget`, the per-key
    /// newest-writer residue is still accumulated (certification needs it
    /// forever) but the `(tx, position, decision)` record is dropped: the
    /// decision has been acknowledged by its client and coordinator, so no
    /// recovery will ever ask for it again (see
    /// [`CertificationLog::ack_decided`]).
    fn fold(&mut self, pos: Position, entry: LogEntry, forget: bool) {
        let decision = entry
            .dec
            .expect("only decided slots are folded into a checkpoint");
        if decision == Decision::Commit {
            let vc = entry.payload.commit_version();
            for (key, _) in entry.payload.writes() {
                self.newest_writers
                    .entry(key.clone())
                    .and_modify(|v| *v = (*v).max(vc))
                    .or_insert(vc);
            }
        }
        if !forget {
            self.by_tx.insert(entry.tx, pos);
            self.decided.insert(pos, (entry.tx, decision));
        }
    }

    /// Drops the `(tx, position, decision)` record of an acknowledged,
    /// already-folded transaction. The newest-writer residue is untouched.
    /// Returns `true` if a record was removed.
    fn prune(&mut self, tx: TxId) -> bool {
        let Some(pos) = self.by_tx.remove(&tx) else {
            return false;
        };
        self.decided.remove(&pos);
        true
    }
}

/// The certification log of one replica.
///
/// Equality compares the paper-visible state (the checkpoint and the retained
/// slots); the hole counter, the tx→position map and the certification index
/// are derived caches and do not participate.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CertificationLog {
    /// Folded summary of the truncated prefix `[0, base)`.
    checkpoint: Checkpoint,
    /// Physical slots for positions `base..next`.
    slots: Vec<Option<LogEntry>>,
    /// Number of `None` slots, maintained incrementally (O(1) `hole_count`).
    holes: usize,
    /// The decided frontier: every position below it is folded or decided.
    frontier: Position,
    /// Position of every retained transaction (O(1) `position_of`).
    by_tx: HashMap<TxId, Position>,
    /// Retained transactions whose decision has been fully acknowledged
    /// (client and coordinator): folded without a decision record when their
    /// slots are truncated (decision-map compaction, see
    /// [`CertificationLog::ack_decided`]). Drained by `truncate_to`.
    acked: BTreeSet<TxId>,
    /// Incremental certifier kept in lockstep with the slot phases, if any.
    index: Option<Box<dyn IndexedCertifier>>,
}

impl PartialEq for CertificationLog {
    fn eq(&self, other: &Self) -> bool {
        self.checkpoint == other.checkpoint && self.slots == other.slots
    }
}

impl CertificationLog {
    /// Creates an empty log without a certification index (votes fall back to
    /// the set-based scans).
    pub fn new() -> Self {
        CertificationLog::default()
    }

    /// Creates an empty log that maintains `index` incrementally, enabling
    /// O(|payload|) [`CertificationLog::vote_at`].
    pub fn with_certifier(index: Box<dyn IndexedCertifier>) -> Self {
        CertificationLog {
            index: Some(index),
            ..CertificationLog::default()
        }
    }

    /// Whether this log maintains a certification index.
    pub fn has_index(&self) -> bool {
        self.index.is_some()
    }

    /// Installs (or replaces) the certification index and rebuilds it from
    /// the checkpoint residue and the current slots. Used when a follower
    /// installs a transferred log that arrived without an index, and by
    /// tests.
    pub fn set_certifier(&mut self, mut index: Box<dyn IndexedCertifier>) {
        index.reset();
        for (key, version) in self.checkpoint.newest_writers() {
            index.apply_committed_residue(key, version);
        }
        for (pos, entry) in self.entries() {
            Self::index_fill(&mut index, pos, entry);
        }
        self.index = Some(index);
    }

    /// Index transition for a slot that just became filled: a commit-voted
    /// prepared entry enters `L2`; an already-decided commit entry (state
    /// transfer, rebuild) enters `L1` directly.
    fn index_fill(index: &mut Box<dyn IndexedCertifier>, pos: Position, entry: &LogEntry) {
        match entry.phase {
            TxPhase::Prepared if entry.vote == Decision::Commit => {
                index.prepare(pos, &entry.payload);
            }
            TxPhase::Decided if entry.dec == Some(Decision::Commit) => {
                index.apply_committed(pos, &entry.payload);
            }
            _ => {}
        }
    }

    /// The physical slot index of `pos`, if it is not below the checkpoint.
    fn physical(&self, pos: Position) -> Option<usize> {
        pos.as_usize()
            .checked_sub(self.checkpoint.base().as_usize())
    }

    /// The paper's `next`: the index one past the last filled slot.
    pub fn next(&self) -> Position {
        Position::new(self.checkpoint.base().as_u64() + self.slots.len() as u64)
    }

    /// Number of *retained* slots (filled or holes) — the physical suffix
    /// above the checkpoint. Bounded by the undecided window once truncation
    /// runs, regardless of history length.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` if the log retains no slots (it may still cover a
    /// truncated prefix; see [`CertificationLog::checkpoint`]).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The checkpoint summarising the truncated prefix.
    pub fn checkpoint(&self) -> &Checkpoint {
        &self.checkpoint
    }

    /// One past the last truncated position (`checkpoint().base()`).
    pub fn base(&self) -> Position {
        self.checkpoint.base()
    }

    /// The decided frontier: the largest position such that every slot below
    /// it is decided (or already folded into the checkpoint), with no holes.
    /// This is the replica's safe truncation point, gossiped to peers.
    pub fn decided_frontier(&self) -> Position {
        self.frontier
    }

    /// The entry at `pos`, if that slot is retained and filled.
    pub fn get(&self, pos: Position) -> Option<&LogEntry> {
        self.physical(pos)
            .and_then(|idx| self.slots.get(idx))
            .and_then(Option::as_ref)
    }

    /// The phase of the slot at `pos`: `Start` for holes and out-of-range
    /// positions, `Decided` for positions folded into the checkpoint.
    pub fn phase(&self, pos: Position) -> TxPhase {
        if self.checkpoint.covers(pos) {
            return TxPhase::Decided;
        }
        self.get(pos).map(|e| e.phase).unwrap_or(TxPhase::Start)
    }

    /// The position of transaction `tx`, if it appears in the log — retained
    /// or folded into the checkpoint (the `∃k. t = txn[k]` test of line 6).
    /// O(1) via the tx→position maps.
    pub fn position_of(&self, tx: TxId) -> Option<Position> {
        self.by_tx
            .get(&tx)
            .copied()
            .or_else(|| self.checkpoint.decision_of(tx).map(|(pos, _)| pos))
    }

    /// The final decision of `tx` if its slot has been folded into the
    /// checkpoint. Leaders answer re-PREPAREs of truncated transactions with
    /// this instead of a re-ack.
    pub fn truncated_decision(&self, tx: TxId) -> Option<Decision> {
        self.checkpoint.decision_of(tx).map(|(_, dec)| dec)
    }

    /// The transaction and (optional) decision visible at `pos`, whether the
    /// slot is retained or folded into the checkpoint. Used by the invariant
    /// checkers to compare replicas across different truncation frontiers.
    pub fn slot_identity(&self, pos: Position) -> Option<(TxId, Option<Decision>)> {
        if let Some((tx, dec)) = self.checkpoint.decision_at(pos) {
            return Some((tx, Some(dec)));
        }
        self.get(pos).map(|e| (e.tx, e.dec))
    }

    /// The leader's vote of line 12 for a payload about to occupy `pos`:
    /// `f_s(L1, l) ⊓ g_s(L2, l)` against the slots strictly before `pos`,
    /// answered in O(|payload|) by the certification index.
    ///
    /// Returns `None` when the log maintains no index (callers fall back to
    /// the set-based scans). `pos` must be [`CertificationLog::next`]: the
    /// index summarises every filled slot, which is exactly the prefix before
    /// `next` — votes at interior positions would need a historical snapshot.
    /// Truncation does not affect this method: the index summarised the
    /// truncated entries while they were live.
    pub fn vote_at(&self, pos: Position, payload: &Payload) -> Option<Decision> {
        debug_assert_eq!(
            pos,
            self.next(),
            "vote_at only answers votes at the append position"
        );
        self.index.as_ref().map(|index| index.vote(payload))
    }

    /// Appends a new entry at the leader (lines 9–13): the slot index is the
    /// current `next`.
    pub fn append(&mut self, entry: LogEntry) -> Position {
        let pos = self.next();
        if let Some(index) = self.index.as_mut() {
            Self::index_fill(index, pos, &entry);
        }
        self.by_tx.insert(entry.tx, pos);
        self.slots.push(Some(entry));
        self.advance_frontier();
        pos
    }

    /// Stores an entry at an arbitrary position (line 24 at a follower),
    /// growing the log with holes as needed. Returns `false` if the slot was
    /// already filled (the `phase[k] = start` precondition failed) or has
    /// been folded into the checkpoint (stale message for a decided slot).
    pub fn store_at(&mut self, pos: Position, entry: LogEntry) -> bool {
        let Some(idx) = self.physical(pos) else {
            return false;
        };
        if idx >= self.slots.len() {
            self.holes += idx - self.slots.len();
            self.slots.resize(idx + 1, None);
        } else if self.slots[idx].is_some() {
            return false;
        } else {
            self.holes -= 1;
        }
        if let Some(index) = self.index.as_mut() {
            Self::index_fill(index, pos, &entry);
        }
        self.by_tx.insert(entry.tx, pos);
        self.slots[idx] = Some(entry);
        self.advance_frontier();
        true
    }

    /// Records the final decision for the slot at `pos` (line 32). Deciding a
    /// hole is ignored (the replica has not yet stored the transaction; a
    /// later `NEW_STATE` will supply it), and so is re-deciding an already
    /// decided or truncated slot: decisions are unique per transaction (TCS
    /// specification), so the first decision wins and duplicates from
    /// retrying coordinators are no-ops.
    pub fn decide(&mut self, pos: Position, decision: Decision) {
        let Some(entry) = self
            .physical(pos)
            .and_then(|idx| self.slots.get_mut(idx))
            .and_then(Option::as_mut)
        else {
            return;
        };
        if entry.phase == TxPhase::Decided {
            return;
        }
        entry.dec = Some(decision);
        entry.phase = TxPhase::Decided;
        if let Some(index) = self.index.as_mut() {
            index.release(pos);
            if decision == Decision::Commit {
                index.apply_committed(pos, &entry.payload);
            }
        }
        self.advance_frontier();
    }

    /// Advances the decided frontier over retained, decided slots.
    fn advance_frontier(&mut self) {
        let base = self.checkpoint.base().as_usize();
        loop {
            let idx = self.frontier.as_usize() - base;
            match self.slots.get(idx) {
                Some(Some(entry)) if entry.phase == TxPhase::Decided => {
                    self.frontier = self.frontier.next();
                }
                _ => break,
            }
        }
    }

    /// Folds the fully-decided, hole-free prefix below `pos` into the
    /// checkpoint and frees the physical slots. The truncation point is
    /// clamped to the [`CertificationLog::decided_frontier`], so the call is
    /// always safe: undecided slots and holes are never lost, whatever
    /// (possibly stale) `pos` a peer gossiped. Returns the number of slots
    /// freed.
    pub fn truncate_to(&mut self, pos: Position) -> usize {
        let target = pos.min(self.frontier);
        if target <= self.checkpoint.base() {
            return 0;
        }
        let base = self.checkpoint.base().as_u64();
        let n = (target.as_u64() - base) as usize;
        for (i, slot) in self.slots.drain(..n).enumerate() {
            let entry = slot.expect("the decided frontier never crosses a hole");
            debug_assert_eq!(entry.phase, TxPhase::Decided);
            self.by_tx.remove(&entry.tx);
            let forget = self.acked.remove(&entry.tx);
            self.checkpoint
                .fold(Position::new(base + i as u64), entry, forget);
        }
        self.checkpoint.base = target;
        n
    }

    /// Decision-map compaction: the decision of `tx` has been acknowledged by
    /// its client and coordinator, so no recovery coordinator will ever
    /// re-drive it — its `(tx, position, decision)` record may be dropped.
    /// If the slot is already folded, the checkpoint record is pruned now;
    /// if it is still retained, the transaction is remembered and folded
    /// without a record when truncation reaches it. The per-key newest-writer
    /// residue is kept either way (certification needs it forever).
    ///
    /// Returns `true` if a checkpoint record was pruned immediately.
    ///
    /// After pruning, [`CertificationLog::position_of`] and
    /// [`CertificationLog::truncated_decision`] no longer answer for `tx`: a
    /// leader receiving a `PREPARE` for it would re-certify it as new. The
    /// compaction protocol (see `crate::replica::TruncationConfig`) only acks
    /// once the client has the decision, which is exactly when the TCS
    /// specification guarantees no such `PREPARE` will be sent.
    pub fn ack_decided(&mut self, tx: TxId) -> bool {
        if self.checkpoint.prune(tx) {
            return true;
        }
        if self.by_tx.contains_key(&tx) {
            self.acked.insert(tx);
        }
        false
    }

    /// Number of acknowledged transactions still retained (waiting to be
    /// folded without a record). Bounded by the retained suffix.
    pub fn acked_pending(&self) -> usize {
        self.acked.len()
    }

    /// Iterates over the retained filled slots with their positions.
    pub fn entries(&self) -> impl Iterator<Item = (Position, &LogEntry)> + '_ {
        let base = self.checkpoint.base().as_u64();
        self.slots
            .iter()
            .enumerate()
            .filter_map(move |(i, slot)| slot.as_ref().map(|e| (Position::new(base + i as u64), e)))
    }

    /// The payloads used as `L1` at line 12: payloads of transactions decided
    /// to commit in *retained* slots strictly before `before`.
    ///
    /// This is the set-based reference path — O(|log|) per call. The vote
    /// hot path uses [`CertificationLog::vote_at`] instead; this accessor
    /// remains for the differential tests and for logs without an index.
    /// After truncation it under-approximates `L1` (truncated payloads are
    /// gone — their residue lives in the checkpoint); it is exact only for
    /// untruncated logs.
    pub fn committed_payloads_before(&self, before: Position) -> Vec<&Payload> {
        self.entries()
            .filter(|(pos, e)| {
                *pos < before && e.phase == TxPhase::Decided && e.dec == Some(Decision::Commit)
            })
            .map(|(_, e)| &e.payload)
            .collect()
    }

    /// The payloads used as `L2` at line 12: payloads of transactions prepared
    /// with a commit vote (and not yet decided) in slots strictly before
    /// `before`.
    ///
    /// Set-based reference path; see [`CertificationLog::committed_payloads_before`].
    /// Unlike `L1` this stays exact after truncation: undecided slots are
    /// never truncated.
    pub fn prepared_payloads_before(&self, before: Position) -> Vec<&Payload> {
        self.entries()
            .filter(|(pos, e)| {
                *pos < before && e.phase == TxPhase::Prepared && e.vote == Decision::Commit
            })
            .map(|(_, e)| &e.payload)
            .collect()
    }

    /// Number of holes (retained slots still in the `Start` phase below
    /// `next`), maintained incrementally — O(1).
    pub fn hole_count(&self) -> usize {
        debug_assert_eq!(
            self.holes,
            self.slots.iter().filter(|slot| slot.is_none()).count()
        );
        self.holes
    }

    /// Checks the `≺` relation of Figure 3 against another log: this log's
    /// prefix of length `len` must agree with `other` on every slot where
    /// this log has information (holes are allowed). Checkpoint-aware: a slot
    /// either side has folded is compared by transaction identity and final
    /// decision (payload and vote were validated before folding).
    pub fn is_prefix_with_holes_of(&self, other: &CertificationLog, len: Position) -> bool {
        for (pos, entry) in self.entries() {
            if pos >= len {
                continue;
            }
            match other.get(pos) {
                Some(other_entry) => {
                    if other_entry.tx != entry.tx
                        || other_entry.vote != entry.vote
                        || other_entry.payload != entry.payload
                    {
                        return false;
                    }
                }
                None => match other.checkpoint.decision_at(pos) {
                    Some((tx, dec)) => {
                        if tx != entry.tx || entry.dec.is_some_and(|d| d != dec) {
                            return false;
                        }
                    }
                    // A folded position without a record was compacted away
                    // after full acknowledgement (see `ack_decided`): decided
                    // and agreed, nothing left to compare.
                    None => {
                        if !other.checkpoint.covers(pos) {
                            return false;
                        }
                    }
                },
            }
        }
        for (pos, tx, dec) in self.checkpoint.decisions() {
            if pos >= len {
                continue;
            }
            match other.slot_identity(pos) {
                Some((other_tx, other_dec)) => {
                    if other_tx != tx || other_dec.is_some_and(|d| d != dec) {
                        return false;
                    }
                }
                // Compacted on the other side (see above): compatible.
                None => {
                    if !other.checkpoint.covers(pos) {
                        return false;
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratc_types::{CertificationPolicy, Key, Serializability, Version};

    fn entry(tx: u64) -> LogEntry {
        LogEntry {
            tx: TxId::new(tx),
            payload: Payload::builder()
                .read(Key::new(format!("k{tx}")), Version::new(0))
                .build()
                .expect("well-formed"),
            vote: Decision::Commit,
            dec: None,
            phase: TxPhase::Prepared,
            shards: vec![ShardId::new(0)],
            client: ProcessId::new(99),
        }
    }

    fn indexed_log() -> CertificationLog {
        CertificationLog::with_certifier(Serializability::new().indexed_certifier(ShardId::new(0)))
    }

    #[test]
    fn append_assigns_consecutive_positions() {
        let mut log = CertificationLog::new();
        assert!(log.is_empty());
        assert_eq!(log.append(entry(1)), Position::new(0));
        assert_eq!(log.append(entry(2)), Position::new(1));
        assert_eq!(log.next(), Position::new(2));
        assert_eq!(log.len(), 2);
        assert_eq!(log.position_of(TxId::new(2)), Some(Position::new(1)));
        assert_eq!(log.position_of(TxId::new(9)), None);
        assert_eq!(log.hole_count(), 0);
    }

    #[test]
    fn store_at_creates_holes_and_rejects_overwrites() {
        let mut log = CertificationLog::new();
        assert!(log.store_at(Position::new(2), entry(3)));
        assert_eq!(log.len(), 3);
        assert_eq!(log.hole_count(), 2);
        assert_eq!(log.phase(Position::new(0)), TxPhase::Start);
        assert_eq!(log.phase(Position::new(2)), TxPhase::Prepared);
        // A second store at the same position is rejected (phase != start).
        assert!(!log.store_at(Position::new(2), entry(4)));
        assert_eq!(log.get(Position::new(2)).unwrap().tx, TxId::new(3));
        // Filling an interior hole shrinks the count.
        assert!(log.store_at(Position::new(0), entry(1)));
        assert_eq!(log.hole_count(), 1);
    }

    #[test]
    fn decide_updates_phase_and_ignores_holes() {
        let mut log = CertificationLog::new();
        log.append(entry(1));
        log.decide(Position::new(0), Decision::Abort);
        assert_eq!(log.phase(Position::new(0)), TxPhase::Decided);
        assert_eq!(
            log.get(Position::new(0)).unwrap().dec,
            Some(Decision::Abort)
        );
        // Deciding a hole is a no-op.
        log.decide(Position::new(7), Decision::Commit);
        assert_eq!(log.phase(Position::new(7)), TxPhase::Start);
        // Re-deciding an already decided slot is a no-op (first decision wins).
        log.decide(Position::new(0), Decision::Commit);
        assert_eq!(
            log.get(Position::new(0)).unwrap().dec,
            Some(Decision::Abort)
        );
    }

    #[test]
    fn l1_and_l2_selection() {
        let mut log = CertificationLog::new();
        let committed = log.append(entry(1));
        log.decide(committed, Decision::Commit);
        let aborted = log.append(entry(2));
        log.decide(aborted, Decision::Abort);
        log.append(entry(3)); // prepared with commit vote
        let mut pending_abort = entry(4);
        pending_abort.vote = Decision::Abort;
        log.append(pending_abort);
        let cutoff = log.next();

        assert_eq!(log.committed_payloads_before(cutoff).len(), 1);
        assert_eq!(log.prepared_payloads_before(cutoff).len(), 1);
        // Positions at or after the cutoff are excluded.
        assert!(log.committed_payloads_before(Position::new(0)).is_empty());
    }

    #[test]
    fn prefix_with_holes_relation() {
        let mut leader = CertificationLog::new();
        leader.append(entry(1));
        leader.append(entry(2));
        leader.append(entry(3));

        let mut follower = CertificationLog::new();
        follower.store_at(Position::new(1), entry(2));
        assert!(follower.is_prefix_with_holes_of(&leader, leader.next()));

        // A mismatching entry violates the relation.
        let mut bad = CertificationLog::new();
        bad.store_at(Position::new(1), entry(9));
        assert!(!bad.is_prefix_with_holes_of(&leader, leader.next()));

        // An entry beyond the leader's log violates it too.
        let mut beyond = CertificationLog::new();
        beyond.store_at(Position::new(5), entry(5));
        assert!(!beyond.is_prefix_with_holes_of(&leader, Position::new(10)));
        // ... unless the comparison length excludes it.
        assert!(beyond.is_prefix_with_holes_of(&leader, Position::new(3)));
    }

    /// The indexed vote must match the set-based scans after any mix of
    /// appends, out-of-order decides and hole-filling stores.
    fn assert_vote_matches_scans(log: &CertificationLog, candidate: &Payload) {
        let next = log.next();
        let committed = log.committed_payloads_before(next);
        let prepared = log.prepared_payloads_before(next);
        let reference = Serializability::new()
            .shard_certifier(ShardId::new(0))
            .vote(&committed, &prepared, candidate);
        assert_eq!(log.vote_at(next, candidate), Some(reference));
    }

    fn rw_entry(tx: u64, key: &str, read_version: u64, commit_version: u64) -> LogEntry {
        LogEntry {
            tx: TxId::new(tx),
            payload: Payload::builder()
                .read(Key::new(key), Version::new(read_version))
                .write(Key::new(key), ratc_types::Value::from("v"))
                .commit_version(Version::new(commit_version))
                .build()
                .expect("well-formed"),
            vote: Decision::Commit,
            dec: None,
            phase: TxPhase::Prepared,
            shards: vec![ShardId::new(0)],
            client: ProcessId::new(99),
        }
    }

    #[test]
    fn indexed_vote_tracks_phase_transitions() {
        let mut log = indexed_log();
        let candidate = Payload::builder()
            .read(Key::new("a"), Version::new(0))
            .build()
            .expect("well-formed");

        // Empty log: commit.
        assert_eq!(log.vote_at(log.next(), &candidate), Some(Decision::Commit));

        // Prepared writer of "a" write-locks it.
        let pos_a = log.append(rw_entry(1, "a", 0, 5));
        assert_eq!(log.vote_at(log.next(), &candidate), Some(Decision::Abort));
        assert_vote_matches_scans(&log, &candidate);

        // Decided commit: lock released, but the read version 0 is now stale.
        log.decide(pos_a, Decision::Commit);
        assert_eq!(log.vote_at(log.next(), &candidate), Some(Decision::Abort));
        assert_vote_matches_scans(&log, &candidate);

        // A fresh reader of the committed version passes.
        let fresh = Payload::builder()
            .read(Key::new("a"), Version::new(5))
            .build()
            .expect("well-formed");
        assert_eq!(log.vote_at(log.next(), &fresh), Some(Decision::Commit));
        assert_vote_matches_scans(&log, &fresh);
    }

    #[test]
    fn indexed_vote_handles_abort_decides_and_holes() {
        let mut log = indexed_log();
        let candidate = Payload::builder()
            .read(Key::new("b"), Version::new(0))
            .build()
            .expect("well-formed");

        // Store out of order, leaving a hole at 0.
        assert!(log.store_at(Position::new(1), rw_entry(2, "b", 0, 3)));
        assert_eq!(log.vote_at(log.next(), &candidate), Some(Decision::Abort));
        assert_vote_matches_scans(&log, &candidate);

        // An abort decision releases the lock without committing anything.
        log.decide(Position::new(1), Decision::Abort);
        assert_eq!(log.vote_at(log.next(), &candidate), Some(Decision::Commit));
        assert_vote_matches_scans(&log, &candidate);

        // Deciding the hole at 0 stays a no-op for the index too.
        log.decide(Position::new(0), Decision::Commit);
        assert_eq!(log.vote_at(log.next(), &candidate), Some(Decision::Commit));
        assert_vote_matches_scans(&log, &candidate);
    }

    #[test]
    fn set_certifier_rebuilds_from_slots() {
        // Build un-indexed, then install the index and check it agrees.
        let mut log = CertificationLog::new();
        let p0 = log.append(rw_entry(1, "x", 0, 4));
        log.decide(p0, Decision::Commit);
        log.append(rw_entry(2, "y", 0, 6));
        assert!(!log.has_index());
        log.set_certifier(Serializability::new().indexed_certifier(ShardId::new(0)));
        assert!(log.has_index());
        for key in ["x", "y", "z"] {
            let candidate = Payload::builder()
                .read(Key::new(key), Version::new(0))
                .build()
                .expect("well-formed");
            assert_vote_matches_scans(&log, &candidate);
        }
    }

    #[test]
    fn clone_preserves_index_state() {
        let mut log = indexed_log();
        log.append(rw_entry(1, "x", 0, 4));
        let cloned = log.clone();
        let candidate = Payload::builder()
            .read(Key::new("x"), Version::new(0))
            .build()
            .expect("well-formed");
        assert_eq!(
            cloned.vote_at(cloned.next(), &candidate),
            Some(Decision::Abort)
        );
        // Logs compare by checkpoint + slots; derived caches do not participate.
        assert_eq!(log, cloned);
        assert_eq!(log, {
            let mut plain = CertificationLog::new();
            plain.append(rw_entry(1, "x", 0, 4));
            plain
        });
    }

    #[test]
    fn unindexed_vote_at_returns_none() {
        let log = CertificationLog::new();
        let candidate = Payload::empty();
        assert_eq!(log.vote_at(log.next(), &candidate), None);
    }

    // -- checkpointed truncation ---------------------------------------------

    #[test]
    fn decided_frontier_tracks_holes_and_decides() {
        let mut log = CertificationLog::new();
        assert_eq!(log.decided_frontier(), Position::ZERO);
        let p0 = log.append(entry(1));
        let p1 = log.append(entry(2));
        assert_eq!(log.decided_frontier(), Position::ZERO);
        // Deciding out of order does not advance past the undecided slot.
        log.decide(p1, Decision::Commit);
        assert_eq!(log.decided_frontier(), Position::ZERO);
        log.decide(p0, Decision::Abort);
        assert_eq!(log.decided_frontier(), Position::new(2));
        // A hole blocks the frontier even after later slots are decided.
        log.store_at(Position::new(3), entry(4));
        log.decide(Position::new(3), Decision::Commit);
        assert_eq!(log.decided_frontier(), Position::new(2));
        log.store_at(Position::new(2), entry(3));
        assert_eq!(log.decided_frontier(), Position::new(2));
        log.decide(Position::new(2), Decision::Commit);
        assert_eq!(log.decided_frontier(), Position::new(4));
    }

    #[test]
    fn truncate_folds_decided_prefix_and_frees_slots() {
        let mut log = indexed_log();
        let p0 = log.append(rw_entry(1, "x", 0, 4));
        let p1 = log.append(rw_entry(2, "y", 0, 6));
        let p2 = log.append(rw_entry(3, "z", 0, 8));
        log.decide(p0, Decision::Commit);
        log.decide(p1, Decision::Abort);

        // Only the decided prefix [0, 2) can be folded, whatever is asked.
        assert_eq!(log.truncate_to(Position::new(99)), 2);
        assert_eq!(log.base(), Position::new(2));
        assert_eq!(log.len(), 1);
        assert_eq!(log.next(), Position::new(3));

        // Physical slots are gone; phases and identities survive.
        assert_eq!(log.get(p0), None);
        assert_eq!(log.phase(p0), TxPhase::Decided);
        assert_eq!(log.phase(p1), TxPhase::Decided);
        assert_eq!(log.get(p2).unwrap().tx, TxId::new(3));
        assert_eq!(
            log.slot_identity(p0),
            Some((TxId::new(1), Some(Decision::Commit)))
        );
        assert_eq!(
            log.slot_identity(p1),
            Some((TxId::new(2), Some(Decision::Abort)))
        );

        // position_of and the truncated decision are answered from the
        // checkpoint (satellite regression: O(1) map survives truncation).
        assert_eq!(log.position_of(TxId::new(1)), Some(p0));
        assert_eq!(log.position_of(TxId::new(2)), Some(p1));
        assert_eq!(log.position_of(TxId::new(3)), Some(p2));
        assert_eq!(log.truncated_decision(TxId::new(1)), Some(Decision::Commit));
        assert_eq!(log.truncated_decision(TxId::new(2)), Some(Decision::Abort));
        assert_eq!(log.truncated_decision(TxId::new(3)), None);

        // Stale messages for the truncated prefix are no-ops.
        assert!(!log.store_at(p0, rw_entry(9, "q", 0, 1)));
        log.decide(p1, Decision::Commit); // first decision (abort) wins
        assert_eq!(
            log.slot_identity(p1),
            Some((TxId::new(2), Some(Decision::Abort)))
        );

        // Votes are unaffected: the committed writer of "x" is still seen.
        let stale = Payload::builder()
            .read(Key::new("x"), Version::new(0))
            .build()
            .expect("well-formed");
        assert_eq!(log.vote_at(log.next(), &stale), Some(Decision::Abort));
        // "y" was aborted: reading version 0 of it is fine, but "z" is still
        // write-locked by the prepared transaction at p2.
        let fine = Payload::builder()
            .read(Key::new("y"), Version::new(0))
            .build()
            .expect("well-formed");
        assert_eq!(log.vote_at(log.next(), &fine), Some(Decision::Commit));

        // A second truncation with nothing new decided is a no-op.
        assert_eq!(log.truncate_to(Position::new(99)), 0);
    }

    #[test]
    fn truncate_never_crosses_holes_or_undecided_slots() {
        let mut log = indexed_log();
        let p0 = log.append(rw_entry(1, "a", 0, 2));
        log.decide(p0, Decision::Commit);
        log.store_at(Position::new(2), rw_entry(3, "c", 0, 3));
        log.decide(Position::new(2), Decision::Commit);
        // Hole at 1: only [0, 1) is truncatable.
        assert_eq!(log.truncate_to(Position::new(3)), 1);
        assert_eq!(log.base(), Position::new(1));
        assert_eq!(log.hole_count(), 1);
        // Fill and decide the hole; now the rest can go.
        assert!(log.store_at(Position::new(1), rw_entry(2, "b", 0, 4)));
        log.decide(Position::new(1), Decision::Abort);
        assert_eq!(log.truncate_to(Position::new(3)), 2);
        assert_eq!(log.base(), Position::new(3));
        assert_eq!(log.len(), 0);
        assert_eq!(log.next(), Position::new(3));
        assert_eq!(log.checkpoint().decided_count(), 3);
    }

    #[test]
    fn set_certifier_rebuilds_from_checkpoint_and_suffix() {
        // A truncated log whose index is rebuilt from scratch must vote like a
        // log that never truncated.
        let mut full = indexed_log();
        let mut truncated = indexed_log();
        for (i, key) in ["x", "y", "z"].iter().enumerate() {
            let e = rw_entry(i as u64 + 1, key, 0, 4 + i as u64);
            let p_full = full.append(e.clone());
            let p_trunc = truncated.append(e);
            full.decide(p_full, Decision::Commit);
            truncated.decide(p_trunc, Decision::Commit);
        }
        full.append(rw_entry(4, "w", 0, 9));
        truncated.append(rw_entry(4, "w", 0, 9));
        truncated.truncate_to(Position::new(3));
        assert_eq!(truncated.len(), 1);

        // Rebuild the truncated log's index from checkpoint + suffix.
        truncated.set_certifier(Serializability::new().indexed_certifier(ShardId::new(0)));
        for key in ["x", "y", "z", "w", "cold"] {
            for version in [0, 4, 5, 6] {
                let candidate = Payload::builder()
                    .read(Key::new(key), Version::new(version))
                    .build()
                    .expect("well-formed");
                assert_eq!(
                    truncated.vote_at(truncated.next(), &candidate),
                    full.vote_at(full.next(), &candidate),
                    "diverged for {key}@{version}"
                );
            }
        }
    }

    #[test]
    fn prefix_with_holes_is_checkpoint_aware() {
        // Leader decides and truncates; a follower that still retains the
        // prefix must remain a prefix-with-holes of it, and vice versa.
        let mut leader = CertificationLog::new();
        let mut follower = CertificationLog::new();
        for i in 1..=3u64 {
            let e = entry(i);
            let pos = leader.append(e.clone());
            follower.store_at(pos, e);
        }
        for i in 0..3u64 {
            leader.decide(Position::new(i), Decision::Commit);
        }
        leader.truncate_to(Position::new(2));
        assert!(follower.is_prefix_with_holes_of(&leader, leader.next()));

        // Follower learns the decisions and truncates further than nothing —
        // both directions hold across different frontiers.
        for i in 0..3u64 {
            follower.decide(Position::new(i), Decision::Commit);
        }
        follower.truncate_to(Position::new(3));
        assert!(follower.is_prefix_with_holes_of(&leader, leader.next()));
        assert!(leader.is_prefix_with_holes_of(&follower, leader.next()));

        // A diverging retained entry under the leader's checkpoint is caught.
        let mut bad = CertificationLog::new();
        bad.store_at(Position::new(0), entry(9));
        assert!(!bad.is_prefix_with_holes_of(&leader, leader.next()));
    }

    #[test]
    fn ack_decided_prunes_folded_records_and_keeps_the_residue() {
        let mut log = indexed_log();
        let p0 = log.append(rw_entry(1, "x", 0, 4));
        let p1 = log.append(rw_entry(2, "y", 0, 6));
        log.decide(p0, Decision::Commit);
        log.decide(p1, Decision::Commit);
        log.truncate_to(Position::new(2));
        assert_eq!(log.checkpoint().decided_count(), 2);

        // Ack after the fold: the record is pruned immediately.
        assert!(log.ack_decided(TxId::new(1)));
        assert_eq!(log.checkpoint().decided_count(), 1);
        assert_eq!(log.position_of(TxId::new(1)), None);
        assert_eq!(log.truncated_decision(TxId::new(1)), None);
        // The unacked record and the base are untouched.
        assert_eq!(log.truncated_decision(TxId::new(2)), Some(Decision::Commit));
        assert_eq!(log.base(), Position::new(2));
        // Pruned positions still count as covered: stale messages stay no-ops.
        assert_eq!(log.phase(p0), TxPhase::Decided);
        assert!(!log.store_at(p0, rw_entry(9, "q", 0, 1)));
        // The newest-writer residue survives: a stale read of "x" still aborts.
        let stale = Payload::builder()
            .read(Key::new("x"), Version::new(0))
            .build()
            .expect("well-formed");
        assert_eq!(log.vote_at(log.next(), &stale), Some(Decision::Abort));
        // Duplicate acks are idempotent.
        assert!(!log.ack_decided(TxId::new(1)));
    }

    #[test]
    fn ack_decided_before_truncation_folds_without_a_record() {
        let mut log = indexed_log();
        let p0 = log.append(rw_entry(1, "x", 0, 4));
        let p1 = log.append(rw_entry(2, "y", 0, 6));
        log.decide(p0, Decision::Commit);
        log.decide(p1, Decision::Commit);
        // Ack while the slots are still retained: remembered, not yet pruned.
        assert!(!log.ack_decided(TxId::new(1)));
        assert_eq!(log.acked_pending(), 1);
        // Unknown transactions are ignored entirely.
        assert!(!log.ack_decided(TxId::new(77)));
        assert_eq!(log.acked_pending(), 1);

        log.truncate_to(Position::new(2));
        // The acked slot was folded without a record, the other with one.
        assert_eq!(log.acked_pending(), 0);
        assert_eq!(log.checkpoint().decided_count(), 1);
        assert_eq!(log.truncated_decision(TxId::new(1)), None);
        assert_eq!(log.truncated_decision(TxId::new(2)), Some(Decision::Commit));
        // Residue is intact either way.
        let stale = Payload::builder()
            .read(Key::new("x"), Version::new(0))
            .build()
            .expect("well-formed");
        assert_eq!(log.vote_at(log.next(), &stale), Some(Decision::Abort));
    }

    #[test]
    fn prefix_with_holes_tolerates_compacted_records() {
        let mut full = CertificationLog::new();
        let mut compacted = CertificationLog::new();
        for i in 1..=3u64 {
            let e = entry(i);
            full.append(e.clone());
            compacted.append(e);
        }
        for i in 0..3u64 {
            full.decide(Position::new(i), Decision::Commit);
            compacted.decide(Position::new(i), Decision::Commit);
        }
        full.truncate_to(Position::new(2));
        compacted.truncate_to(Position::new(2));
        compacted.ack_decided(TxId::new(1));
        // A pruned record on either side compares as compatible (it was
        // decided and fully acknowledged), in both directions.
        assert!(full.is_prefix_with_holes_of(&compacted, full.next()));
        assert!(compacted.is_prefix_with_holes_of(&full, full.next()));
    }

    #[test]
    fn equality_distinguishes_checkpoints() {
        let mut a = CertificationLog::new();
        let mut b = CertificationLog::new();
        for i in 1..=2u64 {
            let e = entry(i);
            a.append(e.clone());
            b.append(e);
        }
        a.decide(Position::new(0), Decision::Commit);
        b.decide(Position::new(0), Decision::Commit);
        assert_eq!(a, b);
        a.truncate_to(Position::new(1));
        // Same logical history, different physical state: not equal (the
        // checkpoint is paper-visible state after truncation).
        assert_ne!(a, b);
        b.truncate_to(Position::new(1));
        assert_eq!(a, b);
    }
}
