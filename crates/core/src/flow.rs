//! Cluster-wide flow control: admission windows and retry backoff.
//!
//! PR 6's threaded backend surfaced a congestive collapse the simulator's
//! free-in-virtual-time retries had been masking: under a 2000-deep open-loop
//! flood, the unbatched 2PC-over-Paxos baseline's fixed-interval retry tick
//! re-drove *every* pending transaction every 20 ms, the shard leaders
//! re-reported a vote per duplicate PREPARE, and the Paxos proposers re-sent
//! Accepts for every pending slot — so once handling the backlog took longer
//! than one tick, each tick added more work than the cluster could absorb and
//! goodput collapsed (`BENCH_6.json`, `undecided` column). This module is the
//! fix, applied uniformly across the three stacks:
//!
//! * **Admission control** — a bounded in-flight window per coordinator/TM
//!   with a FIFO [`AdmissionQueue`]: open-loop floods queue at the edge (a
//!   queued transaction costs nothing but memory) instead of melting the
//!   certification pipeline. Admission happens the moment an in-flight
//!   transaction decides, so a window-sized pipeline stays full.
//! * **Retry backoff** — retries and Paxos retransmissions follow a seeded,
//!   deterministic exponential schedule with jitter
//!   ([`ratc_sim::backoff::BackoffPolicy`]) instead of the fixed interval,
//!   and a retry *supersedes* the previous attempt instead of stacking on
//!   top of it. Existing fruitless-tick caps are preserved, so
//!   `run_to_quiescence` still terminates when a shard is permanently down.
//!
//! Flow control is **on by default** — it is a bugfix, and the collapse
//! configuration must complete — with [`FlowControlConfig::legacy`] keeping
//! the pre-fix behaviour reachable for the regression tests that pin the
//! collapse itself.

use std::collections::{BTreeSet, VecDeque};

use ratc_sim::backoff::BackoffPolicy;
use ratc_types::TxId;

/// Flow-control knobs, surfaced on every harness via `ClusterSpec`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowControlConfig {
    /// Whether the layer is active. Disabled reproduces the pre-fix
    /// behaviour: unbounded admission and fixed-interval full-pending
    /// retries (kept for the collapse regression tests).
    pub enabled: bool,
    /// Maximum transactions a coordinator/TM keeps in flight; further
    /// submissions wait in its FIFO admission queue. 0 means unbounded.
    pub window: usize,
    /// Backoff schedule for certify-retries and Paxos retransmissions.
    pub backoff: BackoffPolicy,
}

impl Default for FlowControlConfig {
    /// Flow control on: window 64, 20 ms → 320 ms exponential backoff with
    /// ±25% jitter.
    fn default() -> Self {
        FlowControlConfig {
            enabled: true,
            window: 64,
            backoff: BackoffPolicy::exponential(),
        }
    }
}

impl FlowControlConfig {
    /// The pre-fix behaviour: no admission window, fixed-interval retries.
    /// Exists so the collapse stays reproducible (regression tests, E10's
    /// "before" curve); never the default.
    pub fn legacy() -> Self {
        FlowControlConfig {
            enabled: false,
            window: 0,
            backoff: BackoffPolicy::fixed(ratc_sim::SimDuration::from_millis(20)),
        }
    }

    /// Returns a copy with the given in-flight window (0 = unbounded).
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window;
        self
    }

    /// Returns a copy with the given backoff schedule.
    pub fn with_backoff(mut self, backoff: BackoffPolicy) -> Self {
        self.backoff = backoff;
        self
    }

    /// `true` if a coordinator already holding `in_flight` undecided
    /// transactions may start another one.
    pub fn admits(&self, in_flight: usize) -> bool {
        !self.enabled || self.window == 0 || in_flight < self.window
    }
}

/// FIFO queue of transactions waiting for an admission-window slot.
///
/// Holds whatever the stack needs to start the transaction later (payload and
/// client, typically). Deduplicated by transaction: re-submitting a queued
/// transaction replaces its queued entry instead of queueing a second copy —
/// the queue-side half of "a retry supersedes, it does not stack".
/// A side index of queued transaction ids keeps the hot-path operations off
/// the queue scan: the common cases — `enqueue` of a new transaction,
/// `remove` of a transaction that is *not* queued (called once per decision)
/// and `contains` — are O(log n); only superseding or removing a transaction
/// that really is queued (a client retry racing admission) pays the linear
/// walk. Without the index the per-decision `remove` made a deep open-loop
/// run quadratic in the flood depth.
#[derive(Debug, Clone, Default)]
pub struct AdmissionQueue<T> {
    queue: VecDeque<(TxId, T)>,
    queued: BTreeSet<TxId>,
}

impl<T> AdmissionQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        AdmissionQueue {
            queue: VecDeque::new(),
            queued: BTreeSet::new(),
        }
    }

    /// Enqueues `tx`, replacing any queued entry for the same transaction.
    pub fn enqueue(&mut self, tx: TxId, item: T) {
        if self.queued.insert(tx) {
            self.queue.push_back((tx, item));
        } else {
            let slot = self
                .queue
                .iter_mut()
                .find(|(t, _)| *t == tx)
                .expect("queued index out of sync");
            slot.1 = item;
        }
    }

    /// Dequeues the oldest waiting transaction.
    pub fn pop(&mut self) -> Option<(TxId, T)> {
        let entry = self.queue.pop_front();
        if let Some((tx, _)) = &entry {
            self.queued.remove(tx);
        }
        entry
    }

    /// Whether `tx` is waiting in the queue.
    pub fn contains(&self, tx: TxId) -> bool {
        self.queued.contains(&tx)
    }

    /// Removes a queued entry for `tx` (e.g. the transaction was decided by
    /// another path while it waited).
    pub fn remove(&mut self, tx: TxId) {
        if self.queued.remove(&tx) {
            self.queue.retain(|(t, _)| *t != tx);
        }
    }

    /// Transactions currently waiting.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Drops every queued entry (coordinator crash: volatile state is lost,
    /// clients re-drive).
    pub fn clear(&mut self) {
        self.queue.clear();
        self.queued.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_enabled_and_legacy_is_not() {
        let flow = FlowControlConfig::default();
        assert!(flow.enabled);
        assert!(flow.window > 0);
        assert!(flow.admits(flow.window - 1));
        assert!(!flow.admits(flow.window));
        let legacy = FlowControlConfig::legacy();
        assert!(!legacy.enabled);
        assert!(legacy.admits(usize::MAX - 1), "legacy never queues");
        assert_eq!(legacy.backoff.multiplier, 1, "legacy retries are fixed");
    }

    #[test]
    fn unbounded_window_always_admits() {
        let flow = FlowControlConfig::default().with_window(0);
        assert!(flow.admits(1_000_000));
    }

    #[test]
    fn admission_queue_is_fifo_and_supersedes_duplicates() {
        let mut q: AdmissionQueue<&'static str> = AdmissionQueue::new();
        assert!(q.is_empty());
        q.enqueue(TxId::new(1), "a");
        q.enqueue(TxId::new(2), "b");
        q.enqueue(TxId::new(1), "a2");
        assert_eq!(q.len(), 2, "re-submission superseded, not stacked");
        assert!(q.contains(TxId::new(1)));
        assert_eq!(q.pop(), Some((TxId::new(1), "a2")));
        q.remove(TxId::new(2));
        assert!(q.pop().is_none());
        q.enqueue(TxId::new(3), "c");
        q.clear();
        assert!(q.is_empty());
    }
}
