//! White-box invariant checkers (Figure 3 of the paper).
//!
//! These functions evaluate the paper's key invariants over live replica
//! state. They are necessarily *snapshot* checks — they compare the current
//! states of replicas rather than full message histories — but they cover the
//! properties the correctness proof actually relies on:
//!
//! * **Invariant 1 (follower prefix)** — a follower's certification log is a
//!   prefix-with-holes of its leader's log for the same epoch;
//! * **Invariant 4a (per-slot agreement)** — all replicas of a shard that have
//!   a decision for the same certification-order position agree on it;
//! * **Invariant 4b (per-transaction agreement)** — checked at the history
//!   level by `ratc-spec` (contradictory client decisions);
//! * **vote/payload agreement** — replicas of a shard that store the same
//!   position agree on the transaction, payload and vote;
//! * **single leader per epoch** — at most one replica of a shard considers
//!   itself leader of any given epoch.
//!
//! The experiment drivers call [`check_cluster`] between simulation steps and
//! at the end of every run; any violation is reported with enough context to
//! reproduce it (the checks are deterministic given the simulation seed).

use std::collections::BTreeMap;

use ratc_types::{Epoch, Position, ProcessId, ShardId};

use crate::harness::Cluster;
use crate::replica::{Replica, Status};

/// A violation of one of the checked invariants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Which invariant was violated.
    pub invariant: &'static str,
    /// Human-readable details.
    pub details: String,
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.invariant, self.details)
    }
}

/// Checks all supported invariants over every shard of the cluster, returning
/// every violation found (empty = all invariants hold).
pub fn check_cluster(cluster: &Cluster) -> Vec<InvariantViolation> {
    let mut violations = Vec::new();
    for shard in cluster.shards() {
        // Collect the live replicas of this shard (initial members and spares:
        // spares may have joined a later configuration).
        let mut replicas: Vec<(ProcessId, &Replica)> = Vec::new();
        for pid in cluster
            .initial_members(shard)
            .iter()
            .chain(cluster.spares(shard).iter())
        {
            if cluster.world.is_crashed(*pid) {
                continue;
            }
            let replica = cluster.replica(*pid);
            replicas.push((*pid, replica));
        }
        violations.extend(check_shard(shard, &replicas));
    }
    violations
}

/// Checks the invariants over the replicas of one shard.
pub fn check_shard(shard: ShardId, replicas: &[(ProcessId, &Replica)]) -> Vec<InvariantViolation> {
    let mut violations = Vec::new();
    violations.extend(check_single_leader_per_epoch(shard, replicas));
    violations.extend(check_follower_prefix(shard, replicas));
    violations.extend(check_slot_agreement(shard, replicas));
    violations
}

/// At most one live replica of a shard believes it is the leader of any given
/// epoch.
fn check_single_leader_per_epoch(
    shard: ShardId,
    replicas: &[(ProcessId, &Replica)],
) -> Vec<InvariantViolation> {
    let mut leaders_per_epoch: BTreeMap<Epoch, Vec<ProcessId>> = BTreeMap::new();
    for (pid, replica) in replicas {
        if replica.status() == Status::Leader {
            leaders_per_epoch
                .entry(replica.epoch_of(shard))
                .or_default()
                .push(*pid);
        }
    }
    leaders_per_epoch
        .into_iter()
        .filter(|(_, leaders)| leaders.len() > 1)
        .map(|(epoch, leaders)| InvariantViolation {
            invariant: "single-leader-per-epoch",
            details: format!("shard {shard} epoch {epoch} has multiple leaders: {leaders:?}"),
        })
        .collect()
}

/// Invariant 1: every follower's log is a prefix-with-holes of its current
/// leader's log (compared at the follower's epoch, only when both replicas are
/// currently in the same epoch).
fn check_follower_prefix(
    shard: ShardId,
    replicas: &[(ProcessId, &Replica)],
) -> Vec<InvariantViolation> {
    let mut violations = Vec::new();
    for (leader_pid, leader) in replicas {
        if leader.status() != Status::Leader {
            continue;
        }
        let leader_epoch = leader.epoch_of(shard);
        for (follower_pid, follower) in replicas {
            if follower_pid == leader_pid || follower.status() != Status::Follower {
                continue;
            }
            if follower.epoch_of(shard) != leader_epoch {
                continue;
            }
            let len = leader.log().next();
            if !follower.log().is_prefix_with_holes_of(leader.log(), len) {
                violations.push(InvariantViolation {
                    invariant: "follower-prefix (Invariant 1)",
                    details: format!(
                        "shard {shard} epoch {leader_epoch}: follower {follower_pid} log is not a prefix-with-holes of leader {leader_pid}"
                    ),
                });
            }
        }
    }
    violations
}

/// Invariant 4a + vote agreement: replicas of the same shard that have filled
/// the same certification-order slot agree on the transaction, vote, payload
/// and (if present) decision at that slot. Checkpoint-aware: a replica that
/// truncated a slot still exposes its transaction identity and final decision
/// through the checkpoint, and those must agree with every peer's view of the
/// slot (retained or truncated).
fn check_slot_agreement(
    shard: ShardId,
    replicas: &[(ProcessId, &Replica)],
) -> Vec<InvariantViolation> {
    let mut violations = Vec::new();
    // Only compare replicas in the *same epoch*: across epochs, slots of
    // not-fully-accepted transactions may legitimately differ (the paper's
    // "losing undecided transactions" behaviour).
    let mut by_epoch: BTreeMap<Epoch, Vec<(ProcessId, &Replica)>> = BTreeMap::new();
    for (pid, replica) in replicas {
        by_epoch
            .entry(replica.epoch_of(shard))
            .or_default()
            .push((*pid, replica));
    }
    for (epoch, group) in by_epoch {
        let max_len = group
            .iter()
            .map(|(_, r)| r.log().next().as_u64())
            .max()
            .unwrap_or(0);
        for slot in 0..max_len {
            let pos = Position::new(slot);
            // Full comparison between retained entries (payload and vote).
            let mut seen: Option<(ProcessId, &crate::log::LogEntry)> = None;
            // Identity comparison across retained and truncated views.
            let mut seen_id: Option<(ProcessId, ratc_types::TxId)> = None;
            let mut seen_dec: Option<(ProcessId, ratc_types::Decision)> = None;
            for (pid, replica) in &group {
                if let Some(entry) = replica.log().get(pos) {
                    match seen {
                        None => seen = Some((*pid, entry)),
                        Some((first_pid, first)) => {
                            if first.tx != entry.tx
                                || first.vote != entry.vote
                                || first.payload != entry.payload
                            {
                                violations.push(InvariantViolation {
                                    invariant: "slot-agreement (Invariants 1/2/6)",
                                    details: format!(
                                        "shard {shard} epoch {epoch} slot {pos}: {first_pid} and {pid} disagree ({:?}/{:?} vs {:?}/{:?})",
                                        first.tx, first.vote, entry.tx, entry.vote
                                    ),
                                });
                            }
                        }
                    }
                }
                let Some((tx, dec)) = replica.log().slot_identity(pos) else {
                    continue;
                };
                match seen_id {
                    None => seen_id = Some((*pid, tx)),
                    Some((first_pid, first_tx)) => {
                        if first_tx != tx {
                            violations.push(InvariantViolation {
                                invariant: "slot-agreement (Invariants 1/2/6)",
                                details: format!(
                                    "shard {shard} epoch {epoch} slot {pos}: {first_pid} stored {first_tx} but {pid} stored {tx} (checkpoint-aware)"
                                ),
                            });
                        }
                    }
                }
                if let Some(dec) = dec {
                    match seen_dec {
                        None => seen_dec = Some((*pid, dec)),
                        Some((first_pid, first_dec)) => {
                            if first_dec != dec {
                                violations.push(InvariantViolation {
                                    invariant: "decision-agreement (Invariant 4a)",
                                    details: format!(
                                        "shard {shard} epoch {epoch} slot {pos}: {first_pid} decided {first_dec} but {pid} decided {dec}"
                                    ),
                                });
                            }
                        }
                    }
                }
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{Cluster, ClusterConfig};
    use ratc_types::{Key, Payload, TxId, Value, Version};

    fn rw_payload(key: &str) -> Payload {
        Payload::builder()
            .read(Key::new(key), Version::new(0))
            .write(Key::new(key), Value::from("v"))
            .commit_version(Version::new(1))
            .build()
            .expect("well-formed")
    }

    #[test]
    fn invariants_hold_on_a_failure_free_run() {
        let mut cluster = Cluster::new(ClusterConfig::default().with_shards(3).with_seed(1));
        for i in 0..30 {
            cluster.submit(TxId::new(i), rw_payload(&format!("k{i}")));
        }
        cluster.run_to_quiescence();
        let violations = check_cluster(&cluster);
        assert!(violations.is_empty(), "violations: {violations:?}");
    }

    #[test]
    fn invariants_hold_across_a_reconfiguration() {
        let mut cluster = Cluster::new(ClusterConfig::default().with_seed(2));
        for i in 0..10 {
            cluster.submit(TxId::new(i), rw_payload(&format!("k{i}")));
        }
        cluster.run_to_quiescence();

        let shard = ShardId::new(0);
        let leader = cluster.current_leader(shard);
        let follower = *cluster
            .initial_members(shard)
            .iter()
            .find(|p| **p != leader)
            .expect("follower");
        cluster.crash(follower);
        cluster.start_reconfiguration(shard, leader, vec![follower]);
        cluster.run_to_quiescence();

        for i in 10..20 {
            cluster.submit(TxId::new(i), rw_payload(&format!("k{i}")));
        }
        cluster.run_to_quiescence();

        let violations = check_cluster(&cluster);
        assert!(violations.is_empty(), "violations: {violations:?}");
    }

    #[test]
    fn violation_display_is_informative() {
        let v = InvariantViolation {
            invariant: "single-leader-per-epoch",
            details: "example".to_owned(),
        };
        assert!(v.to_string().contains("single-leader-per-epoch"));
    }
}
