//! The configuration-service actor.
//!
//! The paper models the configuration service (CS) as a reliable process
//! storing every shard's sequence of configurations and answering
//! `get_last`, `get` and `compare_and_swap` (§3). After a successful
//! compare-and-swap it pushes `CONFIG_CHANGE` notifications to the members of
//! the *other* shards (line 67). This actor wraps the pure
//! [`ShardConfigRegistry`] from `ratc-config` behind the protocol's message
//! vocabulary.

use ratc_config::{ShardConfigRegistry, ShardConfiguration};
use ratc_sim::{Actor, Context};
use ratc_types::{ProcessId, ShardId};

use crate::messages::Msg;

/// The configuration-service actor of the message-passing protocol.
pub struct ConfigServiceActor {
    registry: ShardConfigRegistry,
}

impl ConfigServiceActor {
    /// Creates a configuration service initialised with each shard's first
    /// configuration.
    pub fn new<I>(initial: I) -> Self
    where
        I: IntoIterator<Item = (ShardId, ShardConfiguration)>,
    {
        ConfigServiceActor {
            registry: ShardConfigRegistry::new(initial),
        }
    }

    /// Read access to the stored registry (used by tests and harnesses to look
    /// up current leaders).
    pub fn registry(&self) -> &ShardConfigRegistry {
        &self.registry
    }
}

impl Actor<Msg> for ConfigServiceActor {
    fn on_message(&mut self, from: ProcessId, msg: Msg, ctx: &mut Context<'_, Msg>) {
        match msg {
            Msg::CsGetLast { shard } => {
                if let Some(config) = self.registry.get_last(shard) {
                    ctx.send(
                        from,
                        Msg::CsGetLastReply {
                            shard,
                            config: config.clone(),
                        },
                    );
                }
            }
            Msg::CsGet { shard, epoch } => {
                let config = self.registry.get(shard, epoch).cloned();
                ctx.send(
                    from,
                    Msg::CsGetReply {
                        shard,
                        epoch,
                        config,
                    },
                );
            }
            Msg::CsCas {
                shard,
                expected,
                config,
            } => {
                let ok = self
                    .registry
                    .compare_and_swap(shard, expected, config.clone())
                    .is_ok();
                ctx.send(
                    from,
                    Msg::CsCasReply {
                        shard,
                        ok,
                        config: config.clone(),
                    },
                );
                if ok {
                    // Line 67: notify the members of the other shards.
                    let others = self.registry.other_shard_members(shard);
                    ctx.send_to_many(
                        others,
                        Msg::ConfigChange {
                            shard,
                            epoch: config.epoch,
                            members: config.members.clone(),
                            leader: config.leader,
                        },
                    );
                }
            }
            // Explicit no-ops: the CS answers only its own vocabulary
            // (`CsGetLast`/`CsGet`/`CsCas`); commit-protocol and
            // reconfiguration traffic is never addressed to it, and the
            // reply/notification variants below are messages *it* sends.
            Msg::Certify { .. }
            | Msg::Prepare { .. }
            | Msg::PrepareAck { .. }
            | Msg::Accept { .. }
            | Msg::AcceptAck { .. }
            | Msg::DecisionShard { .. }
            | Msg::DecisionClient { .. }
            | Msg::Retry { .. }
            | Msg::DecisionAck { .. }
            | Msg::AckDecided { .. }
            | Msg::TxDecided { .. }
            | Msg::PrepareBatch { .. }
            | Msg::PrepareAckBatch { .. }
            | Msg::AcceptBatch { .. }
            | Msg::AcceptAckBatch { .. }
            | Msg::DecisionBatch { .. }
            | Msg::StartReconfigure { .. }
            | Msg::Probe { .. }
            | Msg::ProbeAck { .. }
            | Msg::NewConfig { .. }
            | Msg::NewState { .. }
            | Msg::ConfigChange { .. }
            | Msg::CsGetLastReply { .. }
            | Msg::CsGetReply { .. }
            | Msg::CsCasReply { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratc_sim::{SimConfig, World};
    use ratc_types::Epoch;

    /// A probe actor that records every message it receives.
    #[derive(Default)]
    struct Probe {
        received: Vec<Msg>,
    }

    impl Actor<Msg> for Probe {
        fn on_message(&mut self, _from: ProcessId, msg: Msg, _ctx: &mut Context<'_, Msg>) {
            self.received.push(msg);
        }
    }

    fn pid(raw: u64) -> ProcessId {
        ProcessId::new(raw)
    }

    #[test]
    fn get_last_get_and_cas_round_trip() {
        let mut world: World<Msg> = World::new(SimConfig::default());
        // Actor 0 and 1 are probes standing in for replicas of shard 1 (so we
        // can observe CONFIG_CHANGE); actor 2 is the requester.
        let other_a = world.add_actor(Probe::default());
        let other_b = world.add_actor(Probe::default());
        let requester = world.add_actor(Probe::default());
        let cs = world.add_actor(ConfigServiceActor::new([
            (
                ShardId::new(0),
                ShardConfiguration::new(Epoch::ZERO, vec![pid(10), pid(11)], pid(10)),
            ),
            (
                ShardId::new(1),
                ShardConfiguration::new(Epoch::ZERO, vec![other_a, other_b], other_a),
            ),
        ]));

        world.send_from(
            requester,
            cs,
            Msg::CsGetLast {
                shard: ShardId::new(0),
            },
        );
        world.send_from(
            requester,
            cs,
            Msg::CsGet {
                shard: ShardId::new(0),
                epoch: Epoch::new(7),
            },
        );
        world.send_from(
            requester,
            cs,
            Msg::CsCas {
                shard: ShardId::new(0),
                expected: Epoch::ZERO,
                config: ShardConfiguration::new(Epoch::new(1), vec![pid(11), pid(12)], pid(11)),
            },
        );
        world.run();

        let requester_actor = world.actor::<Probe>(requester).expect("probe");
        assert!(requester_actor
            .received
            .iter()
            .any(|m| matches!(m, Msg::CsGetLastReply { .. })));
        assert!(requester_actor
            .received
            .iter()
            .any(|m| matches!(m, Msg::CsGetReply { config: None, .. })));
        assert!(requester_actor
            .received
            .iter()
            .any(|m| matches!(m, Msg::CsCasReply { ok: true, .. })));

        // Members of the *other* shard received CONFIG_CHANGE.
        for probe in [other_a, other_b] {
            let received = &world.actor::<Probe>(probe).expect("probe").received;
            assert!(
                received.iter().any(
                    |m| matches!(m, Msg::ConfigChange { shard, .. } if *shard == ShardId::new(0))
                ),
                "probe {probe} did not receive CONFIG_CHANGE"
            );
        }

        // A losing CAS is reported as such.
        world.send_from(
            requester,
            cs,
            Msg::CsCas {
                shard: ShardId::new(0),
                expected: Epoch::ZERO,
                config: ShardConfiguration::new(Epoch::new(2), vec![pid(12)], pid(12)),
            },
        );
        world.run();
        let requester_actor = world.actor::<Probe>(requester).expect("probe");
        assert!(requester_actor
            .received
            .iter()
            .any(|m| matches!(m, Msg::CsCasReply { ok: false, .. })));
    }
}
