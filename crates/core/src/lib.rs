//! The message-passing reconfigurable atomic transaction commit protocol
//! (Bravo & Gotsman, PODC 2019, §3, Figure 1).
//!
//! This crate is the paper's primary contribution: a Transaction Certification
//! Service that
//!
//! * replicates each shard over only `f + 1` replicas (instead of the `2f + 1`
//!   required by Paxos-based designs),
//! * weaves two-phase commit across shards together with Vertical-Paxos-style
//!   reconfiguration within each shard,
//! * delegates persisting votes at followers to transaction *coordinators*
//!   (any replica can coordinate any transaction), minimising the load on
//!   shard leaders,
//! * reaches a client-visible decision in 5 message delays (4 when the client
//!   is co-located with the coordinator), and
//! * recovers from replica failures by reconfiguring the affected shard
//!   through an external configuration service, probing previous
//!   configurations to find an initialised replica that becomes the new
//!   leader.
//!
//! The implementation follows the pseudocode of Figure 1 line by line; the
//! mapping is documented on each handler of [`replica::Replica`]. The protocol
//! runs on the deterministic simulation substrate of `ratc-sim` and is
//! parametric in the certification policy (`ratc-types::CertificationPolicy`).
//!
//! # Crate layout
//!
//! * [`messages`] — the protocol message vocabulary ([`Msg`]);
//! * [`batch`] — the batched certification pipeline: the `VoteBatcher`
//!   coalescing buffer, the size/delay knobs ([`BatchingConfig`]) and the
//!   per-slot item types carried by the `*_BATCH` message variants;
//! * [`log`] — the per-shard certification log (`txn`, `payload`, `vote`,
//!   `dec`, `phase` arrays of the paper);
//! * [`replica`] — the replica state machine: transaction processing,
//!   coordination and reconfiguration;
//! * [`config_service`] — the configuration-service actor (wrapping
//!   `ratc-config`'s registry) that also pushes `CONFIG_CHANGE` notifications;
//! * [`client`] — a client actor recording a TCS history and latency samples;
//! * [`harness`] — [`Cluster`]: one-call construction of a full simulated
//!   deployment (shards, replicas, spares, configuration service, client),
//!   used by tests, examples and benchmarks;
//! * [`invariants`] — white-box checkers for the paper's key invariants
//!   (Figure 3), evaluated over live replica state.
//!
//! # Quick start
//!
//! ```
//! use ratc_core::harness::{Cluster, ClusterConfig};
//! use ratc_types::prelude::*;
//!
//! // 2 shards, f = 1 (two replicas each), serializability.
//! let mut cluster = Cluster::new(ClusterConfig::default());
//! let payload = Payload::builder()
//!     .read(Key::new("x"), Version::new(0))
//!     .write(Key::new("x"), Value::from("1"))
//!     .commit_version(Version::new(1))
//!     .build()?;
//! cluster.submit(TxId::new(1), payload);
//! cluster.run_to_quiescence();
//! assert_eq!(cluster.history().decision(TxId::new(1)), Some(Decision::Commit));
//! # Ok::<(), PayloadError>(())
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod batch;
pub mod client;
pub mod config_service;
pub mod flow;
pub mod harness;
pub mod invariants;
pub mod log;
pub mod messages;
pub mod replica;

pub use batch::{BatchingConfig, PrepareBatch, VoteBatcher};
pub use client::ClientActor;
pub use config_service::ConfigServiceActor;
pub use flow::{AdmissionQueue, FlowControlConfig};
pub use harness::{Cluster, ClusterConfig};
pub use log::{CertificationLog, LogEntry, TxPhase};
pub use messages::Msg;
pub use replica::{Replica, Status};
