//! The replica state machine: Figure 1 of the paper, line by line.
//!
//! Every replica of every shard runs this actor. A replica simultaneously
//! plays three roles:
//!
//! * *shard member* (leader or follower): maintains the certification log of
//!   its shard and participates in preparing/accepting transactions;
//! * *transaction coordinator*: any replica that receives a `certify` request
//!   (or decides to retry a stalled transaction) drives the 2PC-style exchange
//!   for it and computes the final decision;
//! * *reconfigurer*: any replica can probe a shard's configurations and
//!   install a new one through the configuration service.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use ratc_config::{MembershipPlanner, ShardConfiguration};
use ratc_sim::{Actor, BackoffState, Context, CtrlMilestone, SimDuration, TimerTag, TxMilestone};
use ratc_types::{
    CertificationPolicy, Decision, Epoch, IndexedCertifier, Payload, Position, ProcessId,
    ShardCertifier, ShardId, ShardMap, TxId,
};

use crate::batch::{
    AcceptAckItem, BatchingConfig, DecisionItem, PrepareBatch, PrepareItem, PreparedItem,
    VoteBatcher,
};
use crate::flow::{AdmissionQueue, FlowControlConfig};
use crate::log::{CertificationLog, LogEntry, TxPhase};
use crate::messages::Msg;

/// Timer tag used for the coordinator's re-transmission tick.
const RETRY_TICK: TimerTag = 1;

/// Timer tag used to flush a partially filled prepare batch.
const BATCH_TICK: TimerTag = 2;

/// Timer tag ending the probe grace period: once an initialised responder is
/// known, the reconfigurer briefly waits for further in-flight probe replies
/// before drafting spares (see `handle_probe_ack`).
const PROBE_GRACE_TICK: TimerTag = 3;

/// Timer tag re-driving a reconfiguration whose probes were lost (probe
/// messages travel over faultable links; the configuration service does not).
const RECON_RETRY_TICK: TimerTag = 4;

/// How long a reconfigurer waits for more probe replies after the first
/// initialised responder. A couple of network round trips: long enough for
/// replies already in flight, short enough not to hurt recovery time.
const PROBE_GRACE: SimDuration = SimDuration::from_micros(500);

/// Interval after which a still-unfinished reconfiguration restarts its
/// probing from scratch.
const RECON_RETRY: SimDuration = SimDuration::from_millis(50);

/// Probe restarts after which a reconfiguration is abandoned (10 simulated
/// seconds): far beyond any recoverable outage in the test workloads, but
/// bounds the event queue when a shard is unrecoverable, so
/// `World::run`/`run_to_quiescence` still terminate.
const RECON_RETRY_CAP: u32 = 200;

/// The data needed to distribute a completed transaction's decision: the
/// client, the decision, and per-shard `(position, truncation floor)` targets.
type Completion = (ProcessId, Decision, Vec<(ShardId, Position, Position)>);

/// Policy for checkpointed log truncation (§6's garbage collection).
///
/// Members truncate their certification log at the cluster-wide minimum
/// decided frontier gossiped on the existing message exchanges (see
/// `crate::messages`), clamped to their own decided frontier. `batch`
/// amortises the fold: a replica truncates only once at least that many
/// decided slots can be freed at once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TruncationConfig {
    /// Whether replicas truncate at all.
    pub enabled: bool,
    /// Minimum number of slots to fold per truncation.
    pub batch: u64,
    /// Checkpoint decision-map compaction (**opt-in, default off**). When
    /// enabled, clients acknowledge each received `DECISION` back to its
    /// sender (`DECISION_ACK`), and the coordinator relays the full
    /// acknowledgement to every member of every shard of the transaction
    /// (`ACK_DECIDED`), which then drops the transaction's
    /// `(tx, position, decision)` checkpoint record — the decision can never
    /// be asked for again once the client has it, so the record is dead
    /// weight (see [`crate::log::CertificationLog::ack_decided`]). The
    /// coordinator also drops its own per-transaction state, bounding
    /// coordinator memory the same way.
    ///
    /// Off by default because the two extra message legs are not part of the
    /// paper's vocabulary: enabling them perturbs the simulated schedule, and
    /// same-seed runs must stay bit-identical to the paper's protocol unless
    /// a deployment explicitly asks for compaction. Only the message-passing
    /// stack implements the ack exchange; the flag is inert elsewhere.
    pub compaction: bool,
}

impl Default for TruncationConfig {
    fn default() -> Self {
        TruncationConfig {
            enabled: true,
            batch: 32,
            compaction: false,
        }
    }
}

impl TruncationConfig {
    /// Truncation switched off: the log grows without bound (the seed
    /// behaviour; useful for A/B benchmarks and the differential suites).
    pub fn disabled() -> Self {
        TruncationConfig {
            enabled: false,
            batch: u64::MAX,
            compaction: false,
        }
    }

    /// Truncation with the given fold batch.
    pub fn with_batch(batch: u64) -> Self {
        TruncationConfig {
            enabled: true,
            batch: batch.max(1),
            compaction: false,
        }
    }

    /// Returns a copy with decision-map compaction switched on.
    pub fn with_compaction(mut self) -> Self {
        self.compaction = true;
        self
    }
}

/// The status of a replica within its shard (the paper's `status` variable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The replica is the leader of its shard in its current epoch.
    Leader,
    /// The replica is a follower of its shard in its current epoch.
    Follower,
    /// The replica has been probed for a higher epoch and has stopped
    /// processing transactions until it joins a new configuration.
    Reconfiguring,
}

/// Progress of a coordinated transaction at one shard in one epoch.
#[derive(Debug, Clone, Default)]
struct ShardProgress {
    pos: Option<Position>,
    vote: Option<Decision>,
    acks: BTreeSet<ProcessId>,
    /// Decided frontiers gossiped by the shard's members (leader via
    /// `PREPARE_ACK`, followers via `ACCEPT_ACK`); the minimum over the full
    /// membership is the shard's safe truncation point.
    frontiers: BTreeMap<ProcessId, Position>,
}

/// Coordinator-side state for one transaction.
#[derive(Debug, Clone)]
struct CoordState {
    client: ProcessId,
    /// The full payload if this coordinator received the original `certify`;
    /// `None` for recovery coordinators (which only ever send `⊥`).
    payload: Option<Payload>,
    shards: Vec<ShardId>,
    /// Progress per shard per epoch.
    progress: BTreeMap<ShardId, BTreeMap<Epoch, ShardProgress>>,
    decided: bool,
    /// The final decision this coordinator computed or learned, kept so a
    /// re-submitted `certify` of an already-decided transaction (e.g. the
    /// client's `DECISION` was lost to a network fault) is answered directly
    /// instead of silently swallowed.
    decision: Option<Decision>,
    /// A decision learned out-of-band from a `TxDecided` reply (the
    /// transaction was truncated at some shard). Shards that still hold the
    /// transaction as prepared must be told it, or their slots (and lock
    /// tables) stay stranded forever.
    known_decision: Option<Decision>,
}

/// Phase of an in-flight reconfiguration driven by this replica.
#[derive(Debug, Clone)]
enum ReconPhase {
    /// Waiting for `get_last(s)` from the configuration service.
    AwaitingGetLast,
    /// Probing the members of `probed_epoch`.
    Probing,
    /// Waiting for `get(s, e)` of the next epoch to probe.
    AwaitingGet,
    /// Waiting for the configuration service's compare-and-swap reply.
    AwaitingCas {
        /// The process selected as the new leader.
        new_leader: ProcessId,
    },
}

/// Reconfiguration state at the reconfiguring process (`reconfigure(s)` of
/// Figure 1).
#[derive(Debug, Clone)]
struct ReconState {
    shard: ShardId,
    phase: ReconPhase,
    recon_epoch: Epoch,
    probed_epoch: Epoch,
    probed_members: Vec<ProcessId>,
    responders: Vec<ProcessId>,
    /// Responders that reported themselves initialised, in arrival order.
    initialized: Vec<ProcessId>,
    /// The leader of the latest configuration returned by `get_last`:
    /// preferred as the new leader if it responds initialised, so a warm
    /// leader (and its certification log) is not discarded for a spare.
    prev_leader: Option<ProcessId>,
    /// The armed probe grace timer (see `handle_probe_ack`); cancelled when
    /// probing restarts so a stale tick cannot finish the new round early.
    grace_timer: Option<ratc_sim::actor::TimerId>,
    /// How many times this reconfiguration has restarted probing; abandoned
    /// after [`RECON_RETRY_CAP`] attempts so an unrecoverable shard does not
    /// keep the event queue alive forever.
    retries: u32,
    descended_for_current: bool,
    spares: Vec<ProcessId>,
    target_size: usize,
    exclude: Vec<ProcessId>,
}

/// A replica of one shard (the process `p_i` in shard `s_0` of Figure 1).
pub struct Replica {
    id: ProcessId,
    shard: ShardId,
    status: Status,
    initialized: bool,
    new_epoch: Epoch,
    epoch: BTreeMap<ShardId, Epoch>,
    members: BTreeMap<ShardId, Vec<ProcessId>>,
    leader: BTreeMap<ShardId, ProcessId>,
    log: CertificationLog,
    certifier: Arc<dyn ShardCertifier>,
    /// Pristine (empty) incremental certifier, cloned whenever an installed
    /// log needs an index rebuilt (see `handle_new_state`).
    index_factory: Box<dyn IndexedCertifier>,
    sharding: Arc<dyn ShardMap + Send + Sync>,
    cs: ProcessId,
    coordinating: BTreeMap<TxId, CoordState>,
    recon: Option<ReconState>,
    retry_interval: SimDuration,
    retry_timer_armed: bool,
    truncation: TruncationConfig,
    batching: BatchingConfig,
    batcher: VoteBatcher<TxId>,
    batch_timer_armed: bool,
    /// Flow-control knobs: coordinator admission window and retry backoff.
    flow: FlowControlConfig,
    /// Submissions waiting for an admission-window slot (FIFO, deduplicated).
    admission: AdmissionQueue<(Payload, ProcessId)>,
    /// Running count of undecided coordinated transactions — kept in O(1)
    /// lockstep with `coordinating` so the admission check does not rescan
    /// the map (which retains decided entries) on every certify and drain.
    in_flight: usize,
    /// Per-coordinated-transaction retry deadlines (flow control only).
    retry_backoff: BTreeMap<TxId, BackoffState>,
}

impl Replica {
    /// Creates a replica of `shard` using the given certification policy and
    /// shard map. The replica is inert until
    /// [`Replica::install_initial_config`] is called by the deployment
    /// harness.
    pub fn new<P>(shard: ShardId, policy: &P, sharding: Arc<dyn ShardMap + Send + Sync>) -> Self
    where
        P: CertificationPolicy + ?Sized,
    {
        Replica {
            id: ProcessId::new(u64::MAX),
            shard,
            status: Status::Follower,
            initialized: false,
            new_epoch: Epoch::ZERO,
            epoch: BTreeMap::new(),
            members: BTreeMap::new(),
            leader: BTreeMap::new(),
            log: CertificationLog::with_certifier(policy.indexed_certifier(shard)),
            certifier: policy.shard_certifier(shard),
            index_factory: policy.indexed_certifier(shard),
            sharding,
            cs: ProcessId::new(u64::MAX),
            coordinating: BTreeMap::new(),
            recon: None,
            retry_interval: SimDuration::from_millis(20),
            retry_timer_armed: false,
            truncation: TruncationConfig::default(),
            batching: BatchingConfig::default(),
            batcher: VoteBatcher::new(BatchingConfig::default()),
            batch_timer_armed: false,
            flow: FlowControlConfig::default(),
            admission: AdmissionQueue::new(),
            in_flight: 0,
            retry_backoff: BTreeMap::new(),
        }
    }

    /// Sets the checkpointed-truncation policy (default: enabled, batch 32).
    pub fn set_truncation(&mut self, truncation: TruncationConfig) {
        self.truncation = truncation;
    }

    /// The replica's checkpointed-truncation policy.
    pub fn truncation(&self) -> TruncationConfig {
        self.truncation
    }

    /// Sets the batching-pipeline knobs (default: disabled).
    pub fn set_batching(&mut self, batching: BatchingConfig) {
        self.batching = batching;
        self.batcher.set_config(batching);
    }

    /// The replica's batching-pipeline knobs.
    pub fn batching(&self) -> BatchingConfig {
        self.batching
    }

    /// Sets the flow-control knobs (default: enabled, window 64, exponential
    /// backoff).
    pub fn set_flow(&mut self, flow: FlowControlConfig) {
        self.flow = flow;
    }

    /// The replica's flow-control knobs.
    pub fn flow(&self) -> FlowControlConfig {
        self.flow
    }

    /// Installs the initial configuration view at this replica: its own
    /// identifier, the configuration-service process, and the initial epoch,
    /// members and leader of every shard. `in_initial_config` marks whether
    /// this replica is part of its shard's initial configuration (spares are
    /// not, and start uninitialised).
    pub fn install_initial_config(
        &mut self,
        id: ProcessId,
        cs: ProcessId,
        configs: &BTreeMap<ShardId, ShardConfiguration>,
        in_initial_config: bool,
    ) {
        self.id = id;
        self.cs = cs;
        for (shard, config) in configs {
            self.epoch.insert(*shard, config.epoch);
            self.members.insert(*shard, config.members.clone());
            self.leader.insert(*shard, config.leader);
        }
        if in_initial_config {
            self.initialized = true;
            let own = &configs[&self.shard];
            self.status = if own.leader == id {
                Status::Leader
            } else {
                Status::Follower
            };
        } else {
            self.initialized = false;
            self.status = Status::Follower;
        }
    }

    // -- accessors used by tests, invariant checkers and experiments --------

    /// This replica's shard.
    pub fn shard(&self) -> ShardId {
        self.shard
    }

    /// This replica's current status.
    pub fn status(&self) -> Status {
        self.status
    }

    /// Whether this replica has ever been initialised with shard state.
    pub fn is_initialized(&self) -> bool {
        self.initialized
    }

    /// The replica's current epoch for `shard`.
    pub fn epoch_of(&self, shard: ShardId) -> Epoch {
        self.epoch.get(&shard).copied().unwrap_or(Epoch::ZERO)
    }

    /// The replica's current view of `shard`'s members.
    pub fn members_of(&self, shard: ShardId) -> &[ProcessId] {
        self.members.get(&shard).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The replica's current view of `shard`'s leader.
    pub fn leader_of(&self, shard: ShardId) -> Option<ProcessId> {
        self.leader.get(&shard).copied()
    }

    /// The replica's certification log.
    pub fn log(&self) -> &CertificationLog {
        &self.log
    }

    /// Number of transactions this replica is currently coordinating without
    /// a final decision.
    pub fn undecided_coordinated(&self) -> usize {
        debug_assert_eq!(
            self.in_flight,
            self.coordinating.values().filter(|c| !c.decided).count(),
            "in-flight counter out of lockstep with coordinating map"
        );
        self.in_flight
    }

    /// The transactions this replica coordinates that have no final decision.
    pub fn undecided_transactions(&self) -> Vec<TxId> {
        self.coordinating
            .iter()
            .filter(|(_, c)| !c.decided)
            .map(|(tx, _)| *tx)
            .collect()
    }

    /// Whether this replica is currently driving a reconfiguration.
    pub fn reconfiguration_in_flight(&self) -> bool {
        self.recon.is_some()
    }

    // -- helpers -------------------------------------------------------------

    fn arm_retry_timer(&mut self, ctx: &mut Context<'_, Msg>) {
        if !self.retry_timer_armed
            && (self.undecided_coordinated() > 0 || !self.admission.is_empty())
        {
            ctx.set_timer(self.retry_interval, RETRY_TICK);
            self.retry_timer_armed = true;
        }
    }

    /// Per-transaction jitter salt: decorrelates this coordinator's retry
    /// schedule for `tx` from every other transaction's without consuming
    /// shared RNG state.
    fn backoff_salt(&self, tx: TxId) -> u64 {
        tx.as_u64() ^ self.id.as_u64().rotate_left(17)
    }

    /// Records that a retry for `tx` fired at `now` and schedules the next.
    fn backoff_fired(&mut self, tx: TxId, now: u64) {
        let (policy, salt) = (self.flow.backoff, self.backoff_salt(tx));
        self.retry_backoff
            .entry(tx)
            .or_insert_with(|| BackoffState::armed(&policy, salt, now))
            .fired(&policy, salt, now);
    }

    /// Whether `tx`'s next retry is due at `now` (always true without flow
    /// control, or before the first deadline is armed).
    fn backoff_due(&self, tx: TxId, now: u64) -> bool {
        !self.flow.enabled
            || self
                .retry_backoff
                .get(&tx)
                .map(|b| b.due(now))
                .unwrap_or(true)
    }

    /// Admits queued submissions into freed window slots (oldest first).
    fn drain_admission(&mut self, ctx: &mut Context<'_, Msg>) {
        while self.flow.admits(self.undecided_coordinated()) {
            let Some((tx, (payload, client))) = self.admission.pop() else {
                break;
            };
            self.handle_certify(tx, payload, client, ctx);
        }
    }

    fn send_prepares(
        &self,
        ctx: &mut Context<'_, Msg>,
        tx: TxId,
        coord: &CoordState,
        only_shards: Option<&[ShardId]>,
    ) {
        ctx.obs_milestone(tx, TxMilestone::CertifySent, 0);
        for shard in &coord.shards {
            if let Some(filter) = only_shards {
                if !filter.contains(shard) {
                    continue;
                }
            }
            let Some(leader) = self.leader.get(shard).copied() else {
                continue;
            };
            let restricted = coord
                .payload
                .as_ref()
                .map(|p| p.restrict(*shard, self.sharding.as_ref()));
            ctx.send(
                leader,
                Msg::Prepare {
                    tx,
                    payload: restricted,
                    shards: coord.shards.clone(),
                    client: coord.client,
                },
            );
        }
    }

    /// Line 26 precondition, evaluated without side effects: once, for every
    /// shard of `tx`, the coordinator has the shard's vote and an
    /// `ACCEPT_ACK` from every follower of the shard's current configuration,
    /// returns the client, the final decision and the per-shard
    /// `(position, truncation floor)` targets.
    fn completion_of(&self, tx: TxId) -> Option<Completion> {
        let coord = self.coordinating.get(&tx)?;
        if coord.decided {
            return None;
        }
        let mut votes = Vec::new();
        let mut positions = Vec::new();
        for shard in &coord.shards {
            let epoch = self.epoch.get(shard).copied().unwrap_or(Epoch::ZERO);
            let progress = coord.progress.get(shard).and_then(|m| m.get(&epoch))?;
            let (vote, pos) = (progress.vote?, progress.pos?);
            let leader = self.leader.get(shard).copied();
            let required: BTreeSet<ProcessId> = self
                .members_of(*shard)
                .iter()
                .copied()
                .filter(|p| Some(*p) != leader)
                .collect();
            if !required.is_subset(&progress.acks) {
                return None;
            }
            // Cluster-wide minimum decided frontier of the shard: defined
            // only once every current member has gossiped one (a member the
            // coordinator has not heard from pins the floor at zero).
            let floor = self
                .members_of(*shard)
                .iter()
                .map(|m| progress.frontiers.get(m).copied().unwrap_or(Position::ZERO))
                .min()
                .unwrap_or(Position::ZERO);
            votes.push(vote);
            positions.push((*shard, pos, floor));
        }
        Some((coord.client, Decision::meet_all(votes), positions))
    }

    /// Marks `tx` decided and records the coordinator-side decision metrics.
    /// A decision frees an admission-window slot, so queued submissions are
    /// admitted here.
    fn mark_decided(&mut self, tx: TxId, decision: Decision, ctx: &mut Context<'_, Msg>) {
        if let Some(coord) = self.coordinating.get_mut(&tx) {
            if !coord.decided {
                self.in_flight -= 1;
            }
            coord.decided = true;
            coord.decision = Some(decision);
        }
        self.retry_backoff.remove(&tx);
        self.admission.remove(tx);
        ctx.add_counter("coordinator_decisions", 1);
        ctx.record_sample("coordinator_decision_hops", f64::from(ctx.hops()));
        // The accept quorum and the decision coincide on this stack: the last
        // required ACCEPT_ACK both completes the quorum and fixes the outcome.
        ctx.obs_milestone(tx, TxMilestone::AcceptQuorum, 0);
        ctx.obs_milestone(tx, TxMilestone::Decided, 0);
        ctx.obs_gauge("obs_inflight_window", self.in_flight as f64);
        self.drain_admission(ctx);
    }

    /// Line 26: computes and distributes the final decision of `tx` once it
    /// is complete, one `DECISION` per shard member.
    fn check_completion(&mut self, tx: TxId, ctx: &mut Context<'_, Msg>) {
        let Some((client, decision, targets)) = self.completion_of(tx) else {
            return;
        };
        self.mark_decided(tx, decision, ctx);
        ctx.send(client, Msg::DecisionClient { tx, decision });
        for (shard, pos, truncate_to) in targets {
            let epoch = self.epoch.get(&shard).copied().unwrap_or(Epoch::ZERO);
            let members = self.members_of(shard).to_vec();
            ctx.send_to_many(
                members,
                Msg::DecisionShard {
                    epoch,
                    pos,
                    decision,
                    truncate_to,
                },
            );
        }
    }

    /// Batched line 26: completes every transaction of `txs` that is done and
    /// coalesces their `DECISION`s into one `DECISION_BATCH` per shard (the
    /// per-shard truncation floor is the minimum over the batch, which is
    /// always safe — receivers clamp to their own decided frontier anyway).
    /// Clients are still notified individually. Falls back to per-transaction
    /// `DECISION`s when batching is disabled.
    fn complete_batch(&mut self, txs: &[TxId], ctx: &mut Context<'_, Msg>) {
        if !self.batching.enabled {
            for &tx in txs {
                self.check_completion(tx, ctx);
            }
            return;
        }
        let mut per_shard: BTreeMap<ShardId, (Vec<DecisionItem>, Position)> = BTreeMap::new();
        let mut seen: BTreeSet<TxId> = BTreeSet::new();
        for &tx in txs {
            if !seen.insert(tx) {
                continue;
            }
            let Some((client, decision, targets)) = self.completion_of(tx) else {
                continue;
            };
            self.mark_decided(tx, decision, ctx);
            ctx.send(client, Msg::DecisionClient { tx, decision });
            for (shard, pos, floor) in targets {
                let entry = per_shard
                    .entry(shard)
                    .or_insert_with(|| (Vec::new(), Position::new(u64::MAX)));
                entry.0.push(DecisionItem { pos, decision });
                entry.1 = entry.1.min(floor);
            }
        }
        for (shard, (items, truncate_to)) in per_shard {
            let epoch = self.epoch.get(&shard).copied().unwrap_or(Epoch::ZERO);
            let members = self.members_of(shard).to_vec();
            ctx.send_to_many(
                members,
                Msg::DecisionBatch {
                    epoch,
                    items,
                    truncate_to,
                },
            );
        }
    }

    fn coord_entry(
        &mut self,
        tx: TxId,
        client: ProcessId,
        shards: Vec<ShardId>,
    ) -> &mut CoordState {
        let inserted = !self.coordinating.contains_key(&tx);
        if inserted {
            self.in_flight += 1;
        }
        self.coordinating.entry(tx).or_insert_with(|| CoordState {
            client,
            payload: None,
            shards,
            progress: BTreeMap::new(),
            decided: false,
            decision: None,
            known_decision: None,
        })
    }

    // -- message handlers ----------------------------------------------------

    /// Lines 1–3: the replica acts as the transaction's coordinator.
    fn handle_certify(
        &mut self,
        tx: TxId,
        payload: Payload,
        client: ProcessId,
        ctx: &mut Context<'_, Msg>,
    ) {
        let shards = payload.shards(self.sharding.as_ref());
        if shards.is_empty() {
            // A transaction touching no objects commits vacuously.
            ctx.send(
                client,
                Msg::DecisionClient {
                    tx,
                    decision: Decision::Commit,
                },
            );
            return;
        }
        if self.flow.enabled {
            match self.coordinating.get_mut(&tx) {
                Some(coord) if coord.decision.is_some() => {
                    // Decided re-submission: answer with the recorded
                    // decision instead of silently swallowing the request.
                    let decision = coord.decision.expect("checked above");
                    ctx.send(client, Msg::DecisionClient { tx, decision });
                    return;
                }
                Some(coord) => {
                    // A retry supersedes the in-flight attempt: refresh the
                    // reply address and payload and let the scheduled
                    // backoff decide when to re-drive, instead of stacking
                    // another PREPARE volley on top of the previous one.
                    coord.payload = Some(payload);
                    coord.client = client;
                    let now = ctx.now().as_micros();
                    if self.backoff_due(tx, now) {
                        let attempt = self.retry_backoff.get(&tx).map(|b| b.attempt).unwrap_or(0);
                        ctx.obs_milestone(tx, TxMilestone::Retry, u64::from(attempt));
                        let coord = self.coordinating.get(&tx).expect("in flight").clone();
                        self.send_prepares(ctx, tx, &coord, None);
                        self.backoff_fired(tx, now);
                    }
                    self.arm_retry_timer(ctx);
                    return;
                }
                None => {
                    if !self.flow.admits(self.undecided_coordinated()) {
                        // Admission window full: park the submission at the
                        // edge; it is admitted when an in-flight transaction
                        // decides.
                        self.admission.enqueue(tx, (payload, client));
                        ctx.add_counter("admission_queued", 1);
                        ctx.obs_gauge("obs_admission_depth", self.admission.len() as f64);
                        self.arm_retry_timer(ctx);
                        return;
                    }
                    let (policy, salt) = (self.flow.backoff, self.backoff_salt(tx));
                    self.retry_backoff.insert(
                        tx,
                        BackoffState::armed(&policy, salt, ctx.now().as_micros()),
                    );
                }
            }
        }
        let inserted = !self.coordinating.contains_key(&tx);
        let coord = self.coordinating.entry(tx).or_insert_with(|| CoordState {
            client,
            payload: Some(payload.clone()),
            shards: shards.clone(),
            progress: BTreeMap::new(),
            decided: false,
            decision: None,
            known_decision: None,
        });
        if inserted {
            self.in_flight += 1;
            ctx.obs_milestone(tx, TxMilestone::Admitted, 0);
            ctx.obs_gauge("obs_inflight_window", self.in_flight as f64);
        }
        // A re-submitted `certify` of a transaction this coordinator already
        // decided (the client's `DECISION` was lost to a fault, or the client
        // retried against the same coordinator): answer with the recorded
        // decision instead of silently swallowing the request.
        if let Some(decision) = coord.decision {
            ctx.send(client, Msg::DecisionClient { tx, decision });
            return;
        }
        coord.payload = Some(payload);
        coord.client = client;
        if self.batching.enabled {
            // Coalesce into the pending batch instead of sending a PREPARE
            // per shard now; the batch flushes when full or when the batch
            // timer expires. The retry timer stays armed as a safety net (its
            // re-sends use the unbatched path). A flush-on-full is queue
            // pressure, so an adaptive batcher grows its target batch.
            if self.batcher.push(tx) {
                let txs = self.batcher.drain_full();
                self.flush_prepare_batch(txs, ctx);
            } else {
                self.arm_batch_timer(ctx);
            }
            self.arm_retry_timer(ctx);
            return;
        }
        let coord = coord.clone();
        self.send_prepares(ctx, tx, &coord, None);
        self.arm_retry_timer(ctx);
    }

    // -- batched certification pipeline (see `crate::batch`) -----------------

    fn arm_batch_timer(&mut self, ctx: &mut Context<'_, Msg>) {
        if !self.batch_timer_armed && !self.batcher.is_empty() {
            ctx.set_timer(self.batching.max_delay, BATCH_TICK);
            self.batch_timer_armed = true;
        }
    }

    /// Sends one `PREPARE_BATCH` per involved shard leader for a drained
    /// batch, with each transaction's payload restricted per shard.
    fn flush_prepare_batch(&mut self, txs: Vec<TxId>, ctx: &mut Context<'_, Msg>) {
        if txs.is_empty() {
            return;
        }
        ctx.obs_gauge("obs_batch_occupancy", txs.len() as f64);
        if ctx.obs_enabled() {
            for &tx in &txs {
                ctx.obs_milestone(tx, TxMilestone::CertifySent, 0);
                ctx.obs_milestone(tx, TxMilestone::BatchFlush, txs.len() as u64);
            }
        }
        let mut per_leader: BTreeMap<ProcessId, Vec<PrepareItem>> = BTreeMap::new();
        for tx in txs {
            let Some(coord) = self.coordinating.get(&tx) else {
                continue;
            };
            if coord.decided {
                continue;
            }
            for shard in &coord.shards {
                let Some(leader) = self.leader.get(shard).copied() else {
                    continue;
                };
                let restricted = coord
                    .payload
                    .as_ref()
                    .map(|p| p.restrict(*shard, self.sharding.as_ref()));
                per_leader.entry(leader).or_default().push(PrepareItem {
                    tx,
                    payload: restricted,
                    shards: coord.shards.clone(),
                    client: coord.client,
                });
            }
        }
        for (leader, items) in per_leader {
            ctx.add_counter("prepare_batches_sent", 1);
            ctx.send(
                leader,
                Msg::PrepareBatch {
                    batch: PrepareBatch { items },
                },
            );
        }
    }

    /// Batched lines 4–17: the shard leader certifies a whole batch in one
    /// pass. Fresh transactions are appended at a contiguous position range
    /// (in batch order); already-certified ones are re-acked inside the batch
    /// reply, and truncated ones get the per-transaction `TxDecided` fast
    /// path, exactly as in the unbatched exchange.
    fn handle_prepare_batch(
        &mut self,
        from: ProcessId,
        items: Vec<PrepareItem>,
        ctx: &mut Context<'_, Msg>,
    ) {
        if self.status != Status::Leader {
            return; // line 5 precondition
        }
        let epoch = self.epoch_of(self.shard);
        let mut acks: Vec<PreparedItem> = Vec::with_capacity(items.len());
        for item in items {
            if let Some(decision) = self.log.truncated_decision(item.tx) {
                ctx.send(
                    from,
                    Msg::TxDecided {
                        tx: item.tx,
                        decision,
                        client: item.client,
                    },
                );
                continue;
            }
            if let Some(pos) = self.log.position_of(item.tx) {
                let entry = self
                    .log
                    .get(pos)
                    .expect("position_of returned a retained slot");
                acks.push(PreparedItem {
                    pos,
                    tx: item.tx,
                    payload: entry.payload.clone(),
                    vote: entry.vote,
                    shards: entry.shards.clone(),
                    client: entry.client,
                });
                continue;
            }
            let (vote, stored_payload) = match item.payload {
                Some(l) => {
                    let next = self.log.next();
                    let vote = self.log.vote_at(next, &l).unwrap_or_else(|| {
                        let committed = self.log.committed_payloads_before(next);
                        let prepared = self.log.prepared_payloads_before(next);
                        self.certifier.vote(&committed, &prepared, &l)
                    });
                    (vote, l)
                }
                None => (Decision::Abort, Payload::empty()),
            };
            let pos = self.log.append(LogEntry {
                tx: item.tx,
                payload: stored_payload.clone(),
                vote,
                dec: None,
                phase: TxPhase::Prepared,
                shards: item.shards.clone(),
                client: item.client,
            });
            ctx.add_counter("leader_prepared", 1);
            acks.push(PreparedItem {
                pos,
                tx: item.tx,
                payload: stored_payload,
                vote,
                shards: item.shards,
                client: item.client,
            });
        }
        if !acks.is_empty() {
            ctx.add_counter("leader_prepared_batches", 1);
            ctx.send(
                from,
                Msg::PrepareAckBatch {
                    epoch,
                    shard: self.shard,
                    items: acks,
                    frontier: self.log.decided_frontier(),
                },
            );
        }
    }

    /// Batched lines 18–20: the coordinator records the leader's votes for a
    /// whole batch and persists it at every follower with one `ACCEPT_BATCH`
    /// each.
    fn handle_prepare_ack_batch(
        &mut self,
        from: ProcessId,
        epoch: Epoch,
        shard: ShardId,
        items: Vec<PreparedItem>,
        frontier: Position,
        ctx: &mut Context<'_, Msg>,
    ) {
        // Line 19 precondition, once for the whole batch: every item was
        // certified by the same leader in the same epoch.
        if self.epoch_of(shard) != epoch {
            return;
        }
        let mut txs = Vec::with_capacity(items.len());
        for item in &items {
            let coord = self.coord_entry(item.tx, item.client, item.shards.clone());
            let progress = coord
                .progress
                .entry(shard)
                .or_default()
                .entry(epoch)
                .or_default();
            progress.pos = Some(item.pos);
            progress.vote = Some(item.vote);
            progress.frontiers.insert(from, frontier);
            ctx.obs_milestone(item.tx, TxMilestone::ShardVoted, u64::from(shard.as_u32()));
            txs.push(item.tx);
        }
        let leader = self.leader.get(&shard).copied();
        let followers: Vec<ProcessId> = self
            .members_of(shard)
            .iter()
            .copied()
            .filter(|p| Some(*p) != leader)
            .collect();
        for follower in followers {
            ctx.send(
                follower,
                Msg::AcceptBatch {
                    epoch,
                    shard,
                    items: items.clone(),
                },
            );
        }
        for &tx in &txs {
            self.flush_known_decision(tx, shard, ctx);
        }
        // With f = 0 (no followers) the whole batch may already be complete.
        self.complete_batch(&txs, ctx);
    }

    /// Batched lines 21–25: a follower stores a whole batch of votes and
    /// acknowledges it with one message.
    fn handle_accept_batch(
        &mut self,
        from: ProcessId,
        epoch: Epoch,
        shard: ShardId,
        items: Vec<PreparedItem>,
        ctx: &mut Context<'_, Msg>,
    ) {
        // Line 22 precondition, once for the whole batch.
        if self.status != Status::Follower
            || shard != self.shard
            || self.epoch_of(self.shard) != epoch
        {
            return;
        }
        let mut acks = Vec::with_capacity(items.len());
        for item in items {
            // Line 23–24 per item: store only if the slot is still a hole.
            if self.log.phase(item.pos) == TxPhase::Start {
                self.log.store_at(
                    item.pos,
                    LogEntry {
                        tx: item.tx,
                        payload: item.payload,
                        vote: item.vote,
                        dec: None,
                        phase: TxPhase::Prepared,
                        shards: item.shards,
                        client: item.client,
                    },
                );
            }
            acks.push(AcceptAckItem {
                pos: item.pos,
                tx: item.tx,
                vote: item.vote,
            });
        }
        ctx.send(
            from,
            Msg::AcceptAckBatch {
                shard: self.shard,
                epoch,
                items: acks,
                frontier: self.log.decided_frontier(),
            },
        );
    }

    /// Batched line 26 bookkeeping: record a follower's acknowledgement of a
    /// whole batch, then complete every transaction that is done.
    fn handle_accept_ack_batch(
        &mut self,
        from: ProcessId,
        shard: ShardId,
        epoch: Epoch,
        items: Vec<AcceptAckItem>,
        frontier: Position,
        ctx: &mut Context<'_, Msg>,
    ) {
        let mut txs = Vec::with_capacity(items.len());
        for item in items {
            let Some(coord) = self.coordinating.get_mut(&item.tx) else {
                continue;
            };
            let progress = coord
                .progress
                .entry(shard)
                .or_default()
                .entry(epoch)
                .or_default();
            progress.acks.insert(from);
            progress.frontiers.insert(from, frontier);
            if progress.pos.is_none() {
                progress.pos = Some(item.pos);
            }
            if progress.vote.is_none() {
                progress.vote = Some(item.vote);
            }
            txs.push(item.tx);
        }
        self.complete_batch(&txs, ctx);
    }

    /// Batched lines 30–32: record the final decisions of a whole batch, then
    /// truncate at the gossiped floor once.
    fn handle_decision_batch(
        &mut self,
        epoch: Epoch,
        items: Vec<DecisionItem>,
        truncate_to: Position,
        ctx: &mut Context<'_, Msg>,
    ) {
        if self.status == Status::Reconfiguring {
            return; // line 31 precondition
        }
        if self.epoch_of(self.shard) < epoch {
            return; // line 31 precondition
        }
        for item in &items {
            self.log.decide(item.pos, item.decision);
        }
        self.maybe_truncate(truncate_to, ctx);
    }

    /// Lines 4–17: the shard leader prepares a transaction and votes on it.
    fn handle_prepare(
        &mut self,
        from: ProcessId,
        tx: TxId,
        payload: Option<Payload>,
        shards: Vec<ShardId>,
        client: ProcessId,
        ctx: &mut Context<'_, Msg>,
    ) {
        if self.status != Status::Leader {
            return; // line 5 precondition
        }
        let epoch = self.epoch_of(self.shard);
        // A transaction whose slot was folded into the checkpoint is decided:
        // answer the recovery coordinator with the final decision directly
        // (there is no slot left to re-ack, and re-certifying it as new would
        // contradict the recorded decision).
        if let Some(decision) = self.log.truncated_decision(tx) {
            ctx.send(
                from,
                Msg::TxDecided {
                    tx,
                    decision,
                    client,
                },
            );
            return;
        }
        // Line 6: the transaction is already in the certification order —
        // resend the stored PREPARE_ACK (this serves recovery coordinators).
        if let Some(pos) = self.log.position_of(tx) {
            let entry = self
                .log
                .get(pos)
                .expect("position_of returned a retained slot");
            ctx.send(
                from,
                Msg::PrepareAck {
                    epoch,
                    shard: self.shard,
                    pos,
                    tx,
                    payload: entry.payload.clone(),
                    vote: entry.vote,
                    shards: entry.shards.clone(),
                    client: entry.client,
                    frontier: self.log.decided_frontier(),
                },
            );
            return;
        }
        // Lines 8–16: append the transaction and compute the vote. The
        // certification index answers `f_s(L1, l) ⊓ g_s(L2, l)` in
        // O(|payload|); logs without an index fall back to the set-based
        // scans of the paper's formulation.
        let (vote, stored_payload) = match payload {
            Some(l) => {
                let next = self.log.next();
                let vote = self.log.vote_at(next, &l).unwrap_or_else(|| {
                    let committed = self.log.committed_payloads_before(next);
                    let prepared = self.log.prepared_payloads_before(next);
                    self.certifier.vote(&committed, &prepared, &l)
                });
                (vote, l)
            }
            None => (Decision::Abort, Payload::empty()),
        };
        let pos = self.log.append(LogEntry {
            tx,
            payload: stored_payload.clone(),
            vote,
            dec: None,
            phase: TxPhase::Prepared,
            shards: shards.clone(),
            client,
        });
        ctx.add_counter("leader_prepared", 1);
        ctx.send(
            from,
            Msg::PrepareAck {
                epoch,
                shard: self.shard,
                pos,
                tx,
                payload: stored_payload,
                vote,
                shards,
                client,
                frontier: self.log.decided_frontier(),
            },
        );
    }

    /// Lines 18–20: the coordinator forwards the leader's vote to the
    /// followers of the shard.
    #[allow(clippy::too_many_arguments)]
    fn handle_prepare_ack(
        &mut self,
        from: ProcessId,
        epoch: Epoch,
        shard: ShardId,
        pos: Position,
        tx: TxId,
        payload: Payload,
        vote: Decision,
        shards: Vec<ShardId>,
        client: ProcessId,
        frontier: Position,
        ctx: &mut Context<'_, Msg>,
    ) {
        // Line 19 precondition: the coordinator's view of the shard's epoch
        // matches the leader's.
        if self.epoch_of(shard) != epoch {
            return;
        }
        let coord = self.coord_entry(tx, client, shards.clone());
        let progress = coord
            .progress
            .entry(shard)
            .or_default()
            .entry(epoch)
            .or_default();
        progress.pos = Some(pos);
        progress.vote = Some(vote);
        progress.frontiers.insert(from, frontier);
        ctx.obs_milestone(tx, TxMilestone::ShardVoted, u64::from(shard.as_u32()));
        // Line 20: persist the vote at the followers.
        let leader = self.leader.get(&shard).copied();
        let followers: Vec<ProcessId> = self
            .members_of(shard)
            .iter()
            .copied()
            .filter(|p| Some(*p) != leader)
            .collect();
        ctx.send_to_many(
            followers,
            Msg::Accept {
                epoch,
                shard,
                pos,
                tx,
                payload,
                vote,
                shards,
                client,
            },
        );
        // A late re-ack for a transaction whose decision was already learned
        // out-of-band (`TxDecided`): tell this shard the decision now that
        // its position is known.
        self.flush_known_decision(tx, shard, ctx);
        // With f = 0 (no followers) the transaction may already be complete.
        self.check_completion(tx, ctx);
    }

    /// Lines 21–25: a follower stores the vote and acknowledges.
    #[allow(clippy::too_many_arguments)]
    fn handle_accept(
        &mut self,
        from: ProcessId,
        epoch: Epoch,
        shard: ShardId,
        pos: Position,
        tx: TxId,
        payload: Payload,
        vote: Decision,
        shards: Vec<ShardId>,
        client: ProcessId,
        ctx: &mut Context<'_, Msg>,
    ) {
        // Line 22 precondition.
        if self.status != Status::Follower
            || shard != self.shard
            || self.epoch_of(self.shard) != epoch
        {
            return;
        }
        // Line 23–24: store only if the slot is still a hole.
        if self.log.phase(pos) == TxPhase::Start {
            self.log.store_at(
                pos,
                LogEntry {
                    tx,
                    payload,
                    vote,
                    dec: None,
                    phase: TxPhase::Prepared,
                    shards,
                    client,
                },
            );
        }
        // Line 25.
        ctx.send(
            from,
            Msg::AcceptAck {
                shard: self.shard,
                epoch,
                pos,
                tx,
                vote,
                frontier: self.log.decided_frontier(),
            },
        );
    }

    /// Line 26 bookkeeping: record a follower's acknowledgement.
    #[allow(clippy::too_many_arguments)]
    fn handle_accept_ack(
        &mut self,
        from: ProcessId,
        shard: ShardId,
        epoch: Epoch,
        pos: Position,
        tx: TxId,
        vote: Decision,
        frontier: Position,
        ctx: &mut Context<'_, Msg>,
    ) {
        let Some(coord) = self.coordinating.get_mut(&tx) else {
            return;
        };
        let progress = coord
            .progress
            .entry(shard)
            .or_default()
            .entry(epoch)
            .or_default();
        progress.acks.insert(from);
        progress.frontiers.insert(from, frontier);
        if progress.pos.is_none() {
            progress.pos = Some(pos);
        }
        if progress.vote.is_none() {
            progress.vote = Some(vote);
        }
        self.check_completion(tx, ctx);
    }

    /// Lines 30–32: record the final decision for a certification-order slot,
    /// then fold the decided prefix below the gossiped cluster-wide floor
    /// into the checkpoint.
    fn handle_decision_shard(
        &mut self,
        epoch: Epoch,
        pos: Position,
        decision: Decision,
        truncate_to: Position,
        ctx: &mut Context<'_, Msg>,
    ) {
        if self.status == Status::Reconfiguring {
            return; // line 31 precondition: status ∈ {leader, follower}
        }
        if self.epoch_of(self.shard) < epoch {
            return; // line 31 precondition: epoch[s0] ≥ e
        }
        self.log.decide(pos, decision);
        self.maybe_truncate(truncate_to, ctx);
    }

    /// Truncates the log at `floor` (clamped to the own decided frontier by
    /// the log itself) once at least a batch of slots can be freed.
    fn maybe_truncate(&mut self, floor: Position, ctx: &mut Context<'_, Msg>) {
        if !self.truncation.enabled {
            return;
        }
        let target = floor.min(self.log.decided_frontier());
        if target.as_u64() >= self.log.base().as_u64() + self.truncation.batch {
            let freed = self.log.truncate_to(target);
            ctx.add_counter("log_slots_truncated", freed as u64);
        }
    }

    /// Compaction leg 1 received: the client acknowledged the decision of
    /// `tx`. Relay the full acknowledgement to every member of every shard of
    /// the transaction, then drop the coordinator state — neither the client
    /// (it has the decision) nor a recovery coordinator (no member still
    /// holds the transaction prepared once it is decided everywhere) will
    /// ever ask this coordinator about `tx` again.
    fn handle_decision_ack(&mut self, tx: TxId, ctx: &mut Context<'_, Msg>) {
        let Some(coord) = self.coordinating.get(&tx) else {
            return;
        };
        if !coord.decided {
            return; // stray ack for a transaction still in flight
        }
        let shards = coord.shards.clone();
        for shard in shards {
            let members = self.members_of(shard).to_vec();
            ctx.send_to_many(members, Msg::AckDecided { tx });
        }
        self.coordinating.remove(&tx);
        ctx.add_counter("decisions_acked", 1);
    }

    /// Compaction leg 2 received: drop the transaction's checkpoint decision
    /// record (or mark it to be folded without one).
    fn handle_ack_decided(&mut self, tx: TxId, ctx: &mut Context<'_, Msg>) {
        if self.log.ack_decided(tx) {
            ctx.add_counter("checkpoint_records_pruned", 1);
        }
    }

    /// A shard leader answered a `PREPARE` for a transaction it has already
    /// decided and truncated: adopt the decision, report it to the client
    /// (duplicate identical decisions are benign there), and propagate it to
    /// every shard whose certification position this coordinator knows —
    /// shards that missed the original `DECISION` still hold the transaction
    /// as prepared, and without this their slots and `L2` locks would stay
    /// stranded forever. Shards whose `PREPARE_ACK` has not arrived yet are
    /// flushed from `handle_prepare_ack` via `known_decision`.
    fn handle_tx_decided(
        &mut self,
        tx: TxId,
        decision: Decision,
        client: ProcessId,
        ctx: &mut Context<'_, Msg>,
    ) {
        if let Some(coord) = self.coordinating.get_mut(&tx) {
            if coord.known_decision.is_some() {
                return;
            }
            coord.known_decision = Some(decision);
            let was_decided = coord.decided;
            if !was_decided {
                self.in_flight -= 1;
                // Decided out-of-band (the shard already truncated the
                // transaction): no quorum was observed this incarnation.
                ctx.obs_milestone(tx, TxMilestone::Decided, 0);
            }
            coord.decided = true;
            coord.decision.get_or_insert(decision);
            let shards = coord.shards.clone();
            for shard in shards {
                self.flush_known_decision(tx, shard, ctx);
            }
            self.retry_backoff.remove(&tx);
            if !was_decided {
                // An out-of-band decision also frees an admission slot.
                self.drain_admission(ctx);
            }
            if was_decided {
                return;
            }
        }
        ctx.send(client, Msg::DecisionClient { tx, decision });
    }

    /// Re-sends `DECISION` for a transaction with an out-of-band decision to
    /// the members of `shard`, if this coordinator knows the transaction's
    /// position there in the shard's current epoch.
    fn flush_known_decision(&mut self, tx: TxId, shard: ShardId, ctx: &mut Context<'_, Msg>) {
        let Some(coord) = self.coordinating.get(&tx) else {
            return;
        };
        let Some(decision) = coord.known_decision else {
            return;
        };
        let epoch = self.epoch_of(shard);
        let Some(pos) = coord
            .progress
            .get(&shard)
            .and_then(|m| m.get(&epoch))
            .and_then(|p| p.pos)
        else {
            return;
        };
        let members = self.members_of(shard).to_vec();
        ctx.send_to_many(
            members,
            Msg::DecisionShard {
                epoch,
                pos,
                decision,
                truncate_to: Position::ZERO,
            },
        );
    }

    /// Lines 70–73: become a recovery coordinator for a prepared transaction.
    fn handle_retry(&mut self, tx: TxId, ctx: &mut Context<'_, Msg>) {
        let Some(pos) = self.log.position_of(tx) else {
            return;
        };
        // A truncated slot is decided (line 71 precondition fails), so
        // `get` returning `None` below the checkpoint is also a no-op.
        let Some(entry) = self.log.get(pos) else {
            return;
        };
        if entry.phase != TxPhase::Prepared {
            return; // line 71 precondition
        }
        let shards = entry.shards.clone();
        let client = entry.client;
        self.coord_entry(tx, client, shards.clone());
        let coord = self.coordinating.get(&tx).expect("just inserted").clone();
        // Line 73: send PREPARE(t, ⊥) to the leaders of all shards of t.
        // (`send_prepares` sends ⊥ because a recovery coordinator has no full
        // payload.)
        self.send_prepares(ctx, tx, &coord, None);
        self.arm_retry_timer(ctx);
        ctx.add_counter("retries_started", 1);
        ctx.ctrl_milestone(
            CtrlMilestone::CoordinatorHandoff,
            Some(self.shard),
            tx.as_u64(),
        );
    }

    // -- reconfiguration ------------------------------------------------------

    /// Lines 33–39: start reconfiguring a shard.
    fn handle_start_reconfigure(
        &mut self,
        shard: ShardId,
        spares: Vec<ProcessId>,
        target_size: usize,
        exclude: Vec<ProcessId>,
        ctx: &mut Context<'_, Msg>,
    ) {
        if self.recon.is_some() {
            return; // line 34 precondition: probing = false
        }
        self.recon = Some(ReconState {
            shard,
            phase: ReconPhase::AwaitingGetLast,
            recon_epoch: Epoch::ZERO,
            probed_epoch: Epoch::ZERO,
            probed_members: Vec::new(),
            responders: Vec::new(),
            initialized: Vec::new(),
            prev_leader: None,
            grace_timer: None,
            retries: 0,
            descended_for_current: false,
            spares,
            target_size,
            exclude,
        });
        ctx.ctrl_milestone(
            CtrlMilestone::ReconfigInitiated,
            Some(shard),
            self.epoch_of(shard).as_u64(),
        );
        ctx.send(self.cs, Msg::CsGetLast { shard });
        // Probes travel over faultable links; if they (or their replies) are
        // lost, restart the whole probe from scratch after a while.
        ctx.set_timer(RECON_RETRY, RECON_RETRY_TICK);
    }

    /// Line 36 continued: the configuration service returned the latest
    /// configuration; begin probing its members.
    fn handle_cs_get_last_reply(
        &mut self,
        shard: ShardId,
        config: ShardConfiguration,
        ctx: &mut Context<'_, Msg>,
    ) {
        let recon_matches = self
            .recon
            .as_ref()
            .map(|r| r.shard == shard && matches!(r.phase, ReconPhase::AwaitingGetLast))
            .unwrap_or(false);
        if !recon_matches {
            // Not (this) reconfiguration's reply: a stalled coordinator's
            // view-refresh poll (see `handle_retry_tick`). The lazy
            // CONFIG_CHANGE of lines 67–69 may have been lost to a fault, so
            // adopt the fresher view here.
            self.handle_stale_view_refresh(shard, config);
            return;
        }
        let Some(recon) = self.recon.as_mut() else {
            return;
        };
        recon.probed_epoch = config.epoch;
        recon.probed_members = config.members.clone();
        recon.recon_epoch = config.epoch.next();
        recon.prev_leader = Some(config.leader);
        recon.phase = ReconPhase::Probing;
        recon.descended_for_current = false;
        let epoch = recon.recon_epoch;
        let targets = recon.probed_members.clone();
        ctx.ctrl_milestone(CtrlMilestone::ProbeStarted, Some(shard), epoch.as_u64());
        ctx.send_to_many(targets, Msg::Probe { epoch });
    }

    /// Lines 40–44: a probed process joins the new epoch and stops processing.
    fn handle_probe(&mut self, from: ProcessId, epoch: Epoch, ctx: &mut Context<'_, Msg>) {
        if epoch < self.new_epoch {
            return; // line 41 precondition
        }
        self.status = Status::Reconfiguring;
        self.new_epoch = epoch;
        ctx.send(
            from,
            Msg::ProbeAck {
                initialized: self.initialized,
                epoch,
                shard: self.shard,
            },
        );
    }

    /// Lines 45–55: handle probe replies — either finish probing (an
    /// initialised process was found and becomes the new leader) or descend to
    /// the previous epoch.
    fn handle_probe_ack(
        &mut self,
        from: ProcessId,
        initialized: bool,
        epoch: Epoch,
        shard: ShardId,
        ctx: &mut Context<'_, Msg>,
    ) {
        let Some(recon) = self.recon.as_mut() else {
            return;
        };
        if !matches!(recon.phase, ReconPhase::Probing)
            || recon.shard != shard
            || recon.recon_epoch != epoch
        {
            return;
        }
        if !recon.responders.contains(&from) {
            recon.responders.push(from);
        }
        if initialized {
            if !recon.initialized.contains(&from) {
                recon.initialized.push(from);
            }
            // Lines 45–50, refined: an initialised responder makes the new
            // epoch viable, but finishing immediately would draft spares in
            // place of warm replicas whose probe replies are still in flight.
            // Finish at once only when every probed member has answered;
            // otherwise wait out a short grace period for the stragglers.
            let all_answered = recon
                .probed_members
                .iter()
                .all(|p| recon.responders.contains(p));
            if all_answered {
                self.finish_probe(ctx);
            } else if recon.grace_timer.is_none() {
                ctx.ctrl_milestone(CtrlMilestone::ProbeGrace, Some(shard), epoch.as_u64());
                recon.grace_timer = Some(ctx.set_timer(PROBE_GRACE, PROBE_GRACE_TICK));
            }
        } else if recon.initialized.is_empty()
            && !recon.descended_for_current
            && recon.probed_members.contains(&from)
        {
            // Lines 51–55: the probed epoch is not operational; probe the
            // preceding epoch.
            recon.descended_for_current = true;
            match recon.probed_epoch.prev() {
                Some(prev) => {
                    recon.probed_epoch = prev;
                    recon.phase = ReconPhase::AwaitingGet;
                    let shard = recon.shard;
                    ctx.send(self.cs, Msg::CsGet { shard, epoch: prev });
                }
                None => {
                    // No earlier epoch exists: all shard data is lost. The
                    // paper's liveness assumption (Assumption 1) excludes this.
                    ctx.add_counter("reconfiguration_stuck", 1);
                    self.recon = None;
                }
            }
        }
    }

    /// Lines 45–50: end probing, compute the new membership and CAS it.
    ///
    /// The new leader is the previous epoch's leader when it responded
    /// initialised, otherwise the first initialised responder. The membership
    /// prefers initialised responders over other responders over spares, so
    /// warm replicas (which already hold the shard's certification log) are
    /// never discarded in favour of fresh processes that would need a full
    /// state transfer.
    fn finish_probe(&mut self, ctx: &mut Context<'_, Msg>) {
        let Some(recon) = self.recon.as_mut() else {
            return;
        };
        if !matches!(recon.phase, ReconPhase::Probing) || recon.initialized.is_empty() {
            return;
        }
        let excluded: BTreeSet<ProcessId> = recon.exclude.iter().copied().collect();
        let leader = recon
            .prev_leader
            .filter(|p| recon.initialized.contains(p) && !excluded.contains(p))
            .unwrap_or(recon.initialized[0]);
        // Initialised responders first, then the rest; `plan` skips the
        // duplicates this chaining produces.
        let preferred: Vec<ProcessId> = recon
            .initialized
            .iter()
            .chain(recon.responders.iter())
            .copied()
            .filter(|p| *p != leader)
            .collect();
        let mut planner = MembershipPlanner::new(recon.target_size, recon.spares.iter().copied());
        let members = planner.plan(leader, &preferred, &recon.exclude);
        let config = ShardConfiguration::new(recon.recon_epoch, members, leader);
        let expected = recon
            .recon_epoch
            .prev()
            .expect("recon_epoch is always a successor");
        recon.phase = ReconPhase::AwaitingCas { new_leader: leader };
        let shard = recon.shard;
        ctx.send(
            self.cs,
            Msg::CsCas {
                shard,
                expected,
                config,
            },
        );
    }

    /// The probe grace period elapsed: finish with the replies received.
    fn handle_probe_grace_tick(&mut self, ctx: &mut Context<'_, Msg>) {
        if let Some(recon) = self.recon.as_mut() {
            recon.grace_timer = None;
        }
        self.finish_probe(ctx);
    }

    /// The reconfiguration retry timer fired with the reconfiguration still
    /// unfinished: some message of the probe exchange (a probe, a reply, the
    /// CAS request or its reply) was lost to a link fault or a crash.
    /// Restart the whole attempt from `get_last`. This is safe in every
    /// phase: probes are idempotent, and if a CAS actually succeeded while
    /// its reply was lost, `get_last` now returns the installed epoch and
    /// the fresh probe targets its members with the next one.
    fn handle_recon_retry_tick(&mut self, ctx: &mut Context<'_, Msg>) {
        let Some(recon) = self.recon.as_mut() else {
            return;
        };
        recon.retries += 1;
        if recon.retries > RECON_RETRY_CAP {
            // The shard looks unrecoverable; stop keeping the event queue
            // alive. A later `StartReconfigure` can always try again.
            if let Some(id) = recon.grace_timer.take() {
                ctx.cancel_timer(id);
            }
            self.recon = None;
            ctx.add_counter("reconfiguration_abandoned", 1);
            return;
        }
        let shard = recon.shard;
        recon.phase = ReconPhase::AwaitingGetLast;
        recon.responders.clear();
        recon.initialized.clear();
        // A grace timer armed by the abandoned round must not fire into the
        // new one and finish it early with a partial responder set.
        if let Some(id) = recon.grace_timer.take() {
            ctx.cancel_timer(id);
        }
        recon.descended_for_current = false;
        ctx.add_counter("reconfiguration_reprobes", 1);
        ctx.send(self.cs, Msg::CsGetLast { shard });
        ctx.set_timer(RECON_RETRY, RECON_RETRY_TICK);
    }

    /// Line 54 continued: the configuration service returned the membership of
    /// the next epoch to probe.
    fn handle_cs_get_reply(
        &mut self,
        shard: ShardId,
        epoch: Epoch,
        config: Option<ShardConfiguration>,
        ctx: &mut Context<'_, Msg>,
    ) {
        let Some(recon) = self.recon.as_mut() else {
            return;
        };
        if recon.shard != shard
            || !matches!(recon.phase, ReconPhase::AwaitingGet)
            || recon.probed_epoch != epoch
        {
            return;
        }
        match config {
            Some(config) => {
                recon.probed_members = config.members.clone();
                recon.phase = ReconPhase::Probing;
                recon.descended_for_current = false;
                let e = recon.recon_epoch;
                let targets = recon.probed_members.clone();
                ctx.send_to_many(targets, Msg::Probe { epoch: e });
            }
            None => match recon.probed_epoch.prev() {
                Some(prev) => {
                    recon.probed_epoch = prev;
                    let s = recon.shard;
                    ctx.send(
                        self.cs,
                        Msg::CsGet {
                            shard: s,
                            epoch: prev,
                        },
                    );
                }
                None => {
                    ctx.add_counter("reconfiguration_stuck", 1);
                    self.recon = None;
                }
            },
        }
    }

    /// Lines 49–50: the compare-and-swap outcome — on success, notify the new
    /// leader.
    fn handle_cs_cas_reply(
        &mut self,
        shard: ShardId,
        ok: bool,
        config: ShardConfiguration,
        ctx: &mut Context<'_, Msg>,
    ) {
        let Some(recon) = self.recon.as_ref() else {
            return;
        };
        let ReconPhase::AwaitingCas { new_leader } = recon.phase else {
            return;
        };
        if recon.shard != shard {
            return;
        }
        self.recon = None; // probing ← false
        if ok {
            ctx.ctrl_milestone(
                CtrlMilestone::ConfigChosen,
                Some(shard),
                config.epoch.as_u64(),
            );
            ctx.send(
                new_leader,
                Msg::NewConfig {
                    epoch: config.epoch,
                    members: config.members,
                },
            );
        } else {
            ctx.add_counter("reconfiguration_cas_lost", 1);
        }
    }

    /// Lines 56–60: this replica becomes the new leader of its shard.
    fn handle_new_config(
        &mut self,
        epoch: Epoch,
        members: Vec<ProcessId>,
        ctx: &mut Context<'_, Msg>,
    ) {
        if epoch < self.new_epoch {
            return;
        }
        let previous_leader = self.leader.get(&self.shard).copied();
        self.status = Status::Leader;
        self.new_epoch = epoch;
        self.epoch.insert(self.shard, epoch);
        self.members.insert(self.shard, members.clone());
        self.leader.insert(self.shard, self.id);
        if previous_leader != Some(self.id) {
            ctx.ctrl_milestone(
                CtrlMilestone::LeaderHandoff,
                Some(self.shard),
                epoch.as_u64(),
            );
        }
        ctx.ctrl_milestone(
            CtrlMilestone::ShardOperational,
            Some(self.shard),
            epoch.as_u64(),
        );
        // Line 59: `next` is implicitly the length of the certification log.
        // Line 60: transfer state to the new followers.
        let followers: Vec<ProcessId> = members.iter().copied().filter(|p| *p != self.id).collect();
        let log = self.log.clone();
        for follower in followers {
            ctx.send(
                follower,
                Msg::NewState {
                    epoch,
                    members: members.clone(),
                    leader: self.id,
                    log: log.clone(),
                },
            );
        }
        ctx.add_counter("became_leader", 1);
    }

    /// Lines 61–66: a new follower installs the leader's state.
    fn handle_new_state(
        &mut self,
        epoch: Epoch,
        members: Vec<ProcessId>,
        leader: ProcessId,
        log: CertificationLog,
        ctx: &mut Context<'_, Msg>,
    ) {
        if epoch < self.new_epoch {
            return; // line 62 precondition
        }
        self.initialized = true;
        self.status = Status::Follower;
        self.new_epoch = epoch;
        self.epoch.insert(self.shard, epoch);
        self.members.insert(self.shard, members);
        self.leader.insert(self.shard, leader);
        self.log = log;
        ctx.ctrl_milestone(
            CtrlMilestone::StateTransferred,
            Some(self.shard),
            epoch.as_u64(),
        );
        // State transfers normally carry the sender's index; rebuild one if
        // the log arrived without it so votes stay O(|payload|) after a
        // promotion of this replica.
        if !self.log.has_index() {
            self.log.set_certifier(self.index_factory.clone_box());
        }
    }

    /// A `get_last` reply that did not belong to an active reconfiguration:
    /// adopt the configuration if it is newer than the local view (the pushed
    /// `CONFIG_CHANGE` of lines 67–69 travels over faultable links and may
    /// have been lost).
    ///
    /// For the replica's *own* shard, adopting the view matters when this
    /// process has been excluded from the membership (it crashed and was
    /// replaced): it must stop acting as a leader or follower of a stale
    /// epoch — answering `PREPARE`s with a new-epoch tag from outside the
    /// membership would be unsafe — so it retires into `Reconfiguring` until
    /// some future configuration re-drafts it. Its coordinated transactions
    /// keep completing through the (now refreshed) view of the new members.
    fn handle_stale_view_refresh(&mut self, shard: ShardId, config: ShardConfiguration) {
        if config.epoch <= self.epoch_of(shard) {
            return;
        }
        if shard == self.shard {
            if config.members.contains(&self.id) {
                // We are a member of the newer epoch: NEW_STATE/NEW_CONFIG is
                // in flight (or was lost and a re-reconfiguration will supply
                // it); the epoch switch happens there, not here.
                return;
            }
            self.status = Status::Reconfiguring;
            if self.new_epoch < config.epoch {
                self.new_epoch = config.epoch;
            }
        }
        self.epoch.insert(shard, config.epoch);
        self.members.insert(shard, config.members.clone());
        self.leader.insert(shard, config.leader);
    }

    /// Lines 67–69: learn about another shard's new configuration.
    fn handle_config_change(
        &mut self,
        shard: ShardId,
        epoch: Epoch,
        members: Vec<ProcessId>,
        leader: ProcessId,
    ) {
        if shard == self.shard || self.epoch_of(shard) >= epoch {
            return; // line 68 precondition
        }
        self.epoch.insert(shard, epoch);
        self.members.insert(shard, members);
        self.leader.insert(shard, leader);
    }

    /// Coordinator re-transmission: re-sends `PREPARE` for coordinated
    /// transactions that have not completed (e.g. because a shard
    /// reconfigured mid-flight or a message raced with an epoch change).
    fn handle_retry_tick(&mut self, ctx: &mut Context<'_, Msg>) {
        self.retry_timer_armed = false;
        let now = ctx.now().as_micros();
        // Flow control: only transactions whose backoff deadline has passed
        // re-drive this tick — the fix for the per-tick full-pending volley
        // of the congestive collapse. Without flow control every undecided
        // transaction re-drives every tick (legacy).
        let pending: Vec<TxId> = self
            .coordinating
            .iter()
            .filter(|(tx, c)| !c.decided && self.backoff_due(**tx, now))
            .map(|(tx, _)| *tx)
            .collect();
        // A stalled coordinator may be working from a stale view: the pushed
        // CONFIG_CHANGE travels over faultable links. Refresh the view of
        // every shard a *due* pending transaction touches from the
        // configuration service (replies are handled by
        // `handle_stale_view_refresh`); backoff gates these polls too, so a
        // backlogged coordinator does not flood the configuration service.
        if !pending.is_empty() {
            let mut stale_shards: BTreeSet<ShardId> = BTreeSet::new();
            for tx in &pending {
                if let Some(coord) = self.coordinating.get(tx) {
                    stale_shards.extend(coord.shards.iter().copied());
                }
            }
            for shard in stale_shards {
                ctx.send(self.cs, Msg::CsGetLast { shard });
            }
        }
        for tx in pending {
            if self.flow.enabled {
                let attempt = self.retry_backoff.get(&tx).map(|b| b.attempt).unwrap_or(0);
                ctx.obs_milestone(tx, TxMilestone::Retry, u64::from(attempt));
                ctx.obs_gauge("obs_backoff_attempt", f64::from(attempt));
                self.backoff_fired(tx, now);
            }
            let coord = self.coordinating.get(&tx).expect("pending").clone();
            // Resend only to shards that are not yet complete in the current epoch.
            let mut stale_shards = Vec::new();
            for shard in &coord.shards {
                let epoch = self.epoch_of(*shard);
                let complete = coord
                    .progress
                    .get(shard)
                    .and_then(|m| m.get(&epoch))
                    .map(|p| {
                        let leader = self.leader.get(shard).copied();
                        let required: BTreeSet<ProcessId> = self
                            .members_of(*shard)
                            .iter()
                            .copied()
                            .filter(|q| Some(*q) != leader)
                            .collect();
                        p.vote.is_some() && required.is_subset(&p.acks)
                    })
                    .unwrap_or(false);
                if !complete {
                    stale_shards.push(*shard);
                }
            }
            if !stale_shards.is_empty() {
                self.send_prepares(ctx, tx, &coord, Some(&stale_shards));
            }
        }
        self.arm_retry_timer(ctx);
    }
}

impl Actor<Msg> for Replica {
    fn on_message(&mut self, from: ProcessId, msg: Msg, ctx: &mut Context<'_, Msg>) {
        match msg {
            Msg::Certify {
                tx,
                payload,
                client,
            } => self.handle_certify(tx, payload, client, ctx),
            Msg::Prepare {
                tx,
                payload,
                shards,
                client,
            } => self.handle_prepare(from, tx, payload, shards, client, ctx),
            Msg::PrepareAck {
                epoch,
                shard,
                pos,
                tx,
                payload,
                vote,
                shards,
                client,
                frontier,
            } => self.handle_prepare_ack(
                from, epoch, shard, pos, tx, payload, vote, shards, client, frontier, ctx,
            ),
            Msg::Accept {
                epoch,
                shard,
                pos,
                tx,
                payload,
                vote,
                shards,
                client,
            } => self.handle_accept(
                from, epoch, shard, pos, tx, payload, vote, shards, client, ctx,
            ),
            Msg::AcceptAck {
                shard,
                epoch,
                pos,
                tx,
                vote,
                frontier,
            } => self.handle_accept_ack(from, shard, epoch, pos, tx, vote, frontier, ctx),
            Msg::DecisionShard {
                epoch,
                pos,
                decision,
                truncate_to,
            } => self.handle_decision_shard(epoch, pos, decision, truncate_to, ctx),
            Msg::DecisionClient { .. } => {}
            Msg::Retry { tx } => self.handle_retry(tx, ctx),
            Msg::DecisionAck { tx } => self.handle_decision_ack(tx, ctx),
            Msg::AckDecided { tx } => self.handle_ack_decided(tx, ctx),
            Msg::TxDecided {
                tx,
                decision,
                client,
            } => self.handle_tx_decided(tx, decision, client, ctx),
            Msg::PrepareBatch { batch } => self.handle_prepare_batch(from, batch.items, ctx),
            Msg::PrepareAckBatch {
                epoch,
                shard,
                items,
                frontier,
            } => self.handle_prepare_ack_batch(from, epoch, shard, items, frontier, ctx),
            Msg::AcceptBatch {
                epoch,
                shard,
                items,
            } => self.handle_accept_batch(from, epoch, shard, items, ctx),
            Msg::AcceptAckBatch {
                shard,
                epoch,
                items,
                frontier,
            } => self.handle_accept_ack_batch(from, shard, epoch, items, frontier, ctx),
            Msg::DecisionBatch {
                epoch,
                items,
                truncate_to,
            } => self.handle_decision_batch(epoch, items, truncate_to, ctx),
            Msg::StartReconfigure {
                shard,
                spares,
                target_size,
                exclude,
            } => self.handle_start_reconfigure(shard, spares, target_size, exclude, ctx),
            Msg::Probe { epoch } => self.handle_probe(from, epoch, ctx),
            Msg::ProbeAck {
                initialized,
                epoch,
                shard,
            } => self.handle_probe_ack(from, initialized, epoch, shard, ctx),
            Msg::NewConfig { epoch, members } => self.handle_new_config(epoch, members, ctx),
            Msg::NewState {
                epoch,
                members,
                leader,
                log,
            } => self.handle_new_state(epoch, members, leader, log, ctx),
            Msg::ConfigChange {
                shard,
                epoch,
                members,
                leader,
            } => self.handle_config_change(shard, epoch, members, leader),
            Msg::CsGetLastReply { shard, config } => {
                self.handle_cs_get_last_reply(shard, config, ctx)
            }
            Msg::CsGetReply {
                shard,
                epoch,
                config,
            } => self.handle_cs_get_reply(shard, epoch, config, ctx),
            Msg::CsCasReply { shard, ok, config } => {
                self.handle_cs_cas_reply(shard, ok, config, ctx)
            }
            // Requests addressed to the configuration service are ignored by
            // replicas.
            Msg::CsGetLast { .. } | Msg::CsGet { .. } | Msg::CsCas { .. } => {}
        }
    }

    fn on_timer(&mut self, tag: TimerTag, ctx: &mut Context<'_, Msg>) {
        if tag == RETRY_TICK {
            self.handle_retry_tick(ctx);
        } else if tag == BATCH_TICK {
            self.batch_timer_armed = false;
            // A timer flush of a partial batch = idle pipeline: an adaptive
            // batcher shrinks back toward the unbatched fast path.
            let txs = self.batcher.drain_idle();
            self.flush_prepare_batch(txs, ctx);
        } else if tag == PROBE_GRACE_TICK {
            self.handle_probe_grace_tick(ctx);
        } else if tag == RECON_RETRY_TICK {
            self.handle_recon_retry_tick(ctx);
        }
    }

    /// Crash-restart recovery (the PR 2 recovery path, now exercised by the
    /// chaos nemesis): the certification log — checkpoint plus retained
    /// suffix — is the replica's stable storage; everything else is volatile.
    /// The in-memory certification index is rebuilt from the checkpoint's
    /// committed residue and the suffix, exactly as a `NEW_STATE` transfer
    /// would. Coordinator state is lost: clients (or recovery coordinators)
    /// re-drive undecided transactions.
    fn on_restart(&mut self, ctx: &mut Context<'_, Msg>) {
        self.coordinating.clear();
        self.in_flight = 0;
        self.admission.clear();
        self.retry_backoff.clear();
        self.recon = None;
        self.retry_timer_armed = false;
        self.batcher = VoteBatcher::new(self.batching);
        self.batch_timer_armed = false;
        self.log.set_certifier(self.index_factory.clone_box());
        ctx.add_counter("replica_restarts", 1);
    }
}
