//! Protocol messages (the message vocabulary of Figure 1).
//!
//! Compared with the paper's pseudocode, messages additionally carry two
//! pieces of routing metadata that the paper keeps implicit in global
//! functions: the set `shards(t)` (the paper's `shards : T → 2^S`) and the
//! submitting client (`client : T → P`). Carrying them in `PREPARE`,
//! `PREPARE_ACK` and `ACCEPT` lets any replica act as a recovery coordinator
//! without a shared directory, and does not change the protocol's behaviour.
//!
//! For checkpointed log truncation (§6's garbage collection), replicas gossip
//! their *decided frontier* on the existing exchanges: the leader's frontier
//! rides on `PREPARE_ACK`, each follower's on `ACCEPT_ACK`, and the
//! coordinator folds them into a cluster-wide minimum that rides on
//! `DECISION` back to the shard's members — zero additional messages on the
//! commit path.
//!
//! The batched certification pipeline (see [`crate::batch`]) adds `*_BATCH`
//! variants of the four commit-path messages, each carrying per-position
//! items so one round certifies many transactions; frontier gossip rides the
//! batched messages exactly as it rides the singles.

use ratc_config::ShardConfiguration;
use ratc_types::{Decision, Epoch, Payload, Position, ProcessId, ShardId, TxId};

use crate::batch::{AcceptAckItem, DecisionItem, PrepareBatch, PreparedItem};
use crate::log::CertificationLog;

/// Messages of the message-passing atomic commit protocol.
#[derive(Debug, Clone)]
pub enum Msg {
    // ------------------------------------------------------------------
    // Transaction processing (failure-free path, Figure 2a)
    // ------------------------------------------------------------------
    /// `certify(t, l)` submitted to the replica chosen as coordinator
    /// (line 1). `client` is the process to which the final decision must be
    /// reported.
    Certify {
        /// Transaction identifier.
        tx: TxId,
        /// Full (unrestricted) transaction payload.
        payload: Payload,
        /// The client that issued the transaction.
        client: ProcessId,
    },
    /// `PREPARE(t, l)` from a coordinator to a shard leader (line 3 / 73).
    /// `payload` is `None` for the `⊥` payload used in coordinator recovery.
    Prepare {
        /// Transaction identifier.
        tx: TxId,
        /// Shard-restricted payload, or `None` for `⊥`.
        payload: Option<Payload>,
        /// The shards that certify this transaction (`shards(t)`).
        shards: Vec<ShardId>,
        /// The client that issued the transaction (`client(t)`).
        client: ProcessId,
    },
    /// `PREPARE_ACK(e, s, k, t, l, d)` from a shard leader back to the
    /// coordinator (lines 7, 17).
    PrepareAck {
        /// The leader's epoch for its shard.
        epoch: Epoch,
        /// The leader's shard.
        shard: ShardId,
        /// Position assigned to the transaction in the certification order.
        pos: Position,
        /// Transaction identifier.
        tx: TxId,
        /// The payload stored by the leader (shard-restricted, possibly `ε`).
        payload: Payload,
        /// The leader's vote.
        vote: Decision,
        /// `shards(t)`, echoed for recovery coordinators.
        shards: Vec<ShardId>,
        /// `client(t)`, echoed for recovery coordinators.
        client: ProcessId,
        /// The leader's decided frontier, gossiped for log truncation.
        frontier: Position,
    },
    /// `ACCEPT(e, k, t, l, d)` from the coordinator to the followers of a
    /// shard (line 20).
    Accept {
        /// Epoch of the shard the followers must be in.
        epoch: Epoch,
        /// The shard being addressed.
        shard: ShardId,
        /// Position in the certification order.
        pos: Position,
        /// Transaction identifier.
        tx: TxId,
        /// Shard-restricted payload.
        payload: Payload,
        /// The leader's vote.
        vote: Decision,
        /// `shards(t)`, stored for recovery coordinators.
        shards: Vec<ShardId>,
        /// `client(t)`, stored for recovery coordinators.
        client: ProcessId,
    },
    /// `ACCEPT_ACK(s, e, k, t, d)` from a follower back to the coordinator
    /// (line 25).
    AcceptAck {
        /// The follower's shard.
        shard: ShardId,
        /// The follower's epoch.
        epoch: Epoch,
        /// Position in the certification order.
        pos: Position,
        /// Transaction identifier.
        tx: TxId,
        /// The vote being acknowledged.
        vote: Decision,
        /// The follower's decided frontier, gossiped for log truncation.
        frontier: Position,
    },
    /// `DECISION(e, k, d)` from the coordinator to the members of a shard
    /// (line 29).
    DecisionShard {
        /// The shard's epoch as known to the coordinator.
        epoch: Epoch,
        /// Position in the certification order.
        pos: Position,
        /// The final decision.
        decision: Decision,
        /// Cluster-wide minimum decided frontier the coordinator observed for
        /// this shard: members may safely truncate their log below it (each
        /// clamps to its own decided frontier anyway).
        truncate_to: Position,
    },
    /// `DECISION(t, d)` from the coordinator to the client (line 27).
    DecisionClient {
        /// Transaction identifier.
        tx: TxId,
        /// The final decision.
        decision: Decision,
    },
    /// External trigger for `retry(k)` (line 70): the receiving replica
    /// becomes a new coordinator for `tx` if it has the transaction prepared.
    Retry {
        /// Transaction to re-coordinate.
        tx: TxId,
    },
    /// Decision-map compaction, leg 1 (opt-in, see
    /// [`crate::replica::TruncationConfig::compaction`]): the client
    /// acknowledges a received `DECISION(t, d)` back to the coordinator that
    /// sent it. Not part of the paper's vocabulary; absent unless compaction
    /// is enabled, so default schedules are untouched.
    DecisionAck {
        /// The acknowledged transaction.
        tx: TxId,
    },
    /// Decision-map compaction, leg 2: the coordinator, having seen the
    /// client's [`Msg::DecisionAck`], tells every member of every shard of
    /// `tx` that the decision is fully acknowledged — its checkpoint record
    /// can never be asked for again and may be dropped
    /// ([`crate::log::CertificationLog::ack_decided`]).
    AckDecided {
        /// The fully acknowledged transaction.
        tx: TxId,
    },
    /// Reply to `PREPARE` for a transaction already folded into the leader's
    /// checkpoint: it is decided and its slot was truncated, so the final
    /// decision is returned directly (nothing remains to re-ack). Gray &
    /// Lamport's requirement that truncation never lose a decision recovery
    /// still needs is met by the checkpoint's per-transaction decision map.
    TxDecided {
        /// The truncated transaction.
        tx: TxId,
        /// Its final decision.
        decision: Decision,
        /// `client(t)`, so the coordinator can forward the decision.
        client: ProcessId,
    },

    // ------------------------------------------------------------------
    // Batched certification pipeline (see `crate::batch`)
    // ------------------------------------------------------------------
    /// `PREPARE_BATCH`: many `PREPARE`s coalesced by a coordinator's
    /// `VoteBatcher` into one message per shard leader. The leader certifies
    /// the items in order, assigning fresh entries a contiguous position
    /// range.
    PrepareBatch {
        /// The coalesced batch, items in submission order.
        batch: PrepareBatch,
    },
    /// `PREPARE_ACK_BATCH`: the leader's votes for a whole batch, one
    /// message back to the coordinator. Items carry individual positions and
    /// votes; `TxDecided` replies for truncated transactions are sent
    /// separately so that fast path stays per-transaction.
    PrepareAckBatch {
        /// The leader's epoch for its shard.
        epoch: Epoch,
        /// The leader's shard.
        shard: ShardId,
        /// Per-slot positions, payloads and votes.
        items: Vec<PreparedItem>,
        /// The leader's decided frontier, gossiped for log truncation.
        frontier: Position,
    },
    /// `ACCEPT_BATCH`: one message per follower persisting a whole batch of
    /// votes (line 20, amortised).
    AcceptBatch {
        /// Epoch of the shard the followers must be in.
        epoch: Epoch,
        /// The shard being addressed.
        shard: ShardId,
        /// Per-slot positions, payloads and votes.
        items: Vec<PreparedItem>,
    },
    /// `ACCEPT_ACK_BATCH`: a follower's acknowledgement of a whole batch
    /// (line 25, amortised).
    AcceptAckBatch {
        /// The follower's shard.
        shard: ShardId,
        /// The follower's epoch.
        epoch: Epoch,
        /// Per-slot acknowledgements.
        items: Vec<AcceptAckItem>,
        /// The follower's decided frontier, gossiped for log truncation.
        frontier: Position,
    },
    /// `DECISION_BATCH`: the final decisions of every batch transaction that
    /// completed together, one message per shard member (line 29, amortised).
    DecisionBatch {
        /// The shard's epoch as known to the coordinator.
        epoch: Epoch,
        /// Per-slot decisions.
        items: Vec<DecisionItem>,
        /// Cluster-wide minimum decided frontier (see [`Msg::DecisionShard`]).
        truncate_to: Position,
    },

    // ------------------------------------------------------------------
    // Reconfiguration (Figure 2b)
    // ------------------------------------------------------------------
    /// External trigger for `reconfigure(s)` (line 33).
    StartReconfigure {
        /// The shard to reconfigure.
        shard: ShardId,
        /// Fresh processes that may be added to the new configuration.
        spares: Vec<ProcessId>,
        /// Target configuration size (`f + 1`).
        target_size: usize,
        /// Processes that must not be reused (e.g. suspected of failure).
        exclude: Vec<ProcessId>,
    },
    /// `PROBE(e)` from the reconfiguring process (line 39 / 55).
    Probe {
        /// The new epoch the receiver is asked to join.
        epoch: Epoch,
    },
    /// `PROBE_ACK(initialized, e, s)` (line 44).
    ProbeAck {
        /// Whether the responder has ever been initialised.
        initialized: bool,
        /// The epoch it was asked to join.
        epoch: Epoch,
        /// The responder's shard.
        shard: ShardId,
    },
    /// `NEW_CONFIG(e, M)` from the reconfiguring process to the new leader
    /// (line 50).
    NewConfig {
        /// The new epoch.
        epoch: Epoch,
        /// The new membership.
        members: Vec<ProcessId>,
    },
    /// `NEW_STATE(e, M, txn, payload, vote, dec, phase)` from the new leader
    /// to its followers (line 60).
    NewState {
        /// The new epoch.
        epoch: Epoch,
        /// The new membership.
        members: Vec<ProcessId>,
        /// The new leader.
        leader: ProcessId,
        /// The leader's full certification log.
        log: CertificationLog,
    },
    /// `CONFIG_CHANGE(s, e, M, pl)` pushed by the configuration service to the
    /// members of other shards (line 67).
    ConfigChange {
        /// The reconfigured shard.
        shard: ShardId,
        /// Its new epoch.
        epoch: Epoch,
        /// Its new membership.
        members: Vec<ProcessId>,
        /// Its new leader.
        leader: ProcessId,
    },

    // ------------------------------------------------------------------
    // Configuration-service RPCs (get_last / get / compare_and_swap of §3)
    // ------------------------------------------------------------------
    /// `get_last(s)` request.
    CsGetLast {
        /// The shard queried.
        shard: ShardId,
    },
    /// Reply to [`Msg::CsGetLast`].
    CsGetLastReply {
        /// The shard queried.
        shard: ShardId,
        /// Its latest stored configuration.
        config: ShardConfiguration,
    },
    /// `get(s, e)` request.
    CsGet {
        /// The shard queried.
        shard: ShardId,
        /// The epoch queried.
        epoch: Epoch,
    },
    /// Reply to [`Msg::CsGet`].
    CsGetReply {
        /// The shard queried.
        shard: ShardId,
        /// The epoch queried.
        epoch: Epoch,
        /// The configuration stored at that epoch, if any.
        config: Option<ShardConfiguration>,
    },
    /// `compare_and_swap(s, e, c)` request.
    CsCas {
        /// The shard being reconfigured.
        shard: ShardId,
        /// The epoch the caller believes to be current.
        expected: Epoch,
        /// The new configuration to store.
        config: ShardConfiguration,
    },
    /// Reply to [`Msg::CsCas`].
    CsCasReply {
        /// The shard being reconfigured.
        shard: ShardId,
        /// Whether the compare-and-swap succeeded.
        ok: bool,
        /// The configuration that was proposed.
        config: ShardConfiguration,
    },
}

impl Msg {
    /// A short name for metrics and traces.
    pub fn kind(&self) -> &'static str {
        match self {
            Msg::Certify { .. } => "certify",
            Msg::Prepare { .. } => "prepare",
            Msg::PrepareAck { .. } => "prepare_ack",
            Msg::Accept { .. } => "accept",
            Msg::AcceptAck { .. } => "accept_ack",
            Msg::DecisionShard { .. } => "decision_shard",
            Msg::DecisionClient { .. } => "decision_client",
            Msg::Retry { .. } => "retry",
            Msg::DecisionAck { .. } => "decision_ack",
            Msg::AckDecided { .. } => "ack_decided",
            Msg::TxDecided { .. } => "tx_decided",
            Msg::PrepareBatch { .. } => "prepare_batch",
            Msg::PrepareAckBatch { .. } => "prepare_ack_batch",
            Msg::AcceptBatch { .. } => "accept_batch",
            Msg::AcceptAckBatch { .. } => "accept_ack_batch",
            Msg::DecisionBatch { .. } => "decision_batch",
            Msg::StartReconfigure { .. } => "start_reconfigure",
            Msg::Probe { .. } => "probe",
            Msg::ProbeAck { .. } => "probe_ack",
            Msg::NewConfig { .. } => "new_config",
            Msg::NewState { .. } => "new_state",
            Msg::ConfigChange { .. } => "config_change",
            Msg::CsGetLast { .. } => "cs_get_last",
            Msg::CsGetLastReply { .. } => "cs_get_last_reply",
            Msg::CsGet { .. } => "cs_get",
            Msg::CsGetReply { .. } => "cs_get_reply",
            Msg::CsCas { .. } => "cs_cas",
            Msg::CsCasReply { .. } => "cs_cas_reply",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct_for_commit_path() {
        let kinds = [
            Msg::Certify {
                tx: TxId::new(1),
                payload: Payload::empty(),
                client: ProcessId::new(0),
            }
            .kind(),
            Msg::Retry { tx: TxId::new(1) }.kind(),
            Msg::Probe { epoch: Epoch::ZERO }.kind(),
            Msg::DecisionClient {
                tx: TxId::new(1),
                decision: Decision::Commit,
            }
            .kind(),
        ];
        let mut unique = kinds.to_vec();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), kinds.len());
    }
}
