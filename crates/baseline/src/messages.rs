//! Messages of the baseline 2PC-over-Paxos TCS.

use ratc_paxos::PaxosMsg;
use ratc_types::{Decision, Payload, ProcessId, ShardId, TxId};

/// One certified vote inside a [`ShardCommand`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardVote {
    /// The transaction.
    pub tx: TxId,
    /// The shard-restricted payload.
    pub payload: Payload,
    /// The leader's vote.
    pub vote: Decision,
}

/// Command replicated in a shard's Multi-Paxos log: a *batch* of prepared
/// votes occupying one log slot (batched log appends — the batching pipeline
/// of `ratc_core::batch` applied to the baseline). With batching disabled
/// every command carries exactly one vote, which is the seed behaviour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardCommand {
    /// The batched votes, in certification order.
    pub items: Vec<ShardVote>,
}

/// Command replicated in the transaction manager's Multi-Paxos log: the final
/// decision on a transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TmCommand {
    /// The transaction.
    pub tx: TxId,
    /// The final decision.
    pub decision: Decision,
    /// The client to notify.
    pub client: ProcessId,
    /// The shards that participated.
    pub shards: Vec<ShardId>,
}

/// Messages of the baseline TCS.
#[derive(Debug, Clone)]
pub enum BaselineMsg {
    /// `certify(t, l)` submitted to the transaction manager.
    Certify {
        /// Transaction identifier.
        tx: TxId,
        /// Full payload.
        payload: Payload,
        /// Issuing client.
        client: ProcessId,
    },
    /// 2PC `PREPARE` from the transaction manager to a shard leader.
    Prepare {
        /// Transaction identifier.
        tx: TxId,
        /// Shard-restricted payload.
        payload: Payload,
    },
    /// All votes of one chosen [`ShardCommand`] batch, reported to the
    /// transaction manager in a single message once the command is *chosen*
    /// in the shard's Paxos log (a singleton batch when batching is
    /// disabled).
    // analyze:allow(unpaired-batch): baseline votes always travel batched —
    // a singleton batch IS the unbatched path (one vote per Paxos command
    // with batching off, pinned by the batching differential suite), so a
    // separate `Vote` twin would be dead vocabulary.
    VoteBatch {
        /// The voting shard.
        shard: ShardId,
        /// The replicated `(transaction, vote)` pairs.
        votes: Vec<(TxId, Decision)>,
    },
    /// Final decision distributed to the shard leaders once it is chosen in
    /// the transaction manager's Paxos log.
    Decision {
        /// Transaction identifier.
        tx: TxId,
        /// The decision.
        decision: Decision,
    },
    /// Final decision reported to the client.
    DecisionClient {
        /// Transaction identifier.
        tx: TxId,
        /// The decision.
        decision: Decision,
    },
    /// Paxos traffic of a shard's replication group.
    ShardPaxos {
        /// The shard whose group this message belongs to.
        shard: ShardId,
        /// The Paxos message.
        msg: PaxosMsg<ShardCommand>,
    },
    /// Paxos traffic of the transaction manager's replication group.
    TmPaxos {
        /// The Paxos message.
        msg: PaxosMsg<TmCommand>,
    },
}

impl BaselineMsg {
    /// A short name for metrics and traces.
    pub fn kind(&self) -> &'static str {
        match self {
            BaselineMsg::Certify { .. } => "certify",
            BaselineMsg::Prepare { .. } => "prepare",
            BaselineMsg::VoteBatch { .. } => "vote_batch",
            BaselineMsg::Decision { .. } => "decision",
            BaselineMsg::DecisionClient { .. } => "decision_client",
            BaselineMsg::ShardPaxos { .. } => "shard_paxos",
            BaselineMsg::TmPaxos { .. } => "tm_paxos",
        }
    }
}
