//! Baseline shard replicas: certification + a Multi-Paxos log per shard.

use std::collections::BTreeMap;

use ratc_core::batch::{BatchingConfig, VoteBatcher};
use ratc_core::flow::FlowControlConfig;
use ratc_paxos::{Acceptor, PaxosMsg, Proposer, ReplicatedLog};
use ratc_sim::{Actor, BackoffState, Context, CtrlMilestone, TimerTag, TxMilestone};
#[cfg(debug_assertions)]
use ratc_types::MirrorCertifier;
use ratc_types::{
    CertificationPolicy, Decision, IndexedCertifier, Payload, Position, ProcessId, ShardId, TxId,
};

use crate::messages::{BaselineMsg, ShardCommand, ShardVote};

/// Timer tag used to flush a partially filled proposal batch.
const BATCH_TICK: TimerTag = 11;

/// Timer tag re-sending outstanding Paxos messages (lost `Accept`s would
/// otherwise strand their slots forever on lossy links).
const RETRANSMIT_TICK: TimerTag = 12;

/// Retransmission interval for outstanding Paxos work.
const RETRANSMIT: ratc_sim::SimDuration = ratc_sim::SimDuration::from_millis(20);

/// Consecutive retransmission ticks after which the leader stops re-arming
/// (20 simulated seconds — the Paxos majority looks permanently gone); any
/// new proposal re-arms the timer.
const RETRANSMIT_CAP: u32 = 1000;

/// A replica of one shard in the baseline design.
///
/// Every replica is a Paxos acceptor of its shard's group; the distinguished
/// leader additionally certifies transactions and proposes the resulting votes
/// to the group. A vote is reported to the transaction manager only once it is
/// chosen, i.e. durable at a majority of the `2f + 1` replicas.
///
/// # Bounded memory
///
/// Mirroring the checkpointed truncation of the RATC stacks, a decided
/// transaction's *payload* is dropped as soon as its decision arrives: the
/// incremental certifier already folded a committed payload into its per-key
/// summary, so only the compact `decisions` map (the 2PC outcome log recovery
/// still needs) is retained. `prepared`/`in_flight` therefore hold payloads
/// only for the undecided window, not the whole history.
pub struct BaselineShardReplica {
    id: ProcessId,
    shard: ShardId,
    is_leader: bool,
    tm: ProcessId,
    group: Vec<ProcessId>,
    /// Incremental certifier answering votes in O(|payload|). Transitions are
    /// keyed by transaction id (transaction ids are globally unique, so they
    /// serve as positions).
    index: Box<dyn IndexedCertifier>,
    /// Pristine (empty) clone of the certifier, used by crash-restart
    /// recovery to rebuild the in-memory index from the durable Paxos log.
    index_factory: Box<dyn IndexedCertifier>,
    /// Debug builds keep a full set-based [`MirrorCertifier`] in lockstep and
    /// cross-check every vote against it; release builds drop it so decided
    /// payload memory is actually freed.
    #[cfg(debug_assertions)]
    mirror: MirrorCertifier,
    /// Pristine clone of the mirror for crash-restart recovery.
    #[cfg(debug_assertions)]
    mirror_factory: MirrorCertifier,
    acceptor: Acceptor<ShardCommand>,
    proposer: Option<Proposer<ShardCommand>>,
    log: ReplicatedLog<ShardCommand>,
    /// Chosen votes of *undecided* transactions: tx -> (payload, vote).
    prepared: BTreeMap<TxId, (Payload, Decision)>,
    /// Transactions proposed but whose vote is not chosen yet.
    in_flight: BTreeMap<TxId, (Payload, Decision)>,
    /// Final decisions (payload-free): the only per-transaction state kept
    /// for the whole history.
    decisions: BTreeMap<TxId, Decision>,
    phase1_started: bool,
    /// Ballot round of the current proposer incarnation; bumped on restart so
    /// a restarted leader re-establishes leadership with a fresh ballot.
    ballot_round: u64,
    /// `true` between a leader restart and the completion of Paxos log
    /// recovery (phase 1 plus re-choosing every recovered slot). While set,
    /// fresh certifications are deferred: commands accepted before the crash
    /// carry votes whose certifier locks are only re-established when the
    /// recovered slots are chosen, so certifying against the not-yet-caught-up
    /// index could approve conflicting transactions.
    recovering: bool,
    /// Batched log appends (see `ratc_core::batch`): certified votes are
    /// coalesced here and proposed as one Multi-Paxos command per batch.
    /// With batching disabled the batcher flushes on every push, i.e. one
    /// command per transaction — the seed behaviour.
    batching: BatchingConfig,
    batcher: VoteBatcher<ShardVote>,
    batch_timer_armed: bool,
    retransmit_armed: bool,
    /// Consecutive retransmission ticks; capped by [`RETRANSMIT_CAP`].
    retransmit_ticks: u32,
    /// Flow-control knobs (here: the Paxos retransmit backoff schedule).
    flow: FlowControlConfig,
    /// Backoff gating retransmissions; reset whenever a slot is chosen or a
    /// fresh command is proposed.
    retransmit_backoff: BackoffState,
}

impl BaselineShardReplica {
    /// Creates a replica. The harness later installs identifiers and group
    /// membership with [`BaselineShardReplica::install`].
    pub fn new<P>(shard: ShardId, policy: &P) -> Self
    where
        P: CertificationPolicy + ?Sized,
    {
        BaselineShardReplica {
            id: ProcessId::new(u64::MAX),
            shard,
            is_leader: false,
            tm: ProcessId::new(u64::MAX),
            group: Vec::new(),
            index: policy.indexed_certifier(shard),
            index_factory: policy.indexed_certifier(shard),
            #[cfg(debug_assertions)]
            mirror: MirrorCertifier::new(policy.shard_certifier(shard)),
            #[cfg(debug_assertions)]
            mirror_factory: MirrorCertifier::new(policy.shard_certifier(shard)),
            acceptor: Acceptor::new(ProcessId::new(u64::MAX)),
            proposer: None,
            log: ReplicatedLog::new(),
            prepared: BTreeMap::new(),
            in_flight: BTreeMap::new(),
            decisions: BTreeMap::new(),
            phase1_started: false,
            ballot_round: 0,
            recovering: false,
            batching: BatchingConfig::default(),
            batcher: VoteBatcher::new(BatchingConfig::default()),
            batch_timer_armed: false,
            retransmit_armed: false,
            retransmit_ticks: 0,
            flow: FlowControlConfig::default(),
            retransmit_backoff: BackoffState::default(),
        }
    }

    /// Sets the batching-pipeline knobs (default: disabled).
    pub fn set_batching(&mut self, batching: BatchingConfig) {
        self.batching = batching;
        self.batcher.set_config(batching);
    }

    /// Installs the flow-control configuration (retransmit backoff).
    pub fn set_flow(&mut self, flow: FlowControlConfig) {
        self.flow = flow;
    }

    /// Installs the replica's identity, the shard's Paxos group, whether this
    /// replica is the group's leader, and the transaction manager's address.
    pub fn install(&mut self, id: ProcessId, group: Vec<ProcessId>, leader: bool, tm: ProcessId) {
        self.id = id;
        self.acceptor = Acceptor::new(id);
        self.group = group.clone();
        self.is_leader = leader;
        self.tm = tm;
        if leader {
            self.proposer = Some(Proposer::new(id, group, 0));
        }
    }

    /// This replica's shard.
    pub fn shard(&self) -> ShardId {
        self.shard
    }

    /// Whether this replica is its shard's leader.
    pub fn is_leader(&self) -> bool {
        self.is_leader
    }

    /// Number of Multi-Paxos log slots chosen (replicated) at this replica's
    /// log view. With batched log appends each slot carries up to
    /// `max_batch` votes, so this counts commands, not transactions.
    pub fn chosen_slots(&self) -> usize {
        self.log.len()
    }

    /// Number of payload-bearing entries currently retained (undecided
    /// window). Bounded regardless of history length; decided transactions
    /// keep only their entry in the compact decision map.
    pub fn retained_payloads(&self) -> usize {
        self.prepared.len() + self.in_flight.len()
    }

    /// Number of decided transactions recorded (payload-free).
    pub fn decided_count(&self) -> usize {
        self.decisions.len()
    }

    fn route(
        &self,
        ctx: &mut Context<'_, BaselineMsg>,
        out: Vec<(ProcessId, PaxosMsg<ShardCommand>)>,
    ) {
        let shard = self.shard;
        for (to, msg) in out {
            if to == self.id {
                // Deliver to ourselves through the network like everyone else,
                // keeping message accounting uniform.
                ctx.send(to, BaselineMsg::ShardPaxos { shard, msg });
            } else {
                ctx.send(to, BaselineMsg::ShardPaxos { shard, msg });
            }
        }
    }

    /// The position under which a transaction's index transitions are keyed:
    /// transaction ids are globally unique, so they stand in for log slots.
    fn index_pos(tx: TxId) -> Position {
        Position::new(tx.as_u64())
    }

    // -- certifier transitions, applied to the index and (in debug builds)
    //    the set-based mirror in lockstep -----------------------------------

    fn certifier_prepare(&mut self, tx: TxId, payload: &Payload) {
        self.index.prepare(Self::index_pos(tx), payload);
        #[cfg(debug_assertions)]
        self.mirror.prepare(Self::index_pos(tx), payload);
    }

    fn certifier_release(&mut self, tx: TxId) {
        self.index.release(Self::index_pos(tx));
        #[cfg(debug_assertions)]
        self.mirror.release(Self::index_pos(tx));
    }

    fn certifier_commit(&mut self, tx: TxId, payload: &Payload) {
        self.index.apply_committed(Self::index_pos(tx), payload);
        #[cfg(debug_assertions)]
        self.mirror.apply_committed(Self::index_pos(tx), payload);
    }

    fn certify_and_propose(
        &mut self,
        tx: TxId,
        payload: Payload,
        ctx: &mut Context<'_, BaselineMsg>,
    ) {
        if !self.is_leader {
            return;
        }
        // Duplicate or re-transmitted PREPARE (lossy links, TM retries): the
        // vote must be *re-reported*, not swallowed — the original VOTE
        // message to the TM may have been the thing that was lost.
        if let Some((_, vote)) = self.prepared.get(&tx) {
            ctx.send(
                self.tm,
                BaselineMsg::VoteBatch {
                    shard: self.shard,
                    votes: vec![(tx, *vote)],
                },
            );
            return;
        }
        if self.in_flight.contains_key(&tx) || self.decisions.contains_key(&tx) {
            // Still replicating (the vote is reported once chosen), or
            // already decided (the TM re-externalises decisions itself).
            return;
        }
        // A restarted leader must finish Paxos log recovery before certifying
        // anything new; the TM's retry tick re-delivers this PREPARE later.
        if self.recovering {
            let recovered = self.proposer.as_ref().map(|p| !p.has_pending()) == Some(true);
            if !recovered {
                self.arm_retransmit_timer(ctx);
                return;
            }
            self.recovering = false;
            ctx.ctrl_milestone(CtrlMilestone::Recovered, Some(self.shard), self.id.as_u64());
        }
        let vote = self.index.vote(&payload);
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            vote,
            self.mirror.vote(&payload),
            "indexed vote diverged from the set-based mirror for {tx}"
        );
        if vote == Decision::Commit {
            self.certifier_prepare(tx, &payload);
        }
        self.in_flight.insert(tx, (payload.clone(), vote));
        // Batched log appends: coalesce certified votes into one Multi-Paxos
        // command. Disabled batching flushes on every push (one command per
        // transaction); a partially filled batch is flushed by the timer. A
        // flush-on-full is queue pressure, so an adaptive batcher grows its
        // target batch (`drain_full`); a timer flush of a partial batch means
        // the pipeline is idle and the target shrinks (`drain_idle`).
        if self.batcher.push(ShardVote { tx, payload, vote }) {
            let items = self.batcher.drain_full();
            self.flush_proposals(items, ctx);
        } else {
            self.arm_batch_timer(ctx);
        }
    }

    fn arm_batch_timer(&mut self, ctx: &mut Context<'_, BaselineMsg>) {
        if !self.batch_timer_armed && !self.batcher.is_empty() {
            ctx.set_timer(self.batching.max_delay, BATCH_TICK);
            self.batch_timer_armed = true;
        }
    }

    /// Proposes a drained batch as a single command occupying one Paxos
    /// log slot.
    fn flush_proposals(&mut self, items: Vec<ShardVote>, ctx: &mut Context<'_, BaselineMsg>) {
        if items.is_empty() {
            return;
        }
        // Same flush telemetry as the other stacks' batchers. With batching
        // disabled every push flushes a singleton immediately (the seed
        // behaviour), which is not a batch formation event — don't stamp it.
        if self.batching.enabled {
            ctx.obs_gauge("obs_batch_occupancy", items.len() as f64);
            if ctx.obs_enabled() {
                for item in &items {
                    ctx.obs_milestone(item.tx, TxMilestone::BatchFlush, items.len() as u64);
                }
            }
        }
        if !self.phase1_started {
            self.phase1_started = true;
            let out = self
                .proposer
                .as_mut()
                .expect("leader has a proposer")
                .start_phase1();
            self.route(ctx, out);
        }
        let proposer = self.proposer.as_mut().expect("leader has a proposer");
        let out = proposer.propose(ShardCommand { items });
        self.route(ctx, out);
        // A fresh proposal is progress: retransmits return to the fast
        // schedule.
        let (backoff, salt) = (self.flow.backoff, self.id.as_u64());
        self.retransmit_backoff
            .reset(&backoff, salt, ctx.now().as_micros());
        self.arm_retransmit_timer(ctx);
    }

    fn arm_retransmit_timer(&mut self, ctx: &mut Context<'_, BaselineMsg>) {
        // Called whenever new work arrives, which also resets the
        // fruitless-tick budget.
        self.retransmit_ticks = 0;
        let pending = self.proposer.as_ref().map(Proposer::has_pending) == Some(true);
        if !self.retransmit_armed && pending {
            ctx.set_timer(RETRANSMIT, RETRANSMIT_TICK);
            self.retransmit_armed = true;
        }
    }

    /// Re-sends outstanding Paxos messages: a dropped `Prepare`/`Accept`
    /// would otherwise strand its ballot or slot forever. Repeats are
    /// idempotent at the acceptors.
    fn handle_retransmit_tick(&mut self, ctx: &mut Context<'_, BaselineMsg>) {
        self.retransmit_armed = false;
        self.retransmit_ticks += 1;
        if self.retransmit_ticks > RETRANSMIT_CAP {
            ctx.add_counter("retransmits_abandoned", 1);
            return;
        }
        let now = ctx.now().as_micros();
        let due = !self.flow.enabled || self.retransmit_backoff.due(now);
        let pending = self.proposer.as_ref().map(Proposer::has_pending) == Some(true);
        if !pending {
            return;
        }
        if due {
            let proposer = self.proposer.as_mut().expect("checked above");
            let out = proposer.retransmit();
            self.route(ctx, out);
            if self.flow.enabled {
                let (backoff, salt) = (self.flow.backoff, self.id.as_u64());
                self.retransmit_backoff.fired(&backoff, salt, now);
            }
        }
        // Keep ticking while work is outstanding: the backoff deadline, not
        // the tick, decides when the next retransmit actually goes out.
        if !self.retransmit_armed {
            ctx.set_timer(RETRANSMIT, RETRANSMIT_TICK);
            self.retransmit_armed = true;
        }
    }

    /// Folds a chosen command (a batch of votes) into the replica state:
    /// acquires the prepared-set lock for each commit-voted undecided item —
    /// idempotently (the leader already holds it from `certify_and_propose`;
    /// learners acquire it here so a future leader handover starts from a
    /// warm index). `Chosen` can be re-delivered after a ballot change
    /// (phase-1 recovery re-broadcasts accepted slots); an already-decided
    /// transaction must not be re-locked (its payload is pruned and its locks
    /// released), so for those the item only (idempotently) refreshes the
    /// committed summary.
    fn apply_chosen(&mut self, command: &ShardCommand) {
        for item in &command.items {
            if let Some(decision) = self.decisions.get(&item.tx).copied() {
                if decision == Decision::Commit {
                    self.certifier_commit(item.tx, &item.payload);
                }
                continue;
            }
            if item.vote == Decision::Commit {
                self.certifier_prepare(item.tx, &item.payload);
            }
            self.prepared
                .entry(item.tx)
                .or_insert((item.payload.clone(), item.vote));
        }
    }

    fn handle_paxos(
        &mut self,
        from: ProcessId,
        msg: PaxosMsg<ShardCommand>,
        ctx: &mut Context<'_, BaselineMsg>,
    ) {
        // Acceptor role.
        let out = self.acceptor.handle(from, msg.clone());
        self.route(ctx, out);
        // Learner role.
        if let PaxosMsg::Chosen { slot, command } = &msg {
            self.log.record_chosen(*slot, command.clone());
            self.apply_chosen(&command.clone());
        }
        // Proposer role (leader only).
        if let Some(proposer) = self.proposer.as_mut() {
            let (out, chosen) = proposer.handle(msg);
            let mut to_send = Vec::new();
            for (slot, command) in chosen {
                self.log.record_chosen(slot, command.clone());
                let mut votes = Vec::with_capacity(command.items.len());
                for item in &command.items {
                    self.in_flight.remove(&item.tx);
                    votes.push((item.tx, item.vote));
                }
                self.apply_chosen(&command);
                // The whole batch is now durable at a majority: report every
                // vote to the TM in one message.
                to_send.push(BaselineMsg::VoteBatch {
                    shard: self.shard,
                    votes,
                });
            }
            self.route(ctx, out);
            let made_progress = !to_send.is_empty();
            for msg in to_send {
                ctx.send(self.tm, msg);
            }
            if made_progress {
                // Slots were chosen: retransmits return to the fast schedule.
                let (backoff, salt) = (self.flow.backoff, self.id.as_u64());
                self.retransmit_backoff
                    .reset(&backoff, salt, ctx.now().as_micros());
            }
        }
    }
}

impl Actor<BaselineMsg> for BaselineShardReplica {
    fn on_start(&mut self, _ctx: &mut Context<'_, BaselineMsg>) {}

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: BaselineMsg,
        ctx: &mut Context<'_, BaselineMsg>,
    ) {
        match msg {
            BaselineMsg::Prepare { tx, payload } => self.certify_and_propose(tx, payload, ctx),
            BaselineMsg::ShardPaxos { shard, msg } if shard == self.shard => {
                self.handle_paxos(from, msg, ctx)
            }
            BaselineMsg::Decision { tx, decision } => {
                // The TM addresses decisions to the shard leader; relay them
                // to the followers so they prune the decided payload from
                // their prepared sets too — otherwise learner memory grows
                // with the whole history instead of the undecided window.
                // Relayed on every receipt (not just the first), so a TM
                // re-externalisation doubles as the retry for a relay lost
                // to a faulty link; followers never relay, so there is no
                // amplification loop.
                if self.is_leader {
                    for peer in self.group.clone() {
                        if peer != self.id {
                            ctx.send(peer, BaselineMsg::Decision { tx, decision });
                        }
                    }
                }
                // First decision wins; duplicates from a retrying TM are
                // otherwise no-ops (the payload is already pruned).
                if self.decisions.contains_key(&tx) {
                    return;
                }
                if let Some((payload, _vote)) = self.prepared.remove(&tx) {
                    // The transaction leaves the prepared set; a commit enters
                    // the committed summary. Its payload is dropped — the
                    // index keeps the per-key residue, the decision map keeps
                    // the outcome.
                    self.certifier_release(tx);
                    if decision == Decision::Commit {
                        self.certifier_commit(tx, &payload);
                    }
                }
                // Recorded even if the vote is not chosen here yet: a later
                // `Chosen` for a decided transaction must not re-lock it.
                self.decisions.insert(tx, decision);
            }
            // Explicit no-ops. `Certify`/`VoteBatch`/`TmPaxos` are TM
            // traffic, `DecisionClient` is client traffic, and a
            // `ShardPaxos` for another shard (the guard above rejected it)
            // is misrouted and must not touch this group's log.
            BaselineMsg::Certify { .. }
            | BaselineMsg::VoteBatch { .. }
            | BaselineMsg::DecisionClient { .. }
            | BaselineMsg::TmPaxos { .. }
            | BaselineMsg::ShardPaxos { .. } => {}
        }
    }

    fn on_timer(&mut self, tag: TimerTag, ctx: &mut Context<'_, BaselineMsg>) {
        if tag == BATCH_TICK {
            self.batch_timer_armed = false;
            // A timer flush of a partial batch = idle pipeline: an adaptive
            // batcher shrinks back toward the unbatched fast path.
            let items = self.batcher.drain_idle();
            self.flush_proposals(items, ctx);
        } else if tag == RETRANSMIT_TICK {
            self.handle_retransmit_tick(ctx);
        }
    }

    /// Crash-restart recovery: the Paxos acceptor state, the chosen-command
    /// log and the decision map are durable; the certification index, the
    /// prepared set and all proposer state are volatile and rebuilt by
    /// replaying the durable log against the decision map. A restarted leader
    /// re-establishes leadership under a fresh, higher ballot, which re-chooses
    /// any value a majority had accepted (phase-1 recovery).
    fn on_restart(&mut self, ctx: &mut Context<'_, BaselineMsg>) {
        self.in_flight.clear();
        self.prepared.clear();
        self.batcher = VoteBatcher::new(self.batching);
        self.batch_timer_armed = false;
        self.retransmit_armed = false;
        let (backoff, salt) = (self.flow.backoff, self.id.as_u64());
        self.retransmit_backoff
            .reset(&backoff, salt, ctx.now().as_micros());
        self.phase1_started = false;
        self.ballot_round += 1;
        if self.is_leader {
            let mut proposer = Proposer::new(self.id, self.group.clone(), self.ballot_round);
            // Start log recovery immediately: phase 1 re-discovers commands
            // accepted before the crash and re-chooses them, re-establishing
            // their certifier locks through `apply_chosen`. Until that
            // finishes, `certify_and_propose` defers fresh certifications.
            let out = proposer.start_phase1();
            self.phase1_started = true;
            self.recovering = true;
            self.proposer = Some(proposer);
            self.route(ctx, out);
            self.arm_retransmit_timer(ctx);
        }
        self.index = self.index_factory.clone_box();
        #[cfg(debug_assertions)]
        {
            self.mirror = self.mirror_factory.clone();
        }
        let commands: Vec<ShardCommand> = self.log.iter().map(|(_, c)| c.clone()).collect();
        for command in &commands {
            self.apply_chosen(command);
        }
        // Re-report every still-undecided chosen vote to the TM: the original
        // VOTE may have died with us.
        let votes: Vec<(ratc_types::TxId, Decision)> = self
            .prepared
            .iter()
            .map(|(tx, (_, vote))| (*tx, *vote))
            .collect();
        if self.is_leader && !votes.is_empty() {
            ctx.send(
                self.tm,
                BaselineMsg::VoteBatch {
                    shard: self.shard,
                    votes,
                },
            );
        }
        ctx.add_counter("replica_restarts", 1);
    }
}
