//! Baseline shard replicas: certification + a Multi-Paxos log per shard.

use std::collections::BTreeMap;
use std::sync::Arc;

use ratc_paxos::{Acceptor, PaxosMsg, Proposer, ReplicatedLog};
use ratc_sim::{Actor, Context};
use ratc_types::{
    CertificationPolicy, Decision, IndexedCertifier, Payload, Position, ProcessId, ShardCertifier,
    ShardId, TxId,
};

use crate::messages::{BaselineMsg, ShardCommand};

/// A replica of one shard in the baseline design.
///
/// Every replica is a Paxos acceptor of its shard's group; the distinguished
/// leader additionally certifies transactions and proposes the resulting votes
/// to the group. A vote is reported to the transaction manager only once it is
/// chosen, i.e. durable at a majority of the `2f + 1` replicas.
pub struct BaselineShardReplica {
    id: ProcessId,
    shard: ShardId,
    is_leader: bool,
    tm: ProcessId,
    group: Vec<ProcessId>,
    /// Set-based certifier used by the debug-build differential cross-check
    /// of every indexed vote (`reference_vote`); release builds vote through
    /// the index alone.
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    certifier: Arc<dyn ShardCertifier>,
    /// Incremental certifier answering votes in O(|payload|). Transitions are
    /// keyed by transaction id (transaction ids are globally unique, so they
    /// serve as positions); the set-based maps below remain the reference
    /// state for recovery and debug cross-checking.
    index: Box<dyn IndexedCertifier>,
    acceptor: Acceptor<ShardCommand>,
    proposer: Option<Proposer<ShardCommand>>,
    log: ReplicatedLog<ShardCommand>,
    /// Chosen (prepared) votes: tx -> (payload, vote, decided?).
    prepared: BTreeMap<TxId, (Payload, Decision, Option<Decision>)>,
    /// Transactions proposed but whose vote is not chosen yet.
    in_flight: BTreeMap<TxId, (Payload, Decision)>,
    phase1_started: bool,
}

impl BaselineShardReplica {
    /// Creates a replica. The harness later installs identifiers and group
    /// membership with [`BaselineShardReplica::install`].
    pub fn new<P>(shard: ShardId, policy: &P) -> Self
    where
        P: CertificationPolicy + ?Sized,
    {
        BaselineShardReplica {
            id: ProcessId::new(u64::MAX),
            shard,
            is_leader: false,
            tm: ProcessId::new(u64::MAX),
            group: Vec::new(),
            certifier: policy.shard_certifier(shard),
            index: policy.indexed_certifier(shard),
            acceptor: Acceptor::new(ProcessId::new(u64::MAX)),
            proposer: None,
            log: ReplicatedLog::new(),
            prepared: BTreeMap::new(),
            in_flight: BTreeMap::new(),
            phase1_started: false,
        }
    }

    /// Installs the replica's identity, the shard's Paxos group, whether this
    /// replica is the group's leader, and the transaction manager's address.
    pub fn install(&mut self, id: ProcessId, group: Vec<ProcessId>, leader: bool, tm: ProcessId) {
        self.id = id;
        self.acceptor = Acceptor::new(id);
        self.group = group.clone();
        self.is_leader = leader;
        self.tm = tm;
        if leader {
            self.proposer = Some(Proposer::new(id, group, 0));
        }
    }

    /// This replica's shard.
    pub fn shard(&self) -> ShardId {
        self.shard
    }

    /// Whether this replica is its shard's leader.
    pub fn is_leader(&self) -> bool {
        self.is_leader
    }

    /// Number of votes chosen (replicated) at this replica's log view.
    pub fn chosen_votes(&self) -> usize {
        self.log.len()
    }

    fn route(
        &self,
        ctx: &mut Context<'_, BaselineMsg>,
        out: Vec<(ProcessId, PaxosMsg<ShardCommand>)>,
    ) {
        let shard = self.shard;
        for (to, msg) in out {
            if to == self.id {
                // Deliver to ourselves through the network like everyone else,
                // keeping message accounting uniform.
                ctx.send(to, BaselineMsg::ShardPaxos { shard, msg });
            } else {
                ctx.send(to, BaselineMsg::ShardPaxos { shard, msg });
            }
        }
    }

    /// The position under which a transaction's index transitions are keyed:
    /// transaction ids are globally unique, so they stand in for log slots.
    fn index_pos(tx: TxId) -> Position {
        Position::new(tx.as_u64())
    }

    /// Set-based reference vote over the `prepared`/`in_flight` maps — the
    /// paper's formulation, kept as a debug cross-check of the index.
    #[cfg(debug_assertions)]
    fn reference_vote(&self, payload: &Payload) -> Decision {
        let committed: Vec<&Payload> = self
            .prepared
            .values()
            .filter(|(_, _, dec)| *dec == Some(Decision::Commit))
            .map(|(p, _, _)| p)
            .collect();
        let pending: Vec<&Payload> = self
            .prepared
            .values()
            .filter(|(_, vote, dec)| dec.is_none() && *vote == Decision::Commit)
            .map(|(p, _, _)| p)
            .chain(
                self.in_flight
                    .values()
                    .filter(|(_, vote)| *vote == Decision::Commit)
                    .map(|(p, _)| p),
            )
            .collect();
        self.certifier.vote(&committed, &pending, payload)
    }

    fn certify_and_propose(
        &mut self,
        tx: TxId,
        payload: Payload,
        ctx: &mut Context<'_, BaselineMsg>,
    ) {
        if !self.is_leader {
            return;
        }
        if self.prepared.contains_key(&tx) || self.in_flight.contains_key(&tx) {
            return;
        }
        let vote = self.index.vote(&payload);
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            vote,
            self.reference_vote(&payload),
            "indexed vote diverged from the set-based reference for {tx}"
        );
        if vote == Decision::Commit {
            self.index.prepare(Self::index_pos(tx), &payload);
        }
        self.in_flight.insert(tx, (payload.clone(), vote));
        if !self.phase1_started {
            self.phase1_started = true;
            let out = self
                .proposer
                .as_mut()
                .expect("leader has a proposer")
                .start_phase1();
            self.route(ctx, out);
        }
        let proposer = self.proposer.as_mut().expect("leader has a proposer");
        let out = proposer.propose(ShardCommand { tx, payload, vote });
        self.route(ctx, out);
    }

    /// Acquires the prepared-set lock for a chosen commit-voted command —
    /// idempotently (the leader already holds it from `certify_and_propose`;
    /// learners acquire it here so a future leader handover starts from a
    /// warm index) — unless the transaction is already decided: `Chosen` can
    /// be re-delivered after a ballot change (phase-1 recovery re-broadcasts
    /// accepted slots), and re-locking a released transaction would leave its
    /// keys locked forever.
    fn index_prepare_if_undecided(&mut self, command: &ShardCommand) {
        if command.vote != Decision::Commit {
            return;
        }
        if self
            .prepared
            .get(&command.tx)
            .is_some_and(|entry| entry.2.is_some())
        {
            return;
        }
        self.index
            .prepare(Self::index_pos(command.tx), &command.payload);
    }

    fn handle_paxos(
        &mut self,
        from: ProcessId,
        msg: PaxosMsg<ShardCommand>,
        ctx: &mut Context<'_, BaselineMsg>,
    ) {
        // Acceptor role.
        let out = self.acceptor.handle(from, msg.clone());
        self.route(ctx, out);
        // Learner role.
        if let PaxosMsg::Chosen { slot, command } = &msg {
            self.log.record_chosen(*slot, command.clone());
            self.index_prepare_if_undecided(command);
            self.prepared.entry(command.tx).or_insert((
                command.payload.clone(),
                command.vote,
                None,
            ));
        }
        // Proposer role (leader only).
        if let Some(proposer) = self.proposer.as_mut() {
            let (out, chosen) = proposer.handle(msg);
            let mut to_send = Vec::new();
            for (slot, command) in chosen {
                self.log.record_chosen(slot, command.clone());
                self.in_flight.remove(&command.tx);
                self.index_prepare_if_undecided(&command);
                self.prepared.entry(command.tx).or_insert((
                    command.payload.clone(),
                    command.vote,
                    None,
                ));
                // The vote is now durable at a majority: report it to the TM.
                to_send.push(BaselineMsg::Vote {
                    shard: self.shard,
                    tx: command.tx,
                    vote: command.vote,
                });
            }
            self.route(ctx, out);
            for msg in to_send {
                ctx.send(self.tm, msg);
            }
        }
    }
}

impl Actor<BaselineMsg> for BaselineShardReplica {
    fn on_start(&mut self, _ctx: &mut Context<'_, BaselineMsg>) {}

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: BaselineMsg,
        ctx: &mut Context<'_, BaselineMsg>,
    ) {
        match msg {
            BaselineMsg::Prepare { tx, payload } => self.certify_and_propose(tx, payload, ctx),
            BaselineMsg::ShardPaxos { shard, msg } if shard == self.shard => {
                self.handle_paxos(from, msg, ctx)
            }
            BaselineMsg::Decision { tx, decision } => {
                if let Some(entry) = self.prepared.get_mut(&tx) {
                    if entry.2.is_none() {
                        // First decision: the transaction leaves the prepared
                        // set; a commit enters the committed set.
                        self.index.release(Self::index_pos(tx));
                        if decision == Decision::Commit {
                            self.index.apply_committed(Self::index_pos(tx), &entry.0);
                        }
                    }
                    entry.2 = Some(decision);
                }
            }
            _ => {}
        }
    }
}
