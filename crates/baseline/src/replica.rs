//! Baseline shard replicas: certification + a Multi-Paxos log per shard.

use std::collections::BTreeMap;

use ratc_core::batch::{BatchingConfig, VoteBatcher};
use ratc_paxos::{Acceptor, PaxosMsg, Proposer, ReplicatedLog};
use ratc_sim::{Actor, Context, TimerTag};
#[cfg(debug_assertions)]
use ratc_types::MirrorCertifier;
use ratc_types::{
    CertificationPolicy, Decision, IndexedCertifier, Payload, Position, ProcessId, ShardId, TxId,
};

use crate::messages::{BaselineMsg, ShardCommand, ShardVote};

/// Timer tag used to flush a partially filled proposal batch.
const BATCH_TICK: TimerTag = 11;

/// A replica of one shard in the baseline design.
///
/// Every replica is a Paxos acceptor of its shard's group; the distinguished
/// leader additionally certifies transactions and proposes the resulting votes
/// to the group. A vote is reported to the transaction manager only once it is
/// chosen, i.e. durable at a majority of the `2f + 1` replicas.
///
/// # Bounded memory
///
/// Mirroring the checkpointed truncation of the RATC stacks, a decided
/// transaction's *payload* is dropped as soon as its decision arrives: the
/// incremental certifier already folded a committed payload into its per-key
/// summary, so only the compact `decisions` map (the 2PC outcome log recovery
/// still needs) is retained. `prepared`/`in_flight` therefore hold payloads
/// only for the undecided window, not the whole history.
pub struct BaselineShardReplica {
    id: ProcessId,
    shard: ShardId,
    is_leader: bool,
    tm: ProcessId,
    group: Vec<ProcessId>,
    /// Incremental certifier answering votes in O(|payload|). Transitions are
    /// keyed by transaction id (transaction ids are globally unique, so they
    /// serve as positions).
    index: Box<dyn IndexedCertifier>,
    /// Debug builds keep a full set-based [`MirrorCertifier`] in lockstep and
    /// cross-check every vote against it; release builds drop it so decided
    /// payload memory is actually freed.
    #[cfg(debug_assertions)]
    mirror: MirrorCertifier,
    acceptor: Acceptor<ShardCommand>,
    proposer: Option<Proposer<ShardCommand>>,
    log: ReplicatedLog<ShardCommand>,
    /// Chosen votes of *undecided* transactions: tx -> (payload, vote).
    prepared: BTreeMap<TxId, (Payload, Decision)>,
    /// Transactions proposed but whose vote is not chosen yet.
    in_flight: BTreeMap<TxId, (Payload, Decision)>,
    /// Final decisions (payload-free): the only per-transaction state kept
    /// for the whole history.
    decisions: BTreeMap<TxId, Decision>,
    phase1_started: bool,
    /// Batched log appends (see `ratc_core::batch`): certified votes are
    /// coalesced here and proposed as one Multi-Paxos command per batch.
    /// With batching disabled the batcher flushes on every push, i.e. one
    /// command per transaction — the seed behaviour.
    batching: BatchingConfig,
    batcher: VoteBatcher<ShardVote>,
    batch_timer_armed: bool,
}

impl BaselineShardReplica {
    /// Creates a replica. The harness later installs identifiers and group
    /// membership with [`BaselineShardReplica::install`].
    pub fn new<P>(shard: ShardId, policy: &P) -> Self
    where
        P: CertificationPolicy + ?Sized,
    {
        BaselineShardReplica {
            id: ProcessId::new(u64::MAX),
            shard,
            is_leader: false,
            tm: ProcessId::new(u64::MAX),
            group: Vec::new(),
            index: policy.indexed_certifier(shard),
            #[cfg(debug_assertions)]
            mirror: MirrorCertifier::new(policy.shard_certifier(shard)),
            acceptor: Acceptor::new(ProcessId::new(u64::MAX)),
            proposer: None,
            log: ReplicatedLog::new(),
            prepared: BTreeMap::new(),
            in_flight: BTreeMap::new(),
            decisions: BTreeMap::new(),
            phase1_started: false,
            batching: BatchingConfig::default(),
            batcher: VoteBatcher::new(BatchingConfig::default()),
            batch_timer_armed: false,
        }
    }

    /// Sets the batching-pipeline knobs (default: disabled).
    pub fn set_batching(&mut self, batching: BatchingConfig) {
        self.batching = batching;
        self.batcher.set_config(batching);
    }

    /// Installs the replica's identity, the shard's Paxos group, whether this
    /// replica is the group's leader, and the transaction manager's address.
    pub fn install(&mut self, id: ProcessId, group: Vec<ProcessId>, leader: bool, tm: ProcessId) {
        self.id = id;
        self.acceptor = Acceptor::new(id);
        self.group = group.clone();
        self.is_leader = leader;
        self.tm = tm;
        if leader {
            self.proposer = Some(Proposer::new(id, group, 0));
        }
    }

    /// This replica's shard.
    pub fn shard(&self) -> ShardId {
        self.shard
    }

    /// Whether this replica is its shard's leader.
    pub fn is_leader(&self) -> bool {
        self.is_leader
    }

    /// Number of Multi-Paxos log slots chosen (replicated) at this replica's
    /// log view. With batched log appends each slot carries up to
    /// `max_batch` votes, so this counts commands, not transactions.
    pub fn chosen_slots(&self) -> usize {
        self.log.len()
    }

    /// Number of payload-bearing entries currently retained (undecided
    /// window). Bounded regardless of history length; decided transactions
    /// keep only their entry in the compact decision map.
    pub fn retained_payloads(&self) -> usize {
        self.prepared.len() + self.in_flight.len()
    }

    /// Number of decided transactions recorded (payload-free).
    pub fn decided_count(&self) -> usize {
        self.decisions.len()
    }

    fn route(
        &self,
        ctx: &mut Context<'_, BaselineMsg>,
        out: Vec<(ProcessId, PaxosMsg<ShardCommand>)>,
    ) {
        let shard = self.shard;
        for (to, msg) in out {
            if to == self.id {
                // Deliver to ourselves through the network like everyone else,
                // keeping message accounting uniform.
                ctx.send(to, BaselineMsg::ShardPaxos { shard, msg });
            } else {
                ctx.send(to, BaselineMsg::ShardPaxos { shard, msg });
            }
        }
    }

    /// The position under which a transaction's index transitions are keyed:
    /// transaction ids are globally unique, so they stand in for log slots.
    fn index_pos(tx: TxId) -> Position {
        Position::new(tx.as_u64())
    }

    // -- certifier transitions, applied to the index and (in debug builds)
    //    the set-based mirror in lockstep -----------------------------------

    fn certifier_prepare(&mut self, tx: TxId, payload: &Payload) {
        self.index.prepare(Self::index_pos(tx), payload);
        #[cfg(debug_assertions)]
        self.mirror.prepare(Self::index_pos(tx), payload);
    }

    fn certifier_release(&mut self, tx: TxId) {
        self.index.release(Self::index_pos(tx));
        #[cfg(debug_assertions)]
        self.mirror.release(Self::index_pos(tx));
    }

    fn certifier_commit(&mut self, tx: TxId, payload: &Payload) {
        self.index.apply_committed(Self::index_pos(tx), payload);
        #[cfg(debug_assertions)]
        self.mirror.apply_committed(Self::index_pos(tx), payload);
    }

    fn certify_and_propose(
        &mut self,
        tx: TxId,
        payload: Payload,
        ctx: &mut Context<'_, BaselineMsg>,
    ) {
        if !self.is_leader {
            return;
        }
        if self.prepared.contains_key(&tx)
            || self.in_flight.contains_key(&tx)
            || self.decisions.contains_key(&tx)
        {
            return;
        }
        let vote = self.index.vote(&payload);
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            vote,
            self.mirror.vote(&payload),
            "indexed vote diverged from the set-based mirror for {tx}"
        );
        if vote == Decision::Commit {
            self.certifier_prepare(tx, &payload);
        }
        self.in_flight.insert(tx, (payload.clone(), vote));
        // Batched log appends: coalesce certified votes into one Multi-Paxos
        // command. Disabled batching flushes on every push (one command per
        // transaction); a partially filled batch is flushed by the timer.
        if self.batcher.push(ShardVote { tx, payload, vote }) {
            self.flush_proposals(ctx);
        } else {
            self.arm_batch_timer(ctx);
        }
    }

    fn arm_batch_timer(&mut self, ctx: &mut Context<'_, BaselineMsg>) {
        if !self.batch_timer_armed && !self.batcher.is_empty() {
            ctx.set_timer(self.batching.max_delay, BATCH_TICK);
            self.batch_timer_armed = true;
        }
    }

    /// Proposes the pending batch as a single command occupying one Paxos
    /// log slot.
    fn flush_proposals(&mut self, ctx: &mut Context<'_, BaselineMsg>) {
        let items = self.batcher.drain();
        if items.is_empty() {
            return;
        }
        if !self.phase1_started {
            self.phase1_started = true;
            let out = self
                .proposer
                .as_mut()
                .expect("leader has a proposer")
                .start_phase1();
            self.route(ctx, out);
        }
        let proposer = self.proposer.as_mut().expect("leader has a proposer");
        let out = proposer.propose(ShardCommand { items });
        self.route(ctx, out);
    }

    /// Folds a chosen command (a batch of votes) into the replica state:
    /// acquires the prepared-set lock for each commit-voted undecided item —
    /// idempotently (the leader already holds it from `certify_and_propose`;
    /// learners acquire it here so a future leader handover starts from a
    /// warm index). `Chosen` can be re-delivered after a ballot change
    /// (phase-1 recovery re-broadcasts accepted slots); an already-decided
    /// transaction must not be re-locked (its payload is pruned and its locks
    /// released), so for those the item only (idempotently) refreshes the
    /// committed summary.
    fn apply_chosen(&mut self, command: &ShardCommand) {
        for item in &command.items {
            if let Some(decision) = self.decisions.get(&item.tx).copied() {
                if decision == Decision::Commit {
                    self.certifier_commit(item.tx, &item.payload);
                }
                continue;
            }
            if item.vote == Decision::Commit {
                self.certifier_prepare(item.tx, &item.payload);
            }
            self.prepared
                .entry(item.tx)
                .or_insert((item.payload.clone(), item.vote));
        }
    }

    fn handle_paxos(
        &mut self,
        from: ProcessId,
        msg: PaxosMsg<ShardCommand>,
        ctx: &mut Context<'_, BaselineMsg>,
    ) {
        // Acceptor role.
        let out = self.acceptor.handle(from, msg.clone());
        self.route(ctx, out);
        // Learner role.
        if let PaxosMsg::Chosen { slot, command } = &msg {
            self.log.record_chosen(*slot, command.clone());
            self.apply_chosen(&command.clone());
        }
        // Proposer role (leader only).
        if let Some(proposer) = self.proposer.as_mut() {
            let (out, chosen) = proposer.handle(msg);
            let mut to_send = Vec::new();
            for (slot, command) in chosen {
                self.log.record_chosen(slot, command.clone());
                let mut votes = Vec::with_capacity(command.items.len());
                for item in &command.items {
                    self.in_flight.remove(&item.tx);
                    votes.push((item.tx, item.vote));
                }
                self.apply_chosen(&command);
                // The whole batch is now durable at a majority: report every
                // vote to the TM in one message.
                to_send.push(BaselineMsg::VoteBatch {
                    shard: self.shard,
                    votes,
                });
            }
            self.route(ctx, out);
            for msg in to_send {
                ctx.send(self.tm, msg);
            }
        }
    }
}

impl Actor<BaselineMsg> for BaselineShardReplica {
    fn on_start(&mut self, _ctx: &mut Context<'_, BaselineMsg>) {}

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: BaselineMsg,
        ctx: &mut Context<'_, BaselineMsg>,
    ) {
        match msg {
            BaselineMsg::Prepare { tx, payload } => self.certify_and_propose(tx, payload, ctx),
            BaselineMsg::ShardPaxos { shard, msg } if shard == self.shard => {
                self.handle_paxos(from, msg, ctx)
            }
            BaselineMsg::Decision { tx, decision } => {
                // First decision wins; duplicates from a retrying TM are
                // no-ops (the payload is already pruned).
                if self.decisions.contains_key(&tx) {
                    return;
                }
                if let Some((payload, _vote)) = self.prepared.remove(&tx) {
                    // The transaction leaves the prepared set; a commit enters
                    // the committed summary. Its payload is dropped — the
                    // index keeps the per-key residue, the decision map keeps
                    // the outcome.
                    self.certifier_release(tx);
                    if decision == Decision::Commit {
                        self.certifier_commit(tx, &payload);
                    }
                }
                // Recorded even if the vote is not chosen here yet: a later
                // `Chosen` for a decided transaction must not re-lock it.
                self.decisions.insert(tx, decision);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, tag: TimerTag, ctx: &mut Context<'_, BaselineMsg>) {
        if tag == BATCH_TICK {
            self.batch_timer_armed = false;
            self.flush_proposals(ctx);
        }
    }
}
