//! Deployment harness for the baseline 2PC-over-Paxos TCS.

use std::collections::BTreeMap;
use std::sync::Arc;

use ratc_core::batch::BatchingConfig;
use ratc_core::client::DecisionLatency;
use ratc_core::flow::FlowControlConfig;
use ratc_sim::{
    Actor, Context, ExecutionMode, SimConfig, SimDuration, SimTime, TxMilestone, World,
};
use ratc_types::{
    CertificationPolicy, Decision, HashSharding, Payload, ProcessId, Serializability, ShardId,
    ShardMap, TcsHistory, TxId,
};

use crate::messages::BaselineMsg;
use crate::replica::BaselineShardReplica;
use crate::tm::TransactionManager;

/// Configuration of a simulated baseline deployment.
#[derive(Clone)]
pub struct BaselineClusterConfig {
    /// Number of shards.
    pub shards: u32,
    /// Failures to tolerate per shard; each shard gets `2f + 1` replicas, and
    /// so does the transaction-manager group.
    pub f: usize,
    /// Certification policy.
    pub policy: Arc<dyn CertificationPolicy>,
    /// Batched log appends (default: disabled): shard leaders coalesce
    /// certified votes into one Multi-Paxos command per batch.
    pub batching: BatchingConfig,
    /// Flow control (default: on): TM admission window, retry backoff and
    /// Paxos retransmit backoff. [`FlowControlConfig::legacy`] reproduces the
    /// pre-fix congestive collapse.
    pub flow: FlowControlConfig,
    /// Simulation parameters.
    pub sim: SimConfig,
    /// Which engine drives the actors: the deterministic simulator or one OS
    /// thread per process (see [`ExecutionMode`]).
    pub execution: ExecutionMode,
}

impl Default for BaselineClusterConfig {
    fn default() -> Self {
        BaselineClusterConfig {
            shards: 2,
            f: 1,
            policy: Arc::new(Serializability::new()),
            batching: BatchingConfig::default(),
            flow: FlowControlConfig::default(),
            sim: SimConfig::default(),
            execution: ExecutionMode::default(),
        }
    }
}

impl std::fmt::Debug for BaselineClusterConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BaselineClusterConfig")
            .field("shards", &self.shards)
            .field("f", &self.f)
            .finish()
    }
}

impl BaselineClusterConfig {
    /// Returns a copy with the given number of shards.
    pub fn with_shards(mut self, shards: u32) -> Self {
        self.shards = shards;
        self
    }

    /// Returns a copy with the given `f`.
    pub fn with_f(mut self, f: usize) -> Self {
        self.f = f;
        self
    }

    /// Returns a copy with the given seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.sim.seed = seed;
        self
    }

    /// Returns a copy with the given batching-pipeline knobs.
    pub fn with_batching(mut self, batching: BatchingConfig) -> Self {
        self.batching = batching;
        self
    }

    /// Returns a copy with the given flow-control knobs.
    pub fn with_flow(mut self, flow: FlowControlConfig) -> Self {
        self.flow = flow;
        self
    }

    /// Returns a copy with the given execution mode.
    pub fn with_execution(mut self, execution: ExecutionMode) -> Self {
        self.execution = execution;
        self
    }
}

/// Client actor of the baseline TCS.
#[derive(Debug, Default)]
pub struct BaselineClientActor {
    history: TcsHistory,
    submit_times: BTreeMap<TxId, SimTime>,
    latencies: BTreeMap<TxId, DecisionLatency>,
    violations: Vec<String>,
}

impl BaselineClientActor {
    /// Records the certify action at submission time.
    pub fn record_certify(&mut self, tx: TxId, payload: Payload, now: SimTime) {
        if let Err(err) = self.history.record_certify(tx, payload) {
            self.violations.push(err.to_string());
        }
        self.submit_times.insert(tx, now);
    }

    /// The recorded history.
    pub fn history(&self) -> &TcsHistory {
        &self.history
    }

    /// Latency (message delays, simulated time, decision) of each decided
    /// transaction.
    pub fn latencies(&self) -> &BTreeMap<TxId, DecisionLatency> {
        &self.latencies
    }

    /// Violations (contradictory decisions); empty in a correct run.
    pub fn violations(&self) -> &[String] {
        &self.violations
    }
}

impl Actor<BaselineMsg> for BaselineClientActor {
    fn on_message(
        &mut self,
        _from: ProcessId,
        msg: BaselineMsg,
        ctx: &mut Context<'_, BaselineMsg>,
    ) {
        if let BaselineMsg::DecisionClient { tx, decision } = msg {
            if let Err(err) = self.history.record_decide(tx, decision) {
                self.violations.push(err.to_string());
                return;
            }
            let micros = self
                .submit_times
                .get(&tx)
                .map(|t| ctx.now().since(*t).as_micros())
                .unwrap_or(0);
            // Stamp only the first copy of the decision (re-externalisations
            // after a TM restart carry the same decision).
            if !self.latencies.contains_key(&tx) {
                ctx.obs_milestone(tx, TxMilestone::ClientLearned, 0);
            }
            self.latencies.entry(tx).or_insert(DecisionLatency {
                hops: ctx.hops(),
                micros,
                decision,
            });
            ctx.record_sample("client_decision_hops", f64::from(ctx.hops()));
            ctx.record_sample("client_decision_micros", micros as f64);
            match decision {
                Decision::Commit => ctx.add_counter("client_commits", 1),
                Decision::Abort => ctx.add_counter("client_aborts", 1),
            }
        }
    }
}

/// A fully wired baseline deployment: `2f + 1` replicas per shard, a
/// `2f + 1`-member transaction-manager group and one client.
pub struct BaselineCluster {
    /// The simulation world.
    pub world: World<BaselineMsg>,
    sharding: Arc<HashSharding>,
    client: ProcessId,
    tm_leader: ProcessId,
    tm_group: Vec<ProcessId>,
    shard_groups: BTreeMap<ShardId, Vec<ProcessId>>,
    shard_leaders: BTreeMap<ShardId, ProcessId>,
    execution: ExecutionMode,
}

impl BaselineCluster {
    /// Builds the cluster.
    pub fn new(config: BaselineClusterConfig) -> Self {
        let sharding = Arc::new(HashSharding::new(config.shards));
        let mut world: World<BaselineMsg> = World::new(config.sim.clone());
        let replicas_per_group = 2 * config.f + 1;

        let mut shard_groups: BTreeMap<ShardId, Vec<ProcessId>> = BTreeMap::new();
        for shard_idx in 0..config.shards {
            let shard = ShardId::new(shard_idx);
            let mut group = Vec::new();
            for _ in 0..replicas_per_group {
                group.push(
                    world.add_actor(BaselineShardReplica::new(shard, config.policy.as_ref())),
                );
            }
            shard_groups.insert(shard, group);
        }
        let shard_leaders: BTreeMap<ShardId, ProcessId> = shard_groups
            .iter()
            .map(|(shard, group)| (*shard, group[0]))
            .collect();

        let mut tm_group = Vec::new();
        for _ in 0..replicas_per_group {
            tm_group.push(world.add_actor(TransactionManager::new(
                sharding.clone() as Arc<dyn ShardMap + Send + Sync>
            )));
        }
        let tm_leader = tm_group[0];
        let client = world.add_actor(BaselineClientActor::default());

        for (shard, group) in &shard_groups {
            for pid in group {
                let replica = world
                    .actor_mut::<BaselineShardReplica>(*pid)
                    .expect("replica");
                replica.install(*pid, group.clone(), *pid == shard_leaders[shard], tm_leader);
                replica.set_batching(config.batching);
                replica.set_flow(config.flow);
            }
        }
        for pid in &tm_group {
            let tm = world
                .actor_mut::<TransactionManager>(*pid)
                .expect("tm member");
            tm.install(*pid, tm_group.clone(), tm_leader, shard_leaders.clone());
            tm.set_flow(config.flow);
        }

        BaselineCluster {
            world,
            sharding,
            client,
            tm_leader,
            tm_group,
            shard_groups,
            shard_leaders,
            execution: config.execution,
        }
    }

    /// The shard map of this cluster.
    pub fn sharding(&self) -> &HashSharding {
        &self.sharding
    }

    /// The client process.
    pub fn client_id(&self) -> ProcessId {
        self.client
    }

    /// The transaction-manager leader.
    pub fn tm_leader(&self) -> ProcessId {
        self.tm_leader
    }

    /// The transaction-manager group.
    pub fn tm_group(&self) -> &[ProcessId] {
        &self.tm_group
    }

    /// The leader of `shard`.
    pub fn shard_leader(&self, shard: ShardId) -> ProcessId {
        self.shard_leaders[&shard]
    }

    /// The replicas of `shard`.
    pub fn shard_group(&self, shard: ShardId) -> &[ProcessId] {
        self.shard_groups
            .get(&shard)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Downcast access to a shard replica's state.
    pub fn shard_replica(&self, pid: ProcessId) -> &BaselineShardReplica {
        self.world
            .actor::<BaselineShardReplica>(pid)
            .expect("shard replica")
    }

    /// Total number of replica processes (excluding the client).
    pub fn replica_count(&self) -> usize {
        self.shard_groups.values().map(Vec::len).sum::<usize>() + self.tm_group.len()
    }

    /// Submits a transaction for certification through the
    /// transaction-manager leader. Returns the coordinating process (the TM
    /// leader), mirroring the RATC harnesses.
    pub fn submit(&mut self, tx: TxId, payload: Payload) -> ProcessId {
        let tm = self.tm_leader;
        self.submit_via(tx, payload, tm);
        tm
    }

    /// Submits a transaction through a specific transaction-manager group
    /// member. Non-leader members forward the request to the group leader,
    /// so any member of [`BaselineCluster::tm_group`] is a valid coordinator.
    pub fn submit_via(&mut self, tx: TxId, payload: Payload, coordinator: ProcessId) {
        let now = self.world.now();
        self.world
            .actor_mut::<BaselineClientActor>(self.client)
            .expect("client")
            .record_certify(tx, payload.clone(), now);
        self.world
            .obs_milestone(tx, TxMilestone::Submitted, self.client);
        let client = self.client;
        self.world.send_external(
            coordinator,
            BaselineMsg::Certify {
                tx,
                payload,
                client,
            },
        );
    }

    /// Crashes a process.
    pub fn crash(&mut self, pid: ProcessId) {
        self.world.crash(pid);
    }

    /// Restarts a crashed process: shard replicas and TM members recover
    /// from their durable Paxos state. Returns `false` if `pid` was not
    /// crashed.
    pub fn restart(&mut self, pid: ProcessId) -> bool {
        self.world.restart(pid)
    }

    /// Re-submits a transaction without re-recording it in the client
    /// history: used by recovery drivers when the original decision (or the
    /// transaction itself) was lost to an injected fault.
    pub fn resubmit(&mut self, tx: TxId, payload: Payload) {
        let client = self.client;
        let tm = self.tm_leader;
        self.world.send_external(
            tm,
            BaselineMsg::Certify {
                tx,
                payload,
                client,
            },
        );
    }

    /// The execution engine driving this cluster's actors.
    pub fn execution(&self) -> ExecutionMode {
        self.execution
    }

    /// Runs until no events remain (on the configured [`ExecutionMode`]).
    pub fn run_to_quiescence(&mut self) {
        match self.execution {
            ExecutionMode::Sim => {
                self.world.run();
            }
            ExecutionMode::Threads => {
                self.world.run_threaded();
            }
        }
    }

    /// Runs for `duration` (simulated time on the simulator, wall-clock time
    /// on the threaded backend).
    pub fn run_for(&mut self, duration: SimDuration) {
        let until = self.world.now() + duration;
        self.run_until(until);
    }

    /// Runs the cluster until the given absolute time on the cluster's clock.
    pub fn run_until(&mut self, until: SimTime) {
        match self.execution {
            ExecutionMode::Sim => {
                self.world.run_until(until);
            }
            ExecutionMode::Threads => {
                self.world.run_threaded_until(until);
            }
        }
    }

    /// The client's recorded history.
    pub fn history(&self) -> TcsHistory {
        self.world
            .actor::<BaselineClientActor>(self.client)
            .expect("client")
            .history()
            .clone()
    }

    /// Latency (message delays, simulated time, decision) per decided
    /// transaction.
    pub fn latencies(&self) -> BTreeMap<TxId, DecisionLatency> {
        self.world
            .actor::<BaselineClientActor>(self.client)
            .expect("client")
            .latencies()
            .clone()
    }

    /// Message delays per decided transaction.
    pub fn decision_hops(&self) -> BTreeMap<TxId, u32> {
        self.latencies()
            .into_iter()
            .map(|(tx, l)| (tx, l.hops))
            .collect()
    }

    /// Violations observed by the client (empty in a correct run).
    pub fn client_violations(&self) -> Vec<String> {
        self.world
            .actor::<BaselineClientActor>(self.client)
            .expect("client")
            .violations()
            .to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratc_types::{Key, Value, Version};

    fn rw(key: &str) -> Payload {
        Payload::builder()
            .read(Key::new(key), Version::new(0))
            .write(Key::new(key), Value::from("v"))
            .commit_version(Version::new(1))
            .build()
            .expect("well-formed")
    }

    #[test]
    fn decided_payloads_are_pruned_from_shard_replicas() {
        let mut cluster = BaselineCluster::new(BaselineClusterConfig::default().with_seed(17));
        let total = 60u64;
        for i in 0..total {
            cluster.submit(TxId::new(i + 1), rw(&format!("k{i}")));
            cluster.run_to_quiescence();
        }
        assert_eq!(cluster.history().decide_count(), total as usize);
        for shard in [ShardId::new(0), ShardId::new(1)] {
            let leader = cluster.shard_leader(shard);
            let replica = cluster.shard_replica(leader);
            // Every decided transaction's payload was dropped: only the
            // compact decision map grows with the history.
            assert_eq!(
                replica.retained_payloads(),
                0,
                "shard {shard} leader retains payloads after all decisions"
            );
            assert!(replica.decided_count() > 0);
        }
        // Conflict detection still works off the committed residue: a stale
        // re-writer of a pruned key must be aborted.
        cluster.submit(TxId::new(total + 1), rw("k0"));
        cluster.run_to_quiescence();
        assert_eq!(
            cluster.history().decision(TxId::new(total + 1)),
            Some(Decision::Abort),
            "re-writing a pruned key at its stale version must abort"
        );
        assert!(cluster.client_violations().is_empty());
    }

    #[test]
    fn single_transaction_commits_in_seven_delays_at_steady_state() {
        let mut cluster = BaselineCluster::new(BaselineClusterConfig::default());
        // First transaction pays Paxos phase-1 once; measure the second.
        cluster.submit(TxId::new(1), rw("warmup"));
        cluster.run_to_quiescence();
        cluster.submit(TxId::new(2), rw("x"));
        cluster.run_to_quiescence();
        let history = cluster.history();
        assert_eq!(history.decision(TxId::new(2)), Some(Decision::Commit));
        let hops = cluster.decision_hops()[&TxId::new(2)];
        assert_eq!(
            hops, 7,
            "baseline decision latency must be 7 message delays"
        );
        assert!(cluster.client_violations().is_empty());
    }

    #[test]
    fn conflicting_transactions_do_not_both_commit() {
        let mut cluster = BaselineCluster::new(BaselineClusterConfig::default().with_seed(5));
        cluster.submit(TxId::new(1), rw("hot"));
        cluster.submit(TxId::new(2), rw("hot"));
        cluster.run_to_quiescence();
        let history = cluster.history();
        assert!(history.committed().count() <= 1);
        assert_eq!(history.decide_count(), 2);
    }

    #[test]
    fn many_disjoint_transactions_commit() {
        let mut cluster =
            BaselineCluster::new(BaselineClusterConfig::default().with_shards(3).with_seed(9));
        for i in 0..20 {
            cluster.submit(TxId::new(i), rw(&format!("k{i}")));
        }
        cluster.run_to_quiescence();
        assert_eq!(cluster.history().committed().count(), 20);
        assert!(cluster.client_violations().is_empty());
    }

    #[test]
    fn a_single_follower_failure_is_masked_without_reconfiguration() {
        let mut cluster = BaselineCluster::new(BaselineClusterConfig::default().with_seed(3));
        let shard = ShardId::new(0);
        // Crash one non-leader replica of shard 0: the Paxos majority survives,
        // so transactions keep committing with no reconfiguration.
        let victim = cluster.shard_group(shard)[1];
        cluster.crash(victim);
        for i in 0..10 {
            cluster.submit(TxId::new(i), rw(&format!("k{i}")));
        }
        cluster.run_to_quiescence();
        assert_eq!(cluster.history().committed().count(), 10);
        assert!(cluster.client_violations().is_empty());
    }

    #[test]
    fn batched_log_appends_commit_and_occupy_fewer_paxos_slots() {
        let run = |batch: usize| {
            let mut cluster = BaselineCluster::new(
                BaselineClusterConfig::default()
                    .with_shards(1)
                    .with_seed(23)
                    .with_batching(BatchingConfig::with_batch(batch)),
            );
            for i in 0..32u64 {
                cluster.submit(TxId::new(i + 1), rw(&format!("k{i}")));
            }
            cluster.run_to_quiescence();
            assert_eq!(cluster.history().committed().count(), 32);
            assert!(cluster.client_violations().is_empty());
            let leader = cluster.shard_leader(ShardId::new(0));
            cluster.shard_replica(leader).chosen_slots()
        };
        let unbatched_slots = run(1);
        let batched_slots = run(8);
        assert_eq!(unbatched_slots, 32, "one Paxos slot per transaction");
        assert!(
            batched_slots * 4 <= unbatched_slots,
            "batched appends must occupy far fewer slots ({batched_slots} vs {unbatched_slots})"
        );
    }

    #[test]
    fn batched_baseline_preserves_conflict_decisions() {
        let mut cluster = BaselineCluster::new(
            BaselineClusterConfig::default()
                .with_shards(1)
                .with_seed(29)
                .with_batching(BatchingConfig::with_batch(4)),
        );
        cluster.submit(TxId::new(1), rw("hot"));
        cluster.submit(TxId::new(2), rw("hot"));
        cluster.run_to_quiescence();
        let history = cluster.history();
        assert!(history.committed().count() <= 1);
        assert_eq!(history.decide_count(), 2);
        assert!(cluster.client_violations().is_empty());
    }

    /// Pinned regression: the TM's retry and retransmission timers are
    /// capped, so `run_to_quiescence` terminates even when a shard is
    /// permanently unrecoverable (a whole Paxos group crashed with no
    /// restart). Without the cap the retry tick re-arms forever and the
    /// event queue never drains.
    #[test]
    fn run_to_quiescence_terminates_with_a_shard_permanently_down() {
        let mut cluster = BaselineCluster::new(BaselineClusterConfig::default().with_seed(7));
        for pid in cluster.shard_group(ShardId::new(0)).to_vec() {
            cluster.crash(pid);
        }
        cluster.submit(TxId::new(1), rw("k-on-any-shard"));
        cluster.run_to_quiescence();
        // The transaction touching the dead shard may stay undecided — the
        // point is that the call returned.
        assert!(cluster.history().certify_count() == 1);
        assert!(cluster.client_violations().is_empty());
    }

    /// Deterministic reproduction of the PR 6 congestive collapse, entirely
    /// in virtual time. The simulator's default zero-cost handlers masked the
    /// collapse (retries were free), so the world is given a per-message
    /// service time, making every process a single-server queue. Under a
    /// deep open-loop flood the legacy fixed-interval retry tick re-drives
    /// every pending transaction every 20 ms — more work per tick than the
    /// shard leader can serve per tick — and transactions stay undecided for
    /// the whole (bounded) virtual-time budget. The same flood under the
    /// flow-control layer (admission window + retry backoff) fully decides.
    #[test]
    fn flow_control_fixes_the_simulated_congestive_collapse() {
        let run = |flow: FlowControlConfig| {
            let mut config = BaselineClusterConfig::default()
                .with_shards(1)
                .with_seed(41)
                .with_flow(flow)
                .with_batching(BatchingConfig::disabled());
            config.sim = config.sim.with_service_micros(200);
            let mut cluster = BaselineCluster::new(config);
            // Supercritical: re-driving every pending transaction costs the
            // shard leader `total * service` = 200 ms of work per 20 ms tick.
            let total = 1000u64;
            for i in 0..total {
                cluster.submit(TxId::new(i + 1), rw(&format!("k{i}")));
            }
            // Bounded virtual-time budget: ample for a healthy cluster, far
            // past the point where a collapsing one would have recovered.
            cluster.run_until(SimTime::ZERO + SimDuration::from_millis(5_000));
            assert!(cluster.client_violations().is_empty());
            total as usize - cluster.history().decide_count()
        };
        let undecided_legacy = run(FlowControlConfig::legacy());
        assert!(
            undecided_legacy > 0,
            "pre-fix configuration must reproduce the collapse (all decided?)"
        );
        let undecided_fixed = run(FlowControlConfig::default());
        assert_eq!(
            undecided_fixed, 0,
            "flow control must fully decide the same flood"
        );
    }

    #[test]
    fn replica_count_is_2f_plus_1_per_group() {
        let cluster = BaselineCluster::new(BaselineClusterConfig::default().with_f(2));
        // 2 shards * 5 replicas + 5 TM members.
        assert_eq!(cluster.replica_count(), 15);
        assert_eq!(cluster.shard_group(ShardId::new(0)).len(), 5);
        assert_eq!(cluster.tm_group().len(), 5);
        assert!(cluster
            .world
            .actor::<TransactionManager>(cluster.tm_leader())
            .expect("tm")
            .is_leader());
    }
}
