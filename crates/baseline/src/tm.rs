//! The baseline transaction manager (2PC coordinator) and its Paxos group.

use std::collections::BTreeMap;
use std::sync::Arc;

use ratc_paxos::{Acceptor, PaxosMsg, Proposer, ReplicatedLog};
use ratc_sim::{Actor, Context};
use ratc_types::{Decision, Payload, ProcessId, ShardId, ShardMap, TxId};

use crate::messages::{BaselineMsg, TmCommand};

/// State of one in-flight transaction at the transaction manager.
#[derive(Debug, Clone)]
struct PendingTx {
    client: ProcessId,
    shards: Vec<ShardId>,
    votes: BTreeMap<ShardId, Decision>,
    proposed: bool,
}

/// The transaction manager of the baseline TCS (and, with `is_leader = false`,
/// a passive member of its replication group).
///
/// The leader drives 2PC: it sends `PREPARE` to the leader of every involved
/// shard, collects votes (each vote is already durable in its shard's Paxos
/// log), computes the decision with `⊓`, commits the decision to its own Paxos
/// log, and only then externalises it to the client and the shards. This is
/// the 7-message-delay critical path the paper attributes to the vanilla
/// approach.
pub struct TransactionManager {
    id: ProcessId,
    is_leader: bool,
    group: Vec<ProcessId>,
    shard_leaders: BTreeMap<ShardId, ProcessId>,
    sharding: Arc<dyn ShardMap + Send + Sync>,
    acceptor: Acceptor<TmCommand>,
    proposer: Option<Proposer<TmCommand>>,
    log: ReplicatedLog<TmCommand>,
    pending: BTreeMap<TxId, PendingTx>,
    decided: BTreeMap<TxId, Decision>,
    phase1_started: bool,
}

impl TransactionManager {
    /// Creates a transaction-manager group member.
    pub fn new(sharding: Arc<dyn ShardMap + Send + Sync>) -> Self {
        TransactionManager {
            id: ProcessId::new(u64::MAX),
            is_leader: false,
            group: Vec::new(),
            shard_leaders: BTreeMap::new(),
            sharding,
            acceptor: Acceptor::new(ProcessId::new(u64::MAX)),
            proposer: None,
            log: ReplicatedLog::new(),
            pending: BTreeMap::new(),
            decided: BTreeMap::new(),
            phase1_started: false,
        }
    }

    /// Installs identity, group membership, leadership and the shard-leader
    /// directory.
    pub fn install(
        &mut self,
        id: ProcessId,
        group: Vec<ProcessId>,
        leader: bool,
        shard_leaders: BTreeMap<ShardId, ProcessId>,
    ) {
        self.id = id;
        self.acceptor = Acceptor::new(id);
        self.group = group.clone();
        self.is_leader = leader;
        self.shard_leaders = shard_leaders;
        if leader {
            self.proposer = Some(Proposer::new(id, group, 0));
        }
    }

    /// Whether this member leads the transaction-manager group.
    pub fn is_leader(&self) -> bool {
        self.is_leader
    }

    /// Number of decisions replicated in this member's view of the log.
    pub fn decided_count(&self) -> usize {
        self.decided.len()
    }

    fn route(
        &self,
        ctx: &mut Context<'_, BaselineMsg>,
        out: Vec<(ProcessId, PaxosMsg<TmCommand>)>,
    ) {
        for (to, msg) in out {
            ctx.send(to, BaselineMsg::TmPaxos { msg });
        }
    }

    fn handle_certify(
        &mut self,
        tx: TxId,
        payload: Payload,
        client: ProcessId,
        ctx: &mut Context<'_, BaselineMsg>,
    ) {
        if !self.is_leader || self.pending.contains_key(&tx) || self.decided.contains_key(&tx) {
            return;
        }
        let shards = payload.shards(self.sharding.as_ref());
        if shards.is_empty() {
            ctx.send(
                client,
                BaselineMsg::DecisionClient {
                    tx,
                    decision: Decision::Commit,
                },
            );
            return;
        }
        self.pending.insert(
            tx,
            PendingTx {
                client,
                shards: shards.clone(),
                votes: BTreeMap::new(),
                proposed: false,
            },
        );
        for shard in shards {
            let Some(leader) = self.shard_leaders.get(&shard) else {
                continue;
            };
            ctx.send(
                *leader,
                BaselineMsg::Prepare {
                    tx,
                    payload: payload.restrict(shard, self.sharding.as_ref()),
                },
            );
        }
    }

    fn handle_vote(
        &mut self,
        shard: ShardId,
        tx: TxId,
        vote: Decision,
        ctx: &mut Context<'_, BaselineMsg>,
    ) {
        if !self.is_leader {
            return;
        }
        let Some(pending) = self.pending.get_mut(&tx) else {
            return;
        };
        pending.votes.insert(shard, vote);
        if pending.proposed || pending.votes.len() < pending.shards.len() {
            return;
        }
        pending.proposed = true;
        let decision = Decision::meet_all(pending.votes.values().copied());
        let command = TmCommand {
            tx,
            decision,
            client: pending.client,
            shards: pending.shards.clone(),
        };
        if !self.phase1_started {
            self.phase1_started = true;
            let out = self
                .proposer
                .as_mut()
                .expect("leader has a proposer")
                .start_phase1();
            self.route(ctx, out);
        }
        let out = self
            .proposer
            .as_mut()
            .expect("leader has a proposer")
            .propose(command);
        self.route(ctx, out);
    }

    fn handle_paxos(
        &mut self,
        from: ProcessId,
        msg: PaxosMsg<TmCommand>,
        ctx: &mut Context<'_, BaselineMsg>,
    ) {
        let out = self.acceptor.handle(from, msg.clone());
        self.route(ctx, out);
        if let PaxosMsg::Chosen { slot, command } = &msg {
            self.log.record_chosen(*slot, command.clone());
            self.decided.entry(command.tx).or_insert(command.decision);
        }
        if let Some(proposer) = self.proposer.as_mut() {
            let (out, chosen) = proposer.handle(msg);
            self.route(ctx, out);
            for (slot, command) in chosen {
                self.log.record_chosen(slot, command.clone());
                self.decided.entry(command.tx).or_insert(command.decision);
                self.pending.remove(&command.tx);
                // The decision is durable: externalise it.
                ctx.send(
                    command.client,
                    BaselineMsg::DecisionClient {
                        tx: command.tx,
                        decision: command.decision,
                    },
                );
                for shard in &command.shards {
                    if let Some(leader) = self.shard_leaders.get(shard) {
                        ctx.send(
                            *leader,
                            BaselineMsg::Decision {
                                tx: command.tx,
                                decision: command.decision,
                            },
                        );
                    }
                }
            }
        }
    }
}

impl Actor<BaselineMsg> for TransactionManager {
    fn on_message(
        &mut self,
        from: ProcessId,
        msg: BaselineMsg,
        ctx: &mut Context<'_, BaselineMsg>,
    ) {
        match msg {
            BaselineMsg::Certify {
                tx,
                payload,
                client,
            } => self.handle_certify(tx, payload, client, ctx),
            BaselineMsg::VoteBatch { shard, votes } => {
                for (tx, vote) in votes {
                    self.handle_vote(shard, tx, vote, ctx);
                }
            }
            BaselineMsg::TmPaxos { msg } => self.handle_paxos(from, msg, ctx),
            _ => {}
        }
    }
}
