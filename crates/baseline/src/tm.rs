//! The baseline transaction manager (2PC coordinator) and its Paxos group.

use std::collections::BTreeMap;
use std::sync::Arc;

use ratc_core::flow::{AdmissionQueue, FlowControlConfig};
use ratc_paxos::{Acceptor, PaxosMsg, Proposer, ReplicatedLog};
use ratc_sim::{Actor, BackoffState, Context, CtrlMilestone, SimDuration, TimerTag, TxMilestone};
use ratc_types::{Decision, Payload, ProcessId, ShardId, ShardMap, TxId};

use crate::messages::{BaselineMsg, TmCommand};

/// Timer tag re-driving in-flight transactions (re-sending `PREPARE` to
/// shards whose vote is missing and re-transmitting outstanding Paxos work).
const TM_RETRY_TICK: TimerTag = 21;

/// Retry interval of the transaction manager.
const TM_RETRY: SimDuration = SimDuration::from_millis(20);

/// Consecutive fruitless retry ticks after which the TM stops re-arming (20
/// simulated seconds), so `World::run` terminates even when a shard is
/// permanently unrecoverable; any new `certify` re-arms the timer.
const TM_RETRY_CAP: u32 = 1000;

/// State of one in-flight transaction at the transaction manager.
#[derive(Debug, Clone)]
struct PendingTx {
    client: ProcessId,
    payload: Payload,
    shards: Vec<ShardId>,
    votes: BTreeMap<ShardId, Decision>,
    proposed: bool,
    /// When this transaction's next certify-retry is due (flow control only).
    backoff: BackoffState,
}

/// The transaction manager of the baseline TCS (and, with `is_leader = false`,
/// a passive member of its replication group).
///
/// The leader drives 2PC: it sends `PREPARE` to the leader of every involved
/// shard, collects votes (each vote is already durable in its shard's Paxos
/// log), computes the decision with `⊓`, commits the decision to its own Paxos
/// log, and only then externalises it to the client and the shards. This is
/// the 7-message-delay critical path the paper attributes to the vanilla
/// approach.
pub struct TransactionManager {
    id: ProcessId,
    is_leader: bool,
    /// The leader of the transaction-manager group; non-leader members
    /// forward `CERTIFY` requests here, so a client (or the unified harness)
    /// may submit through any group member.
    leader: ProcessId,
    group: Vec<ProcessId>,
    shard_leaders: BTreeMap<ShardId, ProcessId>,
    sharding: Arc<dyn ShardMap + Send + Sync>,
    acceptor: Acceptor<TmCommand>,
    proposer: Option<Proposer<TmCommand>>,
    log: ReplicatedLog<TmCommand>,
    pending: BTreeMap<TxId, PendingTx>,
    decided: BTreeMap<TxId, Decision>,
    /// Clients of decided transactions, kept so a re-submitted `certify` of a
    /// decided transaction can be answered directly.
    decided_clients: BTreeMap<TxId, (ProcessId, Vec<ShardId>)>,
    phase1_started: bool,
    ballot_round: u64,
    retry_armed: bool,
    /// Consecutive retry ticks without new work; capped by [`TM_RETRY_CAP`].
    retry_ticks: u32,
    /// `true` between a TM-leader restart and the completion of Paxos log
    /// recovery: until every decision accepted before the crash has been
    /// re-chosen, starting 2PC for a re-submitted transaction could commit a
    /// *second*, possibly different decision for it.
    recovering: bool,
    /// Flow-control knobs: admission window and retry backoff.
    flow: FlowControlConfig,
    /// Submissions waiting for an admission-window slot (FIFO, deduplicated).
    admission: AdmissionQueue<(Payload, ProcessId)>,
    /// Backoff gating Paxos retransmissions (per proposer, reset on progress).
    paxos_backoff: BackoffState,
}

impl TransactionManager {
    /// Creates a transaction-manager group member.
    pub fn new(sharding: Arc<dyn ShardMap + Send + Sync>) -> Self {
        TransactionManager {
            id: ProcessId::new(u64::MAX),
            is_leader: false,
            leader: ProcessId::new(u64::MAX),
            group: Vec::new(),
            shard_leaders: BTreeMap::new(),
            sharding,
            acceptor: Acceptor::new(ProcessId::new(u64::MAX)),
            proposer: None,
            log: ReplicatedLog::new(),
            pending: BTreeMap::new(),
            decided: BTreeMap::new(),
            decided_clients: BTreeMap::new(),
            phase1_started: false,
            ballot_round: 0,
            retry_armed: false,
            retry_ticks: 0,
            recovering: false,
            flow: FlowControlConfig::default(),
            admission: AdmissionQueue::new(),
            paxos_backoff: BackoffState::default(),
        }
    }

    /// Installs the flow-control configuration (admission window, backoff).
    pub fn set_flow(&mut self, flow: FlowControlConfig) {
        self.flow = flow;
    }

    /// Per-transaction jitter salt: decorrelates this TM's retry schedule for
    /// `tx` from every other transaction's without consuming shared RNG state.
    fn salt(&self, tx: TxId) -> u64 {
        tx.as_u64() ^ self.id.as_u64().rotate_left(17)
    }

    /// Installs identity, group membership, the group leader and the
    /// shard-leader directory.
    pub fn install(
        &mut self,
        id: ProcessId,
        group: Vec<ProcessId>,
        leader: ProcessId,
        shard_leaders: BTreeMap<ShardId, ProcessId>,
    ) {
        self.id = id;
        self.acceptor = Acceptor::new(id);
        self.group = group.clone();
        self.leader = leader;
        self.is_leader = id == leader;
        self.shard_leaders = shard_leaders;
        if self.is_leader {
            self.proposer = Some(Proposer::new(id, group, 0));
        }
    }

    /// Whether this member leads the transaction-manager group.
    pub fn is_leader(&self) -> bool {
        self.is_leader
    }

    /// Number of decisions replicated in this member's view of the log.
    pub fn decided_count(&self) -> usize {
        self.decided.len()
    }

    fn route(
        &self,
        ctx: &mut Context<'_, BaselineMsg>,
        out: Vec<(ProcessId, PaxosMsg<TmCommand>)>,
    ) {
        for (to, msg) in out {
            ctx.send(to, BaselineMsg::TmPaxos { msg });
        }
    }

    fn handle_certify(
        &mut self,
        tx: TxId,
        payload: Payload,
        client: ProcessId,
        ctx: &mut Context<'_, BaselineMsg>,
    ) {
        if !self.is_leader {
            // Any group member accepts `CERTIFY` and forwards it to the
            // leader, mirroring the RATC stacks where every replica can be
            // handed a submission.
            if self.leader != ProcessId::new(u64::MAX) {
                ctx.send(
                    self.leader,
                    BaselineMsg::Certify {
                        tx,
                        payload,
                        client,
                    },
                );
            }
            return;
        }
        // A re-submitted `certify` of a decided transaction (the client's
        // DECISION was lost, or the TM restarted and the client retried):
        // re-externalise the durable decision instead of swallowing it.
        if let Some(decision) = self.decided.get(&tx).copied() {
            self.externalize(tx, decision, Some(client), ctx);
            return;
        }
        // A restarted TM leader must finish Paxos log recovery first: a
        // decision accepted before the crash may exist for this transaction,
        // and starting fresh 2PC now could commit a second, different one.
        // The client's recovery retry re-delivers the request later.
        if self.recovering {
            let recovered = self.proposer.as_ref().map(|p| !p.has_pending()) == Some(true);
            if !recovered {
                self.arm_retry_timer(ctx);
                return;
            }
            self.recovering = false;
            ctx.ctrl_milestone(CtrlMilestone::Recovered, None, self.id.as_u64());
        }
        if self.pending.contains_key(&tx) {
            if !self.flow.enabled {
                // Legacy: re-drive the missing votes now instead of waiting
                // for the retry tick. Under a flood of client retries this is
                // exactly the duplicate-PREPARE amplification of the
                // collapse, which is why flow control supersedes instead.
                self.redrive(tx, ctx);
                return;
            }
            // A retry supersedes the in-flight attempt: refresh the reply
            // address and let the scheduled backoff decide when to re-drive,
            // instead of stacking another PREPARE volley on top of it.
            let now = ctx.now().as_micros();
            let due = {
                let pending = self.pending.get_mut(&tx).expect("checked above");
                pending.client = client;
                !pending.proposed && pending.backoff.due(now)
            };
            if due {
                let attempt = self
                    .pending
                    .get(&tx)
                    .map(|p| p.backoff.attempt)
                    .unwrap_or(0);
                ctx.obs_milestone(tx, TxMilestone::Retry, u64::from(attempt));
                ctx.obs_gauge("obs_backoff_attempt", f64::from(attempt));
                self.redrive(tx, ctx);
                let (backoff, salt) = (self.flow.backoff, self.salt(tx));
                if let Some(pending) = self.pending.get_mut(&tx) {
                    pending.backoff.fired(&backoff, salt, now);
                }
            }
            return;
        }
        if !self.flow.admits(self.pending.len()) {
            // Admission window full: park the submission at the edge. A
            // queued transaction costs memory, not certification work; it is
            // admitted the moment an in-flight transaction decides.
            self.admission.enqueue(tx, (payload, client));
            ctx.add_counter("tm_admission_queued", 1);
            ctx.obs_gauge("obs_admission_depth", self.admission.len() as f64);
            // New work arrived: reset the fruitless-tick budget and keep the
            // retry timer alive so the queued work is eventually driven.
            self.arm_retry_timer(ctx);
            return;
        }
        self.start_tx(tx, payload, client, ctx);
    }

    /// Starts 2PC for an admitted transaction: records it in flight and sends
    /// `PREPARE` to the leader of every involved shard.
    fn start_tx(
        &mut self,
        tx: TxId,
        payload: Payload,
        client: ProcessId,
        ctx: &mut Context<'_, BaselineMsg>,
    ) {
        let shards = payload.shards(self.sharding.as_ref());
        if shards.is_empty() {
            ctx.send(
                client,
                BaselineMsg::DecisionClient {
                    tx,
                    decision: Decision::Commit,
                },
            );
            return;
        }
        let backoff = BackoffState::armed(&self.flow.backoff, self.salt(tx), ctx.now().as_micros());
        self.pending.insert(
            tx,
            PendingTx {
                client,
                payload: payload.clone(),
                shards: shards.clone(),
                votes: BTreeMap::new(),
                proposed: false,
                backoff,
            },
        );
        // Admission and the PREPARE volley coincide on this stack: the TM
        // starts 2PC the moment a submission enters the window.
        ctx.obs_milestone(tx, TxMilestone::Admitted, 0);
        ctx.obs_gauge("obs_inflight_window", self.pending.len() as f64);
        ctx.obs_milestone(tx, TxMilestone::CertifySent, 0);
        for shard in shards {
            let Some(leader) = self.shard_leaders.get(&shard) else {
                continue;
            };
            ctx.send(
                *leader,
                BaselineMsg::Prepare {
                    tx,
                    payload: payload.restrict(shard, self.sharding.as_ref()),
                },
            );
        }
        self.arm_retry_timer(ctx);
    }

    /// Admits queued submissions into freed window slots (oldest first).
    fn drain_admission(&mut self, ctx: &mut Context<'_, BaselineMsg>) {
        while self.flow.admits(self.pending.len()) {
            let Some((tx, (payload, client))) = self.admission.pop() else {
                break;
            };
            if let Some(decision) = self.decided.get(&tx).copied() {
                self.externalize(tx, decision, Some(client), ctx);
                continue;
            }
            self.start_tx(tx, payload, client, ctx);
        }
    }

    /// Re-sends `PREPARE` to every shard of `tx` whose vote is missing.
    fn redrive(&mut self, tx: TxId, ctx: &mut Context<'_, BaselineMsg>) {
        let Some(pending) = self.pending.get(&tx) else {
            return;
        };
        if pending.proposed {
            return;
        }
        let missing: Vec<ShardId> = pending
            .shards
            .iter()
            .copied()
            .filter(|s| !pending.votes.contains_key(s))
            .collect();
        let payload = pending.payload.clone();
        for shard in missing {
            if let Some(leader) = self.shard_leaders.get(&shard) {
                ctx.send(
                    *leader,
                    BaselineMsg::Prepare {
                        tx,
                        payload: payload.restrict(shard, self.sharding.as_ref()),
                    },
                );
            }
        }
    }

    fn arm_retry_timer(&mut self, ctx: &mut Context<'_, BaselineMsg>) {
        // Called whenever new work arrives, which also resets the
        // fruitless-tick budget.
        self.retry_ticks = 0;
        let proposer_pending = self.proposer.as_ref().map(Proposer::has_pending) == Some(true);
        if !self.retry_armed
            && (!self.pending.is_empty() || proposer_pending || !self.admission.is_empty())
        {
            ctx.set_timer(TM_RETRY, TM_RETRY_TICK);
            self.retry_armed = true;
        }
    }

    /// Retry tick: re-drive PREPAREs for votes still missing and re-transmit
    /// outstanding Paxos messages. Everything re-sent is idempotent at the
    /// receivers (shard leaders re-report chosen votes, acceptors tolerate
    /// ballot repeats).
    fn handle_retry_tick(&mut self, ctx: &mut Context<'_, BaselineMsg>) {
        self.retry_armed = false;
        self.retry_ticks += 1;
        if self.retry_ticks > TM_RETRY_CAP {
            // Nothing has budged for a long time: the missing participants
            // look permanently gone. Stop keeping the event queue alive; a
            // later certify (e.g. a client retry after repair) re-arms.
            ctx.add_counter("tm_retries_abandoned", 1);
            return;
        }
        let now = ctx.now().as_micros();
        let txs: Vec<TxId> = if self.flow.enabled {
            // Backoff: only transactions whose deadline has passed re-drive
            // this tick; the rest keep waiting. This is the fix for the
            // per-tick full-pending volley that caused the collapse.
            self.pending
                .iter()
                .filter(|(_, p)| !p.proposed && p.backoff.due(now))
                .map(|(tx, _)| *tx)
                .collect()
        } else {
            self.pending.keys().copied().collect()
        };
        for tx in txs {
            if self.flow.enabled {
                let attempt = self
                    .pending
                    .get(&tx)
                    .map(|p| p.backoff.attempt)
                    .unwrap_or(0);
                ctx.obs_milestone(tx, TxMilestone::Retry, u64::from(attempt));
                ctx.obs_gauge("obs_backoff_attempt", f64::from(attempt));
            }
            self.redrive(tx, ctx);
            if self.flow.enabled {
                let (backoff, salt) = (self.flow.backoff, self.salt(tx));
                if let Some(pending) = self.pending.get_mut(&tx) {
                    pending.backoff.fired(&backoff, salt, now);
                }
            }
        }
        let paxos_due = !self.flow.enabled || self.paxos_backoff.due(now);
        if paxos_due {
            if let Some(proposer) = self.proposer.as_mut() {
                if proposer.has_pending() {
                    let out = proposer.retransmit();
                    self.route(ctx, out);
                    if self.flow.enabled {
                        let salt = self.id.as_u64();
                        self.paxos_backoff.fired(&self.flow.backoff, salt, now);
                    }
                }
            }
        }
        // Safety net: admit queued submissions if the window has room (the
        // normal admission point is the decision path in `handle_paxos`).
        self.drain_admission(ctx);
        // Re-arm directly (not via `arm_retry_timer`, which would reset the
        // fruitless-tick budget this tick just spent).
        let proposer_pending = self.proposer.as_ref().map(Proposer::has_pending) == Some(true);
        if !self.retry_armed
            && (!self.pending.is_empty() || proposer_pending || !self.admission.is_empty())
        {
            ctx.set_timer(TM_RETRY, TM_RETRY_TICK);
            self.retry_armed = true;
        }
    }

    /// Sends the durable decision of `tx` to the shards and (optionally) a
    /// client.
    fn externalize(
        &mut self,
        tx: TxId,
        decision: Decision,
        client: Option<ProcessId>,
        ctx: &mut Context<'_, BaselineMsg>,
    ) {
        let (stored_client, shards) = self
            .decided_clients
            .get(&tx)
            .cloned()
            .unwrap_or((ProcessId::new(u64::MAX), Vec::new()));
        if let Some(client) = client.or(Some(stored_client)) {
            if client != ProcessId::new(u64::MAX) {
                ctx.send(client, BaselineMsg::DecisionClient { tx, decision });
            }
        }
        for shard in shards {
            if let Some(leader) = self.shard_leaders.get(&shard) {
                ctx.send(*leader, BaselineMsg::Decision { tx, decision });
            }
        }
    }

    fn handle_vote(
        &mut self,
        shard: ShardId,
        tx: TxId,
        vote: Decision,
        ctx: &mut Context<'_, BaselineMsg>,
    ) {
        if !self.is_leader {
            return;
        }
        let Some(pending) = self.pending.get_mut(&tx) else {
            return;
        };
        pending.votes.insert(shard, vote);
        ctx.obs_milestone(tx, TxMilestone::ShardVoted, u64::from(shard.as_u32()));
        if pending.proposed || pending.votes.len() < pending.shards.len() {
            return;
        }
        pending.proposed = true;
        let decision = Decision::meet_all(pending.votes.values().copied());
        let command = TmCommand {
            tx,
            decision,
            client: pending.client,
            shards: pending.shards.clone(),
        };
        if !self.phase1_started {
            self.phase1_started = true;
            let out = self
                .proposer
                .as_mut()
                .expect("leader has a proposer")
                .start_phase1();
            self.route(ctx, out);
        }
        let out = self
            .proposer
            .as_mut()
            .expect("leader has a proposer")
            .propose(command);
        self.route(ctx, out);
        // A fresh proposal is progress: return retransmits to the fast
        // schedule.
        let (backoff, salt) = (self.flow.backoff, self.id.as_u64());
        self.paxos_backoff
            .reset(&backoff, salt, ctx.now().as_micros());
        self.arm_retry_timer(ctx);
    }

    fn handle_paxos(
        &mut self,
        from: ProcessId,
        msg: PaxosMsg<TmCommand>,
        ctx: &mut Context<'_, BaselineMsg>,
    ) {
        let out = self.acceptor.handle(from, msg.clone());
        self.route(ctx, out);
        if let PaxosMsg::Chosen { slot, command } = &msg {
            self.log.record_chosen(*slot, command.clone());
            self.decided.entry(command.tx).or_insert(command.decision);
            self.decided_clients
                .entry(command.tx)
                .or_insert_with(|| (command.client, command.shards.clone()));
        }
        if let Some(proposer) = self.proposer.as_mut() {
            let (out, chosen) = proposer.handle(msg);
            self.route(ctx, out);
            for (slot, command) in chosen {
                self.log.record_chosen(slot, command.clone());
                // First decision wins: retries around a TM restart can choose
                // a second command for the same transaction; only the first
                // recorded decision is ever externalised.
                let decision = *self.decided.entry(command.tx).or_insert(command.decision);
                self.decided_clients
                    .entry(command.tx)
                    .or_insert_with(|| (command.client, command.shards.clone()));
                if self.pending.remove(&command.tx).is_some() {
                    // The Paxos accept quorum is what makes the decision
                    // durable: quorum and decision coincide on this stack.
                    ctx.obs_milestone(command.tx, TxMilestone::AcceptQuorum, 0);
                    ctx.obs_milestone(command.tx, TxMilestone::Decided, 0);
                    ctx.obs_gauge("obs_inflight_window", self.pending.len() as f64);
                }
                self.admission.remove(command.tx);
                // A slot was chosen: the proposer is making headway, so its
                // retransmit backoff returns to the fast schedule.
                let (backoff, salt) = (self.flow.backoff, self.id.as_u64());
                self.paxos_backoff
                    .reset(&backoff, salt, ctx.now().as_micros());
                // The decision is durable: externalise it.
                ctx.send(
                    command.client,
                    BaselineMsg::DecisionClient {
                        tx: command.tx,
                        decision,
                    },
                );
                for shard in &command.shards {
                    if let Some(leader) = self.shard_leaders.get(shard) {
                        ctx.send(
                            *leader,
                            BaselineMsg::Decision {
                                tx: command.tx,
                                decision,
                            },
                        );
                    }
                }
            }
        }
        // Decisions freed admission-window slots: admit waiting submissions.
        self.drain_admission(ctx);
    }
}

impl Actor<BaselineMsg> for TransactionManager {
    fn on_message(
        &mut self,
        from: ProcessId,
        msg: BaselineMsg,
        ctx: &mut Context<'_, BaselineMsg>,
    ) {
        match msg {
            BaselineMsg::Certify {
                tx,
                payload,
                client,
            } => self.handle_certify(tx, payload, client, ctx),
            BaselineMsg::VoteBatch { shard, votes } => {
                for (tx, vote) in votes {
                    self.handle_vote(shard, tx, vote, ctx);
                }
            }
            BaselineMsg::TmPaxos { msg } => self.handle_paxos(from, msg, ctx),
            // Explicit no-ops: shard-group and client traffic never acts on
            // the transaction manager.
            BaselineMsg::Prepare { .. }
            | BaselineMsg::Decision { .. }
            | BaselineMsg::DecisionClient { .. }
            | BaselineMsg::ShardPaxos { .. } => {}
        }
    }

    fn on_timer(&mut self, tag: TimerTag, ctx: &mut Context<'_, BaselineMsg>) {
        if tag == TM_RETRY_TICK {
            self.handle_retry_tick(ctx);
        }
    }

    /// Crash-restart recovery: the Paxos acceptor, the chosen-command log and
    /// the decision map (rebuilt from the log) are durable; in-flight 2PC
    /// state is volatile and lost — clients re-drive undecided transactions
    /// by re-submitting, which either restarts 2PC (undecided) or
    /// re-externalises the durable outcome (decided).
    fn on_restart(&mut self, ctx: &mut Context<'_, BaselineMsg>) {
        self.pending.clear();
        self.admission.clear();
        let (backoff, salt) = (self.flow.backoff, self.id.as_u64());
        self.paxos_backoff
            .reset(&backoff, salt, ctx.now().as_micros());
        self.retry_armed = false;
        self.phase1_started = false;
        self.ballot_round += 1;
        if self.is_leader {
            let mut proposer = Proposer::new(self.id, self.group.clone(), self.ballot_round);
            // Start log recovery immediately; `handle_certify` defers fresh
            // 2PC until it completes.
            let out = proposer.start_phase1();
            self.phase1_started = true;
            self.recovering = true;
            self.proposer = Some(proposer);
            self.route(ctx, out);
            self.arm_retry_timer(ctx);
        }
        ctx.add_counter("tm_restarts", 1);
    }
}
