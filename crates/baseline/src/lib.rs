//! The vanilla baseline TCS: two-phase commit layered over Multi-Paxos
//! replicated shards with `2f + 1` replicas.
//!
//! §1 of the paper describes the "straightforward way" to implement a TCS:
//! run classical 2PC across shards and make each shard (and the transaction
//! manager) simulate a reliable process by replicating every action through a
//! black-box Paxos. This costs `2f + 1` replicas per shard and 7 message
//! delays for a client to learn a decision, and concentrates load on the Paxos
//! leaders. This crate implements exactly that design on the same simulation
//! substrate as `ratc-core`, so the two can be compared head-to-head in the
//! benchmark harness (experiments E1–E3, E6):
//!
//! * [`TransactionManager`] — the 2PC coordinator; its decisions are committed
//!   to its own Multi-Paxos log before being externalised;
//! * [`BaselineShardReplica`] — a shard replica: the leader certifies
//!   transactions with the same shard-local functions `f_s`/`g_s` as the RATC
//!   protocols, but every prepared vote is committed to the shard's
//!   Multi-Paxos log (2 extra message delays) before it is reported back to
//!   the transaction manager;
//! * [`BaselineCluster`] — the deployment harness mirroring
//!   `ratc_core::Cluster`.
//!
//! Failure handling: with `2f + 1` replicas a single failure is *masked* (the
//! Paxos quorum still exists), which is the availability advantage the paper
//! concedes to this design (§6); leader fail-over itself is provided by the
//! underlying `ratc-paxos` ballots but is not needed for the experiments.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod cluster;
pub mod messages;
pub mod replica;
pub mod tm;

pub use cluster::{BaselineCluster, BaselineClusterConfig};
pub use messages::{BaselineMsg, ShardCommand, TmCommand};
pub use replica::BaselineShardReplica;
pub use tm::TransactionManager;
