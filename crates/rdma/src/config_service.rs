//! The global configuration-service actor of the RDMA protocol.
//!
//! Appendix C adjusts the configuration service of §3 to keep "a single data
//! structure with the system's sequence of configurations parameterized by
//! shard"; none of its operations take a shard identifier. This actor wraps
//! [`GlobalConfigRegistry`] behind the RDMA protocol's message vocabulary.

use ratc_config::{GlobalConfigRegistry, GlobalConfiguration};
use ratc_sim::{Actor, Context};
use ratc_types::ProcessId;

use crate::messages::RdmaMsg;

/// The configuration-service actor for the RDMA protocol.
pub struct GlobalConfigServiceActor {
    registry: GlobalConfigRegistry,
    /// When `true` (naive per-shard deployments), a successful compare-and-swap
    /// additionally pushes a `NaiveConfigChange` notification to the members of
    /// the shards whose configuration did *not* change, mirroring §3's
    /// `CONFIG_CHANGE`. The correct protocol does not need this: it uses the
    /// `CONFIG_PREPARE` phase instead.
    notify_unchanged_shards: bool,
}

impl GlobalConfigServiceActor {
    /// Creates the service with an initial configuration.
    pub fn new(initial: GlobalConfiguration, notify_unchanged_shards: bool) -> Self {
        GlobalConfigServiceActor {
            registry: GlobalConfigRegistry::new(initial),
            notify_unchanged_shards,
        }
    }

    /// Read access to the stored registry.
    pub fn registry(&self) -> &GlobalConfigRegistry {
        &self.registry
    }
}

impl Actor<RdmaMsg> for GlobalConfigServiceActor {
    fn on_message(&mut self, from: ProcessId, msg: RdmaMsg, ctx: &mut Context<'_, RdmaMsg>) {
        match msg {
            RdmaMsg::CsGetLast => {
                let config = self.registry.get_last().clone();
                ctx.send(from, RdmaMsg::CsGetLastReply { config });
            }
            RdmaMsg::CsGet { epoch } => {
                let config = self.registry.get(epoch).cloned();
                ctx.send(from, RdmaMsg::CsGetReply { epoch, config });
            }
            RdmaMsg::CsCas { expected, config } => {
                let previous = self.registry.get_last().clone();
                let ok = self
                    .registry
                    .compare_and_swap(expected, config.clone())
                    .is_ok();
                ctx.send(
                    from,
                    RdmaMsg::CsCasReply {
                        ok,
                        config: config.clone(),
                    },
                );
                if ok && self.notify_unchanged_shards {
                    // Notify the members of shards whose membership did not
                    // change (the reconfigured shard learns via NEW_CONFIG /
                    // NEW_STATE).
                    let mut targets = Vec::new();
                    for (shard, members) in &config.members {
                        if previous.members_of(*shard) == members.as_slice()
                            && previous.leader_of(*shard) == config.leader_of(*shard)
                        {
                            targets.extend(members.iter().copied());
                        }
                    }
                    targets.sort_unstable();
                    targets.dedup();
                    ctx.send_to_many(targets, RdmaMsg::NaiveConfigChange { config });
                }
            }
            // Explicit no-ops: the CS answers only its own vocabulary
            // (`CsGetLast`/`CsGet`/`CsCas`); commit, reconfiguration and
            // fabric traffic is never addressed to it, and the reply /
            // notification variants below are messages *it* sends.
            RdmaMsg::Certify { .. }
            | RdmaMsg::Prepare { .. }
            | RdmaMsg::PrepareAck { .. }
            | RdmaMsg::Accept { .. }
            | RdmaMsg::DecisionShard { .. }
            | RdmaMsg::DecisionClient { .. }
            | RdmaMsg::Retry { .. }
            | RdmaMsg::TxDecided { .. }
            | RdmaMsg::PrepareBatch { .. }
            | RdmaMsg::PrepareAckBatch { .. }
            | RdmaMsg::AcceptBatch { .. }
            | RdmaMsg::DecisionBatch { .. }
            | RdmaMsg::FrontierExchange { .. }
            | RdmaMsg::StartReconfigure { .. }
            | RdmaMsg::Probe { .. }
            | RdmaMsg::ProbeAck { .. }
            | RdmaMsg::ConfigPrepare { .. }
            | RdmaMsg::ConfigPrepareAck { .. }
            | RdmaMsg::NewConfig { .. }
            | RdmaMsg::NewState { .. }
            | RdmaMsg::Connect { .. }
            | RdmaMsg::ConnectAck { .. }
            | RdmaMsg::CsGetLastReply { .. }
            | RdmaMsg::CsGetReply { .. }
            | RdmaMsg::CsCasReply { .. }
            | RdmaMsg::NaiveConfigChange { .. } => {}
        }
    }
}
