//! The RDMA replica state machine (Figures 7–8, line by line).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use ratc_config::{GlobalConfiguration, MembershipPlanner};
use ratc_core::batch::{
    BatchingConfig, DecisionItem, PrepareBatch, PrepareItem, PreparedItem, VoteBatcher,
};
use ratc_core::flow::{AdmissionQueue, FlowControlConfig};
use ratc_core::log::{LogEntry, TxPhase};
use ratc_core::replica::TruncationConfig;
use ratc_sim::rdma::RdmaToken;
use ratc_sim::{Actor, BackoffState, Context, CtrlMilestone, SimDuration, TimerTag, TxMilestone};
use ratc_types::{
    CertificationPolicy, Decision, Epoch, IndexedCertifier, Payload, Position, ProcessId,
    ShardCertifier, ShardId, ShardMap, TxId,
};

use crate::messages::RdmaMsg;

/// The certification log of the RDMA protocol. Identical in structure to the
/// message-passing protocol's log, so the type is shared with `ratc-core`.
pub type RdmaLog = ratc_core::log::CertificationLog;

/// Timer tag used for the coordinator's re-transmission tick.
const RETRY_TICK: TimerTag = 1;

/// Timer tag used to flush a partially filled prepare batch.
const BATCH_TICK: TimerTag = 2;

/// Timer tag ending the probe grace period (see `handle_probe_ack`).
const PROBE_GRACE_TICK: TimerTag = 3;

/// Timer tag re-driving a reconfiguration whose probes were lost.
const RECON_RETRY_TICK: TimerTag = 4;

/// Timer tag re-driving the post-restart `Connect` handshake until every
/// peer has answered (the handshake itself travels over faultable links).
const CONNECT_RETRY_TICK: TimerTag = 5;

/// Interval between `Connect` handshake retries.
const CONNECT_RETRY: SimDuration = SimDuration::from_millis(25);

/// Handshake retries after which unanswered peers are given up on (10
/// simulated seconds): bounds the event queue when a peer is gone for good;
/// a later restart or reconfiguration starts a fresh round.
const CONNECT_RETRY_CAP: u32 = 400;

/// Probe restarts after which a reconfiguration is abandoned (10 simulated
/// seconds), so an unrecoverable cluster does not keep the event queue
/// alive forever. A later `StartReconfigure` can always try again.
const RECON_RETRY_CAP: u32 = 200;

/// How long the reconfigurer waits for further in-flight probe replies after
/// every probed shard has an initialised responder.
const PROBE_GRACE: SimDuration = SimDuration::from_micros(500);

/// Interval after which a still-unfinished reconfiguration restarts probing.
const RECON_RETRY: SimDuration = SimDuration::from_millis(50);

/// The data needed to distribute a completed transaction's decision: the
/// client, the decision, and per-shard `(position, truncation floor)` targets.
type Completion = (ProcessId, Decision, Vec<(ShardId, Position, Position)>);

/// How reconfiguration is performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconfigMode {
    /// The correct protocol of §5: global reconfiguration with connection
    /// closing, `CONFIG_PREPARE` dissemination and `flush` on promotion.
    GlobalCorrect,
    /// The **incorrect** variant that keeps §3's per-shard reconfiguration
    /// while using RDMA on the data path. Reproduces the Figure 4a safety
    /// violation; never use outside experiments.
    NaivePerShard,
}

/// Replica status (the paper's `status`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RdmaStatus {
    /// Shard leader in the current epoch.
    Leader,
    /// Shard follower in the current epoch.
    Follower,
    /// Probed for a higher epoch; transaction processing stopped.
    Reconfiguring,
}

#[derive(Debug, Clone, Default)]
struct ShardProgress {
    pos: Option<Position>,
    vote: Option<Decision>,
    /// Followers whose RDMA acknowledgement has been received.
    acked: BTreeSet<ProcessId>,
    /// The shard leader's decided frontier, gossiped on `PREPARE_ACK` (RDMA
    /// hardware acks carry no payload, so followers cannot gossip theirs).
    leader_frontier: Option<Position>,
}

#[derive(Debug, Clone)]
struct CoordState {
    client: ProcessId,
    payload: Option<Payload>,
    shards: Vec<ShardId>,
    /// Progress per shard per (global) epoch.
    progress: BTreeMap<ShardId, BTreeMap<Epoch, ShardProgress>>,
    decided: bool,
    /// The final decision this coordinator computed or learned, kept so a
    /// re-submitted `certify` of an already-decided transaction is answered
    /// directly (the original `DECISION` may have been lost to a fault).
    decision: Option<Decision>,
    /// A decision learned out-of-band from a `TxDecided` reply (the
    /// transaction was truncated at some shard); propagated to shards that
    /// still hold the transaction as prepared (see `flush_known_decision`).
    known_decision: Option<Decision>,
}

/// What an outstanding RDMA write was for.
#[derive(Debug, Clone)]
enum PendingWrite {
    Accept {
        tx: TxId,
        shard: ShardId,
        follower: ProcessId,
        epoch: Epoch,
    },
    /// A whole batch of votes packed into one write (see
    /// `ratc_core::batch`): the hardware acknowledgement acknowledges every
    /// slot of the batch at once.
    AcceptBatch {
        txs: Vec<TxId>,
        shard: ShardId,
        follower: ProcessId,
        epoch: Epoch,
    },
    Other,
}

#[derive(Debug, Clone)]
enum ReconPhase {
    AwaitingGetLast,
    Probing,
    AwaitingCas,
    Installing { config: GlobalConfiguration },
}

#[derive(Debug, Clone)]
struct ReconState {
    phase: ReconPhase,
    recon_epoch: Epoch,
    suspected_shard: ShardId,
    /// Per shard: the epoch currently being probed and its members.
    probed_epoch: BTreeMap<ShardId, Epoch>,
    probed_members: BTreeMap<ShardId, Vec<ProcessId>>,
    /// Per shard: responders, in arrival order.
    responders: BTreeMap<ShardId, Vec<ProcessId>>,
    /// Per shard: responders that reported themselves initialised.
    initialized: BTreeMap<ShardId, Vec<ProcessId>>,
    /// Per shard: the leader of the configuration returned by `get_last`,
    /// preferred as the shard's new leader if it responds initialised.
    prev_leaders: BTreeMap<ShardId, ProcessId>,
    /// The armed probe grace timer (see `handle_probe_ack`); cancelled when
    /// probing restarts so a stale tick cannot finish the new round early.
    grace_timer: Option<ratc_sim::actor::TimerId>,
    /// Probe restarts so far; abandoned past [`RECON_RETRY_CAP`].
    retries: u32,
    config_prepare_acks: BTreeSet<ProcessId>,
    spares: BTreeMap<ShardId, Vec<ProcessId>>,
    target_size: usize,
    exclude: Vec<ProcessId>,
}

/// A replica of the RDMA-based protocol.
pub struct RdmaReplica {
    id: ProcessId,
    shard: ShardId,
    mode: ReconfigMode,
    status: RdmaStatus,
    initialized: bool,
    epoch: Epoch,
    new_epoch: Epoch,
    config: Option<GlobalConfiguration>,
    connections: BTreeSet<ProcessId>,
    log: RdmaLog,
    certifier: Arc<dyn ShardCertifier>,
    /// Pristine (empty) incremental certifier, cloned whenever an installed
    /// log needs an index rebuilt (see `handle_new_state`).
    index_factory: Box<dyn IndexedCertifier>,
    sharding: Arc<dyn ShardMap + Send + Sync>,
    cs: ProcessId,
    coordinating: BTreeMap<TxId, CoordState>,
    pending_writes: BTreeMap<RdmaToken, PendingWrite>,
    recon: Option<ReconState>,
    retry_interval: SimDuration,
    retry_timer_armed: bool,
    truncation: TruncationConfig,
    batching: BatchingConfig,
    batcher: VoteBatcher<TxId>,
    batch_timer_armed: bool,
    /// Flow-control knobs: coordinator admission window and retry backoff.
    flow: FlowControlConfig,
    /// Submissions waiting for an admission-window slot (FIFO, deduplicated).
    admission: AdmissionQueue<(Payload, ProcessId)>,
    /// Running count of undecided coordinated transactions — kept in O(1)
    /// lockstep with `coordinating` so the admission check does not rescan
    /// the map (which retains decided entries) on every certify and drain.
    in_flight: usize,
    /// Per-transaction retry-backoff schedules.
    retry_backoff: BTreeMap<TxId, BackoffState>,
    /// Peers whose `Connect`/`ConnectAck` is still outstanding after a
    /// restart; the handshake is retried until this empties (or the retry
    /// cap gives up on permanently unreachable peers).
    pending_connects: BTreeSet<ProcessId>,
    connect_retry_armed: bool,
    connect_attempts: u32,
    /// Decided frontiers gossiped by the other members of this replica's
    /// shard via `FrontierExchange` (RDMA hardware acks carry no payload, so
    /// the data path cannot carry them).
    peer_frontiers: BTreeMap<ProcessId, Position>,
    /// The frontier this replica last broadcast to its peers; a new exchange
    /// is sent once the frontier advances by a full truncation batch.
    last_gossiped_frontier: Position,
}

impl RdmaReplica {
    /// Creates a replica of `shard` in the given reconfiguration mode.
    pub fn new<P>(
        shard: ShardId,
        policy: &P,
        sharding: Arc<dyn ShardMap + Send + Sync>,
        mode: ReconfigMode,
    ) -> Self
    where
        P: CertificationPolicy + ?Sized,
    {
        RdmaReplica {
            id: ProcessId::new(u64::MAX),
            shard,
            mode,
            status: RdmaStatus::Follower,
            initialized: false,
            epoch: Epoch::ZERO,
            new_epoch: Epoch::ZERO,
            config: None,
            connections: BTreeSet::new(),
            log: RdmaLog::with_certifier(policy.indexed_certifier(shard)),
            certifier: policy.shard_certifier(shard),
            index_factory: policy.indexed_certifier(shard),
            sharding,
            cs: ProcessId::new(u64::MAX),
            coordinating: BTreeMap::new(),
            pending_writes: BTreeMap::new(),
            recon: None,
            retry_interval: SimDuration::from_millis(20),
            retry_timer_armed: false,
            truncation: TruncationConfig::default(),
            batching: BatchingConfig::default(),
            batcher: VoteBatcher::new(BatchingConfig::default()),
            batch_timer_armed: false,
            flow: FlowControlConfig::default(),
            admission: AdmissionQueue::new(),
            in_flight: 0,
            retry_backoff: BTreeMap::new(),
            pending_connects: BTreeSet::new(),
            connect_retry_armed: false,
            connect_attempts: 0,
            peer_frontiers: BTreeMap::new(),
            last_gossiped_frontier: Position::ZERO,
        }
    }

    /// Sets the checkpointed-truncation policy (default: enabled, batch 32).
    pub fn set_truncation(&mut self, truncation: TruncationConfig) {
        self.truncation = truncation;
    }

    /// Sets the batching-pipeline knobs (default: disabled).
    pub fn set_batching(&mut self, batching: BatchingConfig) {
        self.batching = batching;
        self.batcher.set_config(batching);
    }

    /// Sets the flow-control knobs (default: enabled, window 64,
    /// exponential backoff).
    pub fn set_flow(&mut self, flow: FlowControlConfig) {
        self.flow = flow;
    }

    /// The flow-control configuration in force at this replica.
    pub fn flow(&self) -> FlowControlConfig {
        self.flow
    }

    /// Installs the initial configuration, own identifier and configuration
    /// service at this replica. `in_initial_config` is false for spares.
    pub fn install_initial_config(
        &mut self,
        id: ProcessId,
        cs: ProcessId,
        config: &GlobalConfiguration,
        in_initial_config: bool,
    ) {
        self.id = id;
        self.cs = cs;
        self.epoch = config.epoch;
        self.config = Some(config.clone());
        if in_initial_config {
            self.initialized = true;
            self.status = if config.leader_of(self.shard) == Some(id) {
                RdmaStatus::Leader
            } else {
                RdmaStatus::Follower
            };
            self.connections = config
                .all_processes()
                .into_iter()
                .filter(|p| *p != id)
                .collect();
        }
    }

    // -- accessors -----------------------------------------------------------

    /// This replica's shard.
    pub fn shard(&self) -> ShardId {
        self.shard
    }

    /// Current status.
    pub fn status(&self) -> RdmaStatus {
        self.status
    }

    /// Current global epoch.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// Whether the replica has ever been initialised.
    pub fn is_initialized(&self) -> bool {
        self.initialized
    }

    /// The replica's certification log.
    pub fn log(&self) -> &RdmaLog {
        &self.log
    }

    /// The replica's current view of the global configuration.
    pub fn config(&self) -> Option<&GlobalConfiguration> {
        self.config.as_ref()
    }

    /// Number of transactions this replica is currently coordinating without
    /// a final decision.
    pub fn undecided_coordinated(&self) -> usize {
        debug_assert_eq!(
            self.in_flight,
            self.coordinating.values().filter(|c| !c.decided).count(),
            "in-flight counter out of lockstep with coordinating map"
        );
        self.in_flight
    }

    /// Whether this replica is currently driving a reconfiguration.
    pub fn reconfiguration_in_flight(&self) -> bool {
        self.recon.is_some()
    }

    /// The transactions this replica coordinates that have no final decision.
    pub fn undecided_transactions(&self) -> Vec<TxId> {
        self.coordinating
            .iter()
            .filter(|(_, c)| !c.decided)
            .map(|(tx, _)| *tx)
            .collect()
    }

    // -- helpers -------------------------------------------------------------

    fn leader_of(&self, shard: ShardId) -> Option<ProcessId> {
        self.config.as_ref().and_then(|c| c.leader_of(shard))
    }

    fn followers_of(&self, shard: ShardId) -> Vec<ProcessId> {
        self.config
            .as_ref()
            .map(|c| c.followers_of(shard))
            .unwrap_or_default()
    }

    fn arm_retry_timer(&mut self, ctx: &mut Context<'_, RdmaMsg>) {
        if !self.retry_timer_armed
            && (self.undecided_coordinated() > 0 || !self.admission.is_empty())
        {
            ctx.set_timer(self.retry_interval, RETRY_TICK);
            self.retry_timer_armed = true;
        }
    }

    /// Per-transaction jitter salt: decorrelates this coordinator's retry
    /// schedule for `tx` from every other transaction's without consuming
    /// shared RNG state.
    fn backoff_salt(&self, tx: TxId) -> u64 {
        tx.as_u64() ^ self.id.as_u64().rotate_left(17)
    }

    /// Records that a retry for `tx` fired at `now` and schedules the next.
    fn backoff_fired(&mut self, tx: TxId, now: u64) {
        let (policy, salt) = (self.flow.backoff, self.backoff_salt(tx));
        self.retry_backoff
            .entry(tx)
            .or_insert_with(|| BackoffState::armed(&policy, salt, now))
            .fired(&policy, salt, now);
    }

    /// Whether `tx`'s next retry is due at `now` (always true without flow
    /// control, or before the first deadline is armed).
    fn backoff_due(&self, tx: TxId, now: u64) -> bool {
        !self.flow.enabled
            || self
                .retry_backoff
                .get(&tx)
                .map(|b| b.due(now))
                .unwrap_or(true)
    }

    /// Admits queued submissions into freed window slots (oldest first).
    fn drain_admission(&mut self, ctx: &mut Context<'_, RdmaMsg>) {
        while self.flow.admits(self.undecided_coordinated()) {
            let Some((tx, (payload, client))) = self.admission.pop() else {
                break;
            };
            self.handle_certify(tx, payload, client, ctx);
        }
    }

    fn send_prepares(
        &self,
        ctx: &mut Context<'_, RdmaMsg>,
        tx: TxId,
        coord: &CoordState,
        only: Option<&[ShardId]>,
    ) {
        ctx.obs_milestone(tx, TxMilestone::CertifySent, 0);
        for shard in &coord.shards {
            if let Some(filter) = only {
                if !filter.contains(shard) {
                    continue;
                }
            }
            let Some(leader) = self.leader_of(*shard) else {
                continue;
            };
            let restricted = coord
                .payload
                .as_ref()
                .map(|p| p.restrict(*shard, self.sharding.as_ref()));
            ctx.send(
                leader,
                RdmaMsg::Prepare {
                    tx,
                    payload: restricted,
                    shards: coord.shards.clone(),
                    client: coord.client,
                },
            );
        }
    }

    /// Applies a message that was found in local memory (either polled by the
    /// simulator's `deliver-rdma` or drained by `flush`).
    fn apply_rdma_payload(&mut self, msg: RdmaMsg, ctx: &mut Context<'_, RdmaMsg>) {
        match msg {
            // Line 94–95: store unconditionally; followers cannot reject.
            RdmaMsg::Accept {
                shard: _,
                pos,
                tx,
                payload,
                vote,
                shards,
                client,
            } if self.log.phase(pos) == TxPhase::Start => {
                self.log.store_at(
                    pos,
                    LogEntry {
                        tx,
                        payload,
                        vote,
                        dec: None,
                        phase: TxPhase::Prepared,
                        shards,
                        client,
                    },
                );
            }
            // A batch write: per-slot votes are recoverable individually, so
            // replay each item exactly like a single `ACCEPT`.
            RdmaMsg::AcceptBatch { shard: _, items } => {
                for item in items {
                    if self.log.phase(item.pos) == TxPhase::Start {
                        self.log.store_at(
                            item.pos,
                            LogEntry {
                                tx: item.tx,
                                payload: item.payload,
                                vote: item.vote,
                                dec: None,
                                phase: TxPhase::Prepared,
                                shards: item.shards,
                                client: item.client,
                            },
                        );
                    }
                }
            }
            // Line 101–102, plus checkpointed truncation at the hinted floor.
            RdmaMsg::DecisionShard {
                pos,
                decision,
                truncate_to,
            } => {
                self.log.decide(pos, decision);
                self.maybe_truncate(truncate_to, ctx);
            }
            RdmaMsg::DecisionBatch { items, truncate_to } => {
                for item in &items {
                    self.log.decide(item.pos, item.decision);
                }
                self.maybe_truncate(truncate_to, ctx);
            }
            // An `ACCEPT` whose slot already left `Start` (the guard above
            // rejected it): a duplicate RDMA write replaying an occupied
            // slot — idempotent, nothing to store.
            RdmaMsg::Accept { .. } => {}
            // Explicit no-ops: only `ACCEPT`/`DECISION` (and their batches)
            // are one-sided writes into follower memory; everything else in
            // the vocabulary travels as a routed message and never reaches
            // `apply_rdma_payload`.
            RdmaMsg::Certify { .. }
            | RdmaMsg::Prepare { .. }
            | RdmaMsg::PrepareAck { .. }
            | RdmaMsg::DecisionClient { .. }
            | RdmaMsg::Retry { .. }
            | RdmaMsg::TxDecided { .. }
            | RdmaMsg::PrepareBatch { .. }
            | RdmaMsg::PrepareAckBatch { .. }
            | RdmaMsg::FrontierExchange { .. }
            | RdmaMsg::StartReconfigure { .. }
            | RdmaMsg::Probe { .. }
            | RdmaMsg::ProbeAck { .. }
            | RdmaMsg::ConfigPrepare { .. }
            | RdmaMsg::ConfigPrepareAck { .. }
            | RdmaMsg::NewConfig { .. }
            | RdmaMsg::NewState { .. }
            | RdmaMsg::Connect { .. }
            | RdmaMsg::ConnectAck { .. }
            | RdmaMsg::CsGetLast
            | RdmaMsg::CsGetLastReply { .. }
            | RdmaMsg::CsGet { .. }
            | RdmaMsg::CsGetReply { .. }
            | RdmaMsg::CsCas { .. }
            | RdmaMsg::CsCasReply { .. }
            | RdmaMsg::NaiveConfigChange { .. } => {}
        }
    }

    // -- member-to-member frontier exchange (see `RdmaMsg::FrontierExchange`) --

    /// Broadcasts this member's decided frontier to its shard peers once it
    /// has advanced by a full truncation batch since the last broadcast.
    /// Event-driven rather than wall-clock-periodic so a quiescent cluster
    /// stays quiescent; "periodic" in position space.
    fn maybe_gossip_frontier(&mut self, ctx: &mut Context<'_, RdmaMsg>) {
        if !self.truncation.enabled || !self.initialized || self.status == RdmaStatus::Reconfiguring
        {
            return;
        }
        let frontier = self.log.decided_frontier();
        if frontier.as_u64() < self.last_gossiped_frontier.as_u64() + self.truncation.batch {
            return;
        }
        self.last_gossiped_frontier = frontier;
        let peers: Vec<ProcessId> = self
            .config
            .as_ref()
            .map(|c| {
                c.members_of(self.shard)
                    .iter()
                    .copied()
                    .filter(|p| *p != self.id)
                    .collect()
            })
            .unwrap_or_default();
        ctx.add_counter("frontier_exchanges", peers.len() as u64);
        ctx.send_to_many(
            peers,
            RdmaMsg::FrontierExchange {
                shard: self.shard,
                frontier,
            },
        );
    }

    /// The cluster-wide minimum decided frontier of this replica's shard:
    /// its own frontier met with every peer's last gossiped one (a member
    /// never heard from pins the floor at zero — safe, it just delays
    /// truncation until everyone has gossiped).
    fn cluster_frontier_floor(&self) -> Position {
        let members = self
            .config
            .as_ref()
            .map(|c| c.members_of(self.shard).to_vec())
            .unwrap_or_default();
        members
            .iter()
            .map(|m| {
                if *m == self.id {
                    self.log.decided_frontier()
                } else {
                    self.peer_frontiers
                        .get(m)
                        .copied()
                        .unwrap_or(Position::ZERO)
                }
            })
            .min()
            .unwrap_or(Position::ZERO)
    }

    /// A shard peer gossiped its decided frontier: record it and truncate at
    /// the true cluster minimum (instead of waiting for a clamped leader
    /// hint on the next `DecisionShard` write).
    fn handle_frontier_exchange(
        &mut self,
        from: ProcessId,
        shard: ShardId,
        frontier: Position,
        ctx: &mut Context<'_, RdmaMsg>,
    ) {
        if shard != self.shard {
            return;
        }
        self.peer_frontiers.insert(from, frontier);
        let floor = self.cluster_frontier_floor();
        self.maybe_truncate(floor, ctx);
    }

    /// Writes `DECISION` for a transaction with an out-of-band decision
    /// (learned via `TxDecided`) into the members of `shard`, if this
    /// coordinator knows the transaction's position there in the current
    /// epoch. Without this, shards that missed the original decision would
    /// hold the transaction prepared (and its keys locked) forever.
    fn flush_known_decision(&mut self, tx: TxId, shard: ShardId, ctx: &mut Context<'_, RdmaMsg>) {
        let Some(coord) = self.coordinating.get(&tx) else {
            return;
        };
        let Some(decision) = coord.known_decision else {
            return;
        };
        let Some(pos) = coord
            .progress
            .get(&shard)
            .and_then(|m| m.get(&self.epoch))
            .and_then(|p| p.pos)
        else {
            return;
        };
        let members = self
            .config
            .as_ref()
            .map(|c| c.members_of(shard).to_vec())
            .unwrap_or_default();
        for member in members {
            if member == self.id {
                self.log.decide(pos, decision);
                self.maybe_gossip_frontier(ctx);
                continue;
            }
            let token = ctx.rdma_send(
                member,
                RdmaMsg::DecisionShard {
                    pos,
                    decision,
                    truncate_to: Position::ZERO,
                },
            );
            self.pending_writes.insert(token, PendingWrite::Other);
        }
    }

    /// Truncates the log at `floor` (clamped to the own decided frontier by
    /// the log itself) once at least a batch of slots can be freed.
    fn maybe_truncate(&mut self, floor: Position, ctx: &mut Context<'_, RdmaMsg>) {
        if !self.truncation.enabled {
            return;
        }
        let target = floor.min(self.log.decided_frontier());
        if target.as_u64() >= self.log.base().as_u64() + self.truncation.batch {
            let freed = self.log.truncate_to(target);
            ctx.add_counter("log_slots_truncated", freed as u64);
        }
    }

    /// Lines 96–100 precondition, evaluated without side effects: the
    /// client, decision and per-shard `(position, truncation floor)` targets
    /// of `tx`, once every shard has a vote and full RDMA acknowledgements.
    fn completion_of(&self, tx: TxId) -> Option<Completion> {
        let coord = self.coordinating.get(&tx)?;
        if coord.decided {
            return None;
        }
        let epoch = self.epoch;
        let mut votes = Vec::new();
        let mut positions = Vec::new();
        for shard in &coord.shards {
            let progress = coord.progress.get(shard).and_then(|m| m.get(&epoch))?;
            let (vote, pos) = (progress.vote?, progress.pos?);
            let required: BTreeSet<ProcessId> = self.followers_of(*shard).into_iter().collect();
            if !required.is_subset(&progress.acked) {
                return None;
            }
            votes.push(vote);
            positions.push((
                *shard,
                pos,
                progress.leader_frontier.unwrap_or(Position::ZERO),
            ));
        }
        Some((coord.client, Decision::meet_all(votes), positions))
    }

    /// Lines 96–100: completion check driven by RDMA acknowledgements.
    fn check_completion(&mut self, tx: TxId, ctx: &mut Context<'_, RdmaMsg>) {
        let Some((client, decision, targets)) = self.completion_of(tx) else {
            return;
        };
        if let Some(coord) = self.coordinating.get_mut(&tx) {
            if !coord.decided {
                self.in_flight -= 1;
                // On this stack the accept quorum (the RDMA acknowledgement
                // quorum on every shard) and the decision coincide.
                ctx.obs_milestone(tx, TxMilestone::AcceptQuorum, 0);
                ctx.obs_milestone(tx, TxMilestone::Decided, 0);
                ctx.obs_gauge("obs_inflight_window", self.in_flight as f64);
            }
            coord.decided = true;
            coord.decision = Some(decision);
        }
        self.retry_backoff.remove(&tx);
        self.admission.remove(tx);
        ctx.add_counter("coordinator_decisions", 1);
        ctx.send(client, RdmaMsg::DecisionClient { tx, decision });
        for (shard, pos, truncate_to) in targets {
            let members = self
                .config
                .as_ref()
                .map(|c| c.members_of(shard).to_vec())
                .unwrap_or_default();
            for member in members {
                if member == self.id {
                    self.log.decide(pos, decision);
                    self.maybe_truncate(truncate_to, ctx);
                    self.maybe_gossip_frontier(ctx);
                    continue;
                }
                let token = ctx.rdma_send(
                    member,
                    RdmaMsg::DecisionShard {
                        pos,
                        decision,
                        truncate_to,
                    },
                );
                self.pending_writes.insert(token, PendingWrite::Other);
            }
        }
        // The decision frees an admission-window slot.
        self.drain_admission(ctx);
    }

    /// Batched lines 96–100: completes every done transaction of `txs` and
    /// packs their decisions into one `DecisionShard`-style `DECISION_BATCH`
    /// write per shard member. Clients are still notified individually.
    fn complete_batch(&mut self, txs: &[TxId], ctx: &mut Context<'_, RdmaMsg>) {
        if !self.batching.enabled {
            for &tx in txs {
                self.check_completion(tx, ctx);
            }
            return;
        }
        let mut per_shard: BTreeMap<ShardId, (Vec<DecisionItem>, Position)> = BTreeMap::new();
        let mut seen: BTreeSet<TxId> = BTreeSet::new();
        for &tx in txs {
            if !seen.insert(tx) {
                continue;
            }
            let Some((client, decision, targets)) = self.completion_of(tx) else {
                continue;
            };
            if let Some(coord) = self.coordinating.get_mut(&tx) {
                if !coord.decided {
                    self.in_flight -= 1;
                    // As in `check_completion`: quorum and decision coincide.
                    ctx.obs_milestone(tx, TxMilestone::AcceptQuorum, 0);
                    ctx.obs_milestone(tx, TxMilestone::Decided, 0);
                    ctx.obs_gauge("obs_inflight_window", self.in_flight as f64);
                }
                coord.decided = true;
                coord.decision = Some(decision);
            }
            self.retry_backoff.remove(&tx);
            self.admission.remove(tx);
            ctx.add_counter("coordinator_decisions", 1);
            ctx.send(client, RdmaMsg::DecisionClient { tx, decision });
            for (shard, pos, floor) in targets {
                let entry = per_shard
                    .entry(shard)
                    .or_insert_with(|| (Vec::new(), Position::new(u64::MAX)));
                entry.0.push(DecisionItem { pos, decision });
                entry.1 = entry.1.min(floor);
            }
        }
        for (shard, (items, truncate_to)) in per_shard {
            let members = self
                .config
                .as_ref()
                .map(|c| c.members_of(shard).to_vec())
                .unwrap_or_default();
            for member in members {
                if member == self.id {
                    for item in &items {
                        self.log.decide(item.pos, item.decision);
                    }
                    self.maybe_truncate(truncate_to, ctx);
                    self.maybe_gossip_frontier(ctx);
                    continue;
                }
                let token = ctx.rdma_send(
                    member,
                    RdmaMsg::DecisionBatch {
                        items: items.clone(),
                        truncate_to,
                    },
                );
                self.pending_writes.insert(token, PendingWrite::Other);
            }
        }
        // The decisions free admission-window slots.
        self.drain_admission(ctx);
    }

    // -- transaction path -----------------------------------------------------

    fn handle_certify(
        &mut self,
        tx: TxId,
        payload: Payload,
        client: ProcessId,
        ctx: &mut Context<'_, RdmaMsg>,
    ) {
        let shards = payload.shards(self.sharding.as_ref());
        if shards.is_empty() {
            ctx.send(
                client,
                RdmaMsg::DecisionClient {
                    tx,
                    decision: Decision::Commit,
                },
            );
            return;
        }
        if self.flow.enabled {
            match self.coordinating.get_mut(&tx) {
                Some(coord) if coord.decision.is_some() => {
                    // Decided re-submission: answer with the recorded
                    // decision instead of silently swallowing the request.
                    let decision = coord.decision.expect("checked above");
                    ctx.send(client, RdmaMsg::DecisionClient { tx, decision });
                    return;
                }
                Some(coord) => {
                    // A retry supersedes the in-flight attempt: refresh the
                    // reply address and payload and let the scheduled
                    // backoff decide when to re-drive, instead of stacking
                    // another PREPARE volley on top of the previous one.
                    // `decided` without a decision marks a coordination
                    // handed off to a newer configuration
                    // (`handle_stale_view_refresh`); a client re-drive means
                    // the handoff `RETRY` was lost — coordinate it afresh.
                    if coord.decided {
                        coord.decided = false;
                        self.in_flight += 1;
                    }
                    coord.payload = Some(payload);
                    coord.client = client;
                    let now = ctx.now().as_micros();
                    if self.backoff_due(tx, now) {
                        let attempt = self.retry_backoff.get(&tx).map(|b| b.attempt).unwrap_or(0);
                        ctx.obs_milestone(tx, TxMilestone::Retry, u64::from(attempt));
                        ctx.obs_gauge("obs_backoff_attempt", f64::from(attempt));
                        let coord = self.coordinating.get(&tx).expect("in flight").clone();
                        self.send_prepares(ctx, tx, &coord, None);
                        self.backoff_fired(tx, now);
                    }
                    self.arm_retry_timer(ctx);
                    return;
                }
                None => {
                    if !self.flow.admits(self.undecided_coordinated()) {
                        // Admission window full: park the submission at the
                        // edge; it is admitted when an in-flight transaction
                        // decides.
                        self.admission.enqueue(tx, (payload, client));
                        ctx.add_counter("admission_queued", 1);
                        ctx.obs_gauge("obs_admission_depth", self.admission.len() as f64);
                        self.arm_retry_timer(ctx);
                        return;
                    }
                    let (policy, salt) = (self.flow.backoff, self.backoff_salt(tx));
                    self.retry_backoff.insert(
                        tx,
                        BackoffState::armed(&policy, salt, ctx.now().as_micros()),
                    );
                }
            }
        }
        let inserted = !self.coordinating.contains_key(&tx);
        let coord = self.coordinating.entry(tx).or_insert_with(|| CoordState {
            client,
            payload: Some(payload.clone()),
            shards: shards.clone(),
            progress: BTreeMap::new(),
            decided: false,
            decision: None,
            known_decision: None,
        });
        if inserted {
            self.in_flight += 1;
            ctx.obs_milestone(tx, TxMilestone::Admitted, 0);
            ctx.obs_gauge("obs_inflight_window", self.in_flight as f64);
        }
        // A re-submitted `certify` of an already-decided transaction (the
        // client's `DECISION` was lost to a fault): answer with the recorded
        // decision instead of silently swallowing the request.
        if let Some(decision) = coord.decision {
            ctx.send(client, RdmaMsg::DecisionClient { tx, decision });
            return;
        }
        // `decided` without a decision marks a coordination handed off to the
        // members of a newer configuration (`handle_stale_view_refresh`). If
        // the client is re-driving the transaction, the handoff `RETRY` was
        // lost: coordinate it afresh.
        if coord.decided {
            coord.decided = false;
            self.in_flight += 1;
        }
        coord.payload = Some(payload);
        coord.client = client;
        if self.batching.enabled {
            if self.batcher.push(tx) {
                let txs = self.batcher.drain_full();
                self.flush_prepare_batch(txs, ctx);
            } else {
                self.arm_batch_timer(ctx);
            }
            self.arm_retry_timer(ctx);
            return;
        }
        let coord = coord.clone();
        self.send_prepares(ctx, tx, &coord, None);
        self.arm_retry_timer(ctx);
    }

    // -- batched certification pipeline (see `ratc_core::batch`) -------------

    fn arm_batch_timer(&mut self, ctx: &mut Context<'_, RdmaMsg>) {
        if !self.batch_timer_armed && !self.batcher.is_empty() {
            ctx.set_timer(self.batching.max_delay, BATCH_TICK);
            self.batch_timer_armed = true;
        }
    }

    /// Drains the pending batch into one `PREPARE_BATCH` per involved shard
    /// leader.
    fn flush_prepare_batch(&mut self, txs: Vec<TxId>, ctx: &mut Context<'_, RdmaMsg>) {
        if txs.is_empty() {
            return;
        }
        ctx.obs_gauge("obs_batch_occupancy", txs.len() as f64);
        if ctx.obs_enabled() {
            for &tx in &txs {
                ctx.obs_milestone(tx, TxMilestone::CertifySent, 0);
                ctx.obs_milestone(tx, TxMilestone::BatchFlush, txs.len() as u64);
            }
        }
        let mut per_leader: BTreeMap<ProcessId, Vec<PrepareItem>> = BTreeMap::new();
        for tx in txs {
            let Some(coord) = self.coordinating.get(&tx) else {
                continue;
            };
            if coord.decided {
                continue;
            }
            for shard in &coord.shards {
                let Some(leader) = self.leader_of(*shard) else {
                    continue;
                };
                let restricted = coord
                    .payload
                    .as_ref()
                    .map(|p| p.restrict(*shard, self.sharding.as_ref()));
                per_leader.entry(leader).or_default().push(PrepareItem {
                    tx,
                    payload: restricted,
                    shards: coord.shards.clone(),
                    client: coord.client,
                });
            }
        }
        for (leader, items) in per_leader {
            ctx.add_counter("prepare_batches_sent", 1);
            ctx.send(
                leader,
                RdmaMsg::PrepareBatch {
                    batch: PrepareBatch { items },
                },
            );
        }
    }

    /// Batched lines 77–90: the leader certifies a whole batch in one pass,
    /// appending fresh entries at a contiguous position range. Truncated
    /// transactions keep the per-transaction `TxDecided` fast path.
    fn handle_prepare_batch(
        &mut self,
        from: ProcessId,
        items: Vec<PrepareItem>,
        ctx: &mut Context<'_, RdmaMsg>,
    ) {
        if self.status != RdmaStatus::Leader {
            return;
        }
        let mut acks: Vec<PreparedItem> = Vec::with_capacity(items.len());
        for item in items {
            if let Some(decision) = self.log.truncated_decision(item.tx) {
                ctx.send(
                    from,
                    RdmaMsg::TxDecided {
                        tx: item.tx,
                        decision,
                        client: item.client,
                    },
                );
                continue;
            }
            if let Some(pos) = self.log.position_of(item.tx) {
                let entry = self.log.get(pos).expect("retained");
                acks.push(PreparedItem {
                    pos,
                    tx: item.tx,
                    payload: entry.payload.clone(),
                    vote: entry.vote,
                    shards: entry.shards.clone(),
                    client: entry.client,
                });
                continue;
            }
            let (vote, stored_payload) = match item.payload {
                Some(l) => {
                    let next = self.log.next();
                    let vote = self.log.vote_at(next, &l).unwrap_or_else(|| {
                        let committed = self.log.committed_payloads_before(next);
                        let prepared = self.log.prepared_payloads_before(next);
                        self.certifier.vote(&committed, &prepared, &l)
                    });
                    (vote, l)
                }
                None => (Decision::Abort, Payload::empty()),
            };
            let pos = self.log.append(LogEntry {
                tx: item.tx,
                payload: stored_payload.clone(),
                vote,
                dec: None,
                phase: TxPhase::Prepared,
                shards: item.shards.clone(),
                client: item.client,
            });
            acks.push(PreparedItem {
                pos,
                tx: item.tx,
                payload: stored_payload,
                vote,
                shards: item.shards,
                client: item.client,
            });
        }
        if !acks.is_empty() {
            ctx.send(
                from,
                RdmaMsg::PrepareAckBatch {
                    epoch: self.epoch,
                    shard: self.shard,
                    items: acks,
                    frontier: self.log.decided_frontier(),
                },
            );
        }
    }

    /// Batched lines 91–93: persist a whole batch of votes with **one RDMA
    /// write per follower**; the hardware acknowledgement of that write
    /// acknowledges every slot of the batch at once.
    fn handle_prepare_ack_batch(
        &mut self,
        epoch: Epoch,
        shard: ShardId,
        items: Vec<PreparedItem>,
        frontier: Position,
        ctx: &mut Context<'_, RdmaMsg>,
    ) {
        if epoch != self.epoch {
            return;
        }
        let mut txs = Vec::with_capacity(items.len());
        for item in &items {
            let coord = self
                .coordinating
                .entry(item.tx)
                .or_insert_with(|| CoordState {
                    client: item.client,
                    payload: None,
                    shards: item.shards.clone(),
                    progress: BTreeMap::new(),
                    decided: false,
                    decision: None,
                    known_decision: None,
                });
            let progress = coord
                .progress
                .entry(shard)
                .or_default()
                .entry(epoch)
                .or_default();
            progress.pos = Some(item.pos);
            progress.vote = Some(item.vote);
            progress.leader_frontier = Some(frontier);
            ctx.obs_milestone(item.tx, TxMilestone::ShardVoted, u64::from(shard.as_u32()));
            txs.push(item.tx);
        }
        let followers = self.followers_of(shard);
        let mut self_is_follower = false;
        for follower in followers {
            if follower == self.id {
                self_is_follower = true;
                continue;
            }
            let token = ctx.rdma_send(
                follower,
                RdmaMsg::AcceptBatch {
                    shard,
                    items: items.clone(),
                },
            );
            self.pending_writes.insert(
                token,
                PendingWrite::AcceptBatch {
                    txs: txs.clone(),
                    shard,
                    follower,
                    epoch,
                },
            );
        }
        if self_is_follower {
            self.apply_rdma_payload(RdmaMsg::AcceptBatch { shard, items }, ctx);
            for &tx in &txs {
                if let Some(coord) = self.coordinating.get_mut(&tx) {
                    coord
                        .progress
                        .entry(shard)
                        .or_default()
                        .entry(epoch)
                        .or_default()
                        .acked
                        .insert(self.id);
                }
            }
        }
        for &tx in &txs {
            self.flush_known_decision(tx, shard, ctx);
        }
        self.complete_batch(&txs, ctx);
    }

    /// Lines 77–90: identical to the message-passing protocol's leader logic.
    fn handle_prepare(
        &mut self,
        from: ProcessId,
        tx: TxId,
        payload: Option<Payload>,
        shards: Vec<ShardId>,
        client: ProcessId,
        ctx: &mut Context<'_, RdmaMsg>,
    ) {
        if self.status != RdmaStatus::Leader {
            return;
        }
        // A truncated transaction is decided: answer with the recorded
        // decision instead of re-certifying it as new (see `ratc-core`).
        if let Some(decision) = self.log.truncated_decision(tx) {
            ctx.send(
                from,
                RdmaMsg::TxDecided {
                    tx,
                    decision,
                    client,
                },
            );
            return;
        }
        if let Some(pos) = self.log.position_of(tx) {
            let entry = self.log.get(pos).expect("retained");
            ctx.send(
                from,
                RdmaMsg::PrepareAck {
                    epoch: self.epoch,
                    shard: self.shard,
                    pos,
                    tx,
                    payload: entry.payload.clone(),
                    vote: entry.vote,
                    shards: entry.shards.clone(),
                    client: entry.client,
                    frontier: self.log.decided_frontier(),
                },
            );
            return;
        }
        // The certification index answers the vote in O(|payload|); logs
        // without an index fall back to the set-based scans.
        let (vote, stored_payload) = match payload {
            Some(l) => {
                let next = self.log.next();
                let vote = self.log.vote_at(next, &l).unwrap_or_else(|| {
                    let committed = self.log.committed_payloads_before(next);
                    let prepared = self.log.prepared_payloads_before(next);
                    self.certifier.vote(&committed, &prepared, &l)
                });
                (vote, l)
            }
            None => (Decision::Abort, Payload::empty()),
        };
        let pos = self.log.append(LogEntry {
            tx,
            payload: stored_payload.clone(),
            vote,
            dec: None,
            phase: TxPhase::Prepared,
            shards: shards.clone(),
            client,
        });
        ctx.send(
            from,
            RdmaMsg::PrepareAck {
                epoch: self.epoch,
                shard: self.shard,
                pos,
                tx,
                payload: stored_payload,
                vote,
                shards,
                client,
                frontier: self.log.decided_frontier(),
            },
        );
    }

    /// Lines 91–93: persist the vote at the followers with RDMA writes.
    #[allow(clippy::too_many_arguments)]
    fn handle_prepare_ack(
        &mut self,
        epoch: Epoch,
        shard: ShardId,
        pos: Position,
        tx: TxId,
        payload: Payload,
        vote: Decision,
        shards: Vec<ShardId>,
        client: ProcessId,
        frontier: Position,
        ctx: &mut Context<'_, RdmaMsg>,
    ) {
        // Line 92 precondition: the coordinator is in the same (global) epoch
        // the leader prepared the transaction in.
        if epoch != self.epoch {
            return;
        }
        let inserted = !self.coordinating.contains_key(&tx);
        let coord = self.coordinating.entry(tx).or_insert_with(|| CoordState {
            client,
            payload: None,
            shards: shards.clone(),
            progress: BTreeMap::new(),
            decided: false,
            decision: None,
            known_decision: None,
        });
        if inserted {
            self.in_flight += 1;
        }
        let progress = coord
            .progress
            .entry(shard)
            .or_default()
            .entry(epoch)
            .or_default();
        progress.pos = Some(pos);
        progress.vote = Some(vote);
        progress.leader_frontier = Some(frontier);
        ctx.obs_milestone(tx, TxMilestone::ShardVoted, u64::from(shard.as_u32()));
        let followers = self.followers_of(shard);
        let mut self_is_follower = false;
        for follower in followers {
            if follower == self.id {
                // Writing into our own memory trivially succeeds: apply the
                // entry locally and count the acknowledgement immediately.
                self_is_follower = true;
                continue;
            }
            let token = ctx.rdma_send(
                follower,
                RdmaMsg::Accept {
                    shard,
                    pos,
                    tx,
                    payload: payload.clone(),
                    vote,
                    shards: shards.clone(),
                    client,
                },
            );
            self.pending_writes.insert(
                token,
                PendingWrite::Accept {
                    tx,
                    shard,
                    follower,
                    epoch,
                },
            );
        }
        if self_is_follower {
            self.apply_rdma_payload(
                RdmaMsg::Accept {
                    shard,
                    pos,
                    tx,
                    payload,
                    vote,
                    shards,
                    client,
                },
                ctx,
            );
            if let Some(coord) = self.coordinating.get_mut(&tx) {
                coord
                    .progress
                    .entry(shard)
                    .or_default()
                    .entry(epoch)
                    .or_default()
                    .acked
                    .insert(self.id);
            }
        }
        // A late re-ack for a transaction whose decision was already learned
        // out-of-band (`TxDecided`): tell this shard the decision now that
        // its position is known.
        self.flush_known_decision(tx, shard, ctx);
        self.check_completion(tx, ctx);
    }

    fn handle_retry(&mut self, tx: TxId, ctx: &mut Context<'_, RdmaMsg>) {
        let Some(pos) = self.log.position_of(tx) else {
            return;
        };
        // A truncated slot is decided; nothing to recover.
        let Some(entry) = self.log.get(pos) else {
            return;
        };
        if entry.phase != TxPhase::Prepared {
            return;
        }
        let shards = entry.shards.clone();
        let client = entry.client;
        let inserted = !self.coordinating.contains_key(&tx);
        let coord = self.coordinating.entry(tx).or_insert_with(|| CoordState {
            client,
            payload: None,
            shards,
            progress: BTreeMap::new(),
            decided: false,
            decision: None,
            known_decision: None,
        });
        if inserted {
            self.in_flight += 1;
        }
        let coord = coord.clone();
        self.send_prepares(ctx, tx, &coord, None);
        self.arm_retry_timer(ctx);
    }

    fn handle_retry_tick(&mut self, ctx: &mut Context<'_, RdmaMsg>) {
        self.retry_timer_armed = false;
        // Safety net: admit parked submissions even if a decision path was
        // missed (e.g. a handoff freed slots without deciding anything).
        self.drain_admission(ctx);
        let now = ctx.now().as_micros();
        let pending: Vec<TxId> = self
            .coordinating
            .iter()
            .filter(|(tx, c)| !c.decided && self.backoff_due(**tx, now))
            .map(|(tx, _)| *tx)
            .collect();
        if pending.is_empty() {
            self.arm_retry_timer(ctx);
            return;
        }
        // A stalled coordinator may be working from a stale view: a global
        // reconfiguration that excluded this process sends CONFIG_PREPARE and
        // NEW_STATE only to members of the new configuration, so an excluded
        // coordinator would retry into closed connections forever. Refresh
        // the view from the configuration service (the lazy CONFIG_CHANGE of
        // Figure 1, lines 67–69, lifted to the global protocol); the reply is
        // handled by `handle_stale_view_refresh`.
        ctx.send(self.cs, RdmaMsg::CsGetLast);
        for tx in pending {
            if self.flow.enabled {
                let attempt = self.retry_backoff.get(&tx).map(|b| b.attempt).unwrap_or(0);
                ctx.obs_milestone(tx, TxMilestone::Retry, u64::from(attempt));
                ctx.obs_gauge("obs_backoff_attempt", f64::from(attempt));
                self.backoff_fired(tx, now);
            }
            let coord = self.coordinating.get(&tx).expect("pending").clone();
            self.send_prepares(ctx, tx, &coord, None);
        }
        self.arm_retry_timer(ctx);
    }

    /// Handles a `get_last` reply that arrives outside an active
    /// reconfiguration: a coordinator checking whether it has been left
    /// behind by a newer global configuration.
    ///
    /// If this process is *not* a member of the newer configuration it will
    /// never receive `CONFIG_PREPARE`/`NEW_STATE`, and — by design — its RDMA
    /// writes are rejected by every member, so transactions it coordinates
    /// can never complete. It therefore adopts the configuration as its
    /// coordinator view and hands every stalled transaction to the new
    /// leaders of the transaction's shards: any leader whose certification
    /// log contains the transaction takes over as recovery coordinator
    /// (line 70), and leaders that never saw it ignore the request.
    fn handle_stale_view_refresh(
        &mut self,
        config: GlobalConfiguration,
        ctx: &mut Context<'_, RdmaMsg>,
    ) {
        // Members of the current configuration complete their transactions
        // through the normal path; only an *excluded* process must hand off.
        // The check is on membership, not on seeing a newer epoch: a process
        // that already adopted the configuration it was dropped from would
        // otherwise retry new transactions into closed connections forever
        // (its RDMA writes are rejected by every member).
        if config.epoch < self.epoch || config.all_processes().contains(&self.id) {
            return;
        }
        if config.epoch > self.epoch {
            self.epoch = config.epoch;
            if self.new_epoch < config.epoch {
                self.new_epoch = config.epoch;
            }
            self.config = Some(config.clone());
        }
        let stalled: Vec<(TxId, Vec<ShardId>)> = self
            .coordinating
            .iter()
            .filter(|(_, c)| !c.decided)
            .map(|(tx, c)| (*tx, c.shards.clone()))
            .collect();
        for (tx, shards) in stalled {
            for shard in shards {
                if let Some(leader) = config.leader_of(shard) {
                    ctx.send(leader, RdmaMsg::Retry { tx });
                }
            }
            // Stop retrying locally; the client's decision now comes from the
            // member that takes the transaction over.
            if let Some(coord) = self.coordinating.get_mut(&tx) {
                if !coord.decided {
                    self.in_flight -= 1;
                }
                coord.decided = true;
            }
            self.retry_backoff.remove(&tx);
            ctx.ctrl_milestone(CtrlMilestone::CoordinatorHandoff, None, tx.as_u64());
            ctx.add_counter("retries_handed_off", 1);
        }
        // Handed-off transactions free admission-window slots.
        self.drain_admission(ctx);
    }

    // -- reconfiguration ------------------------------------------------------

    fn handle_start_reconfigure(
        &mut self,
        suspected_shard: ShardId,
        spares: BTreeMap<ShardId, Vec<ProcessId>>,
        target_size: usize,
        exclude: Vec<ProcessId>,
        ctx: &mut Context<'_, RdmaMsg>,
    ) {
        if self.recon.is_some() {
            return; // rec_status must be ready
        }
        self.recon = Some(ReconState {
            phase: ReconPhase::AwaitingGetLast,
            recon_epoch: Epoch::ZERO,
            suspected_shard,
            probed_epoch: BTreeMap::new(),
            probed_members: BTreeMap::new(),
            responders: BTreeMap::new(),
            initialized: BTreeMap::new(),
            prev_leaders: BTreeMap::new(),
            grace_timer: None,
            retries: 0,
            config_prepare_acks: BTreeSet::new(),
            spares,
            target_size,
            exclude,
        });
        ctx.ctrl_milestone(
            CtrlMilestone::ReconfigInitiated,
            Some(suspected_shard),
            self.epoch.as_u64(),
        );
        ctx.send(self.cs, RdmaMsg::CsGetLast);
        // Probes travel over faultable links; restart probing if they are
        // lost (the configuration service itself is reliable).
        ctx.set_timer(RECON_RETRY, RECON_RETRY_TICK);
    }

    fn handle_cs_get_last_reply(
        &mut self,
        config: GlobalConfiguration,
        ctx: &mut Context<'_, RdmaMsg>,
    ) {
        let naive = self.mode == ReconfigMode::NaivePerShard;
        let Some(recon) = self.recon.as_mut() else {
            // Not reconfiguring: this is a stalled coordinator's view-refresh
            // poll (see `handle_retry_tick`).
            self.handle_stale_view_refresh(config, ctx);
            return;
        };
        if !matches!(recon.phase, ReconPhase::AwaitingGetLast) {
            return;
        }
        recon.recon_epoch = config.epoch.next();
        recon.phase = ReconPhase::Probing;
        let shards: Vec<ShardId> = if naive {
            vec![recon.suspected_shard]
        } else {
            config.members.keys().copied().collect()
        };
        let mut targets: Vec<ProcessId> = Vec::new();
        for shard in &shards {
            recon.probed_epoch.insert(*shard, config.epoch);
            recon
                .probed_members
                .insert(*shard, config.members_of(*shard).to_vec());
            if let Some(leader) = config.leader_of(*shard) {
                recon.prev_leaders.insert(*shard, leader);
            }
            targets.extend(config.members_of(*shard).iter().copied());
        }
        targets.sort_unstable();
        targets.dedup();
        let epoch = recon.recon_epoch;
        let suspected = recon.suspected_shard;
        ctx.ctrl_milestone(CtrlMilestone::ProbeStarted, Some(suspected), epoch.as_u64());
        ctx.send_to_many(targets, RdmaMsg::Probe { epoch });
    }

    /// Lines 111–116: join the new epoch; in the correct mode, also close all
    /// incoming RDMA connections so stale coordinators can no longer land
    /// writes.
    fn handle_probe(&mut self, from: ProcessId, epoch: Epoch, ctx: &mut Context<'_, RdmaMsg>) {
        if epoch < self.new_epoch {
            return;
        }
        self.status = RdmaStatus::Reconfiguring;
        if self.mode == ReconfigMode::GlobalCorrect {
            // multiclose(connections): revoke every peer's access, including
            // coordinators outside this replica's bookkeeping.
            ctx.rdma_close_all();
            self.connections.clear();
        }
        self.new_epoch = epoch;
        ctx.send(
            from,
            RdmaMsg::ProbeAck {
                initialized: self.initialized,
                epoch,
                shard: self.shard,
            },
        );
    }

    /// Lines 117–130: collect probe replies; when every probed shard has an
    /// initialised responder, compute the new configuration and CAS it.
    fn handle_probe_ack(
        &mut self,
        from: ProcessId,
        initialized: bool,
        epoch: Epoch,
        shard: ShardId,
        ctx: &mut Context<'_, RdmaMsg>,
    ) {
        let Some(recon) = self.recon.as_mut() else {
            return;
        };
        if !matches!(recon.phase, ReconPhase::Probing) || epoch != recon.recon_epoch {
            return;
        }
        if !recon.probed_epoch.contains_key(&shard) {
            return;
        }
        let responders = recon.responders.entry(shard).or_default();
        if !responders.contains(&from) {
            responders.push(from);
        }
        if initialized {
            let inits = recon.initialized.entry(shard).or_default();
            if !inits.contains(&from) {
                inits.push(from);
            }
        } else if !recon.initialized.contains_key(&shard) {
            // Descend to the previous epoch of this shard (simplified: ask the
            // CS for the previous configuration and probe its members).
            let current = recon.probed_epoch[&shard];
            if let Some(prev) = current.prev() {
                recon.probed_epoch.insert(shard, prev);
                ctx.send(self.cs, RdmaMsg::CsGet { epoch: prev });
            }
        }
        // Have we found an initialised responder for every probed shard?
        let all_found = recon
            .probed_epoch
            .keys()
            .all(|s| recon.initialized.contains_key(s));
        if !all_found {
            return;
        }
        // The new epoch is viable. Finish at once only when every probed
        // member of every shard has answered; otherwise briefly wait for
        // replies still in flight, so warm replicas are not discarded in
        // favour of spares that would need a full state transfer.
        let all_answered = recon.probed_members.iter().all(|(s, probed)| {
            let answered = recon.responders.get(s);
            probed
                .iter()
                .all(|p| answered.map(|a| a.contains(p)).unwrap_or(false))
        });
        if all_answered {
            self.finish_probe(ctx);
        } else if recon.grace_timer.is_none() {
            let suspected = recon.suspected_shard;
            ctx.ctrl_milestone(CtrlMilestone::ProbeGrace, Some(suspected), epoch.as_u64());
            recon.grace_timer = Some(ctx.set_timer(PROBE_GRACE, PROBE_GRACE_TICK));
        }
    }

    /// Lines 117–130 continued: compute the new configuration and CAS it.
    /// Per shard, the previous leader is preferred if it responded
    /// initialised; members prefer initialised responders over other
    /// responders over spares.
    fn finish_probe(&mut self, ctx: &mut Context<'_, RdmaMsg>) {
        let Some(recon) = self.recon.as_mut() else {
            return;
        };
        if !matches!(recon.phase, ReconPhase::Probing) {
            return;
        }
        let all_found = recon
            .probed_epoch
            .keys()
            .all(|s| recon.initialized.contains_key(s));
        if !all_found {
            return;
        }
        let excluded: BTreeSet<ProcessId> = recon.exclude.iter().copied().collect();
        let mut members = BTreeMap::new();
        let mut leaders = BTreeMap::new();
        let base = self.config.clone();
        for (s, inits) in recon.initialized.clone() {
            let leader = recon
                .prev_leaders
                .get(&s)
                .copied()
                .filter(|p| inits.contains(p) && !excluded.contains(p))
                .unwrap_or(inits[0]);
            let mut planner = MembershipPlanner::new(
                recon.target_size,
                recon.spares.get(&s).cloned().unwrap_or_default(),
            );
            let preferred: Vec<ProcessId> = inits
                .iter()
                .chain(recon.responders.get(&s).map(Vec::as_slice).unwrap_or(&[]))
                .copied()
                .filter(|p| *p != leader)
                .collect();
            members.insert(s, planner.plan(leader, &preferred, &recon.exclude));
            leaders.insert(s, leader);
        }
        // Shards that were not probed (naive mode) keep their configuration.
        if let Some(base) = base {
            for (s, m) in &base.members {
                members.entry(*s).or_insert_with(|| m.clone());
                if let Some(l) = base.leader_of(*s) {
                    leaders.entry(*s).or_insert(l);
                }
            }
        }
        let new_config = GlobalConfiguration::new(recon.recon_epoch, members, leaders);
        let expected = recon.recon_epoch.prev().expect("successor epoch");
        recon.phase = ReconPhase::AwaitingCas;
        ctx.send(
            self.cs,
            RdmaMsg::CsCas {
                expected,
                config: new_config,
            },
        );
    }

    /// The probe grace period elapsed: finish with the replies received.
    fn handle_probe_grace_tick(&mut self, ctx: &mut Context<'_, RdmaMsg>) {
        if let Some(recon) = self.recon.as_mut() {
            recon.grace_timer = None;
        }
        self.finish_probe(ctx);
    }

    /// The reconfiguration retry timer fired: restart probing from scratch if
    /// it is still unfinished (probes or replies may have been lost). The
    /// `AwaitingCas`/`Installing` phases talk to the reliable configuration
    /// service or wait for `CONFIG_PREPARE` acks, which are re-driven by this
    /// same tick re-sending `CONFIG_PREPARE`.
    fn handle_recon_retry_tick(&mut self, ctx: &mut Context<'_, RdmaMsg>) {
        let Some(recon) = self.recon.as_mut() else {
            return;
        };
        recon.retries += 1;
        if recon.retries > RECON_RETRY_CAP {
            if let Some(id) = recon.grace_timer.take() {
                ctx.cancel_timer(id);
            }
            self.recon = None;
            ctx.add_counter("reconfiguration_abandoned", 1);
            return;
        }
        match recon.phase.clone() {
            ReconPhase::AwaitingCas => {}
            ReconPhase::Installing { config } => {
                // Re-send CONFIG_PREPARE to members that have not acked yet.
                let missing: Vec<ProcessId> = config
                    .all_processes()
                    .into_iter()
                    .filter(|p| !recon.config_prepare_acks.contains(p))
                    .collect();
                ctx.send_to_many(missing, RdmaMsg::ConfigPrepare { config });
            }
            _ => {
                recon.phase = ReconPhase::AwaitingGetLast;
                recon.probed_epoch.clear();
                recon.probed_members.clear();
                recon.responders.clear();
                recon.initialized.clear();
                recon.prev_leaders.clear();
                // A grace timer armed by the abandoned round must not fire
                // into the new one and finish it with a partial responder
                // set.
                if let Some(id) = recon.grace_timer.take() {
                    ctx.cancel_timer(id);
                }
                ctx.add_counter("reconfiguration_reprobes", 1);
                ctx.send(self.cs, RdmaMsg::CsGetLast);
            }
        }
        ctx.set_timer(RECON_RETRY, RECON_RETRY_TICK);
    }

    fn handle_cs_get_reply(
        &mut self,
        _epoch: Epoch,
        config: Option<GlobalConfiguration>,
        ctx: &mut Context<'_, RdmaMsg>,
    ) {
        let Some(recon) = self.recon.as_mut() else {
            return;
        };
        if !matches!(recon.phase, ReconPhase::Probing) {
            return;
        }
        let Some(config) = config else {
            return;
        };
        // Probe the members of every shard we are still looking for, in the
        // returned (older) configuration.
        let mut targets = Vec::new();
        for (shard, probed) in recon.probed_epoch.clone() {
            if recon.initialized.contains_key(&shard) {
                continue;
            }
            if probed == config.epoch {
                let members = config.members_of(shard).to_vec();
                recon.probed_members.insert(shard, members.clone());
                targets.extend(members);
            }
        }
        targets.sort_unstable();
        targets.dedup();
        let epoch = recon.recon_epoch;
        ctx.send_to_many(targets, RdmaMsg::Probe { epoch });
    }

    /// Lines 121–124 / naive shortcut.
    fn handle_cs_cas_reply(
        &mut self,
        ok: bool,
        config: GlobalConfiguration,
        ctx: &mut Context<'_, RdmaMsg>,
    ) {
        let naive = self.mode == ReconfigMode::NaivePerShard;
        let Some(recon) = self.recon.as_mut() else {
            return;
        };
        if !matches!(recon.phase, ReconPhase::AwaitingCas) {
            return;
        }
        if !ok {
            self.recon = None;
            ctx.add_counter("reconfiguration_cas_lost", 1);
            return;
        }
        let suspected = recon.suspected_shard;
        ctx.ctrl_milestone(
            CtrlMilestone::ConfigChosen,
            Some(suspected),
            config.epoch.as_u64(),
        );
        if naive {
            // Naive per-shard mode: skip CONFIG_PREPARE entirely; notify the
            // new leader of the suspected shard only, and let other shards
            // learn lazily (as in §3's CONFIG_CHANGE, sent by the CS).
            let suspected = recon.suspected_shard;
            self.recon = None;
            if let Some(leader) = config.leader_of(suspected) {
                ctx.send(leader, RdmaMsg::NewConfig { config });
            }
        } else {
            // Correct mode: disseminate the configuration to every member and
            // wait for all acknowledgements before activating it.
            recon.phase = ReconPhase::Installing {
                config: config.clone(),
            };
            recon.config_prepare_acks.clear();
            ctx.send_to_many(config.all_processes(), RdmaMsg::ConfigPrepare { config });
        }
    }

    /// Lines 131–136. `CONFIG_PREPARE` only *persists* the configuration and
    /// raises `new_epoch`; it must not replace the replica's active view.
    /// In-flight coordinations of the current epoch keep evaluating their
    /// completion condition against the membership they were started in —
    /// mixing the old epoch's progress with the new epoch's membership lets
    /// a coordinator whose follower set shrank declare a transaction
    /// persisted at processes the new configuration never transfers state
    /// from (a safety violation the chaos nemesis found unscripted). The
    /// active view switches at `NEW_CONFIG`/`NEW_STATE`, which carry the
    /// configuration again.
    fn handle_config_prepare(
        &mut self,
        from: ProcessId,
        config: GlobalConfiguration,
        ctx: &mut Context<'_, RdmaMsg>,
    ) {
        if config.epoch < self.new_epoch {
            return;
        }
        self.new_epoch = config.epoch;
        ctx.send(
            from,
            RdmaMsg::ConfigPrepareAck {
                epoch: config.epoch,
            },
        );
    }

    /// Lines 137–140.
    fn handle_config_prepare_ack(
        &mut self,
        from: ProcessId,
        epoch: Epoch,
        ctx: &mut Context<'_, RdmaMsg>,
    ) {
        let Some(recon) = self.recon.as_mut() else {
            return;
        };
        let ReconPhase::Installing { config } = recon.phase.clone() else {
            return;
        };
        if epoch != config.epoch {
            return;
        }
        recon.config_prepare_acks.insert(from);
        let everyone: BTreeSet<ProcessId> = config.all_processes().into_iter().collect();
        if recon.config_prepare_acks.is_superset(&everyone) {
            self.recon = None;
            ctx.send_to_many(config.all_leaders(), RdmaMsg::NewConfig { config });
        }
    }

    /// Lines 141–147: become a leader of the new configuration. `flush`
    /// guarantees every acknowledged write is reflected in the transferred
    /// state.
    fn handle_new_config(&mut self, config: GlobalConfiguration, ctx: &mut Context<'_, RdmaMsg>) {
        if config.epoch < self.new_epoch {
            return;
        }
        let flushed = ctx.rdma_flush();
        for (_, msg) in flushed {
            self.apply_rdma_payload(msg, ctx);
        }
        // A new epoch: stale peer frontiers must not unlock truncation for a
        // membership they no longer describe.
        self.peer_frontiers.clear();
        let previous_leader = self.config.as_ref().and_then(|c| c.leader_of(self.shard));
        self.status = RdmaStatus::Leader;
        self.new_epoch = config.epoch;
        self.epoch = config.epoch;
        self.config = Some(config.clone());
        if previous_leader != Some(self.id) {
            ctx.ctrl_milestone(
                CtrlMilestone::LeaderHandoff,
                Some(self.shard),
                config.epoch.as_u64(),
            );
        }
        ctx.ctrl_milestone(
            CtrlMilestone::ShardOperational,
            Some(self.shard),
            config.epoch.as_u64(),
        );
        let followers = config.followers_of(self.shard);
        for follower in followers {
            ctx.send(
                follower,
                RdmaMsg::NewState {
                    config: config.clone(),
                    leader: self.id,
                    log: self.log.clone(),
                },
            );
        }
        // Line 147: open connections to every other member of the new epoch,
        // retrying the handshake until everyone has answered.
        self.begin_connect_round(config.all_processes(), ctx);
        ctx.add_counter("became_leader", 1);
    }

    /// Lines 148–153.
    fn handle_new_state(
        &mut self,
        config: GlobalConfiguration,
        leader: ProcessId,
        log: RdmaLog,
        ctx: &mut Context<'_, RdmaMsg>,
    ) {
        if config.epoch < self.new_epoch {
            return;
        }
        let _ = leader;
        self.status = RdmaStatus::Follower;
        self.new_epoch = config.epoch;
        self.epoch = config.epoch;
        self.initialized = true;
        self.peer_frontiers.clear();
        self.log = log;
        if !self.log.has_index() {
            self.log.set_certifier(self.index_factory.clone_box());
        }
        self.config = Some(config.clone());
        ctx.ctrl_milestone(
            CtrlMilestone::StateTransferred,
            Some(self.shard),
            config.epoch.as_u64(),
        );
        // Line 153: connect to the other processes of the new epoch (the
        // leader initiates in-shard connections too; the handshake is
        // idempotent and retried until everyone has answered).
        self.begin_connect_round(config.all_processes(), ctx);
    }

    /// Lines 154–162. A connection request for an epoch at least as high as
    /// the one we have been asked to join is also accepted while still
    /// reconfiguring: it belongs to the new configuration, which is exactly
    /// what the paper's `open` calls establish.
    fn handle_connect(
        &mut self,
        from: ProcessId,
        epoch: Epoch,
        ctx: &mut Context<'_, RdmaMsg>,
        is_ack: bool,
    ) {
        if self.status == RdmaStatus::Reconfiguring && epoch < self.new_epoch {
            return;
        }
        // Never re-admit a peer from an *older* epoch: reconfiguration
        // deliberately closed its connections to fence its stale writes (the
        // crux of §5's correctness), and a crash-restarted process still in
        // an old epoch must first catch up — via its configuration-service
        // poll, a probe, or `NEW_STATE` — before its handshake (sent with
        // its then-current epoch) is accepted.
        if epoch < self.epoch {
            return;
        }
        // Re-open even if the peer was already believed connected: the peer
        // may have crashed and restarted, in which case its NIC lost every
        // permission and the old connection state is meaningless. `open` is
        // idempotent, and a `ConnectAck` never triggers a further reply, so
        // repeats cannot loop.
        ctx.rdma_open(from);
        self.connections.insert(from);
        // Either direction of the handshake completes a pending post-restart
        // reconnect to `from`.
        self.pending_connects.remove(&from);
        if !is_ack {
            ctx.send(from, RdmaMsg::ConnectAck { epoch: self.epoch });
        }
    }

    /// Starts (or restarts) a `Connect` handshake round with `peers`,
    /// retried until every peer has answered with `Connect`/`ConnectAck`.
    /// Used after a crash-restart and when joining a new configuration: the
    /// handshake travels over faultable links, and a permanently missing
    /// connection means every future write to that peer is silently
    /// rejected.
    fn begin_connect_round(&mut self, peers: Vec<ProcessId>, ctx: &mut Context<'_, RdmaMsg>) {
        self.connect_attempts = 0;
        self.pending_connects = peers.into_iter().filter(|p| *p != self.id).collect();
        for peer in self.pending_connects.clone() {
            ctx.send(peer, RdmaMsg::Connect { epoch: self.epoch });
        }
        if !self.pending_connects.is_empty() && !self.connect_retry_armed {
            ctx.set_timer(CONNECT_RETRY, CONNECT_RETRY_TICK);
            self.connect_retry_armed = true;
        }
    }

    /// Re-sends `Connect` to every peer that has not answered since the last
    /// restart. The handshake travels over faultable links, so a single
    /// attempt can be lost — and a permanently missing connection means every
    /// future write to that peer is silently rejected.
    fn handle_connect_retry_tick(&mut self, ctx: &mut Context<'_, RdmaMsg>) {
        self.connect_retry_armed = false;
        if self.pending_connects.is_empty() {
            return;
        }
        self.connect_attempts += 1;
        if self.connect_attempts > CONNECT_RETRY_CAP {
            // The remaining peers look permanently gone; stop keeping the
            // event queue alive. A restart or reconfiguration starts a
            // fresh round.
            self.pending_connects.clear();
            ctx.add_counter("connect_rounds_abandoned", 1);
            return;
        }
        for peer in self.pending_connects.clone() {
            ctx.send(peer, RdmaMsg::Connect { epoch: self.epoch });
        }
        ctx.set_timer(CONNECT_RETRY, CONNECT_RETRY_TICK);
        self.connect_retry_armed = true;
    }

    /// Naive mode only: lazily learn about a new configuration (mirrors §3's
    /// CONFIG_CHANGE).
    fn handle_naive_config_change(&mut self, config: GlobalConfiguration) {
        if config.epoch <= self.epoch {
            return;
        }
        // Members of the reconfigured shard learn through NEW_CONFIG/NEW_STATE;
        // everyone else just updates its view.
        if (Some(self.id) == config.leader_of(self.shard)
            || config.members_of(self.shard).contains(&self.id))
            && self.status == RdmaStatus::Reconfiguring
        {
            return;
        }
        self.config = Some(config.clone());
        self.epoch = config.epoch;
        if self.new_epoch < config.epoch {
            self.new_epoch = config.epoch;
        }
        if self.status != RdmaStatus::Reconfiguring {
            self.status = if config.leader_of(self.shard) == Some(self.id) {
                RdmaStatus::Leader
            } else {
                RdmaStatus::Follower
            };
        }
    }
}

impl Actor<RdmaMsg> for RdmaReplica {
    fn on_message(&mut self, from: ProcessId, msg: RdmaMsg, ctx: &mut Context<'_, RdmaMsg>) {
        match msg {
            RdmaMsg::Certify {
                tx,
                payload,
                client,
            } => self.handle_certify(tx, payload, client, ctx),
            RdmaMsg::Prepare {
                tx,
                payload,
                shards,
                client,
            } => self.handle_prepare(from, tx, payload, shards, client, ctx),
            RdmaMsg::PrepareAck {
                epoch,
                shard,
                pos,
                tx,
                payload,
                vote,
                shards,
                client,
                frontier,
            } => self.handle_prepare_ack(
                epoch, shard, pos, tx, payload, vote, shards, client, frontier, ctx,
            ),
            RdmaMsg::PrepareBatch { batch } => self.handle_prepare_batch(from, batch.items, ctx),
            RdmaMsg::PrepareAckBatch {
                epoch,
                shard,
                items,
                frontier,
            } => self.handle_prepare_ack_batch(epoch, shard, items, frontier, ctx),
            RdmaMsg::FrontierExchange { shard, frontier } => {
                self.handle_frontier_exchange(from, shard, frontier, ctx)
            }
            RdmaMsg::DecisionClient { .. } => {}
            RdmaMsg::Retry { tx } => self.handle_retry(tx, ctx),
            RdmaMsg::TxDecided {
                tx,
                decision,
                client,
            } => {
                let mut notify_client = true;
                if let Some(coord) = self.coordinating.get_mut(&tx) {
                    if coord.known_decision.is_some() {
                        return;
                    }
                    coord.known_decision = Some(decision);
                    notify_client = !coord.decided;
                    if !coord.decided {
                        self.in_flight -= 1;
                        // Decision learned out-of-band from a recovery
                        // coordinator's `TxDecided`.
                        ctx.obs_milestone(tx, TxMilestone::Decided, 0);
                        ctx.obs_gauge("obs_inflight_window", self.in_flight as f64);
                    }
                    coord.decided = true;
                    coord.decision.get_or_insert(decision);
                    let shards = coord.shards.clone();
                    for shard in shards {
                        self.flush_known_decision(tx, shard, ctx);
                    }
                }
                if notify_client {
                    ctx.send(client, RdmaMsg::DecisionClient { tx, decision });
                }
                // An out-of-band decision also frees an admission slot.
                self.retry_backoff.remove(&tx);
                self.admission.remove(tx);
                self.drain_admission(ctx);
            }
            RdmaMsg::StartReconfigure {
                suspected_shard,
                spares,
                target_size,
                exclude,
            } => self.handle_start_reconfigure(suspected_shard, spares, target_size, exclude, ctx),
            RdmaMsg::Probe { epoch } => self.handle_probe(from, epoch, ctx),
            RdmaMsg::ProbeAck {
                initialized,
                epoch,
                shard,
            } => self.handle_probe_ack(from, initialized, epoch, shard, ctx),
            RdmaMsg::ConfigPrepare { config } => self.handle_config_prepare(from, config, ctx),
            RdmaMsg::ConfigPrepareAck { epoch } => self.handle_config_prepare_ack(from, epoch, ctx),
            RdmaMsg::NewConfig { config } => self.handle_new_config(config, ctx),
            RdmaMsg::NewState {
                config,
                leader,
                log,
            } => self.handle_new_state(config, leader, log, ctx),
            RdmaMsg::Connect { epoch } => self.handle_connect(from, epoch, ctx, false),
            RdmaMsg::ConnectAck { epoch } => self.handle_connect(from, epoch, ctx, true),
            RdmaMsg::CsGetLastReply { config } => self.handle_cs_get_last_reply(config, ctx),
            RdmaMsg::CsGetReply { epoch, config } => self.handle_cs_get_reply(epoch, config, ctx),
            RdmaMsg::CsCasReply { ok, config } => self.handle_cs_cas_reply(ok, config, ctx),
            RdmaMsg::NaiveConfigChange { config } => self.handle_naive_config_change(config),
            // Accept/DecisionShard (and their batch forms) only ever arrive
            // through RDMA; requests to the configuration service are ignored
            // by replicas.
            RdmaMsg::Accept { .. }
            | RdmaMsg::AcceptBatch { .. }
            | RdmaMsg::DecisionShard { .. }
            | RdmaMsg::DecisionBatch { .. }
            | RdmaMsg::CsGetLast
            | RdmaMsg::CsGet { .. }
            | RdmaMsg::CsCas { .. } => {}
        }
    }

    fn on_rdma_deliver(&mut self, _from: ProcessId, msg: RdmaMsg, ctx: &mut Context<'_, RdmaMsg>) {
        self.apply_rdma_payload(msg, ctx);
        // Decisions may have advanced the decided frontier: gossip it to the
        // shard peers once it has moved by a full truncation batch.
        self.maybe_gossip_frontier(ctx);
    }

    fn on_rdma_ack(&mut self, token: RdmaToken, _to: ProcessId, ctx: &mut Context<'_, RdmaMsg>) {
        let Some(pending) = self.pending_writes.remove(&token) else {
            return;
        };
        match pending {
            PendingWrite::Accept {
                tx,
                shard,
                follower,
                epoch,
            } => {
                if let Some(coord) = self.coordinating.get_mut(&tx) {
                    coord
                        .progress
                        .entry(shard)
                        .or_default()
                        .entry(epoch)
                        .or_default()
                        .acked
                        .insert(follower);
                }
                self.check_completion(tx, ctx);
            }
            PendingWrite::AcceptBatch {
                txs,
                shard,
                follower,
                epoch,
            } => {
                for &tx in &txs {
                    if let Some(coord) = self.coordinating.get_mut(&tx) {
                        coord
                            .progress
                            .entry(shard)
                            .or_default()
                            .entry(epoch)
                            .or_default()
                            .acked
                            .insert(follower);
                    }
                }
                self.complete_batch(&txs, ctx);
            }
            PendingWrite::Other => {}
        }
    }

    fn on_timer(&mut self, tag: TimerTag, ctx: &mut Context<'_, RdmaMsg>) {
        if tag == RETRY_TICK {
            self.handle_retry_tick(ctx);
        } else if tag == BATCH_TICK {
            self.batch_timer_armed = false;
            let txs = self.batcher.drain_idle();
            self.flush_prepare_batch(txs, ctx);
        } else if tag == PROBE_GRACE_TICK {
            self.handle_probe_grace_tick(ctx);
        } else if tag == RECON_RETRY_TICK {
            self.handle_recon_retry_tick(ctx);
        } else if tag == CONNECT_RETRY_TICK {
            self.handle_connect_retry_tick(ctx);
        }
    }

    /// Crash-restart recovery: the certification log (checkpoint + suffix)
    /// and the configuration view are stable storage; coordinator state,
    /// outstanding writes and the in-memory certification index are volatile.
    /// The index is rebuilt exactly as a `NEW_STATE` transfer would, and RDMA
    /// connections — lost with the NIC — are re-established by re-running the
    /// `Connect` handshake with every process of the current view.
    fn on_restart(&mut self, ctx: &mut Context<'_, RdmaMsg>) {
        self.coordinating.clear();
        self.in_flight = 0;
        self.pending_writes.clear();
        self.recon = None;
        self.retry_timer_armed = false;
        self.batcher = VoteBatcher::new(self.batching);
        self.batch_timer_armed = false;
        self.admission.clear();
        self.retry_backoff.clear();
        self.peer_frontiers.clear();
        // Writes that reached the persistent region were acknowledged to
        // their senders — they count as persisted here, even across the
        // crash. Recover them before rebuilding the index (the `flush` of
        // §5, the same call leader promotion uses).
        let flushed = ctx.rdma_flush();
        for (_, msg) in flushed {
            self.apply_rdma_payload(msg, ctx);
        }
        self.last_gossiped_frontier = self.log.decided_frontier();
        self.log.set_certifier(self.index_factory.clone_box());
        self.connections.clear();
        self.connect_retry_armed = false;
        if let Some(config) = self.config.clone() {
            self.begin_connect_round(config.all_processes(), ctx);
        } else {
            self.pending_connects.clear();
        }
        ctx.add_counter("replica_restarts", 1);
    }
}
