//! Messages of the RDMA-based protocol (Figures 7–8).
//!
//! `Accept` and `DecisionShard` are transported by RDMA writes
//! (`Context::rdma_send`); everything else uses ordinary messages. As in
//! `ratc-core`, messages carry `shards(t)` and `client(t)` so that any replica
//! can act as a recovery coordinator.

use std::collections::BTreeMap;

use ratc_config::GlobalConfiguration;
use ratc_core::batch::{DecisionItem, PrepareBatch, PreparedItem};
use ratc_types::{Decision, Epoch, Payload, Position, ProcessId, ShardId, TxId};

use crate::replica::RdmaLog;

/// Messages of the RDMA-based atomic commit protocol.
#[derive(Debug, Clone)]
pub enum RdmaMsg {
    /// `certify(t, l)` submitted to the coordinating replica (line 74).
    Certify {
        /// Transaction identifier.
        tx: TxId,
        /// Full payload.
        payload: Payload,
        /// Issuing client.
        client: ProcessId,
    },
    /// `PREPARE(t, l)` to a shard leader (line 76); `None` encodes `⊥`.
    Prepare {
        /// Transaction identifier.
        tx: TxId,
        /// Shard-restricted payload or `⊥`.
        payload: Option<Payload>,
        /// `shards(t)`.
        shards: Vec<ShardId>,
        /// `client(t)`.
        client: ProcessId,
    },
    /// `PREPARE_ACK(e, s, k, t, l, d)` back to the coordinator (lines 80, 90).
    PrepareAck {
        /// The leader's (global) epoch.
        epoch: Epoch,
        /// The leader's shard.
        shard: ShardId,
        /// Certification-order position.
        pos: Position,
        /// Transaction identifier.
        tx: TxId,
        /// Stored payload.
        payload: Payload,
        /// The leader's vote.
        vote: Decision,
        /// `shards(t)`.
        shards: Vec<ShardId>,
        /// `client(t)`.
        client: ProcessId,
        /// The leader's decided frontier, gossiped for log truncation.
        /// Followers acknowledge RDMA writes in hardware (no payload), so the
        /// leader's frontier is the only one the coordinator learns; members
        /// clamp the resulting truncation hint to their own decided frontier.
        frontier: Position,
    },
    /// `ACCEPT(k, t, l, d)` written into a follower's memory by RDMA
    /// (line 93). Note: no epoch and no acknowledgement message — the NIC-level
    /// `ack-rdma` plays that role.
    Accept {
        /// The target shard (metadata for the log).
        shard: ShardId,
        /// Certification-order position.
        pos: Position,
        /// Transaction identifier.
        tx: TxId,
        /// Shard-restricted payload.
        payload: Payload,
        /// The leader's vote.
        vote: Decision,
        /// `shards(t)`.
        shards: Vec<ShardId>,
        /// `client(t)`.
        client: ProcessId,
    },
    /// `DECISION(k, d)` written into a member's memory by RDMA (line 100).
    DecisionShard {
        /// Certification-order position.
        pos: Position,
        /// Final decision.
        decision: Decision,
        /// Truncation hint: the shard leader's decided frontier as observed
        /// by the coordinator. Receivers clamp to their own frontier before
        /// folding the prefix into their checkpoint.
        truncate_to: Position,
    },
    /// `DECISION(t, d)` to the client (line 98).
    DecisionClient {
        /// Transaction identifier.
        tx: TxId,
        /// Final decision.
        decision: Decision,
    },
    /// External trigger for `retry(k)` (line 167).
    Retry {
        /// Transaction to re-coordinate.
        tx: TxId,
    },
    /// Reply to `PREPARE` for a transaction already folded into the leader's
    /// checkpoint: its final decision, answered directly (see `ratc-core`).
    TxDecided {
        /// The truncated transaction.
        tx: TxId,
        /// Its final decision.
        decision: Decision,
        /// `client(t)`, so the coordinator can forward the decision.
        client: ProcessId,
    },

    // ------------------------------------------------------------------
    // Batched certification pipeline (see `ratc_core::batch`)
    // ------------------------------------------------------------------
    /// `PREPARE_BATCH`: many `PREPARE`s coalesced into one message per shard
    /// leader (ordinary message, like `PREPARE`).
    PrepareBatch {
        /// The coalesced batch, items in submission order.
        batch: PrepareBatch,
    },
    /// `PREPARE_ACK_BATCH`: the leader's votes for a whole batch (ordinary
    /// message back to the coordinator).
    PrepareAckBatch {
        /// The leader's (global) epoch.
        epoch: Epoch,
        /// The leader's shard.
        shard: ShardId,
        /// Per-slot positions, payloads and votes.
        items: Vec<PreparedItem>,
        /// The leader's decided frontier, gossiped for log truncation.
        frontier: Position,
    },
    /// `ACCEPT_BATCH`: a whole batch of votes packed into **one RDMA write**
    /// per follower. Each item carries its own position, transaction, payload
    /// and vote, so per-slot votes remain individually recoverable from the
    /// memory region the batch landed in (a `flush` that drains a batch write
    /// replays each slot exactly as it would a single `ACCEPT`).
    AcceptBatch {
        /// The target shard (metadata for the log).
        shard: ShardId,
        /// Per-slot positions, payloads and votes.
        items: Vec<PreparedItem>,
    },
    /// `DECISION_BATCH`: the decisions of every batch transaction that
    /// completed together, packed into one `DecisionShard`-style RDMA write
    /// per shard member.
    DecisionBatch {
        /// Per-slot decisions.
        items: Vec<DecisionItem>,
        /// Truncation hint, clamped by receivers to their own frontier.
        truncate_to: Position,
    },

    /// Member-to-member decided-frontier exchange for checkpointed
    /// truncation. RDMA hardware acks carry no payload, so followers cannot
    /// gossip their frontiers on the data path the way `ratc-core` followers
    /// do on `ACCEPT_ACK`; instead every shard member broadcasts its frontier
    /// to its peers whenever it has advanced by a truncation batch, and each
    /// member truncates at the minimum over the whole membership — the true
    /// cluster minimum instead of the clamped leader hint.
    FrontierExchange {
        /// The sender's shard.
        shard: ShardId,
        /// The sender's decided frontier.
        frontier: Position,
    },

    /// External trigger for `reconfigure()` (line 103). In the correct mode
    /// the whole system is reconfigured; `suspected_shard` tells the
    /// reconfigurer which shard triggered the suspicion (and, in the naive
    /// mode, the only shard that will be probed).
    StartReconfigure {
        /// The shard whose failure triggered reconfiguration.
        suspected_shard: ShardId,
        /// Fresh processes per shard available as replacements.
        spares: BTreeMap<ShardId, Vec<ProcessId>>,
        /// Target replicas per shard.
        target_size: usize,
        /// Processes that must not be reused.
        exclude: Vec<ProcessId>,
    },
    /// `PROBE(e)` (line 110).
    Probe {
        /// The epoch the receiver is asked to join.
        epoch: Epoch,
    },
    /// `PROBE_ACK(initialized, e, s)` (line 116).
    ProbeAck {
        /// Whether the responder has ever been initialised.
        initialized: bool,
        /// The epoch it was asked to join.
        epoch: Epoch,
        /// The responder's shard.
        shard: ShardId,
    },
    /// `CONFIG_PREPARE(e, M, leaders)` (line 124).
    ConfigPrepare {
        /// The new global configuration.
        config: GlobalConfiguration,
    },
    /// `CONFIG_PREPARE_ACK(e)` (line 136).
    ConfigPrepareAck {
        /// The epoch being acknowledged.
        epoch: Epoch,
    },
    /// `NEW_CONFIG(e)` to the new leaders (line 139).
    NewConfig {
        /// The new global configuration.
        config: GlobalConfiguration,
    },
    /// `NEW_STATE(e, …)` from a new leader to its shard's followers (line 146).
    NewState {
        /// The new global configuration.
        config: GlobalConfiguration,
        /// The sending leader.
        leader: ProcessId,
        /// The leader's certification log.
        log: RdmaLog,
    },
    /// `CONNECT(epoch)` (line 147/153).
    Connect {
        /// The sender's epoch.
        epoch: Epoch,
    },
    /// `CONNECT_ACK(epoch)` (line 158).
    ConnectAck {
        /// The responder's epoch.
        epoch: Epoch,
    },

    /// `get_last()` request to the global configuration service.
    CsGetLast,
    /// Reply to [`RdmaMsg::CsGetLast`].
    CsGetLastReply {
        /// The latest stored configuration.
        config: GlobalConfiguration,
    },
    /// `get(e)` request.
    CsGet {
        /// The epoch queried.
        epoch: Epoch,
    },
    /// Reply to [`RdmaMsg::CsGet`].
    CsGetReply {
        /// The epoch queried.
        epoch: Epoch,
        /// The configuration at that epoch, if any.
        config: Option<GlobalConfiguration>,
    },
    /// `compare_and_swap(e, c)` request.
    CsCas {
        /// The expected current epoch.
        expected: Epoch,
        /// The proposed configuration.
        config: GlobalConfiguration,
    },
    /// Reply to [`RdmaMsg::CsCas`].
    CsCasReply {
        /// Whether the compare-and-swap succeeded.
        ok: bool,
        /// The proposed configuration (echoed).
        config: GlobalConfiguration,
    },
    /// `CONFIG_CHANGE`-style notification used only by the naive per-shard
    /// mode, mirroring §3 (the correct protocol uses `CONFIG_PREPARE`).
    NaiveConfigChange {
        /// The new global configuration.
        config: GlobalConfiguration,
    },
}

impl RdmaMsg {
    /// A short name for metrics and traces.
    pub fn kind(&self) -> &'static str {
        match self {
            RdmaMsg::Certify { .. } => "certify",
            RdmaMsg::Prepare { .. } => "prepare",
            RdmaMsg::PrepareAck { .. } => "prepare_ack",
            RdmaMsg::Accept { .. } => "accept",
            RdmaMsg::DecisionShard { .. } => "decision_shard",
            RdmaMsg::DecisionClient { .. } => "decision_client",
            RdmaMsg::Retry { .. } => "retry",
            RdmaMsg::TxDecided { .. } => "tx_decided",
            RdmaMsg::PrepareBatch { .. } => "prepare_batch",
            RdmaMsg::PrepareAckBatch { .. } => "prepare_ack_batch",
            RdmaMsg::AcceptBatch { .. } => "accept_batch",
            RdmaMsg::DecisionBatch { .. } => "decision_batch",
            RdmaMsg::FrontierExchange { .. } => "frontier_exchange",
            RdmaMsg::StartReconfigure { .. } => "start_reconfigure",
            RdmaMsg::Probe { .. } => "probe",
            RdmaMsg::ProbeAck { .. } => "probe_ack",
            RdmaMsg::ConfigPrepare { .. } => "config_prepare",
            RdmaMsg::ConfigPrepareAck { .. } => "config_prepare_ack",
            RdmaMsg::NewConfig { .. } => "new_config",
            RdmaMsg::NewState { .. } => "new_state",
            RdmaMsg::Connect { .. } => "connect",
            RdmaMsg::ConnectAck { .. } => "connect_ack",
            RdmaMsg::CsGetLast => "cs_get_last",
            RdmaMsg::CsGetLastReply { .. } => "cs_get_last_reply",
            RdmaMsg::CsGet { .. } => "cs_get",
            RdmaMsg::CsGetReply { .. } => "cs_get_reply",
            RdmaMsg::CsCas { .. } => "cs_cas",
            RdmaMsg::CsCasReply { .. } => "cs_cas_reply",
            RdmaMsg::NaiveConfigChange { .. } => "naive_config_change",
        }
    }
}
