//! Deployment harness for the RDMA protocol, plus scripted-schedule helpers
//! used by the Figure 4a counter-example.

use std::collections::BTreeMap;
use std::sync::Arc;

use ratc_config::GlobalConfiguration;
use ratc_sim::rdma::RdmaToken;
use ratc_sim::{
    Actor, Context, ExecutionMode, SimConfig, SimDuration, SimTime, TxMilestone, World,
};
use ratc_types::{
    CertificationPolicy, Decision, Epoch, HashSharding, Payload, ProcessId, Serializability,
    ShardId, ShardMap, TcsHistory, TxId,
};

use crate::config_service::GlobalConfigServiceActor;
use crate::messages::RdmaMsg;
use crate::replica::{RdmaReplica, ReconfigMode};
use ratc_core::batch::BatchingConfig;
use ratc_core::client::DecisionLatency;
use ratc_core::flow::FlowControlConfig;
use ratc_core::replica::TruncationConfig;

/// Configuration of a simulated RDMA deployment.
#[derive(Clone)]
pub struct RdmaClusterConfig {
    /// Number of shards.
    pub shards: u32,
    /// Replicas per shard (`f + 1`).
    pub replicas_per_shard: usize,
    /// Spare replicas per shard.
    pub spares_per_shard: usize,
    /// Certification policy.
    pub policy: Arc<dyn CertificationPolicy>,
    /// Simulation parameters.
    pub sim: SimConfig,
    /// Reconfiguration mode (correct global, or naive per-shard).
    pub mode: ReconfigMode,
    /// Checkpointed log truncation (default: enabled, batch 32).
    pub truncation: TruncationConfig,
    /// Batched certification pipeline (default: disabled).
    pub batching: BatchingConfig,
    /// Flow control: admission window and retry backoff (default: enabled).
    pub flow: FlowControlConfig,
    /// Which engine drives the actors: the deterministic simulator or one OS
    /// thread per process (see [`ExecutionMode`]).
    pub execution: ExecutionMode,
}

impl Default for RdmaClusterConfig {
    fn default() -> Self {
        RdmaClusterConfig {
            shards: 2,
            replicas_per_shard: 2,
            spares_per_shard: 2,
            policy: Arc::new(Serializability::new()),
            sim: SimConfig::default(),
            mode: ReconfigMode::GlobalCorrect,
            truncation: TruncationConfig::default(),
            batching: BatchingConfig::default(),
            flow: FlowControlConfig::default(),
            execution: ExecutionMode::default(),
        }
    }
}

impl std::fmt::Debug for RdmaClusterConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RdmaClusterConfig")
            .field("shards", &self.shards)
            .field("replicas_per_shard", &self.replicas_per_shard)
            .field("mode", &self.mode)
            .finish()
    }
}

impl RdmaClusterConfig {
    /// Returns a copy with the given number of shards.
    pub fn with_shards(mut self, shards: u32) -> Self {
        self.shards = shards;
        self
    }

    /// Returns a copy with the given reconfiguration mode.
    pub fn with_mode(mut self, mode: ReconfigMode) -> Self {
        self.mode = mode;
        self
    }

    /// Returns a copy with the given random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.sim.seed = seed;
        self
    }

    /// Returns a copy with the given checkpointed-truncation policy.
    pub fn with_truncation(mut self, truncation: TruncationConfig) -> Self {
        self.truncation = truncation;
        self
    }

    /// Returns a copy with the given batching-pipeline knobs.
    pub fn with_batching(mut self, batching: BatchingConfig) -> Self {
        self.batching = batching;
        self
    }

    /// Returns a copy with the given flow-control knobs.
    pub fn with_flow(mut self, flow: FlowControlConfig) -> Self {
        self.flow = flow;
        self
    }

    /// Returns a copy with the given execution mode.
    pub fn with_execution(mut self, execution: ExecutionMode) -> Self {
        self.execution = execution;
        self
    }
}

/// A client of the RDMA protocol: records the TCS history and latencies.
#[derive(Debug, Default)]
pub struct RdmaClientActor {
    history: TcsHistory,
    submit_times: BTreeMap<TxId, SimTime>,
    latencies: BTreeMap<TxId, DecisionLatency>,
    violations: Vec<String>,
}

impl RdmaClientActor {
    /// Records the `certify` action at submission time.
    pub fn record_certify(&mut self, tx: TxId, payload: Payload, now: SimTime) {
        if let Err(err) = self.history.record_certify(tx, payload) {
            self.violations.push(err.to_string());
        }
        self.submit_times.insert(tx, now);
    }

    /// The recorded history.
    pub fn history(&self) -> &TcsHistory {
        &self.history
    }

    /// Latency (message delays, simulated time, decision) of each decided
    /// transaction.
    pub fn latencies(&self) -> &BTreeMap<TxId, DecisionLatency> {
        &self.latencies
    }

    /// Specification violations (contradictory decisions). Empty in a correct
    /// run.
    pub fn violations(&self) -> &[String] {
        &self.violations
    }
}

impl Actor<RdmaMsg> for RdmaClientActor {
    fn on_message(&mut self, _from: ProcessId, msg: RdmaMsg, ctx: &mut Context<'_, RdmaMsg>) {
        if let RdmaMsg::DecisionClient { tx, decision } = msg {
            if let Err(err) = self.history.record_decide(tx, decision) {
                self.violations.push(err.to_string());
                return;
            }
            let micros = self
                .submit_times
                .get(&tx)
                .map(|t| ctx.now().since(*t).as_micros())
                .unwrap_or(0);
            // Stamp only the first copy of the decision (duplicates from
            // concurrent recovery coordinators carry the same decision).
            if !self.latencies.contains_key(&tx) {
                ctx.obs_milestone(tx, TxMilestone::ClientLearned, 0);
            }
            self.latencies.entry(tx).or_insert(DecisionLatency {
                hops: ctx.hops(),
                micros,
                decision,
            });
            ctx.record_sample("client_decision_hops", f64::from(ctx.hops()));
            ctx.record_sample("client_decision_micros", micros as f64);
            match decision {
                Decision::Commit => ctx.add_counter("client_commits", 1),
                Decision::Abort => ctx.add_counter("client_aborts", 1),
            }
        }
    }
}

/// A test-controlled peer: records every message, RDMA delivery and RDMA
/// acknowledgement it receives, and never reacts. Used to play protocol roles
/// by hand in scripted schedules such as the Figure 4a counter-example.
#[derive(Debug, Default)]
pub struct ScriptedPeer {
    /// Messages received over the ordinary network.
    pub received: Vec<(ProcessId, RdmaMsg)>,
    /// Messages delivered out of local memory (RDMA).
    pub rdma_delivered: Vec<(ProcessId, RdmaMsg)>,
    /// Acknowledgement tokens received for our own RDMA writes.
    pub acks: Vec<RdmaToken>,
}

impl Actor<RdmaMsg> for ScriptedPeer {
    fn on_message(&mut self, from: ProcessId, msg: RdmaMsg, _ctx: &mut Context<'_, RdmaMsg>) {
        self.received.push((from, msg));
    }

    fn on_rdma_deliver(&mut self, from: ProcessId, msg: RdmaMsg, _ctx: &mut Context<'_, RdmaMsg>) {
        self.rdma_delivered.push((from, msg));
    }

    fn on_rdma_ack(&mut self, token: RdmaToken, _to: ProcessId, _ctx: &mut Context<'_, RdmaMsg>) {
        self.acks.push(token);
    }
}

/// A fully wired simulated deployment of the RDMA protocol.
pub struct RdmaCluster {
    /// The simulation world.
    pub world: World<RdmaMsg>,
    sharding: Arc<HashSharding>,
    cs: ProcessId,
    client: ProcessId,
    members: BTreeMap<ShardId, Vec<ProcessId>>,
    spares: BTreeMap<ShardId, Vec<ProcessId>>,
    replicas_per_shard: usize,
    next_coordinator: usize,
    mode: ReconfigMode,
    execution: ExecutionMode,
}

impl RdmaCluster {
    /// Builds the cluster: replicas, spares, configuration service and client,
    /// with RDMA connections opened between all initial members.
    pub fn new(config: RdmaClusterConfig) -> Self {
        let sharding = Arc::new(HashSharding::new(config.shards));
        let mut world: World<RdmaMsg> = World::new(config.sim.clone());

        let mut members: BTreeMap<ShardId, Vec<ProcessId>> = BTreeMap::new();
        let mut spares: BTreeMap<ShardId, Vec<ProcessId>> = BTreeMap::new();
        for shard_idx in 0..config.shards {
            let shard = ShardId::new(shard_idx);
            let mut shard_members = Vec::new();
            for _ in 0..config.replicas_per_shard {
                shard_members.push(world.add_actor(RdmaReplica::new(
                    shard,
                    config.policy.as_ref(),
                    sharding.clone() as Arc<dyn ShardMap + Send + Sync>,
                    config.mode,
                )));
            }
            members.insert(shard, shard_members);
            let mut shard_spares = Vec::new();
            for _ in 0..config.spares_per_shard {
                shard_spares.push(world.add_actor(RdmaReplica::new(
                    shard,
                    config.policy.as_ref(),
                    sharding.clone() as Arc<dyn ShardMap + Send + Sync>,
                    config.mode,
                )));
            }
            spares.insert(shard, shard_spares);
        }

        let initial = GlobalConfiguration::new(
            Epoch::ZERO,
            members.clone(),
            members
                .iter()
                .map(|(shard, shard_members)| (*shard, shard_members[0]))
                .collect(),
        );
        let notify = config.mode == ReconfigMode::NaivePerShard;
        let cs = world.add_actor(GlobalConfigServiceActor::new(initial.clone(), notify));
        let client = world.add_actor(RdmaClientActor::default());

        // Install views and open all-pairs RDMA connections among the initial
        // members.
        let all_members: Vec<ProcessId> = initial.all_processes();
        for (shard, shard_members) in &members {
            for pid in shard_members {
                let replica = world.actor_mut::<RdmaReplica>(*pid).expect("replica");
                replica.install_initial_config(*pid, cs, &initial, true);
                replica.set_truncation(config.truncation);
                replica.set_batching(config.batching);
                replica.set_flow(config.flow);
            }
            for pid in &spares[shard] {
                let replica = world.actor_mut::<RdmaReplica>(*pid).expect("spare");
                replica.install_initial_config(*pid, cs, &initial, false);
                replica.set_truncation(config.truncation);
                replica.set_batching(config.batching);
                replica.set_flow(config.flow);
            }
        }
        for owner in &all_members {
            for peer in &all_members {
                if owner != peer {
                    world.rdma_open(*owner, *peer);
                }
            }
        }

        RdmaCluster {
            world,
            sharding,
            cs,
            client,
            members,
            spares,
            replicas_per_shard: config.replicas_per_shard,
            next_coordinator: 0,
            mode: config.mode,
            execution: config.execution,
        }
    }

    /// The shard map of this cluster.
    pub fn sharding(&self) -> &HashSharding {
        &self.sharding
    }

    /// The reconfiguration mode this cluster was built with.
    pub fn mode(&self) -> ReconfigMode {
        self.mode
    }

    /// The client process.
    pub fn client_id(&self) -> ProcessId {
        self.client
    }

    /// The configuration-service process.
    pub fn config_service_id(&self) -> ProcessId {
        self.cs
    }

    /// The initial members of `shard`.
    pub fn initial_members(&self, shard: ShardId) -> &[ProcessId] {
        self.members.get(&shard).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The spare replicas of `shard`.
    pub fn spares(&self, shard: ShardId) -> &[ProcessId] {
        self.spares.get(&shard).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The current configuration stored by the configuration service.
    pub fn current_config(&self) -> GlobalConfiguration {
        self.world
            .actor::<GlobalConfigServiceActor>(self.cs)
            .expect("configuration service")
            .registry()
            .get_last()
            .clone()
    }

    /// Downcast access to a replica's state.
    pub fn replica(&self, pid: ProcessId) -> &RdmaReplica {
        self.world.actor::<RdmaReplica>(pid).expect("replica")
    }

    /// Submits a transaction through a round-robin coordinator.
    pub fn submit(&mut self, tx: TxId, payload: Payload) -> ProcessId {
        let all: Vec<ProcessId> = self
            .members
            .values()
            .flat_map(|v| v.iter().copied())
            .filter(|p| !self.world.is_crashed(*p))
            .collect();
        let coordinator = all[self.next_coordinator % all.len()];
        self.next_coordinator += 1;
        self.submit_via(tx, payload, coordinator);
        coordinator
    }

    /// Submits a transaction through a specific coordinator.
    pub fn submit_via(&mut self, tx: TxId, payload: Payload, coordinator: ProcessId) {
        let now = self.world.now();
        self.world
            .actor_mut::<RdmaClientActor>(self.client)
            .expect("client")
            .record_certify(tx, payload.clone(), now);
        self.world
            .obs_milestone(tx, TxMilestone::Submitted, self.client);
        let client = self.client;
        self.world.send_external(
            coordinator,
            RdmaMsg::Certify {
                tx,
                payload,
                client,
            },
        );
    }

    /// Triggers a reconfiguration through `initiator`.
    pub fn start_reconfiguration(
        &mut self,
        suspected_shard: ShardId,
        initiator: ProcessId,
        exclude: Vec<ProcessId>,
    ) {
        let spares = self.spares.clone();
        let target_size = self.replicas_per_shard;
        self.world.send_external(
            initiator,
            RdmaMsg::StartReconfigure {
                suspected_shard,
                spares,
                target_size,
                exclude,
            },
        );
    }

    /// Asks `replica` to retry `tx` as a recovery coordinator.
    pub fn retry(&mut self, replica: ProcessId, tx: TxId) {
        self.world.send_external(replica, RdmaMsg::Retry { tx });
    }

    /// Re-submits a transaction to the current leader of its first shard
    /// without re-recording it in the client history: the client retry of
    /// the TCS model, used by recovery drivers.
    pub fn resubmit(&mut self, tx: TxId, payload: Payload) {
        let shards = payload.shards(self.sharding.as_ref());
        let Some(target) = shards
            .first()
            .and_then(|s| self.current_config().leader_of(*s))
        else {
            return;
        };
        if self.world.is_crashed(target) {
            return;
        }
        let client = self.client;
        self.world.send_external(
            target,
            RdmaMsg::Certify {
                tx,
                payload,
                client,
            },
        );
    }

    /// Crashes a process.
    pub fn crash(&mut self, pid: ProcessId) {
        self.world.crash(pid);
    }

    /// Restarts a crashed replica: it recovers from its certification log
    /// (checkpoint + suffix) and re-establishes its RDMA connections.
    /// Returns `false` if `pid` was not crashed.
    pub fn restart(&mut self, pid: ProcessId) -> bool {
        self.world.restart(pid)
    }

    /// The execution engine driving this cluster's actors.
    pub fn execution(&self) -> ExecutionMode {
        self.execution
    }

    /// Runs until no events remain (on the configured [`ExecutionMode`]).
    pub fn run_to_quiescence(&mut self) {
        match self.execution {
            ExecutionMode::Sim => {
                self.world.run();
            }
            ExecutionMode::Threads => {
                self.world.run_threaded();
            }
        }
    }

    /// Runs for `duration` (simulated time on the simulator, wall-clock time
    /// on the threaded backend).
    pub fn run_for(&mut self, duration: SimDuration) {
        let until = self.world.now() + duration;
        self.run_until(until);
    }

    /// Runs the cluster until the given absolute time on the cluster's clock.
    pub fn run_until(&mut self, until: SimTime) {
        match self.execution {
            ExecutionMode::Sim => {
                self.world.run_until(until);
            }
            ExecutionMode::Threads => {
                self.world.run_threaded_until(until);
            }
        }
    }

    /// The client's recorded history.
    pub fn history(&self) -> TcsHistory {
        self.world
            .actor::<RdmaClientActor>(self.client)
            .expect("client")
            .history()
            .clone()
    }

    /// Latency (message delays, simulated time, decision) per decided
    /// transaction.
    pub fn latencies(&self) -> BTreeMap<TxId, DecisionLatency> {
        self.world
            .actor::<RdmaClientActor>(self.client)
            .expect("client")
            .latencies()
            .clone()
    }

    /// Message-delay counts per decided transaction.
    pub fn decision_hops(&self) -> BTreeMap<TxId, u32> {
        self.latencies()
            .into_iter()
            .map(|(tx, l)| (tx, l.hops))
            .collect()
    }

    /// Specification violations observed by the client.
    pub fn client_violations(&self) -> Vec<String> {
        self.world
            .actor::<RdmaClientActor>(self.client)
            .expect("client")
            .violations()
            .to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratc_types::{Key, Value, Version};

    fn rw_payload(key: &str) -> Payload {
        Payload::builder()
            .read(Key::new(key), Version::new(0))
            .write(Key::new(key), Value::from("v"))
            .commit_version(Version::new(1))
            .build()
            .expect("well-formed")
    }

    #[test]
    fn failure_free_commit_over_rdma() {
        let mut cluster = RdmaCluster::new(RdmaClusterConfig::default());
        cluster.submit(TxId::new(1), rw_payload("x"));
        cluster.run_to_quiescence();
        assert_eq!(
            cluster.history().decision(TxId::new(1)),
            Some(Decision::Commit)
        );
        assert!(cluster.client_violations().is_empty());
        assert_eq!(cluster.world.rdma_rejected(), 0);
    }

    #[test]
    fn conflicting_transactions_do_not_both_commit_over_rdma() {
        let mut cluster = RdmaCluster::new(RdmaClusterConfig::default().with_seed(7));
        cluster.submit(TxId::new(1), rw_payload("hot"));
        cluster.submit(TxId::new(2), rw_payload("hot"));
        cluster.run_to_quiescence();
        let history = cluster.history();
        assert!(history.committed().count() <= 1);
        assert_eq!(history.decide_count(), 2);
        assert!(cluster.client_violations().is_empty());
    }

    #[test]
    fn many_disjoint_transactions_commit_over_rdma() {
        let mut cluster =
            RdmaCluster::new(RdmaClusterConfig::default().with_shards(3).with_seed(9));
        for i in 0..20 {
            cluster.submit(TxId::new(i), rw_payload(&format!("k{i}")));
        }
        cluster.run_to_quiescence();
        assert_eq!(cluster.history().committed().count(), 20);
        assert!(cluster.client_violations().is_empty());
    }

    #[test]
    fn batched_pipeline_commits_over_rdma() {
        let mut cluster = RdmaCluster::new(
            RdmaClusterConfig::default()
                .with_shards(2)
                .with_seed(13)
                .with_batching(BatchingConfig::with_batch(8)),
        );
        let coordinator = cluster.initial_members(ShardId::new(0))[1];
        for i in 0..32u64 {
            cluster.submit_via(TxId::new(i + 1), rw_payload(&format!("k{i}")), coordinator);
        }
        cluster.run_to_quiescence();
        assert_eq!(cluster.history().committed().count(), 32);
        assert!(cluster.client_violations().is_empty());
        assert_eq!(cluster.world.rdma_rejected(), 0);
        assert!(
            cluster.world.metrics().counter("prepare_batches_sent") > 0,
            "the batcher never coalesced anything"
        );
    }

    #[test]
    fn batched_pipeline_preserves_conflict_decisions_over_rdma() {
        let mut cluster = RdmaCluster::new(
            RdmaClusterConfig::default()
                .with_shards(1)
                .with_seed(17)
                .with_batching(BatchingConfig::with_batch(4)),
        );
        let coordinator = cluster.initial_members(ShardId::new(0))[1];
        cluster.submit_via(TxId::new(1), rw_payload("hot"), coordinator);
        cluster.submit_via(TxId::new(2), rw_payload("hot"), coordinator);
        cluster.run_to_quiescence();
        let history = cluster.history();
        assert!(history.committed().count() <= 1);
        assert_eq!(history.decide_count(), 2);
        assert!(cluster.client_violations().is_empty());
    }

    /// Satellite regression: the member-to-member frontier exchange lets RDMA
    /// followers truncate at the true cluster minimum. With only the clamped
    /// leader hint (the PR 2 behaviour), the hint gossiped on the *last*
    /// decisions always lags the final frontier, so followers retained the
    /// tail of the history forever.
    #[test]
    fn frontier_exchange_truncates_followers_at_the_cluster_minimum() {
        use ratc_core::replica::TruncationConfig;
        let batch = 8u64;
        let mut cluster = RdmaCluster::new(
            RdmaClusterConfig::default()
                .with_shards(1)
                .with_seed(19)
                .with_truncation(TruncationConfig::with_batch(batch)),
        );
        let total = 96u64;
        for i in 0..total {
            cluster.submit(TxId::new(i + 1), rw_payload(&format!("k{i}")));
            cluster.run_to_quiescence();
        }
        assert_eq!(cluster.history().decide_count(), total as usize);
        assert!(
            cluster.world.metrics().counter("frontier_exchanges") > 0,
            "members never exchanged frontiers"
        );
        let config = cluster.current_config();
        for pid in config.members_of(ShardId::new(0)).to_vec() {
            let log = cluster.replica(pid).log();
            let lag = log.decided_frontier().as_u64() - log.base().as_u64();
            assert!(
                lag < 2 * batch,
                "member {pid} truncated only to {} with frontier {} (lag {lag})",
                log.base(),
                log.decided_frontier()
            );
        }
        assert!(cluster.client_violations().is_empty());
    }

    #[test]
    fn global_reconfiguration_recovers_from_a_follower_crash() {
        let mut cluster = RdmaCluster::new(RdmaClusterConfig::default().with_seed(11));
        cluster.submit(TxId::new(1), rw_payload("a"));
        cluster.run_to_quiescence();

        let shard = ShardId::new(0);
        let config = cluster.current_config();
        let leader = config.leader_of(shard).expect("leader");
        let follower = config.followers_of(shard)[0];
        cluster.crash(follower);
        cluster.start_reconfiguration(shard, leader, vec![follower]);
        cluster.run_to_quiescence();

        let new_config = cluster.current_config();
        assert_eq!(new_config.epoch, Epoch::new(1));
        assert!(!new_config.members_of(shard).contains(&follower));

        cluster.submit(TxId::new(2), rw_payload("b"));
        cluster.run_to_quiescence();
        assert_eq!(
            cluster.history().decision(TxId::new(2)),
            Some(Decision::Commit)
        );
        assert!(cluster.client_violations().is_empty());
    }
}
