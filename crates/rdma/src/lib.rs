//! The RDMA-based reconfigurable atomic commit protocol (§5, Figures 7–8).
//!
//! This crate implements the paper's second protocol, which follows the design
//! of the FARM system: transaction votes and decisions are persisted at
//! followers by *RDMA writes* acknowledged by the receiver's NIC, without
//! involving the receiver's CPU, and followers therefore cannot reject them.
//! The price is that reconfiguration must involve the whole system:
//!
//! * processes maintain a single global epoch instead of a per-shard vector;
//! * probing closes all incoming RDMA connections (`close`), so stale
//!   coordinators can no longer land writes;
//! * the new configuration is disseminated with `CONFIG_PREPARE` /
//!   `CONFIG_PREPARE_ACK` to *every* member before any leader activates it;
//! * a new leader calls `flush` before taking over, so every write that was
//!   already acknowledged to a coordinator is reflected in the state it
//!   transfers.
//!
//! The crate also provides a deliberately **naive** mode
//! ([`ReconfigMode::NaivePerShard`]) that keeps the per-shard reconfiguration
//! of §3 while using RDMA for the data path. That mode is unsafe — the paper's
//! Figure 4a schedule makes it externalise contradictory decisions — and
//! exists to reproduce that counter-example (experiment E7) and to show that
//! the correct protocol excludes it.
//!
//! See `ratc-core` for the message-passing protocol; the two crates share the
//! simulation substrate, the certification policies and the history/spec
//! machinery.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod config_service;
pub mod harness;
pub mod messages;
pub mod replica;

pub use config_service::GlobalConfigServiceActor;
pub use harness::{RdmaCluster, RdmaClusterConfig, ScriptedPeer};
pub use messages::RdmaMsg;
pub use replica::{RdmaReplica, ReconfigMode};
