//! The actor programming model: protocol processes and their execution context.
//!
//! A protocol process (a shard replica, a client, the configuration service,
//! a Paxos acceptor, …) is an [`Actor`]: a state machine with handlers for
//! message delivery, timer expiry and RDMA events. Handlers receive a
//! [`Context`] through which they send messages, set timers, manipulate RDMA
//! connections and record metrics. All effects requested through the context
//! are applied by the [`World`](crate::world::World) after the handler
//! returns, which keeps event ordering deterministic.

use std::any::Any;

use ratc_obs::{CtrlEvent, CtrlMilestone, TxMilestone, TxObsEvent};
use ratc_types::{ProcessId, ShardId, TxId};

use crate::metrics::Metrics;
use crate::rdma::{RdmaInbox, RdmaToken};
use crate::time::{SimDuration, SimTime};

/// Application-chosen tag distinguishing timers set by the same actor.
pub type TimerTag = u64;

/// Identifier of a pending timer, used to cancel it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(pub(crate) u64);

/// A simulated process.
///
/// The message type `M` is chosen by the protocol crate (each protocol defines
/// its own message enum). All handlers have default no-op implementations
/// except [`Actor::on_message`].
///
/// Actors must be `'static` (they are owned by the world) and implement
/// [`Any`] so that tests and experiment harnesses can downcast them back to
/// their concrete type via [`World::actor`](crate::world::World::actor).
/// They must also be [`Send`]: the threaded execution backend
/// ([`crate::rt`]) moves each actor onto its own OS thread for the duration
/// of a run.
pub trait Actor<M>: Any + Send {
    /// Called once when the actor is added to the world.
    fn on_start(&mut self, ctx: &mut Context<'_, M>) {
        let _ = ctx;
    }

    /// Called when a message sent with [`Context::send`] (or injected
    /// externally) is delivered to this actor.
    fn on_message(&mut self, from: ProcessId, msg: M, ctx: &mut Context<'_, M>);

    /// Called when a timer set with [`Context::set_timer`] fires.
    fn on_timer(&mut self, tag: TimerTag, ctx: &mut Context<'_, M>) {
        let _ = (tag, ctx);
    }

    /// Called when an RDMA write issued by this actor reaches the remote
    /// memory (the `ack-rdma` upcall of §5). `token` is the value returned by
    /// the corresponding [`Context::rdma_send`].
    fn on_rdma_ack(&mut self, token: RdmaToken, to: ProcessId, ctx: &mut Context<'_, M>) {
        let _ = (token, to, ctx);
    }

    /// Called when this actor's poller picks an RDMA message out of its local
    /// memory (the `deliver-rdma` upcall of §5).
    fn on_rdma_deliver(&mut self, from: ProcessId, msg: M, ctx: &mut Context<'_, M>) {
        let _ = (from, msg, ctx);
    }

    /// Called when the process crashes (for bookkeeping in tests; a crashed
    /// actor receives no further events).
    fn on_crash(&mut self) {}

    /// Called when the process is restarted after a crash (see
    /// [`World::restart`](crate::world::World::restart)). Implementations
    /// must discard volatile state and recover from whatever they model as
    /// stable storage (e.g. a checkpointed certification log); timers set
    /// before the crash never fire in the new incarnation, so long-lived
    /// timers must be re-armed here.
    fn on_restart(&mut self, ctx: &mut Context<'_, M>) {
        let _ = ctx;
    }
}

/// A single upcall into an actor, in transport-neutral form.
///
/// Both execution backends — the deterministic simulator
/// ([`World`](crate::world::World)) and the threaded runtime
/// ([`crate::rt`]) — reduce their events to an `Upcall` and drive the actor
/// through [`dispatch`], so the actor-facing semantics cannot drift between
/// backends.
#[derive(Debug)]
pub(crate) enum Upcall<M> {
    /// The actor was just added to its world.
    Start,
    /// A network message arrived.
    Message { from: ProcessId, msg: M },
    /// A timer fired.
    Timer { tag: TimerTag },
    /// An RDMA write issued by this actor reached the remote memory.
    RdmaAck { token: RdmaToken, to: ProcessId },
    /// The local poller picked an RDMA message out of this actor's memory.
    RdmaDeliver { from: ProcessId, msg: M },
    /// The process was restarted after a crash.
    Restart,
}

/// Invokes the handler matching `upcall` on `actor`. The single dispatch
/// point shared by both execution backends.
pub(crate) fn dispatch<M: 'static>(
    actor: &mut dyn Actor<M>,
    upcall: Upcall<M>,
    ctx: &mut Context<'_, M>,
) {
    match upcall {
        Upcall::Start => actor.on_start(ctx),
        Upcall::Message { from, msg } => actor.on_message(from, msg, ctx),
        Upcall::Timer { tag } => actor.on_timer(tag, ctx),
        Upcall::RdmaAck { token, to } => actor.on_rdma_ack(token, to, ctx),
        Upcall::RdmaDeliver { from, msg } => actor.on_rdma_deliver(from, msg, ctx),
        Upcall::Restart => actor.on_restart(ctx),
    }
}

/// An effect requested by an actor during a handler invocation.
#[derive(Debug)]
pub(crate) enum Effect<M> {
    /// Send `msg` to `to` over the message-passing network.
    Send {
        /// Destination process.
        to: ProcessId,
        /// Message to deliver.
        msg: M,
    },
    /// Issue an RDMA write of `msg` into the memory of `to`.
    RdmaSend {
        /// Destination process.
        to: ProcessId,
        /// Message to write.
        msg: M,
        /// Token identifying the write in the later `ack-rdma`.
        token: RdmaToken,
    },
    /// Grant `peer` access to this actor's memory region.
    RdmaOpen {
        /// The peer being granted access.
        peer: ProcessId,
    },
    /// Revoke `peer`'s access to this actor's memory region.
    RdmaClose {
        /// The peer whose access is revoked.
        peer: ProcessId,
    },
    /// Revoke every peer's access to this actor's memory region.
    RdmaCloseAll,
    /// Set a timer firing after `delay` with tag `tag`.
    SetTimer {
        /// Delay until the timer fires.
        delay: SimDuration,
        /// Application tag.
        tag: TimerTag,
        /// Identifier assigned to the timer.
        id: TimerId,
    },
    /// Cancel a previously set timer.
    CancelTimer {
        /// The timer to cancel.
        id: TimerId,
    },
}

/// Execution context handed to actor handlers.
///
/// All mutating operations are buffered and applied by the world after the
/// handler returns, except [`Context::rdma_flush`], which synchronously drains
/// the actor's own RDMA inbox (mirroring the blocking `flush` of §5).
pub struct Context<'a, M> {
    pub(crate) self_id: ProcessId,
    pub(crate) now: SimTime,
    pub(crate) hops: u32,
    pub(crate) effects: Vec<Effect<M>>,
    pub(crate) metrics: &'a mut Metrics,
    pub(crate) inbox: &'a mut RdmaInbox<M>,
    pub(crate) next_timer_id: &'a mut u64,
    pub(crate) next_rdma_token: &'a mut u64,
}

impl<'a, M> Context<'a, M> {
    /// The identifier of the actor currently executing.
    pub fn self_id(&self) -> ProcessId {
        self.self_id
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The number of message delays (hops) accumulated by the causal chain
    /// that led to the current handler invocation.
    ///
    /// Externally injected events start at 0; every network or RDMA hop adds
    /// one. Protocols use this to report client-visible latency in message
    /// delays, the unit the paper uses for its latency claims.
    pub fn hops(&self) -> u32 {
        self.hops
    }

    /// Sends `msg` to `to` over the reliable FIFO network.
    pub fn send(&mut self, to: ProcessId, msg: M) {
        self.metrics.on_send(self.self_id);
        self.effects.push(Effect::Send { to, msg });
    }

    /// Sends clones of `msg` to every process in `targets`.
    pub fn send_to_many<I>(&mut self, targets: I, msg: M)
    where
        M: Clone,
        I: IntoIterator<Item = ProcessId>,
    {
        for to in targets {
            self.send(to, msg.clone());
        }
    }

    /// Issues an RDMA write of `msg` into the memory of `to`
    /// (the `send-rdma` operation of §5).
    ///
    /// Returns a token identifying the write; if and when the write reaches
    /// the remote memory, [`Actor::on_rdma_ack`] is invoked with the same
    /// token. If the remote end has closed the connection, no acknowledgement
    /// will ever arrive.
    pub fn rdma_send(&mut self, to: ProcessId, msg: M) -> RdmaToken {
        let token = RdmaToken::new(*self.next_rdma_token);
        *self.next_rdma_token += 1;
        self.metrics.on_rdma_write(self.self_id);
        self.effects.push(Effect::RdmaSend { to, msg, token });
        token
    }

    /// Grants `peer` access to this actor's memory region
    /// (the `open` operation of §5).
    pub fn rdma_open(&mut self, peer: ProcessId) {
        self.effects.push(Effect::RdmaOpen { peer });
    }

    /// Revokes `peer`'s access to this actor's memory region
    /// (the `close` operation of §5). Writes from `peer` arriving after the
    /// close are rejected and never acknowledged.
    pub fn rdma_close(&mut self, peer: ProcessId) {
        self.effects.push(Effect::RdmaClose { peer });
    }

    /// Revokes every peer's access to this actor's memory region
    /// (the `multiclose(connections)` call of Figure 8).
    pub fn rdma_close_all(&mut self) {
        self.effects.push(Effect::RdmaCloseAll);
    }

    /// Synchronously drains all RDMA messages that have reached this actor's
    /// memory (i.e. have been acknowledged to their senders) but have not yet
    /// been delivered, returning them in arrival order (the `flush` operation
    /// of §5).
    ///
    /// After `rdma_flush` returns, every acknowledged write is either in the
    /// returned vector or was already delivered through
    /// [`Actor::on_rdma_deliver`].
    pub fn rdma_flush(&mut self) -> Vec<(ProcessId, M)>
    where
        M: Clone,
    {
        self.inbox.drain_undelivered()
    }

    /// Sets a timer that fires after `delay` with application tag `tag`.
    pub fn set_timer(&mut self, delay: SimDuration, tag: TimerTag) -> TimerId {
        let id = TimerId(*self.next_timer_id);
        *self.next_timer_id += 1;
        self.effects.push(Effect::SetTimer { delay, tag, id });
        id
    }

    /// Cancels a previously set timer. Cancelling an already-fired timer is a
    /// no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.effects.push(Effect::CancelTimer { id });
    }

    /// Adds `delta` to the named experiment counter.
    pub fn add_counter(&mut self, name: &str, delta: u64) {
        self.metrics.add_counter(name, delta);
    }

    /// Records a sample of the named experiment statistic (e.g. a latency).
    pub fn record_sample(&mut self, name: &str, value: f64) {
        self.metrics.record_sample(name, value);
    }

    /// `true` if commit-path observability is recording (see
    /// [`SimConfig::with_observability`](crate::world::SimConfig::with_observability)).
    pub fn obs_enabled(&self) -> bool {
        self.metrics.obs_enabled()
    }

    /// Stamps a transaction lifecycle milestone at the current time, if
    /// observability is enabled.
    ///
    /// `detail` is milestone-specific (see [`TxObsEvent::detail`]); pass 0
    /// when the milestone carries none. Disabled observability makes this a
    /// single branch on a bool, and recording only appends to a metrics
    /// buffer — it never sends, schedules or consults randomness — so
    /// same-seed simulated runs are bit-identical whether observability is
    /// on or off.
    pub fn obs_milestone(&mut self, tx: TxId, milestone: TxMilestone, detail: u64) {
        if self.metrics.obs_enabled() {
            self.metrics.obs_record(TxObsEvent {
                tx,
                at_micros: self.now.as_micros(),
                by: self.self_id,
                milestone,
                detail,
            });
        }
    }

    /// Records a sample of a flow-control/batching gauge (queue depth,
    /// window occupancy, …), only when observability is enabled — gauges
    /// ride the observability switch so the default path stays allocation-
    /// free.
    pub fn obs_gauge(&mut self, name: &str, value: f64) {
        if self.metrics.obs_enabled() {
            self.metrics.record_sample(name, value);
        }
    }

    /// Stamps a control-plane (cluster-scope) milestone at the current time,
    /// if observability is enabled — the reconfiguration/recovery twin of
    /// [`Context::obs_milestone`], with the same schedule-invisibility
    /// guarantee.
    ///
    /// `shard` is the shard the milestone concerns, when the actor knows it
    /// (`None` otherwise; the harness layer re-attributes from its roster).
    /// `detail` is milestone-specific (see [`CtrlMilestone`]); pass 0 when
    /// the milestone carries none.
    pub fn ctrl_milestone(
        &mut self,
        milestone: CtrlMilestone,
        shard: Option<ShardId>,
        detail: u64,
    ) {
        if self.metrics.obs_enabled() {
            self.metrics.ctrl_record(CtrlEvent {
                at_micros: self.now.as_micros(),
                by: self.self_id,
                milestone,
                shard,
                detail,
                note: String::new(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Msg {
        Hello,
    }

    #[test]
    fn context_buffers_effects() {
        let mut metrics = Metrics::default();
        let mut inbox = RdmaInbox::default();
        let mut next_timer = 0;
        let mut next_token = 0;
        let mut ctx: Context<'_, Msg> = Context {
            self_id: ProcessId::new(1),
            now: SimTime::from_micros(5),
            hops: 2,
            effects: Vec::new(),
            metrics: &mut metrics,
            inbox: &mut inbox,
            next_timer_id: &mut next_timer,
            next_rdma_token: &mut next_token,
        };
        assert_eq!(ctx.self_id(), ProcessId::new(1));
        assert_eq!(ctx.now().as_micros(), 5);
        assert_eq!(ctx.hops(), 2);

        ctx.send(ProcessId::new(2), Msg::Hello);
        ctx.send_to_many([ProcessId::new(3), ProcessId::new(4)], Msg::Hello);
        let token = ctx.rdma_send(ProcessId::new(5), Msg::Hello);
        assert_eq!(token, RdmaToken::new(0));
        ctx.rdma_open(ProcessId::new(6));
        ctx.rdma_close(ProcessId::new(6));
        let timer = ctx.set_timer(SimDuration::from_micros(10), 7);
        ctx.cancel_timer(timer);
        ctx.add_counter("commits", 1);
        ctx.record_sample("latency", 1.5);

        assert_eq!(ctx.effects.len(), 8);
        assert_eq!(metrics.sent(ProcessId::new(1)), 3);
        assert_eq!(metrics.counter("commits"), 1);
    }

    #[test]
    fn flush_drains_inbox() {
        let mut metrics = Metrics::default();
        let mut inbox: RdmaInbox<Msg> = RdmaInbox::default();
        inbox.push(ProcessId::new(9), Msg::Hello);
        let mut next_timer = 0;
        let mut next_token = 0;
        let mut ctx: Context<'_, Msg> = Context {
            self_id: ProcessId::new(1),
            now: SimTime::ZERO,
            hops: 0,
            effects: Vec::new(),
            metrics: &mut metrics,
            inbox: &mut inbox,
            next_timer_id: &mut next_timer,
            next_rdma_token: &mut next_token,
        };
        let drained = ctx.rdma_flush();
        assert_eq!(drained, vec![(ProcessId::new(9), Msg::Hello)]);
        assert!(ctx.rdma_flush().is_empty());
    }
}
